// Figure 21: workload vs k at fixed |V|. Larger k leaves less to skip; the
// first top-k's workload (the beta-sized delegate vector) dominates.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 21", "workload vs k (|V| fixed)", args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-10s %14s %14s %14s %12s\n", "k", "first (|D|)",
              "second(|C|)", "sum", "sum/|V| %");
  for (u64 k : args.k_sweep()) {
    core::StageBreakdown bd;
    (void)core::dr_topk_keys<u32>(dev, vs, k, core::DrTopkConfig{}, &bd);
    const u64 sum = bd.delegate_len + bd.concat_len;
    std::printf("2^%-8d %14llu %14llu %14llu %11.4f%%\n",
                static_cast<int>(std::bit_width(k)) - 1,
                static_cast<unsigned long long>(bd.delegate_len),
                static_cast<unsigned long long>(bd.concat_len),
                static_cast<unsigned long long>(sum),
                100.0 * static_cast<double>(sum) /
                    static_cast<double>(args.n()));
  }
  std::printf("\nPaper (|V|=2^30): sum climbs from 0.0015%% to 15.91%% of"
              " |V| as k goes 2^0 -> 2^24;\nfirst top-k dominates (beta"
              " doubles the delegate vector).\n");
  return 0;
}
