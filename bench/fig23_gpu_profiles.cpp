// Figure 23: Dr. Top-k (radix) on V100S vs Titan Xp. Same code, different
// GpuProfile; the paper reports a 1.3-1.8x gap roughly tracking the peak
// bandwidth ratio (1134 vs 547.7 GB/s).
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(23);
  bench::print_title("Figure 23", "V100S vs Titan Xp", args);
  vgpu::Device v100(vgpu::GpuProfile::v100s());
  vgpu::Device xp(vgpu::GpuProfile::titan_xp());
  vgpu::Device a100(vgpu::GpuProfile::a100());
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-10s %12s %12s %10s %12s\n", "k", "V100S (ms)",
              "TitanXp (ms)", "ratio", "A100 (ms)");
  for (u64 k : args.k_sweep()) {
    core::StageBreakdown a, b, c;
    (void)core::dr_topk_keys<u32>(v100, vs, k, core::DrTopkConfig{}, &a);
    (void)core::dr_topk_keys<u32>(xp, vs, k, core::DrTopkConfig{}, &b);
    (void)core::dr_topk_keys<u32>(a100, vs, k, core::DrTopkConfig{}, &c);
    std::printf("2^%-8d %12.3f %12.3f %9.2fx %12.3f\n",
                static_cast<int>(std::bit_width(k)) - 1, a.total_ms(),
                b.total_ms(), b.total_ms() / a.total_ms(), c.total_ms());
  }
  std::printf("\nPaper: V100S ahead of Titan Xp by 1.3-1.8x, roughly the"
              " 1134/547.7 bandwidth ratio.\nA100 (the intro's motivating"
              " GPU) added as a forward-looking profile.\n");
  return 0;
}
