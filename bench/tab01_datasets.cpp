// Table 1: the real-world dataset inventory, with the synthetic
// equivalents' distribution statistics at the benchmark scale.
#include <algorithm>
#include <cmath>

#include "common.hpp"

using namespace drtopk;

namespace {

template <class T>
void stats_row(const char* abbr, const vgpu::device_vector<T>& v,
               data::Criterion crit) {
  f64 mean = 0;
  T mn = v[0], mx = v[0];
  for (const T x : v) {
    mean += static_cast<f64>(x);
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  mean /= static_cast<f64>(v.size());
  std::printf("  %-4s n=%-12zu min=%-14.4g max=%-14.4g mean=%-12.4g"
              " criterion=%s\n",
              abbr, v.size(), static_cast<f64>(mn), static_cast<f64>(mx),
              mean, crit == data::Criterion::kSmallest ? "smallest" : "largest");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Table 1", "real-world datasets (synthetic equivalents)",
                     args);

  std::printf("%-6s %-28s %-14s %s\n", "Abbr.", "Dataset", "|V| (paper)",
              "Application domain");
  for (const auto& d : data::dataset_table()) {
    std::printf("%-6s %-28s %-14llu %s\n", d.abbr.c_str(), d.name.c_str(),
                static_cast<unsigned long long>(d.paper_size),
                d.domain.c_str());
  }

  std::printf("\nGenerated at |V| = 2^%llu:\n",
              static_cast<unsigned long long>(args.logn));
  stats_row("AN", data::ann_distances(args.n(), 128, args.seed),
            data::Criterion::kSmallest);
  stats_row("CW", data::clueweb_degrees(args.n(), args.seed),
            data::Criterion::kLargest);
  stats_row("TR", data::twitter_covid_scores(args.n(), args.seed),
            data::Criterion::kSmallest);
  return 0;
}
