// Figure 19: Dr. Top-k speedups on the three real-world datasets (Table 1):
// AN (k-NN distances, smallest), CW (web degrees, largest), TR (COVID tweet
// fear scores, smallest). Synthetic equivalents at --logn scale.
#include "common.hpp"

using namespace drtopk;

namespace {

template <class T>
void run_dataset(vgpu::Device& dev, const char* abbr,
                 const vgpu::device_vector<T>& data, data::Criterion crit,
                 const bench::Args& args) {
  std::span<const T> vs(data.data(), data.size());
  const std::vector<std::pair<const char*, topk::Algo>> families = {
      {"radix", topk::Algo::kRadixGgksOop},
      {"bucket", topk::Algo::kBucketOop},
      {"bitonic", topk::Algo::kBitonic}};

  std::printf("\n-- %s (|V| = 2^%llu) --\n%-10s", abbr,
              static_cast<unsigned long long>(args.logn), "k");
  for (auto& [name, _] : families) std::printf(" %14s", name);
  std::printf("\n");
  for (int e = 0; e <= 9; e += args.full ? 1 : 3) {
    const u64 k = u64{1} << e;
    std::printf("2^%-8d", e);
    for (auto& [name, algo] : families) {
      auto base = topk::run_topk<T>(dev, vs, k, crit, algo);
      auto cfg = bench::assisted_config(algo);
      core::StageBreakdown bd;
      auto dr = core::dr_topk<T>(dev, vs, k, crit, cfg, &bd);
      if (dr.values != base.values) std::printf("      MISMATCH");
      else std::printf(" %13.2fx", base.sim_ms / dr.sim_ms);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Figure 19",
                     "Dr. Top-k speedup on real-world datasets (Table 1)",
                     args);
  vgpu::Device dev;
  const u64 n = args.n();

  run_dataset<f32>(dev, "AN  (k-NN distances, smallest-k)",
                   data::ann_distances(n, 128, args.seed),
                   data::Criterion::kSmallest, args);
  run_dataset<u32>(dev, "CW  (web degrees, largest-k)",
                   data::clueweb_degrees(n, args.seed),
                   data::Criterion::kLargest, args);
  run_dataset<f32>(dev, "TR  (tweet fear scores, smallest-k)",
                   data::twitter_covid_scores(n, args.seed),
                   data::Criterion::kSmallest, args);

  std::printf("\nPaper averages: CW 6.7/4.6/173.7x, AN 4.2/3.3/127.1x,"
              " TR 4.8/4.1/170.2x (radix/bucket/bitonic).\n");
  return 0;
}
