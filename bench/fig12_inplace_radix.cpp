// Figure 12: speedup of the optimized flag-based in-place radix top-k over
// GGKS in-place radix top-k (which zeroes retired elements with scattered
// stores). Paper: 10.7x on average at |V|=2^21, UD.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(21);
  bench::print_title("Figure 12",
                     "flag-based in-place radix vs GGKS in-place radix",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-10s %12s %12s %10s\n", "k", "flag (ms)", "ggks (ms)",
              "speedup");
  double sum = 0;
  int count = 0;
  for (int e = 0; e <= 19; e += args.full ? 1 : 2) {
    const u64 k = u64{1} << e;
    auto flag = topk::radix_topk_flag<u32>(dev, vs, k);
    vgpu::device_vector<u32> work(v.begin(), v.end());
    auto ggks = topk::radix_topk_ggks_inplace<u32>(
        dev, std::span<u32>(work.data(), work.size()), k);
    const double speedup = ggks.sim_ms / flag.sim_ms;
    sum += speedup;
    ++count;
    std::printf("2^%-8d %12.4f %12.4f %9.2fx\n", e, flag.sim_ms, ggks.sim_ms,
                speedup);
  }
  std::printf("\naverage speedup: %.2fx   [paper: 10.7x]\n", sum / count);
  return 0;
}
