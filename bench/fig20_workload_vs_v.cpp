// Figure 20: workload (first top-k = |D|, second top-k = |concat|, and
// their sum) as a fraction of |V|, for growing |V| at fixed k. The ratio
// collapses as |V| grows — Dr. Top-k's scalability argument.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 20", "workload vs |V| (k fixed)", args);
  vgpu::Device dev;
  // Paper: k = 2^19 at |V| up to 2^30; keep k/|V|max = 2^-11.
  const u64 k = std::max<u64>(16, args.n() >> 11);
  std::printf("k = 2^%d\n", static_cast<int>(std::bit_width(k)) - 1);
  std::printf("%-8s %14s %14s %14s %12s\n", "|V|", "first (|D|)",
              "second(|C|)", "sum", "sum/|V| %");
  for (u64 logn = args.logn - 8; logn <= args.logn; ++logn) {
    const u64 n = u64{1} << logn;
    if (k * 4 > n) continue;
    auto v = data::generate(n, data::Distribution::kUniform, args.seed);
    std::span<const u32> vs(v.data(), v.size());
    core::StageBreakdown bd;
    (void)core::dr_topk_keys<u32>(dev, vs, k, core::DrTopkConfig{}, &bd);
    const u64 sum = bd.delegate_len + bd.concat_len;
    std::printf("2^%-6d %14llu %14llu %14llu %11.4f%%\n",
                static_cast<int>(logn),
                static_cast<unsigned long long>(bd.delegate_len),
                static_cast<unsigned long long>(bd.concat_len),
                static_cast<unsigned long long>(sum),
                100.0 * static_cast<double>(sum) / static_cast<double>(n));
  }
  std::printf("\nPaper: sum falls from 76.06%% of |V| at 2^22 to 0.83%% at"
              " 2^30.\n");
  return 0;
}
