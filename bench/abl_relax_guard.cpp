// Ablation: the Section 4.3 "skip the last first-top-k iteration"
// relaxation, and the adaptive guard this implementation adds on top.
//
// On UD the relaxation saves a digit pass for a negligible candidate-set
// growth. On ND (whole distribution inside one low digit) the naive
// relaxation admits nearly every delegate; the guard detects the blow-up
// (taken > 4k) and pays for the exact threshold instead.
#include "common.hpp"

using namespace drtopk;

namespace {

void run(vgpu::Device& dev, std::span<const u32> v, u64 k, bool relax,
         const char* label) {
  core::DrTopkConfig cfg;
  cfg.skip_last_first_iter = relax;
  core::StageBreakdown bd;
  (void)core::dr_topk_keys<u32>(dev, v, k, cfg, &bd);
  std::printf("  %-14s first=%8.3f concat=%8.3f total=%8.3f taken=%-10llu"
              " |C|=%llu\n",
              label, bd.first_ms, bd.concat_ms, bd.total_ms(),
              static_cast<unsigned long long>(bd.taken_delegates),
              static_cast<unsigned long long>(bd.concat_len));
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(23);
  bench::print_title("Ablation", "first top-k last-digit relaxation + guard",
                     args);
  vgpu::Device dev;
  const u64 k = u64{1} << (args.logn - 8);

  for (auto d : {data::Distribution::kUniform, data::Distribution::kNormal}) {
    auto v = data::generate(args.n(), d, args.seed);
    std::span<const u32> vs(v.data(), v.size());
    std::printf("%s, k=2^%d:\n", data::to_string(d).c_str(),
                static_cast<int>(std::bit_width(k)) - 1);
    run(dev, vs, k, false, "exact kth");
    run(dev, vs, k, true, "relax+guard");
  }
  std::printf("\nWithout the guard, ND's relaxed threshold admits ~every"
              " delegate (the whole\nvalue range lives inside the skipped"
              " digit) and concatenation explodes.\n");
  return 0;
}
