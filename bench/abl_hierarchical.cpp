// Ablation: flat vs hierarchical multi-GPU reduction (Section 5.4
// anticipates "hierarchical reduction would excel when Dr. Top-k scales to
// a large number of GPUs"). Node leaders pre-merge their members' top-ks so
// the primary GPU receives #nodes messages instead of #GPUs.
#include "common.hpp"
#include "dist/multi_gpu.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Ablation", "flat vs hierarchical multi-GPU reduction",
                     args);
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());
  const u64 k = 1 << 10;

  std::printf("%-8s %14s %14s | %14s %14s\n", "#GPUs", "flat comm",
              "flat msgs@0", "hier comm", "hier msgs@0");
  for (u32 gpus : {4u, 8u, 16u, 32u}) {
    dist::MultiGpuConfig cfg;
    cfg.num_gpus = gpus;
    cfg.device_capacity_elems = args.n();
    cfg.host_threads_per_gpu = 1;
    cfg.gpus_per_node = 4;
    auto flat = dist::multi_gpu_topk(vs, k, cfg);
    cfg.hierarchical = true;
    auto hier = dist::multi_gpu_topk(vs, k, cfg);
    if (flat.keys != hier.keys) {
      std::printf("MISMATCH at %u GPUs\n", gpus);
      return 1;
    }
    std::printf("%-8u %14.3f %14u | %14.3f %14u\n", gpus, flat.comm_ms,
                flat.primary_messages, hier.comm_ms, hier.primary_messages);
  }
  std::printf("\nThe primary's receive serialization shrinks from #GPUs-1 to"
              " #nodes-1 messages;\nleaders absorb the rest in parallel.\n");
  return 0;
}
