// Figure 7: breakdown with delegate-top-k-enabled filtering (Rule 2). The
// second top-k's input shrinks to the elements >= kappa; the paper reduces
// its time from 28.7ms to 6.1ms at k=2^24.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 7",
                     "Dr. Top-k breakdown — + delegate filtering", args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  core::DrTopkConfig cfg;
  cfg.beta = 1;
  cfg.filtering = true;  // Rule 2 on
  cfg.construct.optimized = false;
  bench::print_breakdown(dev, vs, cfg, args.k_sweep());
  std::printf("\nPaper: second top-k drops hard vs Figure 6 (28.7ms -> 6.1ms"
              " at k=2^24), concat still pays atomics.\n");
  return 0;
}
