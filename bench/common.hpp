// Shared harness for the per-figure/table benchmark binaries.
//
// Every binary reproduces one table or figure of the paper: same series,
// same parameter sweeps, scaled sizes (the simulator runs ~10-20x slower
// than native CUDA, so defaults use |V| = 2^22 instead of 2^30; pass
// --logn=N to change, --full for denser sweeps). Times printed are
// *simulated V100S milliseconds* from the roofline cost model — shapes are
// comparable to the paper, absolute values are a model (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dr_topk.hpp"
#include "data/datasets.hpp"
#include "data/distributions.hpp"
#include "topk/topk.hpp"

namespace drtopk::bench {

struct Args {
  u64 logn = 22;       ///< log2 |V| (paper: 30)
  bool logn_set = false;  ///< true when --logn was given explicitly
  u64 seed = 42;
  bool full = false;   ///< denser sweeps (paper granularity)
  int kmin = 0;
  int kmax = -1;       ///< default: logn - 6
  int kstep = 4;       ///< log-step between k values (1 when --full)

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const size_t len = std::strlen(prefix);
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = val("--logn=")) {
        a.logn = std::strtoull(v, nullptr, 10);
        a.logn_set = true;
      }
      else if (const char* v2 = val("--seed=")) a.seed = std::strtoull(v2, nullptr, 10);
      else if (arg == "--full") a.full = true;
      else if (const char* v3 = val("--kmin=")) a.kmin = std::atoi(v3);
      else if (const char* v4 = val("--kmax=")) a.kmax = std::atoi(v4);
      else if (const char* v5 = val("--kstep=")) a.kstep = std::atoi(v5);
      else if (arg == "--help" || arg == "-h") {
        std::printf("usage: [--logn=N] [--seed=S] [--full] [--kmin=A]"
                    " [--kmax=B] [--kstep=C]\n");
        std::exit(0);
      }
    }
    if (a.full) a.kstep = 1;
    return a;
  }

  /// Applies a bench-specific default size (ignored if --logn was given),
  /// then finalizes the k sweep bounds.
  void default_logn(u64 logn_default) {
    if (!logn_set) logn = logn_default;
    if (kmax < 0) kmax = static_cast<int>(logn) - 6;
  }

  u64 n() const { return u64{1} << logn; }

  /// k = 2^kmin, 2^(kmin+kstep), ..., 2^kmax (capped at n/4 so delegation
  /// stays feasible, as in the paper's sweeps).
  std::vector<u64> k_sweep() const {
    std::vector<u64> ks;
    for (int e = kmin; e <= kmax; e += kstep) {
      const u64 k = u64{1} << e;
      if (k * 4 <= n()) ks.push_back(k);
    }
    return ks;
  }
};

inline void print_title(const char* id, const char* what, const Args& a) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("|V| = 2^%llu, seed = %llu, times = simulated V100S ms\n",
              static_cast<unsigned long long>(a.logn),
              static_cast<unsigned long long>(a.seed));
  std::printf("==============================================================\n");
}

/// Stage-breakdown table shared by the Figure 6/7/10/15 binaries.
inline void print_breakdown(vgpu::Device& dev, std::span<const u32> v,
                            const core::DrTopkConfig& base,
                            const std::vector<u64>& ks) {
  std::printf("%-10s %5s %10s %10s %10s %10s %10s %12s %12s\n", "k", "alpha",
              "construct", "first", "concat", "second", "total", "|D|",
              "|concat|");
  for (u64 k : ks) {
    core::StageBreakdown bd;
    auto r = core::dr_topk_keys<u32>(dev, v, k, base, &bd);
    (void)r;
    std::printf("2^%-8d %5d %10.3f %10.3f %10.3f %10.3f %10.3f %12llu %12llu\n",
                static_cast<int>(std::bit_width(k)) - 1, bd.alpha,
                bd.construct_ms, bd.first_ms, bd.concat_ms, bd.second_ms,
                bd.total_ms(),
                static_cast<unsigned long long>(bd.delegate_len),
                static_cast<unsigned long long>(bd.concat_len));
  }
}

/// Simulated time of a baseline engine (input copied internally where the
/// engine is destructive).
inline double baseline_ms(vgpu::Device& dev, std::span<const u32> v, u64 k,
                          topk::Algo algo) {
  return topk::run_topk_keys<u32>(dev, v, k, algo).sim_ms;
}

/// Dr. Top-k assisted variant of a baseline: the first/second top-k run the
/// baseline's algorithm family, as in Figures 17-19.
inline core::DrTopkConfig assisted_config(topk::Algo family) {
  core::DrTopkConfig cfg;
  switch (family) {
    case topk::Algo::kRadixGgksOop:
    case topk::Algo::kRadixGgksInplace:
    case topk::Algo::kRadixFlag:
      // "they prefer in-place designs" (Section 5.1): the optimized
      // flag-based in-place radix is Dr. Top-k's default.
      cfg.first_algo = topk::Algo::kRadixFlag;
      cfg.second_algo = topk::Algo::kRadixFlag;
      break;
    case topk::Algo::kBucketInplace:
    case topk::Algo::kBucketOop:
    case topk::Algo::kBucketGgksInplace:
      cfg.first_algo = topk::Algo::kBucketInplace;
      cfg.second_algo = topk::Algo::kBucketInplace;
      break;
    case topk::Algo::kBitonic:
      cfg.first_algo = topk::Algo::kRadixFlag;  // first top-k needs (key,sid)
      cfg.second_algo = topk::Algo::kBitonic;
      break;
    case topk::Algo::kSortAndChoose:
      cfg.second_algo = topk::Algo::kSortAndChoose;
      break;
  }
  return cfg;
}

}  // namespace drtopk::bench
