// Shared harness for the per-figure/table benchmark binaries.
//
// Every binary reproduces one table or figure of the paper: same series,
// same parameter sweeps, scaled sizes (the simulator runs ~10-20x slower
// than native CUDA, so defaults use |V| = 2^22 instead of 2^30; pass
// --logn=N to change, --full for denser sweeps). Times printed are
// *simulated V100S milliseconds* from the roofline cost model — shapes are
// comparable to the paper, absolute values are a model (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/dr_topk.hpp"
#include "data/datasets.hpp"
#include "data/distributions.hpp"
#include "topk/topk.hpp"

namespace drtopk::bench {

struct Args {
  u64 logn = 22;       ///< log2 |V| (paper: 30)
  bool logn_set = false;  ///< true when --logn was given explicitly
  u64 seed = 42;
  bool full = false;   ///< denser sweeps (paper granularity)
  int kmin = 0;
  int kmax = -1;       ///< default: logn - 6
  int kstep = 4;       ///< log-step between k values (1 when --full)
  std::string json;    ///< machine-readable report path ("" = bench default)

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const size_t len = std::strlen(prefix);
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = val("--logn=")) {
        a.logn = std::strtoull(v, nullptr, 10);
        a.logn_set = true;
      }
      else if (const char* v2 = val("--seed=")) a.seed = std::strtoull(v2, nullptr, 10);
      else if (arg == "--full") a.full = true;
      else if (const char* v3 = val("--kmin=")) a.kmin = std::atoi(v3);
      else if (const char* v4 = val("--kmax=")) a.kmax = std::atoi(v4);
      else if (const char* v5 = val("--kstep=")) a.kstep = std::atoi(v5);
      else if (const char* v6 = val("--json=")) a.json = v6;
      else if (arg == "--help" || arg == "-h") {
        std::printf("usage: [--logn=N] [--seed=S] [--full] [--kmin=A]"
                    " [--kmax=B] [--kstep=C] [--json=PATH]\n");
        std::exit(0);
      }
    }
    if (a.full) a.kstep = 1;
    return a;
  }

  /// Applies a bench-specific default size (ignored if --logn was given),
  /// then finalizes the k sweep bounds.
  void default_logn(u64 logn_default) {
    if (!logn_set) logn = logn_default;
    if (kmax < 0) kmax = static_cast<int>(logn) - 6;
  }

  u64 n() const { return u64{1} << logn; }

  /// k = 2^kmin, 2^(kmin+kstep), ..., 2^kmax (capped at n/4 so delegation
  /// stays feasible, as in the paper's sweeps).
  std::vector<u64> k_sweep() const {
    std::vector<u64> ks;
    for (int e = kmin; e <= kmax; e += kstep) {
      const u64 k = u64{1} << e;
      if (k * 4 <= n()) ks.push_back(k);
    }
    return ks;
  }
};

// ---------------------------------------------------------------------------
// Machine-readable reports: a minimal JSON value builder plus a section
// writer, so the perf trajectory is tracked in a file (BENCH_PR2.json)
// instead of scrollback. Several benches share one report file — each owns
// a top-level section and write_json_section() read-modify-writes only its
// own, preserving what the other binaries recorded.
// ---------------------------------------------------------------------------

class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  Json& set(const std::string& key, Json v) {
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  Json& set(const std::string& key, double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return set(key, std::move(j));
  }
  Json& set(const std::string& key, u64 v) {
    Json j(Kind::kInteger);
    j.int_ = v;
    return set(key, std::move(j));
  }
  Json& set(const std::string& key, i64 v) {
    Json j(Kind::kSigned);
    j.sint_ = v;
    return set(key, std::move(j));
  }
  Json& set(const std::string& key, int v) {
    return set(key, static_cast<i64>(v));
  }
  Json& set(const std::string& key, bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return set(key, std::move(j));
  }
  Json& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Json& set(const std::string& key, const std::string& v) {
    Json j(Kind::kString);
    j.str_ = v;
    return set(key, std::move(j));
  }
  Json& push(Json v) {
    items_.push_back(std::move(v));
    return *this;
  }

  static std::string escape_string(const std::string& s) { return escape(s); }

  std::string dump(int level = 0) const {
    std::ostringstream os;
    const std::string pad(2 * static_cast<size_t>(level), ' ');
    const std::string inner(2 * static_cast<size_t>(level + 1), ' ');
    switch (kind_) {
      case Kind::kObject: {
        if (members_.empty()) return "{}";
        os << "{\n";
        for (size_t i = 0; i < members_.size(); ++i) {
          os << inner << '"' << escape(members_[i].first)
             << "\": " << members_[i].second.dump(level + 1);
          if (i + 1 < members_.size()) os << ',';
          os << '\n';
        }
        os << pad << '}';
        break;
      }
      case Kind::kArray: {
        if (items_.empty()) return "[]";
        os << "[\n";
        for (size_t i = 0; i < items_.size(); ++i) {
          os << inner << items_[i].dump(level + 1);
          if (i + 1 < items_.size()) os << ',';
          os << '\n';
        }
        os << pad << ']';
        break;
      }
      case Kind::kNumber: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
        os << buf;
        break;
      }
      case Kind::kInteger:
        os << int_;
        break;
      case Kind::kSigned:
        os << sint_;
        break;
      case Kind::kString:
        os << '"' << escape(str_) << '"';
        break;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        break;
    }
    return os.str();
  }

 private:
  enum class Kind { kObject, kArray, kNumber, kInteger, kSigned, kString,
                    kBool };
  explicit Json(Kind k) : kind_(k) {}

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  Kind kind_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
  double num_ = 0.0;
  u64 int_ = 0;
  i64 sint_ = 0;
  std::string str_;
  bool bool_ = false;
};

/// Splits the top level of a JSON object file into (key, raw-body) pairs.
/// Tolerant scanner: bracket/brace matching that respects strings; a file
/// that does not parse yields an empty list (the writer starts fresh).
inline std::vector<std::pair<std::string, std::string>> json_top_sections(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t i = text.find('{');
  if (i == std::string::npos) return out;
  ++i;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
            text[i] == '\r' || text[i] == ','))
      ++i;
  };
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') return out;
    if (text[i] != '"') return {};
    ++i;
    // Keys are captured RAW (escapes preserved verbatim) so the rewrite
    // emits them unchanged; lookups by plain ASCII section names are
    // unaffected.
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key.push_back(text[i++]);
      key.push_back(text[i++]);
    }
    if (i >= text.size()) return {};
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return {};
    ++i;
    skip_ws();
    // Capture the value by depth matching.
    const size_t start = i;
    int depth = 0;
    bool in_str = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_str) {
        if (c == '\\') ++i;
        else if (c == '"') in_str = false;
        continue;
      }
      if (c == '"') in_str = true;
      else if (c == '{' || c == '[') ++depth;
      else if (c == '}' || c == ']') {
        if (depth == 0) break;  // object's closing brace
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    out.emplace_back(key, text.substr(start, i - start));
  }
}

/// Read-modify-writes one top-level section of a shared JSON report file.
inline void write_json_section(const std::string& path,
                               const std::string& section,
                               const Json& value) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  auto sections = json_top_sections(existing);
  const std::string body = value.dump(1);
  bool replaced = false;
  for (auto& [key, raw] : sections) {
    if (key == section) {
      raw = body;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(Json::escape_string(section), body);

  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second;
    if (i + 1 < sections.size()) out << ',';
    out << '\n';
  }
  out << "}\n";
  std::printf("[json] wrote section \"%s\" to %s\n", section.c_str(),
              path.c_str());
}

/// Per-stage kernel-launch breakdown of a measured serving run, as a JSON
/// object: raw launch counts plus launches/query per stage, so an lpq
/// regression in a report is attributable to the stage that caused it
/// (ROADMAP item 1) instead of hiding in one aggregate number.
inline Json launch_breakdown(u64 queries, u64 construct, u64 first,
                             u64 concat, u64 second, u64 finalize) {
  const auto per_query = [&](u64 c) {
    return queries ? static_cast<double>(c) / static_cast<double>(queries)
                   : 0.0;
  };
  Json o = Json::object();
  o.set("queries", queries);
  o.set("construct_launches", construct);
  o.set("first_launches", first);
  o.set("concat_launches", concat);
  o.set("second_launches", second);
  o.set("finalize_launches", finalize);
  o.set("construct_lpq", per_query(construct));
  o.set("first_lpq", per_query(first));
  o.set("concat_lpq", per_query(concat));
  o.set("second_lpq", per_query(second));
  return o;
}

inline void print_title(const char* id, const char* what, const Args& a) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("|V| = 2^%llu, seed = %llu, times = simulated V100S ms\n",
              static_cast<unsigned long long>(a.logn),
              static_cast<unsigned long long>(a.seed));
  std::printf("==============================================================\n");
}

/// Stage-breakdown table shared by the Figure 6/7/10/15 binaries. The
/// optional per-row hook receives each k's breakdown and result, letting a
/// bench collect machine-readable rows from the same sweep it prints.
inline void print_breakdown(
    vgpu::Device& dev, std::span<const u32> v,
    const core::DrTopkConfig& base, const std::vector<u64>& ks,
    const std::function<void(u64, const core::StageBreakdown&,
                             const topk::TopkResult<u32>&)>& per_row = {}) {
  std::printf("%-10s %5s %10s %10s %10s %10s %10s %12s %12s\n", "k", "alpha",
              "construct", "first", "concat", "second", "total", "|D|",
              "|concat|");
  for (u64 k : ks) {
    core::StageBreakdown bd;
    auto r = core::dr_topk_keys<u32>(dev, v, k, base, &bd);
    std::printf("2^%-8d %5d %10.3f %10.3f %10.3f %10.3f %10.3f %12llu %12llu\n",
                static_cast<int>(std::bit_width(k)) - 1, bd.alpha,
                bd.construct_ms, bd.first_ms, bd.concat_ms, bd.second_ms,
                bd.total_ms(),
                static_cast<unsigned long long>(bd.delegate_len),
                static_cast<unsigned long long>(bd.concat_len));
    if (per_row) per_row(k, bd, r);
  }
}

/// Simulated time of a baseline engine (input copied internally where the
/// engine is destructive).
inline double baseline_ms(vgpu::Device& dev, std::span<const u32> v, u64 k,
                          topk::Algo algo) {
  return topk::run_topk_keys<u32>(dev, v, k, algo).sim_ms;
}

/// Dr. Top-k assisted variant of a baseline: the first/second top-k run the
/// baseline's algorithm family, as in Figures 17-19.
inline core::DrTopkConfig assisted_config(topk::Algo family) {
  core::DrTopkConfig cfg;
  switch (family) {
    case topk::Algo::kRadixGgksOop:
    case topk::Algo::kRadixGgksInplace:
    case topk::Algo::kRadixFlag:
      // "they prefer in-place designs" (Section 5.1): the optimized
      // flag-based in-place radix is Dr. Top-k's default.
      cfg.first_algo = topk::Algo::kRadixFlag;
      cfg.second_algo = topk::Algo::kRadixFlag;
      break;
    case topk::Algo::kBucketInplace:
    case topk::Algo::kBucketOop:
    case topk::Algo::kBucketGgksInplace:
      cfg.first_algo = topk::Algo::kBucketInplace;
      cfg.second_algo = topk::Algo::kBucketInplace;
      break;
    case topk::Algo::kBitonic:
      cfg.first_algo = topk::Algo::kRadixFlag;  // first top-k needs (key,sid)
      cfg.second_algo = topk::Algo::kBitonic;
      break;
    case topk::Algo::kSortAndChoose:
      cfg.second_algo = topk::Algo::kSortAndChoose;
      break;
  }
  return cfg;
}

}  // namespace drtopk::bench
