// Ablation: shared-memory padding in the optimized delegate-construction
// kernel (Section 5.3: "We use padding to avoid shared memory bank
// conflict"). Reports bank-conflict replays and construction time with the
// padded (pitch 33) vs unpadded (pitch 32) layout.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Ablation", "shared-memory padding in construction",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-6s %-6s %16s %16s %12s %12s\n", "alpha", "beta",
              "conflicts(pad)", "conflicts(none)", "ms(pad)", "ms(none)");
  vgpu::Workspace ws;
  for (int alpha : {2, 3, 4, 5}) {
    for (u32 beta : {1u, 2u}) {
      vgpu::Workspace::Scope scope(ws);  // delegate arrays rewound per config
      core::ConstructOpts padded, bare;
      bare.shared_padding = false;
      topk::Accum a(dev), b(dev);
      (void)core::build_delegate_vector<u32>(a, vs, alpha, beta, padded, ws);
      (void)core::build_delegate_vector<u32>(b, vs, alpha, beta, bare, ws);
      std::printf("%-6d %-6u %16llu %16llu %12.3f %12.3f\n", alpha, beta,
                  static_cast<unsigned long long>(
                      a.stats().shared_bank_conflicts),
                  static_cast<unsigned long long>(
                      b.stats().shared_bank_conflicts),
                  a.sim_ms(), b.sim_ms());
    }
  }
  std::printf("\nPadding removes the gather-side replays entirely; the"
              " scatter side keeps a small residue (documented in"
              " DESIGN.md).\n");
  return 0;
}
