// Figure 18: speedup of Dr. Top-k assisted radix / bucket / bitonic top-k
// over the corresponding standalone baselines, across k, on UD / ND / CD.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Figure 18",
                     "Dr. Top-k speedup over baselines (synthetic)", args);
  vgpu::Device dev;

  const std::vector<std::pair<const char*, topk::Algo>> families = {
      {"radix", topk::Algo::kRadixGgksOop},
      {"bucket", topk::Algo::kBucketOop},
      {"bitonic", topk::Algo::kBitonic}};
  const std::vector<data::Distribution> dists = {
      data::Distribution::kUniform, data::Distribution::kNormal,
      data::Distribution::kCustomized};

  for (auto dist : dists) {
    auto v = data::generate(args.n(), dist, args.seed);
    std::span<const u32> vs(v.data(), v.size());
    std::printf("\n-- %s --\n%-10s", data::to_string(dist).c_str(), "k");
    for (auto& [name, _] : families) std::printf(" %14s", name);
    std::printf("\n");
    for (u64 k : args.k_sweep()) {
      std::printf("2^%-8d", static_cast<int>(std::bit_width(k)) - 1);
      for (auto& [name, algo] : families) {
        const double base = bench::baseline_ms(dev, vs, k, algo);
        auto cfg = bench::assisted_config(algo);
        core::StageBreakdown bd;
        (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &bd);
        std::printf(" %13.2fx", base / bd.total_ms());
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper: radix 1.7-6.6x (UD) / 1.7-10x (ND) / 1.1-10.1x (CD);"
              "\nbucket up to 118.6x on CD; bitonic up to 473x at k=2^24."
              "\nSpeedups shrink as k grows (Section 6.1).\n");
  return 0;
}
