// Figure 9: performance vs beta, normalized to beta=1.
//  (a) vary k at fixed |V|; (b) vary |V| at fixed k.
// The paper finds beta=2 the sweet spot (up to 1.41x at k=2^24).
#include "common.hpp"

using namespace drtopk;

namespace {

double total_ms(vgpu::Device& dev, std::span<const u32> v, u64 k, u32 beta) {
  core::DrTopkConfig cfg;
  cfg.beta = beta;
  core::StageBreakdown bd;
  (void)core::dr_topk_keys<u32>(dev, v, k, cfg, &bd);
  return bd.total_ms();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(23);
  bench::print_title("Figure 9", "beta sweep (normalized to beta=1)", args);
  vgpu::Device dev;

  std::printf("(a) fixed |V| = 2^%llu, varying k\n",
              static_cast<unsigned long long>(args.logn));
  std::printf("%-10s %8s %8s %8s %8s\n", "k", "beta=1", "beta=2", "beta=3",
              "beta=4");
  {
    auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : args.k_sweep()) {
      if (k < 16) continue;  // beta effects matter for larger k
      const double t1 = total_ms(dev, vs, k, 1);
      std::printf("2^%-8d %8.3f", static_cast<int>(std::bit_width(k)) - 1,
                  1.0);
      for (u32 b = 2; b <= 4; ++b)
        std::printf(" %8.3f", t1 / total_ms(dev, vs, k, b));
      std::printf("\n");
    }
  }

  std::printf("\n(b) fixed k = 2^%d, varying |V|\n",
              static_cast<int>(args.logn) - 5);
  std::printf("%-10s %8s %8s %8s %8s\n", "|V|", "beta=1", "beta=2", "beta=3",
              "beta=4");
  const u64 k = u64{1} << (args.logn - 5);
  for (u64 logn = args.logn - 3; logn <= args.logn; ++logn) {
    auto v = data::generate(u64{1} << logn, data::Distribution::kUniform,
                            args.seed);
    std::span<const u32> vs(v.data(), v.size());
    const u64 kk = std::min(k, vs.size() / 8);
    const double t1 = total_ms(dev, vs, kk, 1);
    std::printf("2^%-8d %8.3f", static_cast<int>(logn), 1.0);
    for (u32 b = 2; b <= 4; ++b)
      std::printf(" %8.3f", t1 / total_ms(dev, vs, kk, b));
    std::printf("\n");
  }
  std::printf("\nPaper: beta=2 best overall (1.41x at k=2^24); beta=3"
              " slightly ahead only for small |V|.\n");
  return 0;
}
