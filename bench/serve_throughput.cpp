// Serving throughput: the batched TopkServer (admission groups sharing one
// delegate-construction pass, plan cache warm, zero-allocation workspaces)
// against (a) a sequential loop of single-query dr_topk calls and (b) the
// PR-1 baseline server configuration — three-pass stage 3, multi-pass radix
// for the small stages — so the perf trajectory of the hot-path work is
// measured, not assumed.
//
// Throughput is in simulated-GPU terms: the sequential loop's aggregate is
// Q / sum(per-query sim time); a server's is Q / makespan, where makespan
// is the largest per-executor sum of simulated work (executors overlap).
// Per-shape results (QPS, per-stage sim ms, stage-3 atomics, workspace
// growth counters) land in the BENCH_PR2.json section "serve_throughput".
#include "common.hpp"
#include "obs/export.hpp"
#include "serve/server.hpp"

using namespace drtopk;

namespace {

struct Shape {
  std::string name;
  std::vector<serve::Query> queries;
};

double sequential_sim_ms(vgpu::Device& dev, const std::vector<serve::Query>& qs) {
  double total = 0;
  for (const auto& q : qs) {
    core::DrTopkConfig cfg;
    cfg.selection_only = q.selection_only;
    if (q.width() == serve::KeyWidth::k64) {
      total += core::dr_topk<u64>(dev, q.data64(), q.k, q.criterion, cfg).sim_ms;
    } else {
      total += core::dr_topk<u32>(dev, q.data32(), q.k, q.criterion, cfg).sim_ms;
    }
  }
  return total;
}

struct ServerRun {
  double sim_ms = 0;        ///< balanced-fleet work of the measured rounds
  double makespan_ms = 0;   ///< raw makespan delta (scheduling-dependent)
  double qps = 0;
  u64 served = 0;
  u64 stage3_atomics = 0;   ///< concat-stage atomics over the measured rounds
  double concat_ms = 0;
  double p50 = 0, p99 = 0;  ///< lifetime percentiles (warm rounds included)
  double hit_pct = 0, fused_pct = 0;
  u64 ws_growths_steady = 0;  ///< arena growths during the measured rounds
  u64 ws_high_water = 0;
  u64 launches = 0;         ///< device kernel launches, measured rounds only
  double launches_per_query = 0;
  u64 finalize_launches = 0;  ///< batched second-top-k launches
  // Per-stage launch attribution (ROADMAP item 1): the aggregate launch
  // counter above, split by pipeline stage so a regression names its stage.
  u64 construct_launches = 0;
  u64 first_launches = 0;
  u64 concat_launches = 0;   ///< stage-3 classify/concat (ServerStats field)
  u64 second_launches = 0;
  u64 relax_guard_trips = 0;
  u64 relax_guard_skips = 0;  ///< guard trips a recall target waved off
  u64 approx_queries = 0;     ///< queries run under a recall target
  u64 deduped = 0;            ///< queries served from a shared phase A
  u64 dedup_classes = 0;      ///< query classes that shared
  u64 window_flushes = 0;     ///< cross-group staging flushes
  u64 window_merged_groups = 0;  ///< groups that shared a flush
};

/// Warm (calibration + arena growth across every executor) then measure
/// `rounds` batches on a caller-owned server — callers that need the
/// server afterwards (trace/metrics dumps) use this directly.
ServerRun measure_server(serve::TopkServer& server, vgpu::Device& dev,
                         const std::vector<serve::Query>& qs, int rounds) {
  const serve::ServerConfig& cfg = server.config();
  // Warm until arena growth converges: plans calibrate on the first
  // rounds, but how many pooled group arenas exist (and how large each
  // got) depends on scheduling concurrency, so a fixed warm count can
  // leave a fresh arena to be grown mid-measurement. Bounded loop, same
  // convergence discipline as the multi-executor regression test.
  (void)server.run_batch(qs);
  (void)server.run_batch(qs);
  for (int w = 0, calm = 0; w < 12 && calm < 2; ++w) {
    const u64 before = server.workspace_growths();
    (void)server.run_batch(qs);
    calm = server.workspace_growths() == before ? calm + 1 : 0;
  }
  const auto warm = server.stats();
  const u64 warm_growths = server.workspace_growths();
  const u64 warm_launches = dev.total_stats().kernels_launched;
  for (int r = 0; r < rounds; ++r) (void)server.run_batch(qs);
  const auto after = server.stats();

  ServerRun out;
  out.served = after.completed - warm.completed;
  // Throughput uses the balanced-fleet aggregate — summed simulated query
  // work divided by the executor count — because per-query simulated costs
  // are deterministic while the raw makespan depends on which executor the
  // scheduler happened to hand each query. This keeps the tracked numbers
  // (and gain_vs_pr1 in particular) reproducible run to run; the raw
  // makespan delta is reported alongside for reference.
  out.sim_ms = (after.total_sim_ms - warm.total_sim_ms) /
               static_cast<double>(cfg.executors);
  out.makespan_ms = after.makespan_sim_ms - warm.makespan_sim_ms;
  out.qps = static_cast<double>(out.served) * 1e3 / out.sim_ms;
  out.stage3_atomics =
      after.stages.concat_stats.atomic_ops - warm.stages.concat_stats.atomic_ops;
  out.concat_ms = after.stages.concat_ms - warm.stages.concat_ms;
  out.p50 = after.p50_sim_ms;
  out.p99 = after.p99_sim_ms;
  out.fused_pct = 100.0 *
                  static_cast<double>(after.fused_queries - warm.fused_queries) /
                  static_cast<double>(out.served);
  out.hit_pct =
      100.0 * static_cast<double>(after.plan_hits - warm.plan_hits) /
      static_cast<double>(std::max<u64>(
          1, (after.plan_hits + after.plan_misses) -
                 (warm.plan_hits + warm.plan_misses)));
  out.ws_growths_steady = server.workspace_growths() - warm_growths;
  out.ws_high_water = server.workspace_high_water();
  out.launches = dev.total_stats().kernels_launched - warm_launches;
  out.launches_per_query =
      static_cast<double>(out.launches) / static_cast<double>(out.served);
  out.finalize_launches = after.finalize_launches - warm.finalize_launches;
  out.construct_launches = after.stages.construct_stats.kernels_launched -
                           warm.stages.construct_stats.kernels_launched;
  out.first_launches = after.stages.first_stats.kernels_launched -
                       warm.stages.first_stats.kernels_launched;
  out.concat_launches = after.concat_launches - warm.concat_launches;
  out.second_launches = after.stages.second_stats.kernels_launched -
                        warm.stages.second_stats.kernels_launched;
  out.relax_guard_trips = after.relax_guard_trips - warm.relax_guard_trips;
  out.relax_guard_skips = after.relax_guard_skips - warm.relax_guard_skips;
  out.approx_queries = after.approx_queries - warm.approx_queries;
  out.deduped = after.deduped_queries - warm.deduped_queries;
  out.dedup_classes = after.dedup_classes - warm.dedup_classes;
  out.window_flushes = after.window_flushes - warm.window_flushes;
  out.window_merged_groups =
      after.window_merged_groups - warm.window_merged_groups;
  return out;
}

/// Convenience wrapper: construct, warm, measure, discard the server.
ServerRun run_server(vgpu::Device& dev, const serve::ServerConfig& cfg,
                     const std::vector<serve::Query>& qs, int rounds) {
  serve::TopkServer server(dev, cfg);
  return measure_server(server, dev, qs, rounds);
}

/// Exactness cross-check: the batched and per-query servers must answer a
/// shared workload bit-identically.
bool check_parity(vgpu::Device& dev, serve::ServerConfig cfg,
                  const std::vector<serve::Query>& qs) {
  cfg.batched_select = true;
  serve::TopkServer batched(dev, cfg);
  auto br = batched.run_batch(qs);
  cfg.batched_select = false;
  cfg.dedup = false;
  cfg.finalize_window_us = 0;
  serve::TopkServer per(dev, cfg);
  auto pr = per.run_batch(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    if (br[i].values != pr[i].values || br[i].kth != pr[i].kth) return false;
  }
  return true;
}

/// Measured recall against the exact oracle: multiset intersection over
/// the two top-k lists divided by k (duplicate winners must each be
/// matched — an equal value elsewhere legitimately covers a miss).
double recall_of(std::vector<u64> got, std::vector<u64> oracle) {
  std::sort(got.begin(), got.end());
  std::sort(oracle.begin(), oracle.end());
  std::vector<u64> inter;
  std::set_intersection(got.begin(), got.end(), oracle.begin(), oracle.end(),
                        std::back_inserter(inter));
  return oracle.empty() ? 1.0
                        : static_cast<double>(inter.size()) /
                              static_cast<double>(oracle.size());
}

/// Parses a comma-separated numeric list flag value; returns false (and
/// reports) on malformed input — the CI gates key off specific sweep points
/// being present, so silent reinterpretation is not an option.
template <class F>
bool parse_list(const char* p, const char* flag, F&& push) {
  while (*p) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || (*end != ',' && *end != '\0') || v < 0) {
      std::fprintf(stderr, "invalid %s value near \"%s\"\n", flag, p);
      return false;
    }
    push(v);
    p = *end == ',' ? end + 1 : end;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Bench-specific flags (parsed before the shared Args so --help shows
  // them too): --group-size=a,b,c selects the admission-group sizes of the
  // batched sweep (PR 3); --json3= redirects its report. Malformed group
  // sizes are an error, not a silent reinterpretation — the CI gate keys
  // off specific sizes being present.
  std::vector<u64> group_sizes = {1, 4, 16, 64};
  std::string json3 = "BENCH_PR3.json";
  std::string json5 = "BENCH_PR5.json";
  std::string json6 = "BENCH_PR6.json";
  std::string json8 = "BENCH_PR8.json";
  std::string json9 = "BENCH_PR9.json";
  std::string trace_path, prom_path;
  bool breakdown = false;
  std::vector<double> dup_rates = {0.0, 0.25, 0.5};
  std::vector<u64> window_list = {0, 20000};
  std::vector<double> recall_targets = {0.8, 0.9, 0.99};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("serve_throughput extras: [--group-size=A,B,...]"
                  " [--json3=PATH] [--json5=PATH] [--json6=PATH]"
                  " [--json8=PATH] [--json9=PATH] [--dup-rate=R,R,...]"
                  " [--finalize-window-us=W,W,...]"
                  " [--recall-target=R,R,...]"
                  " [--trace=PATH] [--prom=PATH] [--breakdown]\n");
    } else if (arg.rfind("--json9=", 0) == 0) {
      json9 = arg.substr(8);
    } else if (arg.rfind("--recall-target=", 0) == 0) {
      recall_targets.clear();
      bool in_range = true;
      if (!parse_list(arg.c_str() + 16, "--recall-target", [&](double v) {
            in_range = in_range && v >= 0.5 && v < 1.0;
            recall_targets.push_back(v);
          }))
        return 2;
      if (recall_targets.empty() || !in_range) {
        std::fprintf(stderr, "--recall-target wants one or more targets in"
                             " [0.5, 1)\n");
        return 2;
      }
    } else if (arg.rfind("--json8=", 0) == 0) {
      json8 = arg.substr(8);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--prom=", 0) == 0) {
      prom_path = arg.substr(7);
    } else if (arg == "--breakdown") {
      breakdown = true;
    } else if (arg.rfind("--json6=", 0) == 0) {
      json6 = arg.substr(8);
    } else if (arg.rfind("--dup-rate=", 0) == 0) {
      dup_rates.clear();
      bool in_range = true;
      if (!parse_list(arg.c_str() + 11, "--dup-rate", [&](double v) {
            in_range = in_range && v <= 1.0;
            dup_rates.push_back(v);
          }))
        return 2;
      if (dup_rates.empty() || !in_range) {
        std::fprintf(stderr, "--dup-rate wants one or more rates in"
                             " [0, 1]\n");
        return 2;
      }
    } else if (arg.rfind("--finalize-window-us=", 0) == 0) {
      window_list.clear();
      if (!parse_list(arg.c_str() + 21, "--finalize-window-us", [&](double v) {
            window_list.push_back(static_cast<u64>(v));
          }))
        return 2;
      if (window_list.empty()) {
        std::fprintf(stderr, "--finalize-window-us needs at least one"
                             " window\n");
        return 2;
      }
    } else if (arg.rfind("--json5=", 0) == 0) {
      json5 = arg.substr(8);
    } else if (arg.rfind("--group-size=", 0) == 0) {
      group_sizes.clear();
      const char* p = arg.c_str() + 13;
      while (*p) {
        char* end = nullptr;
        const u64 g = std::strtoull(p, &end, 10);
        if (end == p || (*end != ',' && *end != '\0') || g == 0 ||
            g > 4096) {
          std::fprintf(stderr,
                       "invalid --group-size value in \"%s\" (want a "
                       "comma-separated list of 1..4096)\n", arg.c_str());
          return 2;
        }
        group_sizes.push_back(g);
        p = *end == ',' ? end + 1 : end;
      }
      if (group_sizes.empty()) {
        std::fprintf(stderr, "--group-size needs at least one size\n");
        return 2;
      }
    } else if (arg.rfind("--json3=", 0) == 0) {
      json3 = arg.substr(8);
    }
  }
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(20);
  if (args.json.empty()) args.json = "BENCH_PR2.json";
  bench::print_title("Serving",
                     "batched TopkServer vs sequential loop vs PR-1 baseline",
                     args);
  const u64 n = args.n();
  const u64 queries_per_shape = args.full ? 256 : 64;
  const int rounds = args.full ? 4 : 2;

  // Corpora held alive for the whole run (queries view them).
  auto doc = data::generate(n, data::Distribution::kUniform, args.seed);
  auto knn = data::generate(n, data::Distribution::kNormal, args.seed + 1);
  auto ads = data::generate(n / 2, data::Distribution::kUniform, args.seed + 2);
  std::vector<vgpu::device_vector<u32>> tenants;
  for (u64 t = 0; t < 4; ++t)
    tenants.push_back(
        data::generate(n / 4, data::Distribution::kCustomized, args.seed + 3 + t));
  const auto span_of = [](const vgpu::device_vector<u32>& v) {
    return std::span<const u32>(v.data(), v.size());
  };

  std::vector<Shape> shapes;
  {
    // Document retrieval: one corpus, identical large-k queries.
    Shape s{"doc-retrieval", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(doc), u64{1} << 10));
    shapes.push_back(std::move(s));
  }
  {
    // k-NN serving: smallest-criterion queries (distance-like), small k.
    Shape s{"knn-serving", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(knn), 128,
                                             data::Criterion::kSmallest));
    shapes.push_back(std::move(s));
  }
  {
    // Ad selection: selection-only (k-th threshold) queries, mixed k.
    Shape s{"ad-selection", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(ads),
                                             u64{8} << (i % 6),
                                             data::Criterion::kLargest,
                                             /*selection_only=*/true));
    shapes.push_back(std::move(s));
  }
  {
    // Multi-tenant: four corpora interleaved (groups form per corpus).
    Shape s{"multi-tenant", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(tenants[i % 4]), 256));
    shapes.push_back(std::move(s));
  }

  std::printf("%-14s %5s | %10s %10s %8s | %10s %8s | %9s %8s | %6s\n",
              "workload", "Q", "seq QPS", "srv QPS", "vs seq", "PR1 QPS",
              "vs PR1", "atomics", "at.red.", "grow");

  bench::Json rows = bench::Json::array();
  double worst_gain = 1e9, best_gain = 0, worst_at = 1e9;
  u64 steady_growths = 0;
  for (auto& shape : shapes) {
    vgpu::Device dev(vgpu::GpuProfile::v100s());
    const double seq_ms = sequential_sim_ms(dev, shape.queries);
    const double seq_qps =
        static_cast<double>(shape.queries.size()) * 1e3 / seq_ms;

    serve::ServerConfig cfg;
    cfg.executors = 4;
    cfg.batch_max = 16;
    const ServerRun now = run_server(dev, cfg, shape.queries, rounds);

    serve::ServerConfig pr1_cfg = cfg;  // the PR-1 hot path, measurable
    pr1_cfg.base.fused_concat = false;
    pr1_cfg.base.small_input_shared = false;
    pr1_cfg.batched_select = false;
    vgpu::Device pr1_dev(vgpu::GpuProfile::v100s());
    const ServerRun pr1 = run_server(pr1_dev, pr1_cfg, shape.queries, rounds);

    const double gain = now.qps / pr1.qps;
    const double at_red = static_cast<double>(pr1.stage3_atomics) /
                          static_cast<double>(std::max<u64>(1, now.stage3_atomics));
    worst_gain = std::min(worst_gain, gain);
    best_gain = std::max(best_gain, gain);
    worst_at = std::min(worst_at, at_red);
    steady_growths += now.ws_growths_steady;

    std::printf("%-14s %5llu | %10.1f %10.1f %7.2fx | %10.1f %7.2fx |"
                " %9llu %7.1fx | %6llu\n",
                shape.name.c_str(),
                static_cast<unsigned long long>(shape.queries.size()),
                seq_qps, now.qps, now.qps / seq_qps, pr1.qps, gain,
                static_cast<unsigned long long>(now.stage3_atomics), at_red,
                static_cast<unsigned long long>(now.ws_growths_steady));

    bench::Json row = bench::Json::object();
    row.set("workload", shape.name)
        .set("queries", static_cast<u64>(shape.queries.size() * rounds))
        .set("seq_sim_ms", seq_ms)
        .set("seq_qps", seq_qps)
        .set("srv_sim_ms", now.sim_ms)
        .set("srv_makespan_ms", now.makespan_ms)
        .set("srv_qps", now.qps)
        .set("speedup_vs_seq", now.qps / seq_qps)
        .set("pr1_srv_sim_ms", pr1.sim_ms)
        .set("pr1_srv_qps", pr1.qps)
        .set("gain_vs_pr1", gain)
        .set("concat_ms", now.concat_ms)
        .set("pr1_concat_ms", pr1.concat_ms)
        .set("stage3_atomics", now.stage3_atomics)
        .set("pr1_stage3_atomics", pr1.stage3_atomics)
        .set("stage3_atomic_reduction", at_red)
        .set("lifetime_p50_sim_ms", now.p50)
        .set("lifetime_p99_sim_ms", now.p99)
        .set("plan_hit_pct", now.hit_pct)
        .set("fused_pct", now.fused_pct)
        .set("steady_ws_growths", now.ws_growths_steady)
        .set("ws_high_water_bytes", now.ws_high_water);
    rows.push(std::move(row));
  }

  bench::Json report = bench::Json::object();
  report.set("bench", "serve_throughput")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("queries_per_shape", queries_per_shape)
      .set("rounds", rounds)
      .set("executors", 4)
      .set("shapes", std::move(rows))
      .set("min_gain_vs_pr1", worst_gain)
      .set("max_gain_vs_pr1", best_gain)
      .set("min_stage3_atomic_reduction", worst_at)
      .set("steady_state_ws_growths_total", steady_growths);
  bench::write_json_section(args.json, "serve_throughput", report);

  std::printf("\nvs seq: construction amortized per admission group,"
              " executors overlap, plans replay.\nvs PR1: fused single-pass"
              " stage 3 + single-launch small-stage top-k + zero-allocation"
              "\nworkspaces against the previous three-pass, multi-launch"
              " hot path.\n");

  // ------------------------------------------------------------------
  // PR 3: batched second-stage selection vs the PR-2 per-query hot path,
  // swept over admission-group sizes. Tracked quantities: QPS gain and
  // kernel launches per query (the batched path collapses each group's
  // first/second top-k into one launch apiece).
  // ------------------------------------------------------------------
  std::printf("\n%-6s %5s | %9s %9s %7s | %8s %8s | %7s %6s\n",
              "group", "Q", "batch QPS", "perq QPS", "gain", "batch lpq",
              "perq lpq", "finlch", "parity");

  bench::Json brows = bench::Json::array();
  double gain_at_16 = 0, min_gain_ge_16 = 1e9;
  double lpq_at_16 = 0, lpq_at_64 = 0;
  bool have_16 = false, have_64 = false, have_ge_16 = false;
  bool parity_all = true;
  for (const u64 gsz : group_sizes) {
    // One corpus, mixed-k queries, group size == admission batch: the
    // steady-state serving shape the batched finalization targets.
    std::vector<serve::Query> qs;
    for (u64 i = 0; i < gsz; ++i)
      qs.push_back(serve::Query::view(span_of(doc), u64{256} << (i % 3)));

    serve::ServerConfig cfg;
    cfg.executors = 4;
    cfg.batch_max = static_cast<u32>(std::min<u64>(gsz, 256));
    cfg.max_in_flight = std::max<u32>(64, cfg.batch_max);
    // This sweep measures the PR-3 configuration (its committed
    // BENCH_PR3.json baseline gates CI): Phase-A dedup, cross-group
    // windows and the group-wide batched stage 3 stay off here — the PR-5
    // and PR-8 sweeps below own those axes.
    cfg.dedup = false;
    cfg.finalize_window_us = 0;
    cfg.batched_concat = false;
    const int grounds = std::max(2, static_cast<int>(32 / gsz));

    vgpu::Device bdev(vgpu::GpuProfile::v100s());
    const ServerRun batched = run_server(bdev, cfg, qs, grounds);

    serve::ServerConfig pq_cfg = cfg;
    pq_cfg.batched_select = false;
    vgpu::Device pdev(vgpu::GpuProfile::v100s());
    const ServerRun perq = run_server(pdev, pq_cfg, qs, grounds);

    vgpu::Device cdev(vgpu::GpuProfile::v100s());
    const bool parity = check_parity(cdev, cfg, qs);
    parity_all = parity_all && parity;

    const double gain = batched.qps / perq.qps;
    if (gsz == 16) {
      gain_at_16 = gain;
      lpq_at_16 = batched.launches_per_query;
      have_16 = true;
    }
    if (gsz == 64) {
      lpq_at_64 = batched.launches_per_query;
      have_64 = true;
    }
    if (gsz >= 16) {
      min_gain_ge_16 = std::min(min_gain_ge_16, gain);
      have_ge_16 = true;
    }

    std::printf("%-6llu %5llu | %9.1f %9.1f %6.2fx | %8.2f %8.2f | %7llu %6s\n",
                static_cast<unsigned long long>(gsz),
                static_cast<unsigned long long>(batched.served),
                batched.qps, perq.qps, gain, batched.launches_per_query,
                perq.launches_per_query,
                static_cast<unsigned long long>(batched.finalize_launches),
                parity ? "ok" : "FAIL");

    bench::Json row = bench::Json::object();
    row.set("group_size", gsz)
        .set("queries", batched.served)
        .set("batched_qps", batched.qps)
        .set("perquery_qps", perq.qps)
        .set("gain_vs_perquery", gain)
        .set("batched_launches_per_query", batched.launches_per_query)
        .set("perquery_launches_per_query", perq.launches_per_query)
        .set("batched_sim_ms", batched.sim_ms)
        .set("perquery_sim_ms", perq.sim_ms)
        .set("finalize_launches", batched.finalize_launches)
        .set("batched_p99_sim_ms", batched.p99)
        .set("perquery_p99_sim_ms", perq.p99)
        .set("steady_ws_growths", batched.ws_growths_steady)
        .set("parity", parity);
    brows.push(std::move(row));
  }

  // Headline fields are emitted ONLY when their group size was actually
  // swept — the CI regression gate treats their absence as a failure, so a
  // narrowed sweep can neither pass vacuously nor poison the committed
  // baseline with sentinel values.
  bench::Json breport = bench::Json::object();
  breport.set("bench", "serve_batched")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4);
  if (have_16) breport.set("gain_at_group_16", gain_at_16);
  if (have_ge_16) breport.set("min_gain_vs_perquery_ge_16", min_gain_ge_16);
  if (have_16) breport.set("batched_launches_per_query_at_16", lpq_at_16);
  if (have_64) breport.set("batched_launches_per_query_at_64", lpq_at_64);
  breport.set("parity", parity_all).set("rows", std::move(brows));
  bench::write_json_section(json3, "serve_batched", breport);

  std::printf("\nbatched: one first-top-k launch at setup + one second-top-k"
              " launch at finalization per\nadmission group (topk/batched.hpp)"
              " against the PR-2 per-query stage-2/stage-4 launches.\n");

  // ------------------------------------------------------------------
  // PR 5: Phase-A dedup + cross-group finalization windows, swept over the
  // duplicate-query rate and the window. Workload: 4 admission groups of
  // 16 per round on one corpus; a dup rate R makes ceil(16*R) of each
  // group's queries duplicates of earlier members. Tracked: launches per
  // query (dedup removes the duplicates' stage-3 launches; the window
  // collapses the 4 per-group finalize launches into one) and QPS vs the
  // PR-3 configuration on the SAME workload.
  // ------------------------------------------------------------------
  const u64 gsz5 = 16, groups5 = 4, q5 = gsz5 * groups5;
  std::printf("\n%-8s %9s | %9s %9s %7s | %8s %8s | %7s %7s | %6s\n",
              "dup", "window_us", "pr5 QPS", "pr3 QPS", "gain", "pr5 lpq",
              "pr3 lpq", "dedupq", "wflush", "parity");

  bench::Json wrows = bench::Json::array();
  double lpq_dup0_window = 0, lpq_dup25_window = 0, lpq_dup0_nowin = 0;
  bool have_dup0 = false, have_dup25 = false, have_dup0_nowin = false;
  bool parity5_all = true;
  for (const double dup : dup_rates) {
    // d distinct ks per group; queries cycle through them so a fraction
    // ~dup of each group's members duplicates an earlier one.
    const u64 d = std::max<u64>(
        1, gsz5 - static_cast<u64>(dup * static_cast<double>(gsz5)));
    std::vector<serve::Query> qs;
    for (u64 i = 0; i < q5; ++i)
      qs.push_back(serve::Query::view(span_of(doc), 32 * ((i % d) + 1)));

    // One parity run per dup rate, at the largest swept window: the full
    // PR-5 path (dedup + window) against the per-query baseline.
    serve::ServerConfig pcfg;
    pcfg.executors = 4;
    pcfg.batch_max = static_cast<u32>(gsz5);
    pcfg.max_in_flight = static_cast<u32>(q5);
    pcfg.finalize_window_us =
        static_cast<u32>(*std::max_element(window_list.begin(),
                                           window_list.end()));
    pcfg.finalize_max_segments = static_cast<u32>(groups5 * d);
    pcfg.batched_concat = false;
    vgpu::Device parity_dev(vgpu::GpuProfile::v100s());
    const bool parity = check_parity(parity_dev, pcfg, qs);
    parity5_all = parity5_all && parity;

    for (const u64 window : window_list) {
      serve::ServerConfig cfg;
      cfg.executors = 4;
      cfg.batch_max = static_cast<u32>(gsz5);
      cfg.max_in_flight = static_cast<u32>(q5);
      cfg.dedup = true;
      cfg.finalize_window_us = static_cast<u32>(window);
      // Early-flush cap = the round's expected leader segments (groups x
      // distinct ks): the flush fires the moment the last group parks
      // instead of waiting out the window, keeping the sweep fast and the
      // merge deterministic.
      cfg.finalize_max_segments = static_cast<u32>(groups5 * d);
      // PR-5 configuration: group-wide batched stage 3 stays off so the
      // dedup/window effect on per-query stage-3 launches stays visible
      // (batched stage 3 makes lpq dup-insensitive; the PR-8 sweep below
      // owns that axis) and the committed lpq_* baselines keep gating CI.
      cfg.batched_concat = false;
      vgpu::Device wdev(vgpu::GpuProfile::v100s());
      const ServerRun pr5 = run_server(wdev, cfg, qs, 2);

      serve::ServerConfig p3cfg = cfg;  // PR-3 configuration, same workload
      p3cfg.dedup = false;
      p3cfg.finalize_window_us = 0;
      vgpu::Device p3dev(vgpu::GpuProfile::v100s());
      const ServerRun pr3r = run_server(p3dev, p3cfg, qs, 2);

      const double gain = pr5.qps / pr3r.qps;
      if (window > 0 && dup == 0.0) {
        lpq_dup0_window = pr5.launches_per_query;
        have_dup0 = true;
      }
      if (window > 0 && dup >= 0.2499 && dup <= 0.2501) {
        lpq_dup25_window = pr5.launches_per_query;
        have_dup25 = true;
      }
      if (window == 0 && dup == 0.0) {
        lpq_dup0_nowin = pr5.launches_per_query;
        have_dup0_nowin = true;
      }

      std::printf("%-8.2f %9llu | %9.1f %9.1f %6.2fx | %8.2f %8.2f |"
                  " %7llu %7llu | %6s\n",
                  dup, static_cast<unsigned long long>(window), pr5.qps,
                  pr3r.qps, gain, pr5.launches_per_query,
                  pr3r.launches_per_query,
                  static_cast<unsigned long long>(pr5.deduped),
                  static_cast<unsigned long long>(pr5.window_flushes),
                  parity ? "ok" : "FAIL");

      bench::Json row = bench::Json::object();
      row.set("dup_rate", dup)
          .set("window_us", window)
          .set("distinct_ks", d)
          .set("queries", pr5.served)
          .set("pr5_qps", pr5.qps)
          .set("pr3_qps", pr3r.qps)
          .set("gain_vs_pr3", gain)
          .set("pr5_launches_per_query", pr5.launches_per_query)
          .set("pr3_launches_per_query", pr3r.launches_per_query)
          .set("deduped_queries", pr5.deduped)
          .set("dedup_classes", pr5.dedup_classes)
          .set("window_flushes", pr5.window_flushes)
          .set("window_merged_groups", pr5.window_merged_groups)
          .set("finalize_launches", pr5.finalize_launches)
          .set("steady_ws_growths", pr5.ws_growths_steady)
          .set("parity", parity);
      wrows.push(std::move(row));
    }
  }

  // Headline fields only when their sweep point actually ran (absent keys
  // fail the CI gate rather than passing vacuously — same discipline as
  // the PR-3 report).
  bench::Json wreport = bench::Json::object();
  wreport.set("bench", "serve_dedup_window")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4)
      .set("group_size", gsz5)
      .set("groups_per_round", groups5);
  if (have_dup0) wreport.set("lpq_dup0_window", lpq_dup0_window);
  if (have_dup25) wreport.set("lpq_dup25_window", lpq_dup25_window);
  if (have_dup0_nowin) wreport.set("lpq_dup0_nowindow", lpq_dup0_nowin);
  wreport.set("parity", parity5_all).set("rows", std::move(wrows));
  bench::write_json_section(json5, "serve_dedup_window", wreport);

  std::printf("\ndedup: identical (k, selection_only) queries of a group"
              " share one phase A and one\nfinalization segment; window:"
              " groups completing within --finalize-window-us share\nONE"
              " batched finalization launch (cross-corpus).\n");

  // ------------------------------------------------------------------
  // PR 8: group-wide batched stage 3. Same workload shape as the PR-5
  // dup=0 point (4 admission groups of gsz distinct-k queries per round,
  // widest finalization window) with batched_concat ON vs OFF (OFF = the
  // PR-7 per-query stage-3 path). With one classify/concat launch pair
  // per group resolved at setup, member queries launch nothing, so
  // launches/group is ~construct + kappa + classify + concat (+ the
  // shared finalize) REGARDLESS of group size. CI gate: lpq(on) <= 0.6x
  // the committed PR-5 lpq_dup0_window at every swept group size >= 16.
  // ------------------------------------------------------------------
  std::printf("\n%-5s | %9s %9s %7s | %8s %8s | %7s | %6s\n", "gsz",
              "bc QPS", "off QPS", "gain", "bc lpq", "off lpq", "guards",
              "parity");

  bench::Json crows = bench::Json::array();
  double lpq_bc_16 = 0, lpq_bc_64 = 0, lpq_off_16 = 0;
  double gain_bc_16 = 0, gain_bc_64 = 0;
  bool have_bc16 = false, have_bc64 = false;
  bool parity8_all = true;
  const u64 window8 =
      *std::max_element(window_list.begin(), window_list.end());
  for (const u64 gsz : std::vector<u64>{16, 64}) {
    const u64 groups8 = 4, q8 = gsz * groups8;
    std::vector<serve::Query> qs;
    for (u64 i = 0; i < q8; ++i)
      qs.push_back(serve::Query::view(span_of(doc), 32 * ((i % gsz) + 1)));

    serve::ServerConfig cfg;
    cfg.executors = 4;
    cfg.batch_max = static_cast<u32>(gsz);
    cfg.max_in_flight = static_cast<u32>(q8);
    cfg.dedup = true;
    cfg.finalize_window_us = static_cast<u32>(window8);
    cfg.finalize_max_segments = static_cast<u32>(groups8 * gsz);
    cfg.batched_concat = true;

    serve::ServerConfig off = cfg;  // PR-7 path: per-query stage 3
    off.batched_concat = false;

    vgpu::Device ondev(vgpu::GpuProfile::v100s());
    const ServerRun ron = run_server(ondev, cfg, qs, 2);
    vgpu::Device offdev(vgpu::GpuProfile::v100s());
    const ServerRun roff = run_server(offdev, off, qs, 2);

    // Three-way parity: the batched and the per-query stage 3 are each
    // checked against the fully per-query server, so they are also
    // bit-identical to each other.
    vgpu::Device pdev_on(vgpu::GpuProfile::v100s());
    const bool par_on = check_parity(pdev_on, cfg, qs);
    vgpu::Device pdev_off(vgpu::GpuProfile::v100s());
    const bool par_off = check_parity(pdev_off, off, qs);
    parity8_all = parity8_all && par_on && par_off;

    const double gain = roff.qps > 0 ? ron.qps / roff.qps : 0;
    if (gsz == 16) {
      lpq_bc_16 = ron.launches_per_query;
      lpq_off_16 = roff.launches_per_query;
      gain_bc_16 = gain;
      have_bc16 = true;
    } else if (gsz == 64) {
      lpq_bc_64 = ron.launches_per_query;
      gain_bc_64 = gain;
      have_bc64 = true;
    }

    std::printf("%-5llu | %9.1f %9.1f %6.2fx | %8.2f %8.2f | %7llu | %6s\n",
                static_cast<unsigned long long>(gsz), ron.qps, roff.qps,
                gain, ron.launches_per_query, roff.launches_per_query,
                static_cast<unsigned long long>(ron.relax_guard_trips),
                (par_on && par_off) ? "ok" : "FAIL");

    bench::Json row = bench::Json::object();
    row.set("group_size", gsz)
        .set("queries", ron.served)
        .set("qps_batched", ron.qps)
        .set("qps_off", roff.qps)
        .set("gain_vs_off", gain)
        .set("lpq_batched", ron.launches_per_query)
        .set("lpq_off", roff.launches_per_query)
        .set("relax_guard_trips", ron.relax_guard_trips)
        .set("steady_ws_growths", ron.ws_growths_steady)
        .set("parity", par_on && par_off)
        .set("launches_batched",
             bench::launch_breakdown(ron.served, ron.construct_launches,
                                     ron.first_launches, ron.concat_launches,
                                     ron.second_launches,
                                     ron.finalize_launches))
        .set("launches_off",
             bench::launch_breakdown(roff.served, roff.construct_launches,
                                     roff.first_launches,
                                     roff.concat_launches,
                                     roff.second_launches,
                                     roff.finalize_launches));
    crows.push(std::move(row));
  }

  // Headline fields only when their sweep point ran — absent keys fail
  // the CI gate rather than passing vacuously.
  bench::Json creport = bench::Json::object();
  creport.set("bench", "serve_batched_concat")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4)
      .set("groups_per_round", 4)
      .set("window_us", window8);
  if (have_bc16) {
    creport.set("lpq_batched_concat_at_16", lpq_bc_16)
        .set("lpq_off_at_16", lpq_off_16)
        .set("gain_vs_off_at_16", gain_bc_16);
  }
  if (have_bc64) {
    creport.set("lpq_batched_concat_at_64", lpq_bc_64)
        .set("gain_vs_off_at_64", gain_bc_64);
  }
  creport.set("parity", parity8_all).set("rows", std::move(crows));
  bench::write_json_section(json8, "serve_batched_concat", creport);

  std::printf("\nbatched concat: ONE classify + ONE concat launch cover every"
              " dedup class of an\nadmission group (core/concat_batched.hpp);"
              " member queries reuse the precomputed\ncandidate spans and"
              " launch nothing.\n");

  // ------------------------------------------------------------------
  // PR 6: observability. (a) tracing overhead: the same workload on fresh
  // devices, tracing off vs on — the span rings are host-side only (zero
  // simulated kernels), so the simulated-QPS ratio must stay within 3%
  // and steady-state tracing must allocate nothing (both recorded for the
  // CI gate, asserted here); (b) per-stage kernel breakdown of the
  // tracing run, reconciled EXACTLY against the aggregate device ledger;
  // (c) artifact dumps: Chrome trace (--trace=), Prometheus (--prom=).
  // ------------------------------------------------------------------
  // Distinct k per group member: a workload with duplicates would let the
  // amount of work dedup collapses vary with claim timing, making the
  // off/on QPS comparison noisy in both directions — with 16 distinct ks
  // per group the simulated work is fully deterministic and the ratio is
  // exactly 1.0 unless tracing itself launches kernels (the regression
  // this section exists to catch).
  const u64 q6 = 128;
  std::vector<serve::Query> oqs;
  for (u64 i = 0; i < q6; ++i)
    oqs.push_back(serve::Query::view(span_of(doc), 32 * ((i % 16) + 1)));

  serve::ServerConfig ocfg;
  ocfg.executors = 4;
  ocfg.batch_max = 16;
  ocfg.max_in_flight = static_cast<u32>(q6);

  vgpu::Device off_dev(vgpu::GpuProfile::v100s());
  const ServerRun off = run_server(off_dev, ocfg, oqs, 2);

  serve::ServerConfig on_cfg = ocfg;
  on_cfg.obs.tracing = true;
  vgpu::Device on_dev(vgpu::GpuProfile::v100s());
  serve::TopkServer on_server(on_dev, on_cfg);
  const ServerRun on = measure_server(on_server, on_dev, oqs, 2);

  const double qps_ratio = on.qps / off.qps;
  const bool ratio_ok = qps_ratio >= 0.97;
  std::printf("\n%-20s %10s %10s %8s | %12s %10s\n", "observability",
              "off QPS", "on QPS", "ratio", "steady grow", "unattrib");
  std::printf("%-20s %10.1f %10.1f %7.3fx | %12llu %10llu %s\n",
              "tracing overhead", off.qps, on.qps, qps_ratio,
              static_cast<unsigned long long>(on.ws_growths_steady),
              static_cast<unsigned long long>(on_dev.unattributed_launches()),
              ratio_ok && on.ws_growths_steady == 0 ? "" : "  <-- FAIL");

  // Distinct traced queries (phase-a spans carry the query id): the
  // artifact must cover >= 100 queries for the trace to be a useful
  // picture of steady-state batching.
  const auto spans = on_server.tracer().snapshot();
  std::vector<u64> traced_ids;
  for (const auto& [lane, s] : spans)
    if (std::string_view(s.name) == "phase-a") traced_ids.push_back(s.query);
  std::sort(traced_ids.begin(), traced_ids.end());
  traced_ids.erase(std::unique(traced_ids.begin(), traced_ids.end()),
                   traced_ids.end());

  // Per-stage breakdown, reconciled against the aggregate: the ledger adds
  // the same KernelStats to the stage slot and the device total under one
  // lock, so the u64 sums must match EXACTLY (no sampling, no drift).
  const std::vector<vgpu::StageStats> stages = on_dev.stage_stats();
  vgpu::KernelStats ssum;
  double ssim = 0;
  for (const vgpu::StageStats& st : stages) {
    ssum += st.stats;
    ssim += st.sim_ms;
  }
  const vgpu::KernelStats total = on_dev.total_stats();
  const bool reconciles =
      ssum.kernels_launched == total.kernels_launched &&
      ssum.ctas_run == total.ctas_run &&
      ssum.global_load_txns == total.global_load_txns &&
      ssum.global_store_txns == total.global_store_txns &&
      ssum.global_load_elems == total.global_load_elems &&
      ssum.shfl_ops == total.shfl_ops &&
      ssum.atomic_ops == total.atomic_ops;
  if (breakdown) {
    std::printf("\nper-stage kernel breakdown (tracing run, lifetime):\n%s",
                obs::stage_table(stages).c_str());
    std::printf("reconciles with aggregate: %s (unattributed launches:"
                " %llu)\n",
                reconciles ? "EXACT" : "MISMATCH",
                static_cast<unsigned long long>(
                    on_dev.unattributed_launches()));
  }

  bench::Json srows = bench::Json::array();
  for (const vgpu::StageStats& st : stages) {
    bench::Json row = bench::Json::object();
    row.set("stage", st.stage)
        .set("launches", st.stats.kernels_launched)
        .set("ctas", st.stats.ctas_run)
        .set("load_elems", st.stats.global_load_elems)
        .set("atomics", st.stats.atomic_ops)
        .set("sim_ms", st.sim_ms);
    srows.push(std::move(row));
  }

  bench::Json oreport = bench::Json::object();
  oreport.set("bench", "observability")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4)
      .set("queries", q6)
      .set("qps_tracing_off", off.qps)
      .set("qps_tracing_on", on.qps)
      .set("qps_ratio", qps_ratio)
      .set("qps_ratio_ok", ratio_ok)
      .set("tracing_steady_ws_growths", on.ws_growths_steady)
      .set("tracing_off_steady_ws_growths", off.ws_growths_steady)
      .set("unattributed_launches", on_dev.unattributed_launches())
      .set("traced_queries", static_cast<u64>(traced_ids.size()))
      .set("trace_spans", static_cast<u64>(spans.size()))
      .set("stage_breakdown_reconciles", reconciles)
      .set("stage_sim_ms_total", ssim)
      .set("aggregate_launches", total.kernels_launched)
      .set("stages", std::move(srows));
  bench::write_json_section(json6, "observability", oreport);

  if (!trace_path.empty()) {
    const bool ok = on_server.dump_trace(trace_path);
    std::printf("trace: %s (%llu spans, %llu queries) -> %s\n",
                ok ? "written" : "FAILED",
                static_cast<unsigned long long>(spans.size()),
                static_cast<unsigned long long>(traced_ids.size()),
                trace_path.c_str());
  }
  if (!prom_path.empty()) {
    std::ofstream pf(prom_path);
    pf << on_server.metrics_prometheus();
    std::printf("prometheus: %s -> %s\n", pf.good() ? "written" : "FAILED",
                prom_path.c_str());
  }

  // ------------------------------------------------------------------
  // PR 9: exactness as a per-query policy — the recall-vs-speedup curve.
  // The tracing section's deterministic workload shape (4 groups of 16
  // distinct-k queries, k = 64..1024) run exact once as the baseline,
  // then once per --recall-target. An approx group collapses to
  // construction (beta = 1) plus one batched full-sort stage 2 — no
  // classify/concat, no second selection — so the gain column is the
  // measured price of exactness. Recall against the exact oracle is
  // computed per query on a final batch and fed back through
  // record_recall (the same path the histogram exports). CI gate:
  // min recall >= target on EVERY row, gain >= 1.3x at rho = 0.9,
  // exact parity true, zero unattributed launches.
  // ------------------------------------------------------------------
  const u64 gsz9 = 16, groups9 = 4, q9 = gsz9 * groups9;
  std::vector<serve::Query> eqs;
  for (u64 i = 0; i < q9; ++i)
    eqs.push_back(serve::Query::view(span_of(doc), 64 * ((i % gsz9) + 1)));

  serve::ServerConfig cfg9;
  cfg9.executors = 4;
  cfg9.batch_max = static_cast<u32>(gsz9);
  cfg9.max_in_flight = static_cast<u32>(q9);

  vgpu::Device edev9(vgpu::GpuProfile::v100s());
  const ServerRun rex = run_server(edev9, cfg9, eqs, rounds);
  vgpu::Device pdev9(vgpu::GpuProfile::v100s());
  const bool parity9 = check_parity(pdev9, cfg9, eqs);
  u64 unattrib9 =
      edev9.unattributed_launches() + pdev9.unattributed_launches();

  // Exact oracle per distinct k, computed once.
  std::vector<std::vector<u64>> oracle9(gsz9);
  for (u64 j = 0; j < gsz9; ++j) {
    const auto ref = topk::reference_topk(span_of(doc), 64 * (j + 1));
    oracle9[j].assign(ref.begin(), ref.end());
  }

  std::printf("\n%-6s | %9s %9s %7s | %7s %7s | %6s | %5s\n", "rho",
              "apx QPS", "ex QPS", "gain", "recmin", "recavg", "skips",
              "lpq");
  bench::Json frows = bench::Json::array();
  bool recall9_ok = true;
  double gain_at_09 = 0;
  bool have_09 = false;
  for (const double rho : recall_targets) {
    std::vector<serve::Query> aqs;
    for (u64 i = 0; i < q9; ++i)
      aqs.push_back(serve::Query::view(span_of(doc), 64 * ((i % gsz9) + 1))
                        .with_recall(rho));
    vgpu::Device adev(vgpu::GpuProfile::v100s());
    serve::TopkServer aserver(adev, cfg9);
    const ServerRun ra = measure_server(aserver, adev, aqs, rounds);
    auto ares = aserver.run_batch(aqs);
    double rmin = 1.0, rsum = 0.0;
    for (u64 i = 0; i < q9; ++i) {
      const double rec = recall_of(ares[i].values, oracle9[i % gsz9]);
      aserver.record_recall(rec);
      rmin = std::min(rmin, rec);
      rsum += rec;
    }
    const double rmean = rsum / static_cast<double>(q9);
    const double gain = rex.qps > 0 ? ra.qps / rex.qps : 0;
    recall9_ok = recall9_ok && rmin >= rho;
    if (std::abs(rho - 0.9) < 1e-9) {
      gain_at_09 = gain;
      have_09 = true;
    }
    unattrib9 += adev.unattributed_launches();

    std::printf(
        "%-6.3f | %9.1f %9.1f %6.2fx | %7.4f %7.4f | %6llu | %5.2f%s\n",
        rho, ra.qps, rex.qps, gain, rmin, rmean,
        static_cast<unsigned long long>(ra.relax_guard_skips),
        ra.launches_per_query, rmin >= rho ? "" : "  <-- FAIL");

    bench::Json row = bench::Json::object();
    row.set("recall_target", rho)
        .set("queries", ra.served)
        .set("approx_queries", ra.approx_queries)
        .set("qps_approx", ra.qps)
        .set("qps_exact", rex.qps)
        .set("gain_vs_exact", gain)
        .set("recall_min", rmin)
        .set("recall_mean", rmean)
        .set("lpq_approx", ra.launches_per_query)
        .set("relax_guard_skips", ra.relax_guard_skips)
        .set("steady_ws_growths", ra.ws_growths_steady);
    frows.push(std::move(row));
  }

  bench::Json freport = bench::Json::object();
  freport.set("bench", "serve_fidelity")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4)
      .set("group_size", gsz9)
      .set("groups_per_round", groups9)
      .set("qps_exact", rex.qps)
      .set("lpq_exact", rex.launches_per_query)
      .set("parity_exact", parity9)
      .set("recall_ok", recall9_ok)
      .set("unattributed_launches", unattrib9);
  if (have_09) freport.set("gain_at_rho_0_9", gain_at_09);
  freport.set("rows", std::move(frows));
  bench::write_json_section(json9, "serve_fidelity", freport);

  std::printf("\nfidelity: exact stays bit-identical (parity %s); a recall"
              " target rho runs beta=1\ndelegates-only construction and"
              " skips stages 3-4 — the gain column is the\nmeasured price"
              " of exactness.\n",
              parity9 ? "ok" : "FAIL");

  if (!parity9 || !recall9_ok) {
    std::fprintf(stderr, "fidelity acceptance FAILED: parity=%d"
                         " recall_ok=%d\n",
                 static_cast<int>(parity9), static_cast<int>(recall9_ok));
    return 1;
  }

  if (!ratio_ok || on.ws_growths_steady != 0 ||
      on_dev.unattributed_launches() != 0 || !reconciles) {
    std::fprintf(stderr, "observability acceptance FAILED: ratio=%.3f"
                         " growths=%llu unattributed=%llu reconciles=%d\n",
                 qps_ratio,
                 static_cast<unsigned long long>(on.ws_growths_steady),
                 static_cast<unsigned long long>(
                     on_dev.unattributed_launches()),
                 static_cast<int>(reconciles));
    return 1;
  }
  return 0;
}
