// Serving throughput: the batched TopkServer (admission groups sharing one
// delegate-construction pass, plan cache warm) against a sequential loop of
// single-query dr_topk calls, across several serving workload shapes.
//
// Throughput is in simulated-GPU terms: the sequential loop's aggregate is
// Q / sum(per-query sim time); the server's is Q / makespan, where makespan
// is the largest per-executor sum of simulated work (executors overlap).
// The server wins on two axes: construction — the dominant stage (Figure
// 15) — is paid once per admission group instead of once per query, and
// recurring shapes replay calibrated plans from the cache instead of
// tuning.
#include "common.hpp"
#include "serve/server.hpp"

using namespace drtopk;

namespace {

struct Shape {
  std::string name;
  std::vector<serve::Query> queries;
};

double sequential_sim_ms(vgpu::Device& dev, const std::vector<serve::Query>& qs) {
  double total = 0;
  for (const auto& q : qs) {
    core::DrTopkConfig cfg;
    cfg.selection_only = q.selection_only;
    if (q.width() == serve::KeyWidth::k64) {
      total += core::dr_topk<u64>(dev, q.data64(), q.k, q.criterion, cfg).sim_ms;
    } else {
      total += core::dr_topk<u32>(dev, q.data32(), q.k, q.criterion, cfg).sim_ms;
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(20);
  bench::print_title("Serving", "batched TopkServer vs sequential dr_topk",
                     args);
  const u64 n = args.n();
  const u64 queries_per_shape = args.full ? 256 : 64;

  // Corpora held alive for the whole run (queries view them).
  auto doc = data::generate(n, data::Distribution::kUniform, args.seed);
  auto knn = data::generate(n, data::Distribution::kNormal, args.seed + 1);
  auto ads = data::generate(n / 2, data::Distribution::kUniform, args.seed + 2);
  std::vector<vgpu::device_vector<u32>> tenants;
  for (u64 t = 0; t < 4; ++t)
    tenants.push_back(
        data::generate(n / 4, data::Distribution::kCustomized, args.seed + 3 + t));
  const auto span_of = [](const vgpu::device_vector<u32>& v) {
    return std::span<const u32>(v.data(), v.size());
  };

  std::vector<Shape> shapes;
  {
    // Document retrieval: one corpus, identical large-k queries.
    Shape s{"doc-retrieval", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(doc), u64{1} << 10));
    shapes.push_back(std::move(s));
  }
  {
    // k-NN serving: smallest-criterion queries (distance-like), small k.
    Shape s{"knn-serving", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(knn), 128,
                                             data::Criterion::kSmallest));
    shapes.push_back(std::move(s));
  }
  {
    // Ad selection: selection-only (k-th threshold) queries, mixed k.
    Shape s{"ad-selection", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(ads),
                                             u64{8} << (i % 6),
                                             data::Criterion::kLargest,
                                             /*selection_only=*/true));
    shapes.push_back(std::move(s));
  }
  {
    // Multi-tenant: four corpora interleaved (groups form per corpus).
    Shape s{"multi-tenant", {}};
    for (u64 i = 0; i < queries_per_shape; ++i)
      s.queries.push_back(serve::Query::view(span_of(tenants[i % 4]), 256));
    shapes.push_back(std::move(s));
  }

  std::printf("%-14s %5s | %12s %10s | %12s %10s | %7s %6s %6s\n", "workload",
              "Q", "seq total", "seq QPS", "srv makespan", "srv QPS",
              "speedup", "hit%", "fused%");

  for (auto& shape : shapes) {
    vgpu::Device dev(vgpu::GpuProfile::v100s());
    const double seq_ms = sequential_sim_ms(dev, shape.queries);
    const double seq_qps =
        static_cast<double>(shape.queries.size()) * 1e3 / seq_ms;

    serve::ServerConfig cfg;
    cfg.executors = 4;
    cfg.batch_max = 16;
    serve::TopkServer server(dev, cfg);
    // Warm the plan cache (and pay calibration) outside the measurement.
    (void)server.run_batch(shape.queries);
    const auto warm = server.stats();
    (void)server.run_batch(shape.queries);
    const auto after = server.stats();

    // Makespan delta of the measured round. At toy sizes the round can land
    // entirely on executors still below the warm-up maximum (delta 0); fall
    // back to the round's mean per-executor work so the ratio stays finite.
    double srv_ms = after.makespan_sim_ms - warm.makespan_sim_ms;
    if (srv_ms <= 0.0)
      srv_ms = (after.total_sim_ms - warm.total_sim_ms) /
               static_cast<double>(cfg.executors);
    const u64 served = after.completed - warm.completed;
    const double srv_qps = static_cast<double>(served) * 1e3 / srv_ms;
    const double fused_pct =
        100.0 * static_cast<double>(after.fused_queries - warm.fused_queries) /
        static_cast<double>(served);
    const double hit_pct =
        100.0 *
        static_cast<double>(after.plan_hits - warm.plan_hits) /
        static_cast<double>(std::max<u64>(
            1, (after.plan_hits + after.plan_misses) -
                   (warm.plan_hits + warm.plan_misses)));

    std::printf("%-14s %5llu | %9.3f ms %10.1f | %9.3f ms %10.1f | %6.2fx"
                " %5.0f%% %5.0f%%\n",
                shape.name.c_str(),
                static_cast<unsigned long long>(shape.queries.size()), seq_ms,
                seq_qps, srv_ms, srv_qps, srv_qps / seq_qps, hit_pct,
                fused_pct);
  }

  std::printf("\nThe server amortizes delegate construction over each"
              " admission group and overlaps\nqueries across executors; the"
              " warm plan cache replays calibrated (alpha, engine)\nplans so"
              " steady-state queries skip tuning entirely.\n");
  return 0;
}
