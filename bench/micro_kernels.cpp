// Google-benchmark microbenchmarks of the substrate hot paths: delegate
// construction (both kernels), flag-radix histogram passes, compaction and
// the full pipeline. These measure *host wall time* of the simulator, which
// is what bounds how large the figure benches can be run.
#include <benchmark/benchmark.h>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

namespace drtopk {
namespace {

vgpu::Device& dev() {
  static vgpu::Device d(vgpu::GpuProfile::v100s());
  return d;
}

const vgpu::device_vector<u32>& input(u64 n) {
  static vgpu::device_vector<u32> v;
  if (v.size() != n)
    v = data::generate(n, data::Distribution::kUniform, 42);
  return v;
}

void BM_DelegateConstructWarp(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  core::ConstructOpts opts;
  opts.optimized = false;
  vgpu::Workspace ws;
  for (auto _ : state) {
    vgpu::Workspace::Scope scope(ws);
    topk::Accum acc(dev());
    auto dv = core::build_delegate_vector<u32>(
        acc, vs, static_cast<int>(state.range(0)), 2, opts, ws);
    benchmark::DoNotOptimize(dv.keys.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DelegateConstructWarp)->Arg(4)->Arg(8)->Arg(12);

void BM_DelegateConstructShared(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Workspace ws;
  for (auto _ : state) {
    vgpu::Workspace::Scope scope(ws);
    topk::Accum acc(dev());
    auto dv = core::build_delegate_vector<u32>(
        acc, vs, static_cast<int>(state.range(0)), 2, {}, ws);
    benchmark::DoNotOptimize(dv.keys.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DelegateConstructShared)->Arg(3)->Arg(4)->Arg(5);

void BM_FlagRadixKth(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    topk::Accum acc(dev());
    benchmark::DoNotOptimize(
        topk::radix_kth_flag<u32>(acc, vs, static_cast<u64>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_FlagRadixKth)->Arg(128)->Arg(1 << 12);

void BM_DrTopkPipeline(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    auto r = core::dr_topk_keys<u32>(dev(), vs,
                                     static_cast<u64>(state.range(0)));
    benchmark::DoNotOptimize(r.kth);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DrTopkPipeline)->Arg(128)->Arg(1 << 12)->Arg(1 << 16);

// Satellite (PR 3): host wall time of the Warp lane loops. The "legacy"
// variant replays the pre-restructuring shape of scan_coalesced — per-chunk
// min/branch, variable trip count, per-chunk transaction accounting — while
// the "vectorized" variant is the current API (accounting in closed form,
// constant-trip-count chunk bodies that auto-vectorize). Both compute the
// same per-lane running maxima over the same kernel geometry, so the delta
// is purely the loop restructuring.
template <bool kLegacy>
void warp_scan_host_pass(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    u32 sink = 0;
    auto cfg = dev().launch_for_warp_items(n / 4096, "bm_scan");
    dev().launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        const u64 chunks = n / 4096;
        for (u64 c = w.global_id(); c < chunks; c += w.grid_warps()) {
          vgpu::LaneArray<u32> best{};
          if constexpr (kLegacy) {
            const u64 begin = c * 4096, end = begin + 4096;
            u64 pos = begin, txns = 0;
            while (pos < end) {
              const u32 active = static_cast<u32>(
                  std::min<u64>(vgpu::kWarpSize, end - pos));
              txns += (static_cast<u64>(active) * sizeof(u32) +
                       vgpu::kSectorBytes - 1) / vgpu::kSectorBytes;
              for (u32 l = 0; l < active; ++l)
                best[l] = std::max(best[l], vs[pos + l]);
              pos += active;
            }
            w.stats().global_load_elems += 4096;
            w.stats().global_load_bytes += 4096 * sizeof(u32);
            w.stats().global_load_txns += txns;
          } else {
            w.scan_coalesced(vs, c * 4096, 4096, [&](u32 l, u32 x) {
              best[l] = std::max(best[l], x);
            });
          }
          sink ^= w.reduce_max(best);
        }
      });
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}

void BM_WarpScanLegacy(benchmark::State& state) {
  warp_scan_host_pass<true>(state);
}
BENCHMARK(BM_WarpScanLegacy);

void BM_WarpScanVectorized(benchmark::State& state) {
  warp_scan_host_pass<false>(state);
}
BENCHMARK(BM_WarpScanVectorized);

void BM_HeapTopkCpu(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    auto r = topk::heap_topk<u32>(vs, static_cast<u64>(state.range(0)),
                                  &dev().pool());
    benchmark::DoNotOptimize(r.kth);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_HeapTopkCpu)->Arg(128);

}  // namespace
}  // namespace drtopk

BENCHMARK_MAIN();
