// Google-benchmark microbenchmarks of the substrate hot paths: delegate
// construction (both kernels), flag-radix histogram passes, compaction and
// the full pipeline. These measure *host wall time* of the simulator, which
// is what bounds how large the figure benches can be run.
#include <benchmark/benchmark.h>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

namespace drtopk {
namespace {

vgpu::Device& dev() {
  static vgpu::Device d(vgpu::GpuProfile::v100s());
  return d;
}

const vgpu::device_vector<u32>& input(u64 n) {
  static vgpu::device_vector<u32> v;
  if (v.size() != n)
    v = data::generate(n, data::Distribution::kUniform, 42);
  return v;
}

void BM_DelegateConstructWarp(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  core::ConstructOpts opts;
  opts.optimized = false;
  vgpu::Workspace ws;
  for (auto _ : state) {
    vgpu::Workspace::Scope scope(ws);
    topk::Accum acc(dev());
    auto dv = core::build_delegate_vector<u32>(
        acc, vs, static_cast<int>(state.range(0)), 2, opts, ws);
    benchmark::DoNotOptimize(dv.keys.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DelegateConstructWarp)->Arg(4)->Arg(8)->Arg(12);

void BM_DelegateConstructShared(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Workspace ws;
  for (auto _ : state) {
    vgpu::Workspace::Scope scope(ws);
    topk::Accum acc(dev());
    auto dv = core::build_delegate_vector<u32>(
        acc, vs, static_cast<int>(state.range(0)), 2, {}, ws);
    benchmark::DoNotOptimize(dv.keys.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DelegateConstructShared)->Arg(3)->Arg(4)->Arg(5);

void BM_FlagRadixKth(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    topk::Accum acc(dev());
    benchmark::DoNotOptimize(
        topk::radix_kth_flag<u32>(acc, vs, static_cast<u64>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_FlagRadixKth)->Arg(128)->Arg(1 << 12);

void BM_DrTopkPipeline(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    auto r = core::dr_topk_keys<u32>(dev(), vs,
                                     static_cast<u64>(state.range(0)));
    benchmark::DoNotOptimize(r.kth);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_DrTopkPipeline)->Arg(128)->Arg(1 << 12)->Arg(1 << 16);

void BM_HeapTopkCpu(benchmark::State& state) {
  const u64 n = 1 << 22;
  const auto& v = input(n);
  std::span<const u32> vs(v.data(), v.size());
  for (auto _ : state) {
    auto r = topk::heap_topk<u32>(vs, static_cast<u64>(state.range(0)),
                                  &dev().pool());
    benchmark::DoNotOptimize(r.kth);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_HeapTopkCpu)->Arg(128);

}  // namespace
}  // namespace drtopk

BENCHMARK_MAIN();
