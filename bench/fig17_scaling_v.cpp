// Figure 17: time vs |V| at k=1024 for every algorithm — sort-and-choose,
// the three baselines, their three Dr. Top-k assisted versions, plus the
// CPU priority-queue reference. Dr. Top-k's advantage grows with |V|.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(23);
  bench::print_title("Figure 17", "time vs |V| (k = 1024)", args);
  vgpu::Device dev;
  const u64 k = 1024;

  std::printf("%-8s %10s %10s %10s %10s %10s %10s %10s %12s\n", "|V|",
              "sort", "radix", "bucket", "bitonic", "dr+radix", "dr+bucket",
              "dr+bitonic", "cpu-heap(ms)");
  for (u64 logn = args.logn - 4; logn <= args.logn; ++logn) {
    const u64 n = u64{1} << logn;
    auto v = data::generate(n, data::Distribution::kUniform, args.seed);
    std::span<const u32> vs(v.data(), v.size());

    const double t_sort =
        bench::baseline_ms(dev, vs, k, topk::Algo::kSortAndChoose);
    const double t_radix =
        bench::baseline_ms(dev, vs, k, topk::Algo::kRadixGgksOop);
    const double t_bucket =
        bench::baseline_ms(dev, vs, k, topk::Algo::kBucketOop);
    const double t_bitonic =
        bench::baseline_ms(dev, vs, k, topk::Algo::kBitonic);

    double dr[3];
    const topk::Algo fams[3] = {topk::Algo::kRadixGgksOop,
                                topk::Algo::kBucketOop, topk::Algo::kBitonic};
    for (int i = 0; i < 3; ++i) {
      auto cfg = bench::assisted_config(fams[i]);
      core::StageBreakdown bd;
      (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &bd);
      dr[i] = bd.total_ms();
    }
    auto heap = topk::heap_topk<u32>(vs, k, &dev.pool());

    std::printf("2^%-6d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f"
                " %12.1f\n",
                static_cast<int>(logn), t_sort, t_radix, t_bucket, t_bitonic,
                dr[0], dr[1], dr[2], heap.wall_ms);
  }
  std::printf("\nPaper (|V|=2^30): radix 41.3, bucket 38.4, bitonic 127.0,"
              " sort 243.2 ms;\nDr. Top-k assisted: 6.4 / 7.0 / 7.0 ms —"
              " advantage grows with |V|.\n");
  return 0;
}
