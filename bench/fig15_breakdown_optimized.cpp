// Figure 15: breakdown after the coalesced-load-to-shared + strided-compute
// construction optimization (Section 5.3). Construction time collapses for
// large k (small alpha): 31.4ms -> 9.4ms at k=2^24 in the paper; total
// 46.7ms -> 24.7ms.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  if (args.json.empty()) args.json = "BENCH_PR2.json";
  bench::print_title("Figure 15",
                     "Dr. Top-k breakdown — + construction optimization",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  core::DrTopkConfig cfg;  // defaults: beta=2, filtering, optimized, fused

  // One sweep feeds both the printed table and the machine-readable rows
  // (fused defaults vs the PR-1 stage-3 / small-stage baseline at every k)
  // for the shared BENCH report.
  {
    core::DrTopkConfig pr1 = cfg;
    pr1.fused_concat = false;
    pr1.small_input_shared = false;
    bench::Json rows = bench::Json::array();
    bench::print_breakdown(
        dev, vs, cfg, args.k_sweep(),
        [&](u64 k, const core::StageBreakdown& bf,
            const topk::TopkResult<u32>& rf) {
          core::StageBreakdown bl;
          auto rl = core::dr_topk_keys<u32>(dev, vs, k, pr1, &bl);
          bench::Json row = bench::Json::object();
          row.set("k", k)
              .set("alpha", bf.alpha)
              .set("construct_ms", bf.construct_ms)
              .set("first_ms", bf.first_ms)
              .set("concat_ms", bf.concat_ms)
              .set("second_ms", bf.second_ms)
              .set("total_ms", bf.total_ms())
              .set("wall_ms", rf.wall_ms)
              .set("pr1_concat_ms", bl.concat_ms)
              .set("pr1_total_ms", bl.total_ms())
              .set("pr1_wall_ms", rl.wall_ms)
              .set("concat_atomics", bf.concat_stats.atomic_ops)
              .set("pr1_concat_atomics", bl.concat_stats.atomic_ops)
              .set("concat_load_txns", bf.concat_stats.global_load_txns)
              .set("pr1_concat_load_txns", bl.concat_stats.global_load_txns)
              .set("delegate_len", bf.delegate_len)
              .set("concat_len", bf.concat_len);
          rows.push(std::move(row));
        });
    bench::Json report = bench::Json::object();
    report.set("bench", "fig15_breakdown_optimized")
        .set("logn", args.logn)
        .set("seed", args.seed)
        .set("rows", std::move(rows));
    bench::write_json_section(args.json, "fig15_breakdown_optimized", report);
  }

  std::printf("\nConstruction time, unoptimized vs optimized, largest k:\n");
  const auto ks = args.k_sweep();
  const u64 k = ks.back();
  core::DrTopkConfig unopt = cfg;
  unopt.construct.optimized = false;
  core::StageBreakdown a, b;
  (void)core::dr_topk_keys<u32>(dev, vs, k, unopt, &a);
  (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &b);
  std::printf("k=2^%d: %.3f ms -> %.3f ms (%.2fx)   [paper: 31.4 -> 9.4,"
              " 3.3x]\n",
              static_cast<int>(std::bit_width(k)) - 1, a.construct_ms,
              b.construct_ms, a.construct_ms / b.construct_ms);
  return 0;
}
