// Figure 15: breakdown after the coalesced-load-to-shared + strided-compute
// construction optimization (Section 5.3). Construction time collapses for
// large k (small alpha): 31.4ms -> 9.4ms at k=2^24 in the paper; total
// 46.7ms -> 24.7ms.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 15",
                     "Dr. Top-k breakdown — + construction optimization",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  core::DrTopkConfig cfg;  // defaults: beta=2, filtering, optimized
  bench::print_breakdown(dev, vs, cfg, args.k_sweep());

  std::printf("\nConstruction time, unoptimized vs optimized, largest k:\n");
  const auto ks = args.k_sweep();
  const u64 k = ks.back();
  core::DrTopkConfig unopt = cfg;
  unopt.construct.optimized = false;
  core::StageBreakdown a, b;
  (void)core::dr_topk_keys<u32>(dev, vs, k, unopt, &a);
  (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &b);
  std::printf("k=2^%d: %.3f ms -> %.3f ms (%.2fx)   [paper: 31.4 -> 9.4,"
              " 3.3x]\n",
              static_cast<int>(std::bit_width(k)) - 1, a.construct_ms,
              b.construct_ms, a.construct_ms / b.construct_ms);
  return 0;
}
