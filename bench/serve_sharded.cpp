// Sharded serving scaling: serve::ShardedTopkServer at 2 and 4 shards
// against the single-device TopkServer on the SAME corpus and query mix —
// the PR-7 gate. The corpus is framed as 4x one device's nominal capacity
// (recorded as capacity_ratio), so the single-device baseline is the
// honest "it still fits, barely" configuration the sharded deployment has
// to beat on throughput, not just capacity.
//
// Throughput is simulated-GPU: a deployment's makespan is the largest
// per-shard balanced-fleet time (each shard's summed per-query sim work
// over its executor count — shards run concurrently) plus the serialized
// cross-shard merge time; QPS = queries / makespan. The single-device
// number uses the same formula with one shard and no merge, matching
// bench_serve_throughput's balanced-fleet discipline. Results land in
// BENCH_PR7.json section "serve_sharded"; CI gates on cross-shard parity
// and the 2-shard gain.
#include "common.hpp"
#include "serve/sharded.hpp"

using namespace drtopk;

namespace {

/// The benchmark's query mix: a handful of distinct-k queries per round.
/// Distinct ks keep the dedup layer from collapsing the round, and a SMALL
/// round keeps each query's cost dominated by its share of the corpus-
/// proportional construction scan — the regime data sharding targets. The
/// opposite regime (many tiny queries, per-query launch overhead bound) is
/// what bench_serve_throughput measures; sharding cannot help there and
/// this benchmark does not pretend otherwise.
std::vector<u64> query_ks() { return {64, 128, 256, 512}; }

struct DeployRun {
  double qps = 0;
  double makespan_ms = 0;   ///< balanced-fleet makespan of measured rounds
  double merge_ms = 0;      ///< serialized merge share of the makespan
  u64 served = 0;
  u64 launches = 0;         ///< kernel launches (all devices), measured rounds
  u64 merge_launches = 0;
  u64 merge_batches = 0;
  u64 unattributed = 0;
  std::vector<std::vector<u64>> values;  ///< measured answers, parity input
};

/// Per-shard balanced-fleet time: summed per-query sim work over the
/// executor count (deterministic, unlike the raw scheduling-dependent
/// makespan — same reasoning as bench_serve_throughput).
double balanced_ms(const serve::ServerStats& after,
                   const serve::ServerStats& warm, u32 executors) {
  return (after.total_sim_ms - warm.total_sim_ms) /
         static_cast<double>(executors);
}

DeployRun run_sharded(u32 shards, std::span<const u32> corpus,
                      const std::vector<u64>& ks, int rounds,
                      const serve::ServerConfig& shard_cfg) {
  serve::ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.min_shard_elems = 1;  // spread the corpus over every shard
  cfg.shard = shard_cfg;
  serve::ShardedTopkServer srv(cfg);
  const auto corpus_id = srv.register_corpus(corpus);

  auto round = [&] {
    std::vector<std::future<serve::QueryResult>> fs;
    fs.reserve(ks.size());
    for (u64 k : ks) fs.push_back(srv.submit(corpus_id, k));
    std::vector<std::vector<u64>> vals;
    vals.reserve(fs.size());
    for (auto& f : fs) vals.push_back(f.get().values);
    return vals;
  };

  // Warm until every shard's arena growth converges (plan calibration +
  // pool sizing), then measure.
  (void)round();
  (void)round();
  for (int w = 0, calm = 0; w < 12 && calm < 2; ++w) {
    const u64 before = srv.workspace_growths();
    (void)round();
    calm = srv.workspace_growths() == before ? calm + 1 : 0;
  }
  srv.drain();
  std::vector<serve::ServerStats> warm_shard;
  for (u32 s = 0; s < shards; ++s) warm_shard.push_back(srv.shard(s).stats());
  const auto warm = srv.stats();
  u64 warm_launches = srv.merge_device().total_stats().kernels_launched;
  for (u32 s = 0; s < shards; ++s)
    warm_launches += srv.shard_device(s).total_stats().kernels_launched;

  DeployRun out;
  for (int r = 0; r < rounds; ++r) {
    auto vals = round();
    out.values.insert(out.values.end(), vals.begin(), vals.end());
  }
  srv.drain();
  const auto after = srv.stats();

  double worst_shard = 0.0;
  for (u32 s = 0; s < shards; ++s)
    worst_shard = std::max(
        worst_shard, balanced_ms(srv.shard(s).stats(), warm_shard[s],
                                 cfg.shard.executors));
  out.merge_ms = after.merge_sim_ms - warm.merge_sim_ms;
  out.makespan_ms = worst_shard + out.merge_ms;
  out.served = after.completed - warm.completed;
  out.qps = static_cast<double>(out.served) * 1e3 / out.makespan_ms;
  out.merge_launches = after.merge_launches - warm.merge_launches;
  out.merge_batches = after.merge_batches - warm.merge_batches;
  u64 end_launches = srv.merge_device().total_stats().kernels_launched;
  for (u32 s = 0; s < shards; ++s)
    end_launches += srv.shard_device(s).total_stats().kernels_launched;
  out.launches = end_launches - warm_launches;
  out.unattributed = srv.unattributed_launches();
  return out;
}

DeployRun run_single(std::span<const u32> corpus, const std::vector<u64>& ks,
                     int rounds, const serve::ServerConfig& cfg) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  serve::TopkServer srv(dev, cfg);
  std::vector<serve::Query> qs;
  for (u64 k : ks) qs.push_back(serve::Query::view(corpus, k));

  (void)srv.run_batch(qs);
  (void)srv.run_batch(qs);
  for (int w = 0, calm = 0; w < 12 && calm < 2; ++w) {
    const u64 before = srv.workspace_growths();
    (void)srv.run_batch(qs);
    calm = srv.workspace_growths() == before ? calm + 1 : 0;
  }
  const auto warm = srv.stats();
  const u64 warm_launches = dev.total_stats().kernels_launched;

  DeployRun out;
  for (int r = 0; r < rounds; ++r) {
    auto res = srv.run_batch(qs);
    for (auto& qr : res) out.values.push_back(std::move(qr.values));
  }
  const auto after = srv.stats();
  out.served = after.completed - warm.completed;
  out.makespan_ms = balanced_ms(after, warm, srv.config().executors);
  out.qps = static_cast<double>(out.served) * 1e3 / out.makespan_ms;
  out.launches = dev.total_stats().kernels_launched - warm_launches;
  out.unattributed = dev.unattributed_launches();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  args.default_logn(27);
  std::string json8 = "BENCH_PR8.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json8=", 0) == 0) json8 = arg.substr(8);
  }
  bench::print_title("PR-7", "sharded serving scaling (ShardedTopkServer)",
                     args);

  const u64 n = args.n();
  auto v = data::generate(n, data::Distribution::kUniform, args.seed);
  std::span<const u32> corpus(v.data(), v.size());
  const std::vector<u64> ks = query_ks();
  const int rounds = 3;

  // PR-7 configuration: group-wide batched stage 3 off, so the committed
  // scan-bound baselines keep gating CI unchanged. The PR-8 launch-bound
  // section below owns the batched_concat axis.
  serve::ServerConfig pr7;
  pr7.batched_concat = false;

  const DeployRun single = run_single(corpus, ks, rounds, pr7);
  const DeployRun two = run_sharded(2, corpus, ks, rounds, pr7);
  const DeployRun four = run_sharded(4, corpus, ks, rounds, pr7);

  auto parity = [&](const DeployRun& d) {
    return d.values == single.values;
  };
  const bool parity2 = parity(two);
  const bool parity4 = parity(four);
  const double gain2 = two.qps / single.qps;
  const double gain4 = four.qps / single.qps;

  std::printf("%-14s %10s %12s %12s %10s %8s\n", "deployment", "qps",
              "makespan", "merge_ms", "gain", "parity");
  std::printf("%-14s %10.1f %12.3f %12.3f %10s %8s\n", "single", single.qps,
              single.makespan_ms, 0.0, "1.00x", "-");
  std::printf("%-14s %10.1f %12.3f %12.3f %9.2fx %8s\n", "2-shard", two.qps,
              two.makespan_ms, two.merge_ms, gain2, parity2 ? "ok" : "FAIL");
  std::printf("%-14s %10.1f %12.3f %12.3f %9.2fx %8s\n", "4-shard", four.qps,
              four.makespan_ms, four.merge_ms, gain4, parity4 ? "ok" : "FAIL");

  bench::Json report = bench::Json::object();
  report.set("n", n)
      .set("device_capacity_elems", n / 4)
      .set("capacity_ratio", 4.0)
      .set("queries_per_round", static_cast<u64>(ks.size()))
      .set("rounds", static_cast<u64>(rounds))
      .set("qps_single", single.qps)
      .set("qps_2shard", two.qps)
      .set("qps_4shard", four.qps)
      .set("gain_2shard", gain2)
      .set("gain_4shard", gain4)
      .set("parity_2shard", parity2)
      .set("parity_4shard", parity4)
      .set("merge_sim_ms_2shard", two.merge_ms)
      .set("merge_sim_ms_4shard", four.merge_ms)
      .set("merge_launches_2shard", two.merge_launches)
      .set("merge_launches_4shard", four.merge_launches)
      .set("merge_batches_4shard", four.merge_batches)
      .set("unattributed_launches",
           single.unattributed + two.unattributed + four.unattributed);
  const std::string path = args.json.empty() ? "BENCH_PR7.json" : args.json;
  bench::write_json_section(path, "serve_sharded", report);

  // ------------------------------------------------------------------
  // PR 8a: the launch-bound regime. Many small-k queries on a corpus
  // sized so the per-group scan is only a few launch overheads: with the
  // per-query stage 3 (PR-7 path) every shard pays the same ~2 launches
  // per member the single device does, so sharding recovers almost
  // nothing (gain ~1x). With batched_concat the per-group launch cost
  // collapses to one classify/concat pair and the corpus scan dominates
  // again — the 4-shard gain comes back. The corpus size is FIXED
  // (independent of --logn) so the committed BENCH_PR8.json and the CI
  // re-run measure the same point.
  // ------------------------------------------------------------------
  const u64 lb_n = u64{3} << 22;  // ~12.6M: per-group scan ~ 8 launches
  auto lbv = data::generate(lb_n, data::Distribution::kUniform, args.seed + 7);
  std::span<const u32> lb_corpus(lbv.data(), lbv.size());
  // 4 admission groups of 16 distinct small ks per round: launch overhead
  // per round is ~4x what one group pays, merge cost amortizes across the
  // round, and dedup stays out of the way.
  std::vector<u64> lb_ks;
  for (u64 i = 0; i < 64; ++i) lb_ks.push_back(32 * ((i % 16) + 1));

  serve::ServerConfig lb_on;
  lb_on.batched_concat = true;
  serve::ServerConfig lb_off = lb_on;
  lb_off.batched_concat = false;

  const DeployRun sgl_on = run_single(lb_corpus, lb_ks, rounds, lb_on);
  const DeployRun shd_on = run_sharded(4, lb_corpus, lb_ks, rounds, lb_on);
  const DeployRun sgl_off = run_single(lb_corpus, lb_ks, rounds, lb_off);
  const DeployRun shd_off = run_sharded(4, lb_corpus, lb_ks, rounds, lb_off);

  const double lb_gain_on = shd_on.qps / sgl_on.qps;
  const double lb_gain_off = shd_off.qps / sgl_off.qps;
  const bool lb_parity = shd_on.values == sgl_on.values &&
                         shd_off.values == sgl_off.values &&
                         sgl_on.values == sgl_off.values;
  const double lpq_sgl_on =
      static_cast<double>(sgl_on.launches) / static_cast<double>(sgl_on.served);
  const double lpq_sgl_off = static_cast<double>(sgl_off.launches) /
                             static_cast<double>(sgl_off.served);

  std::printf("\nlaunch-bound (n=%llu, %zu queries/round):\n",
              static_cast<unsigned long long>(lb_n), lb_ks.size());
  std::printf("%-22s %10s %10s %10s %8s\n", "config", "single", "4-shard",
              "gain", "parity");
  std::printf("%-22s %10.1f %10.1f %9.2fx %8s\n", "batched_concat=off",
              sgl_off.qps, shd_off.qps, lb_gain_off, lb_parity ? "ok" : "FAIL");
  std::printf("%-22s %10.1f %10.1f %9.2fx %8s\n", "batched_concat=on",
              sgl_on.qps, shd_on.qps, lb_gain_on, lb_parity ? "ok" : "FAIL");
  std::printf("single-device launches/query: off=%.2f on=%.2f\n", lpq_sgl_off,
              lpq_sgl_on);

  // ------------------------------------------------------------------
  // PR 8b: shard-aware plan sharing. The SAME data registered as four
  // single-shard corpora lands round-robin on four different shards; only
  // the first shard to serve the shape runs the calibration probe set —
  // drain()'s share_plans() publishes its plan, and the other N-1 shards
  // skip their probes entirely (PlanKeys are shard-independent).
  // ------------------------------------------------------------------
  serve::ShardedConfig pscfg;
  pscfg.num_shards = 4;
  pscfg.min_shard_elems = u64{1} << 30;  // keep each corpus on ONE shard
  pscfg.shard = lb_on;
  serve::ShardedTopkServer psrv(pscfg);
  auto psdata =
      data::generate(u64{1} << 16, data::Distribution::kUniform, args.seed + 9);
  std::span<const u32> pspan(psdata.data(), psdata.size());
  std::vector<serve::ShardedTopkServer::CorpusId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(psrv.register_corpus(pspan));

  psrv.submit(ids[0], 128).get();  // shard 0 calibrates the shape
  psrv.drain();                    // ... and drain() cross-publishes it
  for (int i = 1; i < 4; ++i) psrv.submit(ids[i], 128).get();
  psrv.drain();
  const auto psst = psrv.stats();
  const double skip_ratio =
      static_cast<double>(psst.plan_probes_skipped) /
      static_cast<double>(pscfg.num_shards - 1);
  std::printf("\nplan sharing: %llu published, %llu probe sets skipped"
              " (%.2fx of the %u sibling shards)\n",
              static_cast<unsigned long long>(psst.plan_publishes),
              static_cast<unsigned long long>(psst.plan_probes_skipped),
              skip_ratio, pscfg.num_shards - 1);

  bench::Json r8 = bench::Json::object();
  r8.set("lb_n", lb_n)
      .set("lb_queries_per_round", static_cast<u64>(lb_ks.size()))
      .set("rounds", static_cast<u64>(rounds))
      .set("lb_qps_single_batched", sgl_on.qps)
      .set("lb_qps_4shard_batched", shd_on.qps)
      .set("lb_qps_single_off", sgl_off.qps)
      .set("lb_qps_4shard_off", shd_off.qps)
      .set("lb_gain_4shard_batched", lb_gain_on)
      .set("lb_gain_4shard_off", lb_gain_off)
      .set("lb_lpq_single_batched", lpq_sgl_on)
      .set("lb_lpq_single_off", lpq_sgl_off)
      .set("lb_parity", lb_parity)
      .set("plan_shards", static_cast<u64>(pscfg.num_shards))
      .set("plan_publishes", psst.plan_publishes)
      .set("plan_probes_skipped", psst.plan_probes_skipped)
      .set("plan_skip_ratio", skip_ratio)
      .set("unattributed_launches",
           sgl_on.unattributed + shd_on.unattributed + sgl_off.unattributed +
               shd_off.unattributed + psrv.unattributed_launches());
  bench::write_json_section(json8, "serve_sharded_batched", r8);

  if (!parity2 || !parity4 || !lb_parity) {
    std::printf("PARITY FAILURE\n");
    return 1;
  }
  return 0;
}
