// Figure 13: Dr. Top-k runtime as a function of alpha at fixed k — the
// measured convex bowl, alongside the Equation 6 model curve. Construction
// and first top-k fall with alpha; concat and second top-k rise.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 13", "runtime vs alpha (convexity)", args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());
  // The paper fixes k = 2^13 at |V| = 2^30 (k = |V| * 2^-17); keep the same
  // ratio at scaled sizes so the bowl stays inside the sweep window.
  const u64 k = std::max<u64>(32, args.n() >> 17);

  std::printf("k = 2^%d\n", static_cast<int>(std::bit_width(k)) - 1);
  std::printf("%-6s %10s %10s %10s %10s %10s %12s\n", "alpha", "construct",
              "first", "concat", "second", "total", "Eq6 model");
  const int max_alpha = core::clamp_alpha(args.n(), k, 2, 30);
  for (int a = 1; a <= max_alpha; ++a) {
    core::DrTopkConfig cfg;
    cfg.alpha = a;
    core::StageBreakdown bd;
    (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &bd);
    const double model = core::AlphaTuner::predicted_ms(
        dev.profile(), args.n(), k, a, cfg.beta);
    std::printf("%-6d %10.3f %10.3f %10.3f %10.3f %10.3f %12.3f\n", a,
                bd.construct_ms, bd.first_ms, bd.concat_ms, bd.second_ms,
                bd.total_ms(), model);
  }
  std::printf("\nPaper: total decreases then increases with alpha — a convex"
              " function (Rule 4's premise).\n");
  return 0;
}
