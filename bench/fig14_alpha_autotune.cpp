// Figure 14: auto-tuned alpha (Rule 4 closed form, Const=3) vs the oracle
// alpha (exhaustive sweep) across k. The paper shows the two perform
// near-identically.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Figure 14", "oracle alpha vs auto-tuned alpha", args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-10s %8s %8s %12s %12s %10s\n", "k", "a_tuned", "a_oracle",
              "t_tuned", "t_oracle", "t ratio");
  for (u64 k : args.k_sweep()) {
    core::DrTopkConfig cfg;
    const int max_alpha = core::clamp_alpha(args.n(), k, cfg.beta, 30);
    if (max_alpha < 1) continue;
    std::vector<double> times;
    const int lo = 1;
    const int oracle =
        core::oracle_alpha(dev, vs, k, cfg, lo, max_alpha, &times);
    const int tuned = core::clamp_alpha(
        args.n(), k, cfg.beta,
        core::AlphaTuner{cfg.tuner_const}.rule4_alpha(args.n(), k));
    const double t_tuned = times[static_cast<size_t>(tuned - lo)];
    const double t_oracle = times[static_cast<size_t>(oracle - lo)];
    std::printf("2^%-8d %8d %8d %12.3f %12.3f %9.3fx\n",
                static_cast<int>(std::bit_width(k)) - 1, tuned, oracle,
                t_tuned, t_oracle, t_tuned / t_oracle);
  }
  std::printf("\nPaper: auto-tuned alpha tracks the oracle across the whole"
              " k range.\n");
  return 0;
}
