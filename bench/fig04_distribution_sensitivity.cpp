// Figure 4: performance (in)consistency of the baseline top-k algorithms
// across UD / ND / CD. Radix and bucket top-k swing with the distribution;
// bitonic is flat (and falls off a cliff for k > 256).
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Figure 4", "distribution sensitivity of baseline top-k",
                     args);
  vgpu::Device dev;

  const std::vector<topk::Algo> algos = {topk::Algo::kRadixGgksOop,
                                         topk::Algo::kBucketOop,
                                         topk::Algo::kBitonic};
  const std::vector<data::Distribution> dists = {
      data::Distribution::kUniform, data::Distribution::kNormal,
      data::Distribution::kCustomized};

  std::printf("%-10s", "k");
  for (auto a : algos)
    for (auto d : dists)
      std::printf(" %9s", (topk::to_string(a).substr(0, 5) + "/" +
                           data::to_string(d)).c_str());
  std::printf("\n");

  std::vector<vgpu::device_vector<u32>> vecs;
  for (auto d : dists) vecs.push_back(data::generate(args.n(), d, args.seed));

  for (u64 k : args.k_sweep()) {
    std::printf("2^%-8d", static_cast<int>(std::bit_width(k)) - 1);
    for (auto a : algos) {
      for (size_t di = 0; di < dists.size(); ++di) {
        std::span<const u32> vs(vecs[di].data(), vecs[di].size());
        std::printf(" %9.3f", bench::baseline_ms(dev, vs, k, a));
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper: radix/bucket vary across distributions (CD worst for"
              " bucket);\nbitonic is distribution-independent but degrades"
              " sharply beyond k=256.\n");
  return 0;
}
