// Table 2: scalability of distributed Dr. Top-k (k = 128) across GPU counts
// and |V|, with communication, reload overhead and total time. Per-GPU
// memory capacity is scaled with --logn exactly as 2^30 relates to the
// paper's sizes: capacity = 2^logn, |V| up to 8x that, so the single-GPU
// configurations reload shards over PCIe just like the paper's 2^31..2^33
// columns.
#include "common.hpp"
#include "dist/multi_gpu.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Table 2", "multi-GPU scalability (k = 128)", args);
  const u64 cap = args.n();
  const u64 k = 128;

  std::printf("%-14s", "#GPU(#nodes)");
  for (u64 s = 0; s <= 3; ++s)
    std::printf(" | %-32s", ("|V|=2^" + std::to_string(args.logn + s)).c_str());
  std::printf("\n%-14s", "");
  for (int s = 0; s <= 3; ++s) std::printf(" | %8s %8s %8s %6s", "comm", "reload", "total", "spdup");
  std::printf("\n");

  const u32 gpu_counts[] = {1, 2, 4, 8, 16};
  const u32 nodes[] = {1, 1, 1, 2, 4};
  double base_total[4] = {0, 0, 0, 0};

  for (size_t gi = 0; gi < 5; ++gi) {
    std::printf("%-3u(%u)%8s", gpu_counts[gi], nodes[gi], "");
    for (u64 s = 0; s <= 3; ++s) {
      const u64 n = cap << s;
      auto v = data::generate(n, data::Distribution::kUniform, args.seed);
      std::span<const u32> vs(v.data(), v.size());
      dist::MultiGpuConfig cfg;
      cfg.num_gpus = gpu_counts[gi];
      cfg.device_capacity_elems = cap;
      auto r = dist::multi_gpu_topk(vs, k, cfg);
      if (gi == 0) base_total[s] = r.total_ms;
      std::printf(" | %8.2f %8.2f %8.2f %5.1fx", r.comm_ms, r.reload_ms,
                  r.total_ms, base_total[s] / r.total_ms);
    }
    std::printf("\n");
  }
  std::printf("\nPaper (cap=2^30): 16 GPUs reach 3.4x on 2^30 and"
              " superlinear 185.9x / 470.5x / 734.2x on 2^31..2^33, because"
              " extra GPUs eliminate the PCIe reloads that dominate the"
              " single-GPU columns.\n");
  return 0;
}
