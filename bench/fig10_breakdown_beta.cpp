// Figure 10: breakdown with beta delegates (Rule 3) + filtering. Concat and
// second top-k shrink further; delegate construction becomes the bottleneck
// (31.4ms at k=2^24 in the paper) because beta-delegate extraction multiplies
// the shuffle count — Figure 15 then fixes exactly that.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 10",
                     "Dr. Top-k breakdown — + beta delegate (unoptimized "
                     "construction)",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  core::DrTopkConfig cfg;
  cfg.beta = 2;
  cfg.filtering = true;
  cfg.construct.optimized = false;  // shuffle-based beta extraction
  bench::print_breakdown(dev, vs, cfg, args.k_sweep());
  std::printf("\nPaper (k=2^24): construction 31.4ms, first 8.9ms, concat"
              " 2.3ms, second 4ms; total 46.7ms vs 58ms in Figure 7.\n");
  return 0;
}
