// Open-loop load harness for the network front door (PR 10).
//
// Closed-loop benches (bench/serve_throughput.cpp) measure how fast the
// engine can be pushed; they cannot see queueing collapse, because a
// closed-loop client slows down with the server. This bench drives the
// real TCP stack with *Poisson arrivals at a fixed rate* — the open-loop
// discipline where a slow server meets an unrelenting client — in three
// phases, all wall-clock (host) time:
//
//   phase 0  closed-loop calibration: a saturating pipelined client
//            measures capacity (QPS); a lockstep client measures the
//            no-queueing latency baseline (closed p50/p99).
//   phase 1  lambda = 0.7 x capacity, generous deadline, exact-only.
//            Acceptance: ZERO sheds and open-loop p99 <= 5x closed p99 —
//            under healthy load the front door must not amplify latency.
//   phase 2  lambda = 1.5 x capacity, deadline ~ 3x closed p99, recall
//            floor 0.90. Sustained overload: the server must stay live
//            (liveness probe + exact answer afterwards) and shed load as
//            TYPED responses (kDegraded / kShed*) — never by wedging,
//            crashing, or silently dropping requests.
//
// Every request gets exactly one response (sheds return immediately,
// admitted work later, out of order by design) — the harness asserts the
// request_id bookkeeping closes. Results land in the "serve_openloop"
// section of BENCH_PR10.json; .github/workflows/ci.yml gates the fresh
// AND the committed report.
#include "common.hpp"

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "net/client.hpp"
#include "net/net_server.hpp"

using namespace drtopk;

namespace {

u64 wall_us() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double percentile(std::vector<u64> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1,
      static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
  return static_cast<double>(v[idx]);
}

/// Per-phase tally: one slot per Status plus the latency samples
/// (admission-to-response as observed by the client, send to receive).
struct LoadResult {
  u64 sent = 0, answered = 0;
  u64 ok = 0, degraded = 0;
  u64 shed_overload = 0, shed_deadline = 0, shed_quota = 0, shed_rate = 0;
  u64 bad = 0, err = 0;
  std::vector<u64> latency_us;
  bool matched = true;  ///< every response echoed a live id exactly once
  double wall_s = 0;
  double lambda_effective = 0;  ///< sent / wall — detects a lagging sender

  u64 shed_total() const {
    return shed_overload + shed_deadline + shed_quota + shed_rate;
  }
  void count(net::Status s) {
    switch (s) {
      case net::Status::kOk: ++ok; break;
      case net::Status::kDegraded: ++degraded; break;
      case net::Status::kShedOverload: ++shed_overload; break;
      case net::Status::kShedDeadline: ++shed_deadline; break;
      case net::Status::kShedQuota: ++shed_quota; break;
      case net::Status::kShedRate: ++shed_rate; break;
      case net::Status::kBadRequest: ++bad; break;
      case net::Status::kError: ++err; break;
    }
  }
};

net::TopkRequest make_req(u64 id, const std::vector<u64>& ks, u32 floor_bp,
                          u64 deadline_us) {
  net::TopkRequest req;
  req.request_id = id;
  req.k = ks[id % ks.size()];
  req.recall_floor_bp = floor_bp;
  req.deadline_us = deadline_us;
  return req;
}

/// One open-loop phase: a sender thread fires `n` requests on Poisson
/// ticks (never waiting for responses); the caller's thread reads until
/// every id is answered. Latency includes sender-side queueing only via
/// the socket (sends are tiny and never block in practice).
LoadResult open_loop(u16 port, double lambda_qps, u64 n,
                     const std::vector<u64>& ks, u32 floor_bp,
                     u64 deadline_us, u64 seed) {
  LoadResult r;
  net::BlockingClient cli;
  if (!cli.connect(port)) {
    r.matched = false;
    return r;
  }
  std::vector<std::atomic<u64>> sent_at(n);
  std::atomic<u64> sent{0};

  const u64 t0 = wall_us();
  std::thread sender([&] {
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> interarrival(lambda_qps / 1e6);
    auto tick = std::chrono::steady_clock::now();
    for (u64 i = 0; i < n; ++i) {
      tick += std::chrono::microseconds(
          static_cast<u64>(std::llround(interarrival(rng))));
      std::this_thread::sleep_until(tick);
      sent_at[i].store(wall_us(), std::memory_order_release);
      if (!cli.send(make_req(i, ks, floor_bp, deadline_us))) return;
      sent.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<u8> seen(n, 0);
  for (u64 got = 0; got < n; ++got) {
    auto resp = cli.recv_response();
    if (!resp) {  // EOF/error: the server dropped a well-behaved client
      r.matched = false;
      break;
    }
    const u64 id = resp->request_id;
    if (id >= n || seen[id]) {  // unknown or duplicate id
      r.matched = false;
      break;
    }
    seen[id] = 1;
    r.latency_us.push_back(wall_us() -
                           sent_at[id].load(std::memory_order_acquire));
    r.count(resp->status);
    ++r.answered;
  }
  sender.join();
  r.sent = sent.load(std::memory_order_relaxed);
  r.matched = r.matched && r.sent == n && r.answered == n;
  r.wall_s = static_cast<double>(wall_us() - t0) / 1e6;
  r.lambda_effective =
      r.wall_s > 0 ? static_cast<double>(r.sent) / r.wall_s : 0;
  return r;
}

/// Saturating closed-loop: keep `window` requests outstanding on one
/// pipelined connection until `n` complete — the classic fixed-user-count
/// closed loop. Yields the capacity estimate the open-loop lambdas scale
/// from AND the closed-loop latency distribution the phase-1 gate
/// compares against (same concurrency regime: an open-loop run at 0.7x
/// the capacity this measured must not show a worse tail than the closed
/// loop that produced it).
struct ClosedLoop {
  double qps = 0;
  std::vector<u64> latency_us;
};
ClosedLoop measure_capacity(u16 port, u64 n, u64 window,
                            const std::vector<u64>& ks) {
  ClosedLoop r;
  net::BlockingClient cli;
  if (!cli.connect(port)) return r;
  std::vector<u64> sent_at(n, 0);
  u64 next = 0, done = 0;
  const u64 t0 = wall_us();
  const auto fire = [&] {
    sent_at[next] = wall_us();
    return cli.send(make_req(next++, ks, net::kExactBp, 0));
  };
  for (u64 i = 0; i < std::min(n, window); ++i)
    if (!fire()) return r;
  while (done < n) {
    auto resp = cli.recv_response();  // executors answer out of order
    if (!resp || resp->request_id >= n) return r;
    r.latency_us.push_back(wall_us() - sent_at[resp->request_id]);
    ++done;
    if (next < n && !fire()) return r;
  }
  const double wall_s = static_cast<double>(wall_us() - t0) / 1e6;
  r.qps = wall_s > 0 ? static_cast<double>(n) / wall_s : 0;
  return r;
}

/// Lockstep closed-loop: the per-request latency baseline with no
/// self-inflicted queueing.
std::vector<u64> measure_lockstep(u16 port, u64 n,
                                  const std::vector<u64>& ks) {
  std::vector<u64> lat;
  net::BlockingClient cli;
  if (!cli.connect(port)) return lat;
  for (u64 i = 0; i < n; ++i) {
    const u64 t0 = wall_us();
    auto resp = cli.call(make_req(i, ks, net::kExactBp, 0));
    if (!resp || resp->status != net::Status::kOk) return {};
    lat.push_back(wall_us() - t0);
  }
  return lat;
}

/// Parses one counter value out of a Prometheus text snapshot (0 when the
/// series is absent — counters register lazily).
u64 prom_counter(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    if (line.rfind(name, 0) == 0 && line.size() > name.size() &&
        (line[name.size()] == ' ' || line[name.size()] == '{')) {
      const size_t sp = line.rfind(' ');
      if (sp != std::string::npos)
        return std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return 0;
}

bench::Json phase_json(const LoadResult& r, double lambda_target) {
  bench::Json o = bench::Json::object();
  o.set("lambda_target_qps", lambda_target)
      .set("lambda_effective_qps", r.lambda_effective)
      .set("requests", r.sent)
      .set("answered", r.answered)
      .set("matched", r.matched)
      .set("wall_s", r.wall_s)
      .set("ok", r.ok)
      .set("degraded", r.degraded)
      .set("shed_overload", r.shed_overload)
      .set("shed_deadline", r.shed_deadline)
      .set("shed_quota", r.shed_quota)
      .set("shed_rate", r.shed_rate)
      .set("shed_total", r.shed_total())
      .set("bad", r.bad)
      .set("error", r.err)
      .set("p50_us", percentile(r.latency_us, 0.50))
      .set("p99_us", percentile(r.latency_us, 0.99))
      .set("p999_us", percentile(r.latency_us, 0.999));
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(16);
  if (args.json.empty()) args.json = "BENCH_PR10.json";
  bench::print_title("Open-loop serving",
                     "Poisson load + overload degradation over TCP", args);

  const u64 n = args.n();
  auto corpus = data::generate(n, data::Distribution::kUniform, args.seed);
  const std::span<const u32> span(corpus.data(), corpus.size());
  const std::vector<u64> ks = {64, 128, 256, 512};

  vgpu::Device dev(vgpu::GpuProfile::v100s());
  serve::ServerConfig scfg;
  scfg.executors = 4;
  scfg.batch_max = 16;
  scfg.max_in_flight = 320;  // above the net bound: submit() never blocks
  serve::TopkServer srv(dev, scfg);
  net::SingleBackend backend(srv);
  backend.add_corpus(span);
  net::NetServerConfig ncfg;
  ncfg.finishers = 4;
  ncfg.admission.max_in_flight = 256;
  net::NetServer front(backend, ncfg);

  // Warm every request shape: plan calibration + the service-time EWMA the
  // deadline admission estimates from. Not measured.
  {
    net::BlockingClient cli;
    if (!cli.connect(front.port())) {
      std::fprintf(stderr, "warmup connect failed\n");
      return 1;
    }
    for (int round = 0; round < 10; ++round)
      for (u64 i = 0; i < ks.size(); ++i)
        if (!cli.call(make_req(i, ks, net::kExactBp, 0))) {
          std::fprintf(stderr, "warmup call failed\n");
          return 1;
        }
  }

  // ---- phase 0: closed-loop calibration ----
  // Two closed-loop baselines: the 16-user pipelined run sets capacity and
  // the tail the phase-1 gate compares against (matched concurrency); the
  // lockstep run is the no-contention service-latency floor the overload
  // deadline is scaled from.
  const u64 n_cap = args.full ? 2048 : 768;
  const ClosedLoop cap = measure_capacity(front.port(), n_cap, 16, ks);
  const double capacity = cap.qps;
  const double closed_p50 = percentile(cap.latency_us, 0.50);
  const double closed_p99 = percentile(cap.latency_us, 0.99);
  const std::vector<u64> lockstep = measure_lockstep(front.port(), 128, ks);
  const double lockstep_p50 = percentile(lockstep, 0.50);
  const double lockstep_p99 = percentile(lockstep, 0.99);
  if (capacity <= 0 || lockstep.empty()) {
    std::fprintf(stderr, "calibration failed (capacity %.1f, %zu lockstep"
                         " samples)\n", capacity, lockstep.size());
    return 1;
  }
  std::printf("closed-loop: capacity %.0f qps, 16-user p50 %.0f p99 %.0f us"
              " | lockstep p50 %.0f p99 %.0f us\n",
              capacity, closed_p50, closed_p99, lockstep_p50, lockstep_p99);

  // ---- phase 1: healthy open-loop load (0.7 x capacity) ----
  const u64 n1 = args.full ? 2048 : 1024;
  const double lam1 = 0.7 * capacity;
  const LoadResult under = open_loop(front.port(), lam1, n1, ks,
                                     net::kExactBp,
                                     /*deadline_us=*/10'000'000,
                                     args.seed + 1);
  const double under_p99 = percentile(under.latency_us, 0.99);
  const double p99_ratio = closed_p99 > 0 ? under_p99 / closed_p99 : 1e9;
  std::printf("underload:   lambda %.0f qps (eff %.0f) | p50 %.0f p99 %.0f"
              " p999 %.0f us | ratio %.2fx | ok %llu shed %llu\n",
              lam1, under.lambda_effective,
              percentile(under.latency_us, 0.50), under_p99,
              percentile(under.latency_us, 0.999), p99_ratio,
              static_cast<unsigned long long>(under.ok),
              static_cast<unsigned long long>(under.shed_total()));

  // ---- phase 2: sustained overload (1.5 x capacity) ----
  const u64 n2 = args.full ? 1024 : 512;
  const double lam2 = 1.5 * capacity;
  // Scaled from the lockstep MEDIAN (its tail is too noisy to anchor a
  // budget): ~4x the uncontended service time is comfortably feasible when
  // degraded, infeasible behind a sustained-overload queue — the regime
  // where the degrade-then-shed ladder has to do its job.
  const u64 deadline2 =
      std::max<u64>(static_cast<u64>(4.0 * lockstep_p50), 2000);
  const LoadResult over = open_loop(front.port(), lam2, n2, ks,
                                    /*floor_bp=*/9000, deadline2,
                                    args.seed + 2);
  std::printf("overload:    lambda %.0f qps (eff %.0f), deadline %llu us |"
              " ok %llu degraded %llu shed %llu (deadline %llu overload"
              " %llu)\n",
              lam2, over.lambda_effective,
              static_cast<unsigned long long>(deadline2),
              static_cast<unsigned long long>(over.ok),
              static_cast<unsigned long long>(over.degraded),
              static_cast<unsigned long long>(over.shed_total()),
              static_cast<unsigned long long>(over.shed_deadline),
              static_cast<unsigned long long>(over.shed_overload));

  // ---- liveness after overload: ping + an exact answer + metrics ----
  bool alive = false;
  u64 net_admitted = 0, net_degraded = 0, net_shed_deadline = 0;
  u64 net_responses_dropped = 0;
  {
    net::BlockingClient cli;
    if (cli.connect(front.port()) && cli.ping()) {
      auto resp = cli.call(make_req(0, ks, net::kExactBp, 0));
      alive = resp && resp->status == net::Status::kOk &&
              resp->values.size() == ks[0];
      if (auto m = cli.metrics()) {
        net_admitted = prom_counter(*m, "net_admitted");
        net_degraded = prom_counter(*m, "net_degraded");
        net_shed_deadline = prom_counter(*m, "net_shed_deadline");
        net_responses_dropped = prom_counter(*m, "net_responses_dropped");
      }
    }
  }
  front.drain();
  srv.drain();
  const u64 unattributed = dev.unattributed_launches();
  const u64 typed_overload_responses = over.degraded + over.shed_total();

  bench::Json report = bench::Json::object();
  report.set("bench", "serve_openloop")
      .set("logn", args.logn)
      .set("seed", args.seed)
      .set("executors", 4)
      .set("ks", [&] {
        bench::Json a = bench::Json::array();
        for (u64 k : ks) {
          bench::Json j = bench::Json::object();
          j.set("k", k);
          a.push(std::move(j));
        }
        return a;
      }())
      .set("closed_loop", [&] {
        bench::Json o = bench::Json::object();
        o.set("capacity_qps", capacity)
            .set("pipelined_requests", n_cap)
            .set("pipelined_users", u64{16})
            .set("p50_us", closed_p50)
            .set("p99_us", closed_p99)
            .set("lockstep_requests", static_cast<u64>(lockstep.size()))
            .set("lockstep_p50_us", lockstep_p50)
            .set("lockstep_p99_us", lockstep_p99);
        return o;
      }())
      .set("underload", phase_json(under, lam1))
      .set("overload", phase_json(over, lam2))
      .set("underload_p99_vs_closed", p99_ratio)
      .set("overload_deadline_us", deadline2)
      .set("typed_overload_responses", typed_overload_responses)
      .set("server_alive_after_overload", alive)
      .set("net_admitted", net_admitted)
      .set("net_degraded", net_degraded)
      .set("net_shed_deadline", net_shed_deadline)
      .set("net_responses_dropped", net_responses_dropped)
      .set("unattributed_launches", unattributed);
  bench::write_json_section(args.json, "serve_openloop", report);

  std::printf("\nopen loop: Poisson senders never wait for the server — at"
              " 0.7x capacity the front\ndoor must add no sheds and bounded"
              " queueing; at 1.5x it must degrade and shed with\ntyped"
              " responses while staying live.\n");

  // Acceptance (mirrored by the CI gate on fresh + committed reports).
  std::vector<std::string> errs;
  if (!under.matched || !over.matched)
    errs.push_back("request/response bookkeeping did not close");
  if (under.shed_total() != 0)
    errs.push_back("sheds at 0.7x capacity: " +
                   std::to_string(under.shed_total()));
  if (p99_ratio > 5.0)
    errs.push_back("open-loop p99 exceeds 5x closed-loop p99");
  if (typed_overload_responses == 0)
    errs.push_back("overload produced no typed degrade/shed responses");
  if (!alive) errs.push_back("server not live after sustained overload");
  if (unattributed != 0)
    errs.push_back("unattributed kernel launches: " +
                   std::to_string(unattributed));
  if (!errs.empty()) {
    for (const auto& e : errs)
      std::fprintf(stderr, "openloop acceptance FAILED: %s\n", e.c_str());
    return 1;
  }
  return 0;
}
