// Table 3: global-memory load/store transactions of GGKS radix, GGKS
// bucket and bitonic top-k vs their Dr. Top-k assisted versions
// (UD, k = 2^7). The paper measures 2.3x / 3.1x / 8.5x fewer loads and
// 766.8x / 516.9x / 298.6x fewer stores.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(22);
  bench::print_title("Table 3", "global memory transactions (k = 2^7)",
                     args);
  vgpu::Device dev;
  const u64 k = 1 << 7;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  // The GGKS baselines profiled by the paper are the in-place variants —
  // their sentinel-zeroing passes are what produce the ~2 stores/element
  // the paper's nvprof columns show.
  const std::vector<std::pair<const char*, topk::Algo>> families = {
      {"radix", topk::Algo::kRadixGgksInplace},
      {"bucket", topk::Algo::kBucketGgksInplace},
      {"bitonic", topk::Algo::kBitonic}};

  std::printf("%-10s %14s %14s %14s %14s %9s %9s\n", "family",
              "base #load", "base #store", "dr #load", "dr #store",
              "ld gain", "st gain");
  for (auto& [name, algo] : families) {
    auto base = topk::run_topk_keys<u32>(dev, vs, k, algo);
    auto cfg = bench::assisted_config(algo);
    core::StageBreakdown bd;
    (void)core::dr_topk_keys<u32>(dev, vs, k, cfg, &bd);
    const auto dr = bd.total_stats();
    std::printf("%-10s %14llu %14llu %14llu %14llu %8.1fx %8.1fx\n", name,
                static_cast<unsigned long long>(base.stats.global_load_txns),
                static_cast<unsigned long long>(base.stats.global_store_txns),
                static_cast<unsigned long long>(dr.global_load_txns),
                static_cast<unsigned long long>(dr.global_store_txns),
                static_cast<double>(base.stats.global_load_txns) /
                    static_cast<double>(dr.global_load_txns),
                static_cast<double>(base.stats.global_store_txns) /
                    static_cast<double>(std::max<u64>(1, dr.global_store_txns)));
  }
  std::printf("\nPaper (|V|=2^30): loads cut 2.3x/3.1x/8.5x, stores cut"
              " 766.8x/516.9x/298.6x (radix/bucket/bitonic).\n");
  return 0;
}
