// Figure 24: ratio of BMW's fully-evaluated workload to Dr. Top-k's
// (first + second top-k input sizes), on ND and UD, across k.
//
// Two modes are reported:
//  * IR mode (primary): a dense multi-term corpus with doc-signal x
//    term-noise scores. On ND the sum of per-term block maxima never drops
//    below the threshold of the score sums, so BMW fully evaluates every
//    document — the regime behind the paper's 212x average.
//  * single-list mode: BMW block-max scan over the raw vector at Dr.
//    Top-k's own subrange granularity.
#include "bmw/bmw.hpp"
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(18);
  bench::print_title("Figure 24", "BMW workload / Dr. Top-k workload", args);
  vgpu::Device dev;
  const u64 n = args.n();

  std::printf("IR mode (3-term dense corpus, block = 64 docs)\n");
  std::printf("%-10s %14s %14s\n", "k", "UD ratio", "ND ratio");
  for (int e = 0; e <= 9; e += args.full ? 1 : 3) {
    const u64 k = u64{1} << e;
    std::printf("2^%-8d", e);
    for (auto dist : {data::Distribution::kUniform,
                      data::Distribution::kNormal}) {
      auto corpus = bmw::make_dense_corpus(n, 3, dist, args.seed, 64);
      auto r = bmw::bmw_topk(corpus.index, corpus.query,
                             static_cast<u32>(k));
      core::StageBreakdown bd;
      std::span<const f32> scores(corpus.total_scores.data(),
                                  corpus.total_scores.size());
      (void)core::dr_topk<f32>(dev, scores, k, data::Criterion::kLargest,
                               core::DrTopkConfig{}, &bd);
      const double ratio =
          static_cast<double>(r.workload.full_evaluations) /
          static_cast<double>(bd.delegate_len + bd.concat_len);
      std::printf(" %13.1fx", ratio);
    }
    std::printf("\n");
  }

  std::printf("\nsingle-list mode (blocks = Dr. Top-k subranges)\n");
  std::printf("%-10s %14s %14s\n", "k", "UD ratio", "ND ratio");
  for (int e = 0; e <= 9; e += args.full ? 1 : 3) {
    const u64 k = u64{1} << e;
    std::printf("2^%-8d", e);
    for (auto dist : {data::Distribution::kUniform,
                      data::Distribution::kNormal}) {
      auto v = data::generate(n, dist, args.seed);
      std::span<const u32> vs(v.data(), v.size());
      core::StageBreakdown bd;
      (void)core::dr_topk_keys<u32>(dev, vs, k, core::DrTopkConfig{}, &bd);
      auto w = bmw::bmw_scan_workload(vs, u64{1} << bd.alpha, k);
      const double ratio =
          static_cast<double>(w.full_evaluations) /
          static_cast<double>(bd.delegate_len + bd.concat_len);
      std::printf(" %13.1fx", ratio);
    }
    std::printf("\n");
  }
  std::printf("\nPaper: 212x average on ND, 6x on UD — BMW works per item"
              " while Dr. Top-k skips whole subranges.\n");
  return 0;
}
