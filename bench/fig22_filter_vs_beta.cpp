// Figure 22: separate and combined effects of delegate-top-k-enabled
// filtering (Rule 2) and beta delegates (Rule 3); construction optimization
// enabled everywhere. Filtering wins for small k, beta catches up for large
// k, the combination always wins.
#include "common.hpp"

using namespace drtopk;

namespace {

double run(vgpu::Device& dev, std::span<const u32> v, u64 k, bool filter,
           u32 beta) {
  core::DrTopkConfig cfg;
  cfg.filtering = filter;
  cfg.beta = beta;
  core::StageBreakdown bd;
  (void)core::dr_topk_keys<u32>(dev, v, k, cfg, &bd);
  return bd.total_ms();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 22", "filtering vs beta delegate vs combined",
                     args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-10s %14s %14s %14s\n", "k", "filter only", "beta only",
              "combined");
  for (u64 k : args.k_sweep()) {
    std::printf("2^%-8d %14.3f %14.3f %14.3f\n",
                static_cast<int>(std::bit_width(k)) - 1,
                run(dev, vs, k, true, 1), run(dev, vs, k, false, 2),
                run(dev, vs, k, true, 2));
  }
  std::printf("\nPaper (k=2^24): filtering 54.2ms, beta 35.9ms, combined"
              " 24.7ms.\n");
  return 0;
}
