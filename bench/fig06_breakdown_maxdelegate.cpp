// Figure 6: time-consumption breakdown of the *initial* Dr. Top-k (maximum
// delegate only — Rule 1, no filtering, no beta delegates) assisting radix
// top-k, as k grows. The second top-k balloons for large k because whole
// qualified subranges are concatenated.
#include "common.hpp"

using namespace drtopk;

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  args.default_logn(24);
  bench::print_title("Figure 6",
                     "Dr. Top-k breakdown — maximum delegate only", args);
  vgpu::Device dev;
  auto v = data::generate(args.n(), data::Distribution::kUniform, args.seed);
  std::span<const u32> vs(v.data(), v.size());

  core::DrTopkConfig cfg;
  cfg.beta = 1;           // maximum delegate (Section 4.1)
  cfg.filtering = false;  // no delegate-top-k-enabled filtering yet
  cfg.construct.optimized = false;  // plain warp-centric construction
  bench::print_breakdown(dev, vs, cfg, args.k_sweep());
  std::printf("\nPaper (|V|=2^30): construction flat ~4.2ms (84%% of peak);"
              " all stages grow once k > 2^15.\n");
  return 0;
}
