#include "core/dr_topk.hpp"

namespace drtopk::core {

// The pipeline itself is header-only (templates over the key type). This
// translation unit anchors the library and provides explicit instantiations
// for the common key widths so client code links fast.
template topk::TopkResult<u32> dr_topk_keys<u32>(vgpu::Device&,
                                                 std::span<const u32>, u64,
                                                 const DrTopkConfig&,
                                                 StageBreakdown*,
                                                 vgpu::Workspace&);
template topk::TopkResult<u64> dr_topk_keys<u64>(vgpu::Device&,
                                                 std::span<const u64>, u64,
                                                 const DrTopkConfig&,
                                                 StageBreakdown*,
                                                 vgpu::Workspace&);
template topk::TopkResult<u32> dr_topk_from_delegates<u32>(
    vgpu::Device&, std::span<const u32>, u64, const DelegateVector<u32>&,
    const DrTopkConfig&, StageBreakdown*, vgpu::Workspace&,
    DeferredSecond<u32>*);
template topk::TopkResult<u64> dr_topk_from_delegates<u64>(
    vgpu::Device&, std::span<const u64>, u64, const DelegateVector<u64>&,
    const DrTopkConfig&, StageBreakdown*, vgpu::Workspace&,
    DeferredSecond<u64>*);

}  // namespace drtopk::core
