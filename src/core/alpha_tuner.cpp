#include "core/alpha_tuner.hpp"

#include <limits>

#include "core/dr_topk.hpp"

namespace drtopk::core {

double AlphaTuner::predicted_ms(const vgpu::GpuProfile& p, u64 n, u64 k,
                                int alpha, u32 beta) {
  // Equation 6 generalized to beta delegates:
  //   T_delegate = (1 + beta*2^-a) |V| C_g + 31 beta |V| 2^-a C_s
  //   T_first    = 5 beta |V| 2^-a C_g + 2 k C_g
  //   T_concat   = k C_g + 2 k 2^a C_g
  //   T_second   = 4 k 2^a C_g
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  const double sub = std::pow(2.0, static_cast<double>(alpha));
  const double b = static_cast<double>(beta);
  // Per-op times in the roofline units of the cost model: a 4-byte global
  // access costs 4/mem_bw seconds, a shuffle lane-op 1/shfl_glanes.
  const double t_g = 4.0 / (p.mem_bw_gbps * 1e9);
  const double t_s = 1.0 / p.shfl_glanes_per_sec();

  const double sec = ((1.0 + b / sub) * nn + 5.0 * b * nn / sub +
                      2.0 * kk + kk + 2.0 * kk * sub + 4.0 * kk * sub) * t_g +
                     31.0 * b * nn / sub * t_s;
  return sec * 1e3;
}

int clamp_alpha(u64 n, u64 k, u32 beta, int alpha) {
  if (n < 2 || k * 2 > n) return -1;
  // Feasibility: the delegate vector must hold at least k entries, with a
  // factor-2 headroom so the first top-k is still a real reduction.
  int max_alpha = 0;
  while ((u64{1} << (max_alpha + 1)) <= n) ++max_alpha;
  int hi = max_alpha;
  while (hi > 1) {
    const u64 subranges = (n + (u64{1} << hi) - 1) >> hi;
    if (subranges * beta >= k) break;
    --hi;
  }
  if (hi <= 0) return -1;
  const u64 subranges = (n + (u64{1} << hi) - 1) >> hi;
  if (subranges * beta < k) return -1;
  return std::clamp(alpha, 1, hi);
}

int oracle_alpha(vgpu::Device& dev, std::span<const u32> v, u64 k,
                 const DrTopkConfig& cfg, int lo, int hi,
                 std::vector<double>* times_out) {
  int best_alpha = -1;
  double best = std::numeric_limits<double>::infinity();
  if (times_out) times_out->clear();
  for (int a = lo; a <= hi; ++a) {
    DrTopkConfig c = cfg;
    c.alpha = a;
    StageBreakdown bd;
    (void)dr_topk_keys<u32>(dev, v, k, c, &bd);
    const double t = bd.total_ms();
    if (times_out) times_out->push_back(t);
    if (t < best) {
      best = t;
      best_alpha = a;
    }
  }
  return best_alpha;
}

}  // namespace drtopk::core
