// Dr. Top-k: the delegate-centric top-k pipeline (Sections 3-5).
//
//   input vector --(1) delegate vector construction--> delegate vector
//                --(2) first top-k  --> threshold kappa + taken delegates
//                --(3) concatenation (Rule 2 filtering, Rule 3 skipping)
//                --(4) second top-k --> final top-k
//
// Correctness rests on three rules, all unit-tested against brute force:
//  * Rule 1: a subrange whose maximum delegate is not among the top-k of
//    the delegate vector contributes nothing to the final top-k.
//  * Rule 2: kappa = min(top-k(D)) lower-bounds the final k-th element, so
//    elements < kappa can be filtered out during concatenation.
//  * Rule 3 (beta delegates): if not all beta delegates of a subrange are
//    taken, none of its *non-delegate* elements can reach the final top-k —
//    the subrange is skipped entirely and only its taken delegates remain
//    candidates.
//
// The taken set is "every delegate >= kappa" — a superset of the exact
// top-k(D) that preserves all three rules and allows the first top-k to
// stop its radix refinement one digit early (Section 4.3's skipped last
// iteration), trading a slightly larger candidate set for a cheaper first
// top-k.
//
// Entry points:
//  * dr_topk_keys      — the full pipeline (stages 1-4);
//  * dr_topk_from_delegates — stages 2-4 over a prebuilt delegate vector,
//    the re-entrant seam the serving layer uses to share one construction
//    pass across a batch of queries on the same data;
//  * ExecPlan          — an externally supplied (alpha, beta, engines)
//    tuple, e.g. from serve::PlanCache, that skips the alpha tuner.
#pragma once

#include <functional>

#include "core/alpha_tuner.hpp"
#include "core/concat_fused.hpp"
#include "core/delegate.hpp"
#include "topk/topk.hpp"

namespace drtopk::core {

/// Pipeline configuration: stage algorithms, the alpha/beta delegate
/// geometry, and the optimization toggles that keep earlier hot-path
/// designs measurable as baselines.
struct DrTopkConfig {
  u32 beta = 2;       ///< delegates per subrange (1 = maximum delegate only)
  int alpha = -1;     ///< log2(subrange size); -1 = auto (Rule 4)
  double tuner_const = 3.0;  ///< Rule 4 Const (paper-tuned value)
  bool filtering = true;     ///< Rule 2 delegate-top-k-enabled filtering
  bool skip_last_first_iter = true;  ///< Section 4.3 first top-k relaxation
  /// Fused single-pass stage 3 (core/concat_fused.hpp): one delegate pass
  /// writing a compact per-subrange taken-count array, block-aggregated
  /// list emission, partial-list-driven delegate concatenation. `false`
  /// replays the original three-pass stage 3 — kept as the measurable
  /// baseline and exercised by the parity tests.
  bool fused_concat = true;
  /// Single-launch shared-memory sort-and-choose (topk/small.hpp) for the
  /// first/second top-k whenever their input fits one SM's shared memory.
  /// The later pipeline stages run on inputs orders of magnitude smaller
  /// than |V|; at serving rates they are launch-overhead bound, and one
  /// launch beats a multi-pass radix refinement. Applies only when the
  /// stage's algorithm is the kRadixFlag default, so engine-comparison
  /// figures measure what they claim to.
  bool small_input_shared = true;
  ConstructOpts construct;
  topk::Algo first_algo = topk::Algo::kRadixFlag;
  topk::Algo second_algo = topk::Algo::kRadixFlag;

  /// k-selection mode: only the k-th element is needed (the paper's
  /// distinction in Section 1). The final stage runs a pure k-selection on
  /// the candidates and skips the collection pass; result.keys holds just
  /// the k-th key.
  bool selection_only = false;

  /// Optional hook invoked with the locally derived threshold kappa right
  /// after the first top-k; its return value replaces kappa. Distributed
  /// Dr. Top-k uses this to exchange the k-th delegate across GPUs
  /// (Section 5.4's optional filter-sharpening step). The returned value
  /// must still lower-bound the global k-th element; it is carried as u64
  /// regardless of key width.
  std::function<u64(u64)> kappa_hook;

  /// Exactness policy (core/fidelity.hpp). Exact (the default) is
  /// bit-identical to the pipeline as it always was. A recall target
  /// switches to the per-partition approximate mode: beta collapses to 1
  /// (resolve_beta), alpha comes from the error budget (approx_alpha),
  /// classification is delegates-only (no Rule-2 qualified streaming),
  /// and the relaxation-guard retry is skipped (counted in
  /// StageBreakdown::guard_skips). The answer is the top-k of the
  /// per-subrange maxima, with E[recall] >= the target.
  FidelityPolicy fidelity;
};

/// alpha sentinel: delegation was *determined* infeasible (k too close to
/// n) — replaying it goes straight to the direct top-k without re-running
/// the tuner. Distinct from -1, which means "not yet resolved: auto-tune".
inline constexpr int kDirectAlpha = -2;

/// A fully resolved execution plan: what the alpha tuner + engine selection
/// would decide, captured so steady-state callers (serve::PlanCache) can
/// skip tuning entirely and replay the decision.
struct ExecPlan {
  int alpha = -1;  ///< log2 subrange size; -1 = auto, kDirectAlpha = direct
  u32 beta = 2;
  topk::Algo first_algo = topk::Algo::kRadixFlag;
  topk::Algo second_algo = topk::Algo::kRadixFlag;
};

/// Applies a plan's decisions onto a base configuration.
inline DrTopkConfig apply_plan(DrTopkConfig cfg, const ExecPlan& p) {
  cfg.alpha = p.alpha;
  cfg.beta = p.beta;
  cfg.first_algo = p.first_algo;
  cfg.second_algo = p.second_algo;
  return cfg;
}

/// Effective delegates-per-subrange under the config's fidelity policy:
/// approximate mode keeps only each subrange's maximum (the per-partition
/// scheme needs exactly one representative), exact mode keeps the
/// configured beta. The single source of truth shared by dr_topk_keys,
/// the serving layer's shared construction, and plan calibration.
inline u32 resolve_beta(const DrTopkConfig& cfg) {
  const u32 beta = std::clamp<u32>(cfg.beta, 1, kMaxBeta);
  return cfg.fidelity.exact() ? beta : 1;
}

/// Largest subrange exponent the fidelity policy's error budget allows:
/// the subrange count n >> alpha must stay >= approx_min_subranges(k).
/// Bigger alpha = fewer delegates = faster, so the budget cap IS the
/// choice — Rule 4's stage-1/stage-3 balance is irrelevant when stage 3
/// never streams subranges. Returns -1 when delegation is infeasible.
inline int approx_alpha(u64 n, u64 k, const FidelityPolicy& f) {
  const u64 smin = approx_min_subranges(k, f);
  int alpha = 1;
  while ((n >> (alpha + 1)) >= smin) ++alpha;
  return clamp_alpha(n, k, 1, alpha);
}

/// Resolves the pipeline's subrange exponent for (n, k): an explicit
/// cfg.alpha wins, otherwise Rule 4's closed form (exact fidelity) or the
/// recall budget's cap (approximate fidelity), then the feasibility
/// clamp. Returns -1 when no feasible alpha exists (k too close to n).
/// The single source of truth shared by dr_topk_keys, the serving layer's
/// shared construction, and plan calibration.
inline int resolve_alpha(u64 n, u64 k, u32 beta, const DrTopkConfig& cfg) {
  if (cfg.alpha <= kDirectAlpha) return -1;  // calibrated: go direct, no tuner
  if (cfg.alpha < 0 && !cfg.fidelity.exact())
    return approx_alpha(n, k, cfg.fidelity);
  const int alpha = cfg.alpha >= 0
                        ? cfg.alpha
                        : AlphaTuner{cfg.tuner_const}.rule4_alpha(n, k);
  return clamp_alpha(n, k, beta, alpha);
}

/// Batched-serving seam for dr_topk_from_delegates: lets the serving layer
/// (a) supply an exact stage-2 threshold resolved elsewhere — one batched
/// launch covers a whole admission group's kappas — and (b) request that
/// stage 4 be *deferred*: the call stops after concatenation and hands the
/// candidate span back instead of launching the second top-k, so the caller
/// can finalize many queries' candidates with one batched selection launch
/// (topk/batched.hpp).
///
/// Ownership contract: deferral REQUIRES `alloc_cand` — the candidate
/// vector is carved out of whatever arena the callback allocates from (the
/// serving group's pooled workspace) instead of the call's scratch
/// workspace, so the span outlives the call's own scratch scope and stays
/// valid until that arena is rewound or released. The caller owns both the
/// finalization and the arena lifetime. Without `alloc_cand` the call
/// never defers (candidates would die with the call's Scope rewind); the
/// struct is then a kappa-only channel.
///
/// The deferred span's lifetime is NOT bounded by any notion of "the
/// group" or "the batch" this call belonged to: with cross-group
/// finalization windows (serve::ServerConfig::finalize_window_us) spans
/// park in a staging area *across group boundaries* and are finalized by
/// an executor that never touched the query, possibly after the group's
/// last query finished its own phase A. The contract is therefore purely
/// arena-relative: whoever schedules the deferred second top-k must keep
/// the arena behind `alloc_cand` alive — and un-rewound past the span —
/// until the batched launch has consumed it (the serving layer does this
/// by holding the group, and thus its pooled-workspace lease, in the
/// staging area until the shared launch returns). A span may also be read
/// by MORE than one logical query: Phase-A dedup points every subscriber
/// of a query class at its leader's span, so release must happen after
/// the last reader, not the first.
template <class K>
struct DeferredSecond {
  // Inputs.
  bool have_kappa = false;  ///< stage-2 threshold already resolved (exact:
                            ///< the relaxation guard never applies)
  K kappa{};
  /// Candidate-vector storage provider (must return >= the requested
  /// length); its arena must outlive the deferred finalization. Unset:
  /// candidates come from the call's workspace and deferral is disabled.
  std::function<std::span<K>(u64)> alloc_cand;
  bool defer = true;  ///< request stage-4 deferral (false: kappa-only use)
  // Outputs.
  bool deferred = false;    ///< stage 4 was deferred; result.keys is empty
  std::span<const K> cand;  ///< the candidate span (see contract above)
  u64 cand_count = 0;
};

/// Per-stage accounting: the quantities plotted in Figures 6/7/10/13/15
/// (stage times) and Figures 20/21 (workload = vector sizes).
struct StageBreakdown {
  double construct_ms = 0, first_ms = 0, concat_ms = 0, second_ms = 0;
  vgpu::KernelStats construct_stats, first_stats, concat_stats, second_stats;
  u64 delegate_len = 0;  ///< |D| — the first top-k's workload
  u64 concat_len = 0;    ///< candidate count — the second top-k's workload
  u64 num_subranges = 0;
  u64 qualified_subranges = 0;  ///< subranges concatenated (Rule 3 survivors)
  u64 taken_delegates = 0;      ///< delegates >= kappa
  int alpha = 0;
  u32 beta = 1;
  bool second_skipped = false;  ///< Rule 3 fast path (Figure 8b)
  bool fallback_direct = false; ///< k too large for delegation; ran directly
  u64 guard_trips = 0;  ///< relaxation-guard re-thresholds (tie-heavy data)
  u64 guard_skips = 0;  ///< guard fires the fidelity policy waved off

  double total_ms() const {
    return construct_ms + first_ms + concat_ms + second_ms;
  }
  vgpu::KernelStats total_stats() const {
    return construct_stats + first_stats + concat_stats + second_stats;
  }

  StageBreakdown& operator+=(const StageBreakdown& o) {
    construct_ms += o.construct_ms;
    first_ms += o.first_ms;
    concat_ms += o.concat_ms;
    second_ms += o.second_ms;
    construct_stats += o.construct_stats;
    first_stats += o.first_stats;
    concat_stats += o.concat_stats;
    second_stats += o.second_stats;
    delegate_len += o.delegate_len;
    concat_len += o.concat_len;
    num_subranges += o.num_subranges;
    qualified_subranges += o.qualified_subranges;
    taken_delegates += o.taken_delegates;
    guard_trips += o.guard_trips;
    guard_skips += o.guard_skips;
    return *this;
  }
};

/// Launch geometry for one-warp-per-subrange classification kernels.
inline vgpu::Launch acc_launch_subranges(vgpu::Device& dev, u64 subranges) {
  return dev.launch_for_warp_items(std::max<u64>(1, subranges / 32),
                                   "classify");
}

/// Stages 2-4 of the pipeline over a prebuilt delegate vector: first top-k
/// on the delegates, Rule 2/3 classification + concatenation, second top-k.
/// Re-entrant — safe to call concurrently on one Device as long as each
/// caller passes its own workspace — and the seam that lets a batch of
/// queries over the same data share one construction pass. All scratch
/// (taken counts, sid lists, the candidate vector, engine buffers) comes
/// from `ws` and is rewound before returning, so steady-state callers with
/// a warmed workspace do zero heap allocations here. The returned result
/// (and breakdown) covers stages 2-4 only; the caller owns the construction
/// accounting.
template <class K>
topk::TopkResult<K> dr_topk_from_delegates(
    vgpu::Device& dev, std::span<const K> v, u64 k,
    const DelegateVector<K>& dv, const DrTopkConfig& cfg = {},
    StageBreakdown* bd_out = nullptr,
    vgpu::Workspace& ws = vgpu::tls_workspace(),
    DeferredSecond<K>* ds = nullptr) {
  using topk::Accum;
  topk::WallTimer wall;
  const u64 n = v.size();
  assert(k >= 1 && k <= n);
  assert(dv.size() >= k);  // the delegate vector must hold a top-k
  vgpu::Workspace::Scope scope(ws);
  StageBreakdown bd;
  bd.alpha = dv.alpha;
  bd.beta = dv.beta;
  bd.num_subranges = dv.num_subranges;
  bd.delegate_len = dv.size();
  const u64 len = u64{1} << dv.alpha;
  const u32 beta = dv.beta;
  std::span<const K> dkeys(dv.keys.data(), dv.keys.size());
  std::span<const u32> dsids(dv.sids.data(), dv.sids.size());

  topk::TopkResult<K> result;

  // ---- Stage 2: first top-k -> threshold kappa ----
  // A delegate vector that fits one SM's shared memory takes the
  // single-launch sort-and-choose path: exact kappa, one launch, no
  // relaxation needed. Otherwise the Section 4.3 relaxation (skip the last
  // radix digit) applies — it is incompatible with a kappa_hook: the hook
  // is a collective exchange that every rank performs exactly once, and
  // the relaxation guard below may recompute.
  const bool ext_kappa = ds && ds->have_kappa;
  // Approximate fidelity (per-partition mode): the answer is the top-k of
  // the delegates themselves, so classification is delegates-only (Rule 2
  // never streams a subrange) and a relaxed threshold needs no guard — it
  // only widens the candidate superset the error budget already covers.
  const bool approx = !cfg.fidelity.exact();
  const bool small_first =
      !ext_kappa && cfg.small_input_shared &&
      cfg.first_algo == topk::Algo::kRadixFlag &&
      topk::small_topk_fits<K>(dev.profile(), dkeys.size());
  // The relaxation needs beta > 1 for the exact rules to absorb the looser
  // threshold; under approximate fidelity it is always sound (any
  // kappa <= the exact one keeps every top-k delegate a candidate).
  const bool relax =
      !ext_kappa && !small_first && cfg.skip_last_first_iter &&
      (beta > 1 || approx) && !cfg.kappa_hook &&
      cfg.first_algo == topk::Algo::kRadixFlag;
  K kappa;
  {
    // Defaulting stage scope: serve's "calibrate" (plan-cache probes) wins
    // when present; otherwise first-top-k launches are charged to "first".
    vgpu::StageScope stage2("first");
    if (ext_kappa) {
      // Stage 2 already resolved externally — one batched launch covered
      // the whole admission group's thresholds. The value is exact, so the
      // relaxation guard below never applies.
      kappa = ds->kappa;
    } else if (small_first) {
      Accum a2(dev);
      kappa = topk::small_topk_shared(a2, dkeys, k, /*selection_only=*/true)
                  .kth;
      bd.first_ms = a2.sim_ms();
      bd.first_stats = a2.stats();
    } else if (cfg.first_algo == topk::Algo::kRadixFlag) {
      Accum a2(dev);
      kappa = relax ? topk::radix_kth_flag_relaxed(a2, dkeys, k, 1)
                    : topk::radix_kth_flag(a2, dkeys, k);
      bd.first_ms = a2.sim_ms();
      bd.first_stats = a2.stats();
    } else {
      auto fr = topk::run_topk_keys(dev, dkeys, k, cfg.first_algo, ws);
      kappa = fr.kth;
      bd.first_ms = fr.sim_ms;
      bd.first_stats = fr.stats;
    }
  }
  if (cfg.kappa_hook)
    kappa = static_cast<K>(cfg.kappa_hook(static_cast<u64>(kappa)));

  // ---- Stage 3: subrange classification + concatenation ----
  // Named scope (no block): stage 4 below force-overrides it, and the
  // relaxation guard relabels its recompute back to "first" — but only
  // when this scope actually owns the ambient label (engaged()), so an
  // enclosing "calibrate" is never clobbered.
  vgpu::StageScope stage3("concat");
  Accum a3(dev);
  const u64 S = dv.num_subranges;
  u64 q_count = 0, partial_total = 0;
  std::span<K> cand;
  u64 cand_count = 0;
  std::span<u64> ccount(&cand_count, 1);
  // Candidate storage: the caller's arena when deferral is in play (the
  // span must outlive this call), the call's workspace otherwise.
  const auto cand_alloc = [&](u64 cap) {
    return ds && ds->alloc_cand ? ds->alloc_cand(cap) : ws.alloc<K>(cap);
  };

  // The legacy path needs the sid tags; a delegate vector built without
  // them (emit_sids=false) can only run fused — degrade gracefully rather
  // than read an empty span. Approximate fidelity also forces the fused
  // path: its delegates-only classification lives there, and the legacy
  // three-pass stage stays a faithful exact baseline.
  const bool run_fused = cfg.fused_concat || dsids.empty() || approx;
  if (run_fused) {
    // Fused single-pass design (core/concat_fused.hpp): one delegate pass
    // produces the per-subrange taken-count array plus the qualified and
    // partial sid lists; concatenation then touches only listed subranges.
    ConcatClassification cls;
    cls.taken = ws.alloc<u8>(S);
    cls.qualified = ws.alloc<u32>(S);
    cls.partial = ws.alloc<u32>(S);
    classify_subranges_fused(a3, dkeys, S, beta, dv.alpha, n, kappa, cls,
                             /*reuse_taken=*/false, /*rule2=*/!approx);
    // Relaxation guard: skipping the last digit is only profitable when
    // that digit barely discriminates. On tie-heavy data (e.g. ND, whose
    // whole value range fits inside one low digit) the relaxed threshold
    // admits nearly every delegate; detect the blow-up, pay for the exact
    // threshold, and re-threshold only the subranges the cached taken
    // counts say were touched (kappa can only rise, so untaken subranges
    // stay untaken and their chunks are skipped wholesale). Under
    // approximate fidelity the retry is waved off (FidelityPolicy): extra
    // candidates only cost the (small) second top-k, never correctness.
    if (relax && cls.taken_total > 4 * k) {
      if (approx) {
        ++bd.guard_skips;
      } else {
        ++bd.guard_trips;
        {
          // The exact-threshold recompute is first-top-k work: relabel it
          // back to "first" (only when stage3 owns the ambient label).
          vgpu::StageScope guard("first", /*force=*/stage3.engaged());
          Accum a2b(dev);
          kappa = topk::radix_kth_flag(a2b, dkeys, k);
          bd.first_ms += a2b.sim_ms();
          bd.first_stats += a2b.stats();
        }
        classify_subranges_fused(a3, dkeys, S, beta, dv.alpha, n, kappa, cls,
                                 /*reuse_taken=*/true);
      }
    }
    q_count = cls.qualified_count;
    partial_total = cls.partial_taken;
    bd.taken_delegates = cls.taken_total;
    bd.qualified_subranges = q_count;

    // Candidate capacity: every partial taken delegate + the full length
    // of every qualified subrange. The only subrange that can be short is
    // the last one; its cached taken count tells whether it qualified.
    u64 qual_len = q_count * len;
    if (q_count > 0 && S > 0) {
      const u64 tail_len = dv.subrange_len(S - 1, n);
      const u64 tail_real = std::min<u64>(beta, tail_len);
      if (tail_len < len && tail_real > 0 && cls.taken[S - 1] == tail_real)
        qual_len -= len - tail_len;
    }
    cand = cand_alloc(partial_total + qual_len);
    concat_candidates_fused(a3, v, dkeys, beta, dv.alpha, kappa,
                            cfg.filtering,
                            std::span<const u32>(cls.qualified.data(),
                                                 cls.qualified.size()),
                            q_count,
                            std::span<const u32>(cls.partial.data(),
                                                 cls.partial.size()),
                            cls.partial_count, cand, ccount);
  } else {
    // Legacy three-pass stage 3 (the PR-1 baseline, kept measurable):
    // classify, re-scan for partial emission, concatenate. Requires the
    // delegate sid tags to detect padding (run_fused above degrades to the
    // fused path when they were not materialized).
    std::span<u32> qspan = ws.alloc<u32>(S);
    std::array<u64, 3> counters{};  // [0]=qualified, [1]=partial, [2]=taken
    std::span<u64> cspan(counters.data(), counters.size());
    const auto classify = [&] {
      counters = {};
      auto cfg_l = acc_launch_subranges(dev, S);
      a3.launch(cfg_l, [&](vgpu::CtaCtx& cta) {
        cta.for_each_warp([&](vgpu::Warp& w) {
          for (u64 s = w.global_id(); s < S; s += w.grid_warps()) {
            const u64 real = std::min<u64>(beta, dv.subrange_len(s, n));
            auto ks = w.load_coalesced(dkeys, s * beta, beta);
            auto ss = w.load_coalesced(dsids, s * beta, beta);
            u32 taken = 0;
            for (u32 j = 0; j < beta; ++j)
              if (ss[j] != kInvalidSid && ks[j] >= kappa) ++taken;
            if (taken == 0) continue;
            w.atomic_add(cspan, 2, static_cast<u64>(taken));
            if (taken == real) {
              const u64 pos = w.atomic_add(cspan, 0, u64{1});
              w.st(qspan, pos, static_cast<u32>(s));
            } else {
              w.atomic_add(cspan, 1, static_cast<u64>(taken));
            }
          }
        });
      });
    };
    classify();
    // Relaxation guard (legacy form: a full re-classification pass).
    if (relax && counters[2] > 4 * k) {
      ++bd.guard_trips;
      {
        vgpu::StageScope guard("first", /*force=*/stage3.engaged());
        Accum a2b(dev);
        kappa = topk::radix_kth_flag(a2b, dkeys, k);
        bd.first_ms += a2b.sim_ms();
        bd.first_stats += a2b.stats();
      }
      classify();
    }
    q_count = counters[0];
    partial_total = counters[1];
    bd.taken_delegates = counters[2];
    bd.qualified_subranges = q_count;

    u64 qual_len = q_count * len;
    for (u64 i = 0; i < q_count; ++i) {
      if (qspan[i] == S - 1) {
        qual_len -= len - dv.subrange_len(S - 1, n);
        break;
      }
    }
    cand = cand_alloc(partial_total + qual_len);

    // Phase B1: partial subranges contribute their taken delegates
    // (full delegate re-scan, one atomic + divergent stores per subrange).
    if (partial_total > 0) {
      auto cfg_l = acc_launch_subranges(dev, S);
      a3.launch(cfg_l, [&](vgpu::CtaCtx& cta) {
        cta.for_each_warp([&](vgpu::Warp& w) {
          for (u64 s = w.global_id(); s < S; s += w.grid_warps()) {
            const u64 real = std::min<u64>(beta, dv.subrange_len(s, n));
            auto ks = w.load_coalesced(dkeys, s * beta, beta);
            auto ss = w.load_coalesced(dsids, s * beta, beta);
            u32 taken = 0;
            for (u32 j = 0; j < beta; ++j)
              if (ss[j] != kInvalidSid && ks[j] >= kappa) ++taken;
            if (taken == 0 || taken == real) continue;
            const u64 base = w.atomic_add(ccount, 0, static_cast<u64>(taken));
            u32 out = 0;
            for (u32 j = 0; j < beta; ++j) {
              if (ss[j] != kInvalidSid && ks[j] >= kappa)
                w.st(cand, base + out++, ks[j]);
            }
          }
        });
      });
    }

    // Phase B2: warp-centric concatenation of qualified subranges.
    concat_qualified(a3, v, len, kappa, cfg.filtering,
                     std::span<const u32>(qspan.data(), qspan.size()),
                     q_count, cand, ccount);
  }
  bd.concat_ms = a3.sim_ms();
  bd.concat_stats = a3.stats();
  bd.concat_len = cand_count;

  // ---- Stage 4: second top-k (skipped entirely when Rule 3 leaves the
  // taken delegates as the exact answer — Figure 8b) ----
  // Force-override stage3's ambient label; a defaulting scope would leave
  // stage-4 launches charged to "concat". No launches follow this region.
  vgpu::StageScope stage4("second", /*force=*/stage3.engaged());
  bd.second_skipped = (q_count == 0 && bd.taken_delegates == k);
  // Deferral requires caller-owned candidate storage: without alloc_cand
  // the span lives in this call's scratch scope and would dangle.
  if (ds)
    ds->deferred =
        ds->defer && static_cast<bool>(ds->alloc_cand) && !bd.second_skipped;
  const bool small_second =
      !bd.second_skipped && cfg.small_input_shared &&
      cfg.second_algo == topk::Algo::kRadixFlag &&
      topk::small_topk_fits<K>(dev.profile(), cand_count);
  if (ds && ds->deferred) {
    // Deferred finalization: hand the candidates back. The caller owns the
    // second top-k (typically one batched launch covering a whole admission
    // group) and the arena the span lives in; keys/kth are left empty.
    ds->cand = std::span<const K>(cand.data(), cand_count);
    ds->cand_count = cand_count;
  } else if (bd.second_skipped) {
    result.keys.assign(cand.begin(), cand.begin() + static_cast<i64>(k));
    std::sort(result.keys.begin(), result.keys.end(), std::greater<>());
    if (cfg.selection_only) result.keys = {result.keys.back()};
  } else if (small_second) {
    // Candidate vector fits one SM: single-launch sort-and-choose (full
    // top-k and pure selection alike).
    std::span<const K> cview(cand.data(), cand_count);
    topk::Accum a4(dev);
    auto sr = topk::small_topk_shared(a4, cview, k, cfg.selection_only);
    bd.second_ms = a4.sim_ms();
    bd.second_stats = a4.stats();
    result.keys = std::move(sr.keys);
  } else if (cfg.selection_only) {
    // Pure k-selection on the candidates: no collection pass at all.
    std::span<const K> cview(cand.data(), cand_count);
    topk::Accum a4(dev);
    const K kth = topk::radix_kth_flag(a4, cview, k);
    bd.second_ms = a4.sim_ms();
    bd.second_stats = a4.stats();
    result.keys = {kth};
  } else {
    std::span<const K> cview(cand.data(), cand_count);
    auto sr = topk::run_topk_keys(dev, cview, k, cfg.second_algo, ws);
    bd.second_ms = sr.sim_ms;
    bd.second_stats = sr.stats;
    result.keys = std::move(sr.keys);
  }
  if (!result.keys.empty()) result.kth = result.keys.back();
  result.stats = bd.total_stats();
  result.sim_ms = bd.total_ms();
  result.wall_ms = wall.ms();
  if (bd_out) *bd_out = bd;
  return result;
}

/// Dr. Top-k over directed keys. Returns the exact top-k multiset (sorted
/// descending), total stats/simulated time, and optionally the breakdown.
/// Every scratch buffer of every stage (the delegate vector included) is
/// carved out of `ws` and rewound on return.
template <class K>
topk::TopkResult<K> dr_topk_keys(vgpu::Device& dev, std::span<const K> v,
                                 u64 k, const DrTopkConfig& cfg = {},
                                 StageBreakdown* bd_out = nullptr,
                                 vgpu::Workspace& ws = vgpu::tls_workspace()) {
  using topk::Accum;
  topk::WallTimer wall;
  const u64 n = v.size();
  assert(k >= 1 && k <= n);
  const u32 beta = resolve_beta(cfg);
  const int alpha = resolve_alpha(n, k, beta, cfg);

  if (alpha < 0) {
    // Delegation infeasible (k within a factor of |V|): direct top-k.
    StageBreakdown bd;
    bd.alpha = alpha;
    bd.beta = beta;
    bd.fallback_direct = true;
    // The direct run is the whole answer; charge it to the second
    // selection, matching where its stats land in the breakdown.
    vgpu::StageScope stage_scope("second");
    topk::TopkResult<K> result = topk::run_topk_keys(dev, v, k,
                                                     cfg.second_algo, ws);
    bd.second_ms = result.sim_ms;
    bd.second_stats = result.stats;
    bd.concat_len = n;
    // Selection-only keeps its contract on every path: just the k-th key.
    if (cfg.selection_only) result.keys = {result.kth};
    if (bd_out) *bd_out = bd;
    result.wall_ms = wall.ms();
    return result;
  }

  // ---- Stage 1: delegate vector construction ----
  vgpu::Workspace::Scope scope(ws);  // the delegate vector is call scratch
  Accum a1(dev);
  ConstructOpts copts = cfg.construct;
  // The fused stage 3 derives delegate validity analytically; skip the sid
  // array (and its stores) entirely.
  if (cfg.fused_concat) copts.emit_sids = false;
  DelegateVector<K> dv = build_delegate_vector(a1, v, alpha, beta, copts, ws);

  // ---- Stages 2-4 ----
  StageBreakdown bd;
  topk::TopkResult<K> result = dr_topk_from_delegates(dev, v, k, dv, cfg,
                                                      &bd, ws);
  bd.construct_ms = a1.sim_ms();
  bd.construct_stats = a1.stats();
  result.stats += bd.construct_stats;
  result.sim_ms += bd.construct_ms;
  result.wall_ms = wall.ms();
  if (bd_out) *bd_out = bd;
  return result;
}

/// K-selection: the value of the k-th largest key only (Section 1's
/// "k-selection algorithm"). Cheaper than the full top-k: the candidate
/// stage needs no collection pass.
template <class K>
K dr_kth_keys(vgpu::Device& dev, std::span<const K> v, u64 k,
              DrTopkConfig cfg = {}, StageBreakdown* bd_out = nullptr,
              vgpu::Workspace& ws = vgpu::tls_workspace()) {
  cfg.selection_only = true;
  return dr_topk_keys<K>(dev, v, k, cfg, bd_out, ws).kth;
}

/// Typed frontend mirroring topk::run_topk.
template <class T>
topk::TypedTopkResult<T> dr_topk(vgpu::Device& dev, std::span<const T> values,
                                 u64 k, data::Criterion criterion,
                                 const DrTopkConfig& cfg = {},
                                 StageBreakdown* bd_out = nullptr,
                                 vgpu::Workspace& ws = vgpu::tls_workspace()) {
  using Key = typename data::KeyTraits<T>::Key;
  topk::WallTimer wall;
  topk::TopkResult<Key> kr;
  if constexpr (std::is_same_v<T, u32> || std::is_same_v<T, u64>) {
    if (criterion == data::Criterion::kLargest)
      kr = dr_topk_keys<Key>(dev, values, k, cfg, bd_out, ws);
  }
  if (kr.keys.empty()) {
    topk::Accum acc(dev);
    vgpu::Workspace::Scope scope(ws);  // directed keys are call scratch
    auto keys = topk::make_directed_keys(acc, values, criterion, ws);
    kr = dr_topk_keys<Key>(dev,
                           std::span<const Key>(keys.data(), keys.size()), k,
                           cfg, bd_out, ws);
    kr.stats += acc.stats();
    kr.sim_ms += acc.sim_ms();
  }
  topk::TypedTopkResult<T> r;
  r.values.reserve(kr.keys.size());
  for (const Key key : kr.keys)
    r.values.push_back(data::value_from_directed_key<T>(key, criterion));
  r.kth = r.values.back();
  r.stats = kr.stats;
  r.sim_ms = kr.sim_ms;
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::core
