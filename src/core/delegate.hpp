// Delegate vector construction (Sections 4.1, 4.3, 5.1 and 5.3).
//
// The input vector is split into subranges of 2^alpha elements; each
// subrange contributes its top-beta elements ("delegates") tagged with the
// subrange id. Two construction kernels, selected by subrange size exactly
// as in the paper:
//
//  * Warp-centric path (alpha > 5): one warp per subrange. Lanes stride
//    through the subrange keeping a private top-beta, then beta rounds of
//    shuffle-based max-reduction extract the delegates (31 shuffles per
//    round for a full warp — Equation 2's communication term, and the
//    "beta x more shuffles" cost Section 4.3 mentions).
//
//  * Coalesced-load-to-shared + strided-compute path (alpha <= 5,
//    Section 5.3): one warp loads 32 whole subranges into shared memory
//    coalescedly, then each lane walks one subrange privately — full thread
//    utilization and zero shuffles. The shared layout is padded (pitch 33)
//    to avoid bank conflicts; the padding is a config knob so its effect is
//    measurable.
//
// Short tail subranges yield fewer than beta real delegates; missing slots
// are padded with (key = 0, sid = kInvalidSid) entries which every consumer
// ignores.
#pragma once

#include "topk/kernels.hpp"

namespace drtopk::core {

using topk::Accum;
using topk::Slice;
using topk::warp_slice;

inline constexpr u32 kInvalidSid = 0xFFFF'FFFFu;
inline constexpr u32 kMaxBeta = 4;

/// Largest alpha handled by the shared-memory construction path
/// (subranges of up to 32 elements — one per lane).
inline constexpr int kSharedPathMaxAlpha = 5;

struct ConstructOpts {
  bool optimized = true;       ///< use the shared-memory path for small alpha
  bool shared_padding = true;  ///< pad the shared layout (bank conflicts off)
  /// Store the per-delegate subrange-id array. The fused stage-3 pipeline
  /// derives delegate validity analytically (valid slots are a prefix of
  /// each subrange's beta slots) and never reads sids, so the pipeline
  /// skips these stores entirely; consumers that want the tags (tests, the
  /// distributed layer) keep the default.
  bool emit_sids = true;
};

/// Workspace-backed delegate vector: `keys`/`sids` view arena memory owned
/// by the workspace the constructor was given; the caller controls their
/// lifetime through that workspace's scope. Invariant (relied on by the
/// fused concatenation): within each subrange's beta slots the real
/// delegates occupy a prefix of length min(beta, subrange_len), sorted
/// descending; trailing slots are padding (key 0 / sid kInvalidSid).
template <class K>
struct DelegateVector {
  std::span<K> keys;    ///< |D| = num_subranges * beta entries
  std::span<u32> sids;  ///< subrange id per delegate (empty if !emit_sids)
  u64 num_subranges = 0;
  u32 beta = 1;
  int alpha = 0;

  u64 size() const { return keys.size(); }
  u64 subrange_len(u64 s, u64 n) const {
    const u64 len = u64{1} << alpha;
    const u64 begin = s * len;
    return std::min(len, n - begin);
  }
};

namespace detail {

/// Per-lane top-beta accumulator (descending insertion into a tiny array).
template <class K>
struct LaneTopBeta {
  std::array<K, kMaxBeta> best;  // sorted descending, only [0, count) valid
  u32 count = 0;

  void insert(K x, u32 beta) {
    if (count < beta) {
      u32 i = count++;
      while (i > 0 && best[i - 1] < x) {
        best[i] = best[i - 1];
        --i;
      }
      best[i] = x;
    } else if (x > best[beta - 1]) {
      u32 i = beta - 1;
      while (i > 0 && best[i - 1] < x) {
        best[i] = best[i - 1];
        --i;
      }
      best[i] = x;
    }
  }
};

/// Extracts the top-`rounds` values of the union of 32 per-lane top-beta
/// sets using shuffle-based max-reductions (charged per round), writing
/// (key, sid) pairs for subrange `sid` at delegate slot base `out_base`.
template <class K>
void emit_warp_delegates(vgpu::Warp& w,
                         vgpu::LaneArray<LaneTopBeta<K>>& lanes, u32 beta,
                         u64 real_count, u64 sid, u64 out_base,
                         std::span<K> dkeys, std::span<u32> dsids) {
  vgpu::LaneArray<u32> ptr{};  // per-lane cursor into its sorted top-beta
  for (u32 r = 0; r < beta; ++r) {
    if (r < real_count) {
      vgpu::LaneArray<K> prop{};
      vgpu::LaneArray<u8> has{};
      for (u32 l = 0; l < vgpu::kWarpSize; ++l) {
        has[l] = ptr[l] < lanes[l].count ? 1 : 0;
        prop[l] = has[l] ? lanes[l].best[ptr[l]] : std::numeric_limits<K>::min();
      }
      // A lane with no proposal left could tie a real minimum-key element;
      // resolve by masking: ballot the proposing lanes, reduce over them.
      const u32 mask = w.ballot(has);
      auto [val, lane] = w.reduce_max_index(prop);
      // If the winner has no element (all-zero proposals tie), pick the
      // lowest proposing lane instead.
      if (!has[lane] && mask != 0) {
        lane = static_cast<u32>(std::countr_zero(mask));
        val = prop[lane];
      }
      ++ptr[lane];
      w.st(dkeys, out_base + r, val);
      if (!dsids.empty()) w.st(dsids, out_base + r, static_cast<u32>(sid));
    } else {
      w.st(dkeys, out_base + r, K{});
      if (!dsids.empty()) w.st(dsids, out_base + r, kInvalidSid);
    }
  }
}

}  // namespace detail

/// Builds the delegate vector for subranges of 2^alpha elements. The
/// delegate arrays are allocated from `ws` (no per-call heap traffic); the
/// caller keeps them alive by not rewinding past this point.
template <class K>
DelegateVector<K> build_delegate_vector(
    Accum& acc, std::span<const K> v, int alpha, u32 beta,
    const ConstructOpts& opts = {},
    vgpu::Workspace& ws = vgpu::tls_workspace()) {
  // Stage 1 of the paper's pipeline. Defaulting scope: an enclosing label
  // (e.g. serve's "calibrate") wins.
  vgpu::StageScope stage_scope("construct");
  assert(beta >= 1 && beta <= kMaxBeta);
  assert(alpha >= 0);
  const u64 n = v.size();
  const u64 len = u64{1} << alpha;
  const u64 S = (n + len - 1) / len;

  DelegateVector<K> dv;
  dv.num_subranges = S;
  dv.beta = beta;
  dv.alpha = alpha;
  dv.keys = ws.alloc<K>(S * beta);
  if (opts.emit_sids) dv.sids = ws.alloc<u32>(S * beta);
  std::span<K> dkeys = dv.keys;
  std::span<u32> dsids = dv.sids;
  const bool emit_sids = opts.emit_sids;

  const bool shared_path = opts.optimized && alpha <= kSharedPathMaxAlpha &&
                           len <= vgpu::kWarpSize;

  // Subranges handled by the shared path: whole groups of 32 full-length
  // subranges. The tail (and everything, on the warp path) goes through the
  // shuffle-based kernel.
  const u64 groups = shared_path ? (n / (vgpu::kWarpSize * len)) : 0;
  const u64 first_tail_subrange = groups * vgpu::kWarpSize;

  if (groups > 0) {
    const u32 pitch = opts.shared_padding ? 33u : 32u;
    const u64 shared_per_warp = static_cast<u64>(len) * pitch * sizeof(K);
    const u32 warps_per_cta = 8;
    auto cfg = acc.device().launch_for_warp_items(
        groups, "delegate_shared", warps_per_cta,
        shared_per_warp * warps_per_cta);
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        auto sh = cta.shared().alloc<K>(len * pitch);
        for (u64 g = w.global_id(); g < groups; g += w.grid_warps()) {
          const u64 sid0 = g * vgpu::kWarpSize;
          const u64 base = sid0 * len;
          // (i) Coalesced load of 32 subranges, scattered into the padded
          // [element][subrange] shared layout.
          const u64 total = vgpu::kWarpSize * len;
          for (u64 off = 0; off < total; off += vgpu::kWarpSize) {
            auto vals = w.load_coalesced(v, base + off);
            sh.warp_scatter(
                vgpu::kWarpSize,
                [&](u32 l) {
                  const u64 flat = off + l;
                  return (flat % len) * pitch + flat / len;
                },
                vals);
          }
          // (ii) Strided compute: lane t walks subrange t out of shared
          // memory — no shuffles at all.
          vgpu::LaneArray<detail::LaneTopBeta<K>> tops{};
          for (u64 e = 0; e < len; ++e) {
            auto row = sh.warp_gather(vgpu::kWarpSize, [&](u32 l) {
              return e * pitch + l;
            });
            for (u32 l = 0; l < vgpu::kWarpSize; ++l)
              tops[l].insert(row[l], beta);
          }
          // (iii) Coalesced emission: the 32*beta delegate slots of this
          // group are contiguous in the SoA delegate arrays.
          const u64 out_base = sid0 * beta;
          const u64 slots = vgpu::kWarpSize * beta;
          const u64 real = std::min<u64>(beta, len);
          for (u64 off = 0; off < slots; off += vgpu::kWarpSize) {
            vgpu::LaneArray<K> ks{};
            vgpu::LaneArray<u32> ss{};
            const u32 active = static_cast<u32>(
                std::min<u64>(vgpu::kWarpSize, slots - off));
            for (u32 l = 0; l < active; ++l) {
              const u64 flat = off + l;
              const u64 s_local = flat / beta;
              const u64 j = flat % beta;
              if (j < real) {
                ks[l] = tops[s_local].best[j];
                ss[l] = static_cast<u32>(sid0 + s_local);
              } else {
                ks[l] = K{};
                ss[l] = kInvalidSid;
              }
            }
            w.store_coalesced(dkeys, out_base + off, ks, active);
            if (emit_sids) w.store_coalesced(dsids, out_base + off, ss, active);
          }
        }
      });
    });
  }

  if (first_tail_subrange < S) {
    // Warp-centric path: one warp per subrange, shuffle-based extraction.
    const u64 tail_count = S - first_tail_subrange;
    auto cfg = acc.device().launch_for_warp_items(tail_count, "delegate_warp");
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        for (u64 t = w.global_id(); t < tail_count; t += w.grid_warps()) {
          const u64 s = first_tail_subrange + t;
          const u64 begin = s * len;
          const u64 real_len = std::min(len, n - begin);
          vgpu::LaneArray<detail::LaneTopBeta<K>> tops{};
          w.scan_coalesced(v, begin, real_len, [&](u32 lane, K x) {
            tops[lane].insert(x, beta);
          });
          detail::emit_warp_delegates(w, tops, beta,
                                      std::min<u64>(beta, real_len), s,
                                      s * beta, dkeys, dsids);
        }
      });
    });
  }
  return dv;
}

}  // namespace drtopk::core
