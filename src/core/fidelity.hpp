// Exactness as a per-query execution policy (ROADMAP item 3).
//
// Every layer of the pipeline historically *assumed* exact answers; this
// header turns that assumption into a value. A FidelityPolicy is either
// exact (the default — bit-identical to the paper's pipeline) or carries a
// recall target rho < 1, which licenses the approximate per-partition mode
// in the style of "Approximate Top-k for Increased Parallelism"
// (arXiv 2412.04358) and the generalized two-stage scheme of
// arXiv 2506.04165:
//
//   * construction keeps only each subrange's maximum (beta = 1),
//   * the answer is the top-k of the per-subrange maxima — Rule 2's
//     qualified-subrange streaming and the second-stage collection over it
//     are skipped entirely,
//   * the Section 4.3 relaxation guard never re-thresholds: a relaxed
//     kappa only widens the candidate superset, which the error budget
//     already tolerates.
//
// Recall model: with S subranges and exchangeable value placement, the
// i-th largest element is its subrange's maximum unless one of the i-1
// larger elements shares the subrange, so
//   E[recall] >= 1 - (k-1)/(2S).
// approx_min_subranges doubles that bound's requirement (margin for
// finite-sample variance) and floors it, giving the largest subrange size
// (= fewest delegates) the budget allows.
//
// The policy is quantized to basis points wherever it acts as a key
// (admission-group signatures, dedup classes, PlanCache keys) so that two
// "0.9" targets computed through different arithmetic never split a group.
#pragma once

#include <algorithm>
#include <cmath>

#include "vgpu/types.hpp"

namespace drtopk::core {

/// Per-query exactness policy: exact (recall_target == 1) or a recall
/// target in (0, 1). Exact is the default everywhere — approximate
/// execution is always an explicit opt-in.
struct FidelityPolicy {
  /// Fraction of the true top-k the answer must contain (in expectation,
  /// with margin). 1.0 = exact, bit-identical pipeline.
  double recall_target = 1.0;

  /// True when the policy demands the exact pipeline.
  bool exact() const { return recall_target >= 1.0; }

  /// The target quantized to basis points (0..10000); the form used in
  /// every key/signature so float noise cannot split groups or plans.
  u32 quantized_bp() const {
    const double r = std::clamp(recall_target, 0.0, 1.0);
    return static_cast<u32>(std::lround(r * 10000.0));
  }

  /// Named constructor for a recall-target policy (clamped to [0.5, 1]:
  /// below one-half the per-partition scheme is the wrong tool).
  static FidelityPolicy approx(double rho) {
    return FidelityPolicy{std::clamp(rho, 0.5, 1.0)};
  }
};

/// Policies compare by their quantized form — the same equivalence every
/// signature/key uses.
inline bool operator==(const FidelityPolicy& a, const FidelityPolicy& b) {
  return a.quantized_bp() == b.quantized_bp();
}

/// Smallest subrange count honoring the policy's error budget for a top-k
/// query: S >= (k-1)/(1-rho) keeps E[missed elements] <= k(1-rho)/2 —
/// half the budget, the other half is finite-sample margin. Floored at
/// max(64, k) so tiny queries never degenerate and the delegate vector
/// always holds a top-k.
inline u64 approx_min_subranges(u64 k, const FidelityPolicy& f) {
  const double miss = std::max(1.0 - f.recall_target, 1e-4);
  const u64 budget =
      static_cast<u64>(std::ceil(static_cast<double>(k - 1) / miss));
  return std::max<u64>({u64{64}, k, budget});
}

}  // namespace drtopk::core
