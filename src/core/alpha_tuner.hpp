// Subrange-size (alpha) selection — Rule 4, Section 5.2.
//
// The paper proves the total Dr. Top-k time is convex in alpha and derives
//   alpha* = 1/2 * (Const + log2|V| - log2 k),
// with Const folding the C_global/C_shfl ratio and second-order effects;
// performance tuning lands Const = 3 on V100S. AlphaTuner exposes:
//   * rule4_alpha    — the closed form (auto-tuned alpha of Figure 14),
//   * analytic_const — Const from a GpuProfile's cycle costs (Eq. 11),
//   * predicted_ms   — Equation 6 evaluated directly (Figure 13's model),
//   * oracle_alpha   — exhaustive sweep, the "oracle" of Figure 14.
#pragma once

#include <cmath>
#include <span>

#include "vgpu/device.hpp"

namespace drtopk::core {

struct DrTopkConfig;  // core/dr_topk.hpp

struct AlphaTuner {
  /// Rule 4's Const. The paper tunes this to 3 on V100S; analytic_const()
  /// gives the first-principles part (the Delta' correction is empirical).
  double const_term = 3.0;

  /// Closed-form alpha for (|V|, k); unclamped Rule 4. Half-integers round
  /// down: for |V|=2^30, k=2^24 this yields the paper's "optimal alpha = 4"
  /// (Section 5.3).
  int rule4_alpha(u64 n, u64 k) const {
    const double a =
        0.5 * (const_term + std::log2(static_cast<double>(n)) -
               std::log2(static_cast<double>(k)));
    return static_cast<int>(std::floor(a + 0.25));
  }

  /// Const = log2(6*C_global + 31*C_shfl) - log2(6*C_global)  (Eq. 11,
  /// without the empirical Delta' term).
  static double analytic_const(const vgpu::GpuProfile& p) {
    return std::log2(6.0 * p.c_global + 31.0 * p.c_shfl) -
           std::log2(6.0 * p.c_global);
  }

  /// Equation 6 evaluated for (n, k, alpha, beta): the model curve that
  /// Figure 13 shows is convex. Returns simulated milliseconds under the
  /// same normalization the CostModel uses.
  static double predicted_ms(const vgpu::GpuProfile& p, u64 n, u64 k,
                             int alpha, u32 beta = 1);
};

/// Clamps alpha to the feasible range: at least 1, at most log2(n), and
/// small enough that the delegate vector still holds k entries
/// (num_subranges * beta >= k). Returns -1 when no feasible alpha exists
/// (k too close to n) — the caller falls back to a direct top-k.
int clamp_alpha(u64 n, u64 k, u32 beta, int alpha);

/// Oracle alpha: runs the full pipeline for every alpha in [lo, hi] and
/// returns the argmin of simulated time. Defined in alpha_tuner.cpp.
int oracle_alpha(vgpu::Device& dev, std::span<const u32> v, u64 k,
                 const DrTopkConfig& cfg, int lo, int hi,
                 std::vector<double>* times_out = nullptr);

}  // namespace drtopk::core
