// Group-wide batched stage 3: ONE classify + ONE concat launch for many
// same-delegate-vector selections.
//
// The serving layer collapsed stages 2 and 4 into per-group batched
// launches (topk/batched.hpp), leaving every query its own stage-3
// classify/concat pair — the dominant per-query fixed cost at serving
// rates. But within an admission group every query classifies the SAME
// delegate vector, only against its own threshold kappa(k): the work
// differs per query by one scalar. This engine runs the whole group's
// stage 3 as segment-tagged batches, mirroring topk/batched.hpp's design:
//
//   classify_subranges_batched   one launch over (segment x chunk) work
//                                items. Per-CTA shared-memory staging is
//                                reused across segments — the staging
//                                buffers are flushed to the *current*
//                                segment's qualified/partial lists (each
//                                with its own global cursor cells) whenever
//                                the CTA's walk crosses a segment boundary,
//                                so list emission stays block-aggregated
//                                while every segment keeps its own offsets.
//   concat_candidates_batched    one launch over the union of every
//                                segment's partial-list batches and
//                                qualified subranges, located through a
//                                per-segment item-offset table; candidates
//                                land in each segment's own span through
//                                its own cursor cell.
//
// Re-thresholding (the Section 4.3 relaxation guard) is per segment: a
// retry pass marks untouched segments `skip` — their work items are not
// even visited — and reuses the touched segments' cached taken counts to
// gate chunks, exactly like the single-query fused retry but without
// re-running the segments whose threshold was already exact. The serving
// layer feeds exact kappas (resolved by the group's batched first top-k),
// so the guard never fires there; the per-segment capability exists for
// callers that batch relaxed thresholds. Which segments a retry actually
// touches is the fidelity policy's decision (core/fidelity.hpp):
// mark_guard_retry sets `skip` on every segment whose policy tolerates
// the relaxed threshold, so only exactness-demanding segments pay the
// re-classification.
//
// Classification math is identical to core/concat_fused.hpp (same real-
// prefix rule, same Rule 2/3 tests), so for any segment the produced
// candidate MULTISET equals the per-query fused path's — the final top-k
// is bit-identical once selected. Candidate ORDER may differ (different
// reservation interleavings); every consumer sorts.
#pragma once

#include "core/concat_fused.hpp"

namespace drtopk::core {

/// One selection problem of a batched stage 3: its threshold, its
/// caller-allocated per-subrange scratch, its classification outputs, and
/// (for the concat pass) its caller-sized candidate span. Scratch spans
/// must each hold >= S entries.
template <class K>
struct BatchedConcatSegment {
  K kappa{};                 ///< this segment's stage-2 threshold
  std::span<u8> taken;       ///< per-subrange taken count (scratch, >= S)
  std::span<u32> qualified;  ///< Rule-3 fully-taken sid list (scratch)
  std::span<u32> partial;    ///< partially-taken sid list (scratch)
  u64 qualified_count = 0;
  u64 partial_count = 0;
  u64 partial_taken = 0;     ///< sum of taken over partial subranges
  u64 taken_total = 0;       ///< delegates >= kappa
  /// Candidate output (concat pass): the caller allocates
  /// `partial_taken + qualified_count * 2^alpha` (minus the usual ragged-
  /// tail correction) after classification, exactly as the fused path does.
  std::span<K> cand;
  u64 cand_count = 0;
  /// Retry passes only: true = this segment's threshold did not change —
  /// its results are left untouched and none of its work items are visited.
  bool skip = false;
};

/// Candidate capacity for one classified segment: every partial taken
/// delegate plus the full length of every qualified subrange, shortened
/// when the ragged tail subrange itself qualified. Shared by the serving
/// setup and the tests so the sizing rule cannot drift from the fused
/// path's.
template <class K>
u64 batched_concat_capacity(const BatchedConcatSegment<K>& seg, u64 S,
                            u32 beta, int alpha, u64 n) {
  const u64 len = u64{1} << alpha;
  u64 qual_len = seg.qualified_count * len;
  if (S > 0) {
    const u64 tail_len = n - (S - 1) * len;
    const u64 tail_real = std::min<u64>(beta, tail_len);
    if (tail_len < len && tail_real > 0 && seg.taken[S - 1] == tail_real)
      qual_len -= len - tail_len;
  }
  return seg.partial_taken + qual_len;
}

/// ONE launch classifies every subrange of the shared delegate vector
/// against every segment's kappa. Work items are (segment, 32-subrange
/// chunk) pairs, segment-major; per-CTA staging flushes on segment
/// crossings so each segment's qualified/partial lists and counters fill
/// through its own global cells. With `reuse_taken` (retry pass), chunks
/// whose cached taken counts are all zero are skipped per segment, and
/// segments marked `skip` are not visited at all — the relaxation-guard
/// re-threshold touches only the segments (and chunks) that need it.
template <class K>
void classify_subranges_batched(topk::Accum& acc, std::span<const K> dkeys,
                                u64 S, u32 beta, int alpha, u64 n,
                                std::span<BatchedConcatSegment<K>> segs,
                                bool reuse_taken = false) {
  if (segs.empty() || S == 0) return;
  const u64 len = u64{1} << alpha;
  const u64 chunks = (S + vgpu::kWarpSize - 1) / vgpu::kWarpSize;
  const u64 nsegs = segs.size();
  const u64 items = nsegs * chunks;

  // Four global cells per segment: [0] qualified cursor, [1] partial
  // cursor, [2] partial-taken total, [3] taken total.
  std::vector<u64> cells(4 * nsegs, 0);
  std::span<u64> cspan(cells.data(), cells.size());

  auto cfg = acc.device().launch_for_warp_items(
      items, reuse_taken ? "classify_batched_retry" : "classify_batched", 8,
      u64{2} * kConcatStageCap * sizeof(u32));
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    // One pair of staging buffers serves every segment the CTA touches:
    // entries always belong to the *current* segment, flushed (one global
    // reservation + coalesced stores, same shape as the fused path) on a
    // segment crossing, on capacity, and at the epilogue.
    auto stage_q = cta.shared().alloc<u32>(kConcatStageCap);
    auto stage_p = cta.shared().alloc<u32>(kConcatStageCap);
    u32 qn = 0, pn = 0;
    u64 cur = ~u64{0};  ///< segment the staged entries/counters belong to
    u64 cta_taken = 0, cta_partial_taken = 0;

    const auto flush_list = [&](vgpu::Warp& w, vgpu::SharedSpan<u32>& stage,
                                u32& count, u64 cursor_cell,
                                std::span<u32> out_list) {
      if (count == 0) return;
      const u64 base =
          w.atomic_add(cspan, cursor_cell, static_cast<u64>(count));
      for (u32 pos = 0; pos < count; pos += vgpu::kWarpSize) {
        const u32 m = std::min<u32>(vgpu::kWarpSize, count - pos);
        auto vals = stage.warp_gather(m, [&](u32 l) { return u64{pos} + l; });
        w.store_coalesced(out_list, base + pos, vals, m);
      }
      count = 0;
    };
    const auto flush_seg = [&](vgpu::Warp& w) {
      if (cur == ~u64{0}) return;
      flush_list(w, stage_q, qn, 4 * cur + 0, segs[cur].qualified);
      flush_list(w, stage_p, pn, 4 * cur + 1, segs[cur].partial);
      if (cta_partial_taken) {
        w.atomic_add(cspan, 4 * cur + 2, cta_partial_taken);
        cta_partial_taken = 0;
      }
      if (cta_taken) {
        w.atomic_add(cspan, 4 * cur + 3, cta_taken);
        cta_taken = 0;
      }
    };

    cta.for_each_warp([&](vgpu::Warp& w) {
      for (u64 i = w.global_id(); i < items; i += w.grid_warps()) {
        const u64 si = i / chunks;
        BatchedConcatSegment<K>& seg = segs[si];
        if (seg.skip) continue;
        if (si != cur) {
          flush_seg(w);
          cur = si;
        }
        const u64 s0 = (i % chunks) * vgpu::kWarpSize;
        const u32 m = static_cast<u32>(std::min<u64>(vgpu::kWarpSize, S - s0));
        const K kappa = seg.kappa;
        if (reuse_taken) {
          std::span<const u8> taken_ro(seg.taken.data(), seg.taken.size());
          auto prev = w.load_coalesced(taken_ro, s0, m);
          bool any = false;
          for (u32 l = 0; l < m; ++l) any = any || prev[l] != 0;
          if (!any) continue;
        }

        // Coalesced chunk load of the m*beta delegate keys.
        std::array<K, vgpu::kWarpSize * kMaxBeta> keys{};
        const u64 kbase = s0 * beta;
        const u32 total = m * beta;
        for (u32 off = 0; off < total; off += vgpu::kWarpSize) {
          const u32 a = std::min<u32>(vgpu::kWarpSize, total - off);
          auto vals = w.load_coalesced(dkeys, kbase + off, a);
          for (u32 l = 0; l < a; ++l) keys[off + l] = vals[l];
        }

        vgpu::LaneArray<u8> tarr{};
        vgpu::LaneArray<u8> isq{}, isp{};
        u32 qc = 0, pc = 0;
        for (u32 l = 0; l < m; ++l) {
          const u64 s = s0 + l;
          const u32 real = static_cast<u32>(
              std::min<u64>(beta, std::min(len, n - s * len)));
          u32 t = 0;
          for (u32 j = 0; j < real; ++j)
            if (keys[l * beta + j] >= kappa) ++t;
          tarr[l] = static_cast<u8>(t);
          if (t == 0) continue;
          cta_taken += t;
          if (t == real) {
            isq[l] = 1;
            ++qc;
          } else {
            isp[l] = 1;
            ++pc;
            cta_partial_taken += t;
          }
        }
        w.store_coalesced(seg.taken, s0, tarr, m);

        if (qc) {
          if (qn + qc > kConcatStageCap)
            flush_list(w, stage_q, qn, 4 * cur + 0, seg.qualified);
          for (u32 l = 0; l < m; ++l)
            if (isq[l]) stage_q.st(qn++, static_cast<u32>(s0 + l));
        }
        if (pc) {
          if (pn + pc > kConcatStageCap)
            flush_list(w, stage_p, pn, 4 * cur + 1, seg.partial);
          for (u32 l = 0; l < m; ++l)
            if (isp[l]) stage_p.st(pn++, static_cast<u32>(s0 + l));
        }
      }
    });

    // Epilogue: the leader warp drains whatever segment is still staged.
    {
      vgpu::Warp w = cta.warp(0);
      flush_seg(w);
    }
  });

  for (u64 si = 0; si < nsegs; ++si) {
    if (segs[si].skip) continue;
    segs[si].qualified_count = cells[4 * si + 0];
    segs[si].partial_count = cells[4 * si + 1];
    segs[si].partial_taken = cells[4 * si + 2];
    segs[si].taken_total = cells[4 * si + 3];
  }
}

/// Drives the per-segment `skip` from the fidelity policy ahead of a
/// relaxation-guard retry pass: segment i re-classifies at its exact
/// threshold only when its relaxed taken count blew past the 4k guard AND
/// its policy demands exactness. Approximate segments keep their relaxed
/// candidate superset — that is the error budget at work — and are counted
/// into `guard_skips` when the guard would have fired. Returns the number
/// of segments left for the retry pass (0 = no retry launch needed).
template <class K>
u64 mark_guard_retry(std::span<BatchedConcatSegment<K>> segs,
                     std::span<const u64> ks,
                     std::span<const FidelityPolicy> fidelity,
                     u64* guard_skips = nullptr) {
  assert(ks.size() >= segs.size() && fidelity.size() >= segs.size());
  u64 need = 0;
  for (u64 i = 0; i < segs.size(); ++i) {
    const bool tripped = segs[i].taken_total > 4 * ks[i];
    const bool retry = tripped && fidelity[i].exact();
    segs[i].skip = !retry;
    if (tripped && !retry && guard_skips) ++*guard_skips;
    if (retry) ++need;
  }
  return need;
}

/// ONE launch concatenates every segment's candidates: the union of all
/// segments' partial-list batches and qualified subranges forms the work-
/// item space, located through a per-segment offset table; each candidate
/// lands in its segment's span through its segment's cursor cell. Per
/// segment the logic is exactly concat_candidates_fused's — partial
/// batches gather + re-threshold listed subranges' delegates, qualified
/// items stream their subrange with Rule 2 filtering. Segments marked
/// `skip` contribute no items. Fills each segment's cand_count.
template <class K>
void concat_candidates_batched(topk::Accum& acc, std::span<const K> v,
                               std::span<const K> dkeys, u32 beta, int alpha,
                               bool filter,
                               std::span<BatchedConcatSegment<K>> segs) {
  if (segs.empty()) return;
  const u64 n = v.size();
  const u64 len = u64{1} << alpha;
  const u64 nsegs = segs.size();

  // Item layout: per segment, pchunks 32-entry partial batches followed by
  // its qualified subranges; `off[si]` is the segment's first item.
  std::vector<u64> off(nsegs + 1, 0);
  std::vector<u64> pchunks(nsegs, 0);
  for (u64 si = 0; si < nsegs; ++si) {
    u64 items = 0;
    if (!segs[si].skip) {
      pchunks[si] =
          (segs[si].partial_count + vgpu::kWarpSize - 1) / vgpu::kWarpSize;
      items = pchunks[si] + segs[si].qualified_count;
    }
    off[si + 1] = off[si] + items;
  }
  const u64 items = off[nsegs];
  if (items == 0) return;

  std::vector<u64> cursors(nsegs, 0);
  std::span<u64> curspan(cursors.data(), cursors.size());

  auto cfg = acc.device().launch_for_warp_items(items, "concat_batched");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      u64 si = 0;  // items ascend per warp stride; resume the scan in place
      for (u64 i = w.global_id(); i < items; i += w.grid_warps()) {
        while (i >= off[si + 1]) ++si;
        BatchedConcatSegment<K>& seg = segs[si];
        const K kappa = seg.kappa;
        std::span<u64> cursor = curspan.subspan(si, 1);
        const u64 rel = i - off[si];
        if (rel < pchunks[si]) {
          // Partial-list batch: taken delegates of 32 listed subranges.
          const u64 p0 = rel * vgpu::kWarpSize;
          const u32 m = static_cast<u32>(
              std::min<u64>(vgpu::kWarpSize, seg.partial_count - p0));
          std::span<const u32> plist(seg.partial.data(), seg.partial.size());
          auto sids = w.load_coalesced(plist, p0, m);
          std::array<K, vgpu::kWarpSize * kMaxBeta> out{};
          u32 count = 0;
          for (u32 l = 0; l < m; ++l) {
            const u64 s = sids[l];
            const u32 real = static_cast<u32>(
                std::min<u64>(beta, std::min(len, n - s * len)));
            auto ks = w.load_coalesced(dkeys, s * beta, real);
            for (u32 j = 0; j < real; ++j)
              if (ks[j] >= kappa) out[count++] = ks[j];
          }
          if (count == 0) continue;
          const u64 base = w.atomic_add(cursor, 0, static_cast<u64>(count));
          for (u32 pos = 0; pos < count; pos += vgpu::kWarpSize) {
            const u32 a = std::min<u32>(vgpu::kWarpSize, count - pos);
            vgpu::LaneArray<K> lanes{};
            for (u32 l = 0; l < a; ++l) lanes[l] = out[pos + l];
            w.store_coalesced(seg.cand, base + pos, lanes, a);
          }
          continue;
        }
        // Qualified subrange: stream + filter + warp-aggregated append.
        std::span<const u32> qlist(seg.qualified.data(), seg.qualified.size());
        const u32 sid = w.ld(qlist, rel - pchunks[si]);
        const u64 begin = static_cast<u64>(sid) * len;
        append_filtered_subrange(w, v, begin, std::min(len, n - begin),
                                 kappa, filter, seg.cand, cursor);
      }
    });
  });

  for (u64 si = 0; si < nsegs; ++si)
    if (!segs[si].skip) segs[si].cand_count = cursors[si];
}

}  // namespace drtopk::core
