// Fused single-pass stage 3: subrange classification + concatenation.
//
// The original stage 3 read the delegate vector three times — once to
// classify subranges (with up to three global atomics per taken subrange),
// once more to emit the taken delegates of partially-taken subranges (one
// atomic per subrange, divergent single-element stores), and a third full
// pass whenever the Section 4.3 relaxation guard fired. The fused design
// reads delegates once and communicates through a compact per-subrange
// taken-count array:
//
//   classify_subranges_fused   ONE pass over the delegate keys, 32 subranges
//                              per warp iteration (coalesced chunk loads, ~8x
//                              fewer load transactions than per-subrange
//                              loads). Writes taken[s] for every subrange and
//                              builds the qualified / partial sid lists
//                              through per-CTA shared-memory staging: one
//                              global cursor reservation per staged batch
//                              and two counter atomics per CTA, instead of
//                              per-subrange atomics.
//   concat_candidates_fused    ONE launch for both candidate sources:
//                              partial-list batches (gather each listed
//                              subrange's beta delegates, keep those >=
//                              kappa, one warp-aggregated reservation per
//                              32 subranges) and qualified subranges
//                              (warp-centric streaming with Rule 2
//                              filtering). Replaces two kernel launches.
//   concat_qualified           the qualified-subrange half on its own —
//                              the legacy three-pass path still uses it.
//
// When the relaxation guard fires, the pass is re-run with `reuse_taken`:
// chunks whose cached taken counts are all zero are skipped outright (the
// exact kappa only rises, so untouched subranges stay untaken) — only the
// already-taken fraction of the delegate vector is re-thresholded, not the
// whole vector. Whether the guard retries at all is the caller's fidelity
// policy's call (core/fidelity.hpp): an approximate query accepts the
// relaxed threshold's candidate superset and skips the retry.
//
// Classification itself is also policy-aware: with `rule2 = false`
// (approximate per-partition mode) every taken subrange lands on the
// partial list regardless of how many of its delegates cleared kappa, so
// concatenation gathers ONLY taken delegates — no subrange is ever
// streamed from the input vector and the candidate set is exactly the
// top-k of the per-subrange maxima the recall budget was sized for.
//
// Delegate validity is analytic: within a subrange's beta slots the real
// delegates are a prefix of length min(beta, subrange_len) (see
// DelegateVector), so classification never loads the sid array — the
// pipeline doesn't even materialize it (ConstructOpts::emit_sids).
#pragma once

#include "core/delegate.hpp"
#include "core/fidelity.hpp"

namespace drtopk::core {

/// Per-CTA staged entries for the qualified/partial lists (u32 sids). Two
/// buffers of this size fit comfortably in a CTA's shared memory and make
/// global cursor reservations rare.
inline constexpr u32 kConcatStageCap = 512;

/// Result of the fused classification pass. The spans are caller-allocated
/// workspace scratch: `taken` holds one count per subrange, the lists hold
/// up to S sids each.
struct ConcatClassification {
  std::span<u8> taken;       ///< per-subrange taken count (<= beta <= 4)
  std::span<u32> qualified;  ///< sids with taken == real (Rule 3 survivors)
  std::span<u32> partial;    ///< sids with 0 < taken < real
  u64 qualified_count = 0;
  u64 partial_count = 0;
  u64 partial_taken = 0;  ///< sum of taken over partial subranges
  u64 taken_total = 0;    ///< all delegates >= kappa
};

/// Streams one subrange [begin, begin+slen) of `v` through the warp,
/// keeps elements >= kappa (all of them when !filter), and appends the
/// survivors to `cand` with one warp-aggregated cursor reservation per
/// 32-element batch. Shared by the fused and legacy concatenations.
template <class K>
void append_filtered_subrange(vgpu::Warp& w, std::span<const K> v, u64 begin,
                              u64 slen, K kappa, bool filter,
                              std::span<K> cand, std::span<u64> cursor) {
  u64 pos = begin;
  const u64 end = begin + slen;
  while (pos < end) {
    const u32 active =
        static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
    auto vals = w.load_coalesced(v, pos, active);
    vgpu::LaneArray<u8> keep{};
    for (u32 l = 0; l < active; ++l)
      keep[l] = (!filter || vals[l] >= kappa) ? 1 : 0;
    const u32 mask = w.ballot(keep, active);
    const u32 c = std::popcount(mask);
    if (c) {
      const u64 base = w.atomic_add(cursor, 0, static_cast<u64>(c));
      vgpu::LaneArray<K> packed{};
      u32 j = 0;
      for (u32 l = 0; l < active; ++l)
        if (keep[l]) packed[j++] = vals[l];
      w.store_coalesced(cand, base, packed, c);
    }
    pos += active;
  }
}

/// One pass over the delegate keys: fills cls.taken and the qualified /
/// partial lists, and the four aggregate counters. With `reuse_taken`,
/// 32-subrange chunks whose cached taken counts are all zero are skipped
/// (valid whenever kappa did not decrease since the cached pass); the lists
/// and counters are rebuilt from scratch either way. With `rule2 = false`
/// (approximate fidelity) no subrange ever qualifies — taken subranges all
/// go to the partial list, so only delegates become candidates.
template <class K>
void classify_subranges_fused(topk::Accum& acc, std::span<const K> dkeys,
                              u64 S, u32 beta, int alpha, u64 n, K kappa,
                              ConcatClassification& cls, bool reuse_taken,
                              bool rule2 = true) {
  assert(cls.taken.size() >= S && cls.qualified.size() >= S &&
         cls.partial.size() >= S);
  const u64 len = u64{1} << alpha;
  const u64 chunks = (S + vgpu::kWarpSize - 1) / vgpu::kWarpSize;

  // Global cells: [0] qualified cursor, [1] partial cursor,
  // [2] partial-taken total, [3] taken total.
  std::array<u64, 4> cells{};
  std::span<u64> cspan(cells.data(), cells.size());
  std::span<const u8> taken_ro(cls.taken.data(), cls.taken.size());

  auto cfg = acc.device().launch_for_warp_items(
      chunks, reuse_taken ? "classify_fused_retry" : "classify_fused", 8,
      u64{2} * kConcatStageCap * sizeof(u32));
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    // Block-aggregated list emission: warps append sids to shared staging;
    // a full (or final) buffer is flushed with ONE global reservation plus
    // coalesced stores. Warps of a CTA run warp-synchronously between
    // barriers, so the staging cursors live in registers of the leader.
    auto stage_q = cta.shared().alloc<u32>(kConcatStageCap);
    auto stage_p = cta.shared().alloc<u32>(kConcatStageCap);
    u32 qn = 0, pn = 0;
    u64 cta_taken = 0, cta_partial_taken = 0;

    const auto flush = [&](vgpu::Warp& w, vgpu::SharedSpan<u32>& stage,
                           u32& count, u64 cursor_cell,
                           std::span<u32> out_list) {
      if (count == 0) return;
      const u64 base =
          w.atomic_add(cspan, cursor_cell, static_cast<u64>(count));
      for (u32 pos = 0; pos < count; pos += vgpu::kWarpSize) {
        const u32 m = std::min<u32>(vgpu::kWarpSize, count - pos);
        auto vals =
            stage.warp_gather(m, [&](u32 l) { return u64{pos} + l; });
        w.store_coalesced(out_list, base + pos, vals, m);
      }
      count = 0;
    };

    cta.for_each_warp([&](vgpu::Warp& w) {
      for (u64 c = w.global_id(); c < chunks; c += w.grid_warps()) {
        const u64 s0 = c * vgpu::kWarpSize;
        const u32 m = static_cast<u32>(std::min<u64>(vgpu::kWarpSize, S - s0));
        if (reuse_taken) {
          // Cached counts gate the chunk: one 32-byte load instead of
          // re-thresholding beta keys per subrange.
          auto prev = w.load_coalesced(taken_ro, s0, m);
          bool any = false;
          for (u32 l = 0; l < m; ++l) any = any || prev[l] != 0;
          if (!any) continue;
        }

        // Coalesced chunk load of the m*beta delegate keys.
        std::array<K, vgpu::kWarpSize * kMaxBeta> keys{};
        const u64 kbase = s0 * beta;
        const u32 total = m * beta;
        for (u32 off = 0; off < total; off += vgpu::kWarpSize) {
          const u32 a = std::min<u32>(vgpu::kWarpSize, total - off);
          auto vals = w.load_coalesced(dkeys, kbase + off, a);
          for (u32 l = 0; l < a; ++l) keys[off + l] = vals[l];
        }

        vgpu::LaneArray<u8> tarr{};
        vgpu::LaneArray<u8> isq{}, isp{};
        u32 qc = 0, pc = 0;
        for (u32 l = 0; l < m; ++l) {
          const u64 s = s0 + l;
          const u32 real = static_cast<u32>(
              std::min<u64>(beta, std::min(len, n - s * len)));
          u32 t = 0;
          for (u32 j = 0; j < real; ++j)
            if (keys[l * beta + j] >= kappa) ++t;
          tarr[l] = static_cast<u8>(t);
          if (t == 0) continue;
          cta_taken += t;
          if (rule2 && t == real) {
            isq[l] = 1;
            ++qc;
          } else {
            isp[l] = 1;
            ++pc;
            cta_partial_taken += t;
          }
        }
        w.store_coalesced(cls.taken, s0, tarr, m);

        if (qc) {
          if (qn + qc > kConcatStageCap) flush(w, stage_q, qn, 0, cls.qualified);
          for (u32 l = 0; l < m; ++l)
            if (isq[l]) stage_q.st(qn++, static_cast<u32>(s0 + l));
        }
        if (pc) {
          if (pn + pc > kConcatStageCap) flush(w, stage_p, pn, 1, cls.partial);
          for (u32 l = 0; l < m; ++l)
            if (isp[l]) stage_p.st(pn++, static_cast<u32>(s0 + l));
        }
      }
    });

    // Block-level epilogue: the leader warp drains the staging buffers and
    // the CTA flushes its two scalar totals — a fixed handful of atomics
    // per CTA regardless of how many subranges it classified.
    {
      vgpu::Warp w = cta.warp(0);
      flush(w, stage_q, qn, 0, cls.qualified);
      flush(w, stage_p, pn, 1, cls.partial);
    }
    if (cta_taken) cta.atomic_add(cspan, 3, cta_taken);
    if (cta_partial_taken) cta.atomic_add(cspan, 2, cta_partial_taken);
  });

  cls.qualified_count = cells[0];
  cls.partial_count = cells[1];
  cls.partial_taken = cells[2];
  cls.taken_total = cells[3];
}

/// Single-launch candidate concatenation: one kernel covers BOTH candidate
/// sources. Work items [0, pchunks) are 32-entry batches of the partial
/// list — each listed subrange's beta delegates are gathered (one sector
/// per subrange), re-thresholded, and written after one warp-aggregated
/// reservation per batch. Work items [pchunks, pchunks + q_count) are
/// qualified subranges — streamed from the input vector with Rule 2
/// filtering and one reservation per surviving 32-element batch. The two
/// sources were separate kernel launches before; at serving rates the
/// saved launch is a measurable share of a query's simulated latency.
template <class K>
void concat_candidates_fused(topk::Accum& acc, std::span<const K> v,
                             std::span<const K> dkeys, u32 beta, int alpha,
                             K kappa, bool filter,
                             std::span<const u32> qualified, u64 q_count,
                             std::span<const u32> partial, u64 partial_count,
                             std::span<K> cand, std::span<u64> cursor) {
  if (q_count == 0 && partial_count == 0) return;
  const u64 n = v.size();
  const u64 len = u64{1} << alpha;
  const u64 pchunks =
      (partial_count + vgpu::kWarpSize - 1) / vgpu::kWarpSize;
  const u64 items = pchunks + q_count;
  auto cfg = acc.device().launch_for_warp_items(items, "concat_fused");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      for (u64 i = w.global_id(); i < items; i += w.grid_warps()) {
        if (i < pchunks) {
          // Partial-list batch: taken delegates of 32 listed subranges.
          const u64 p0 = i * vgpu::kWarpSize;
          const u32 m = static_cast<u32>(
              std::min<u64>(vgpu::kWarpSize, partial_count - p0));
          auto sids = w.load_coalesced(partial, p0, m);
          std::array<K, vgpu::kWarpSize * kMaxBeta> out{};
          u32 count = 0;
          for (u32 l = 0; l < m; ++l) {
            const u64 s = sids[l];
            const u32 real = static_cast<u32>(
                std::min<u64>(beta, std::min(len, n - s * len)));
            auto ks = w.load_coalesced(dkeys, s * beta, real);
            for (u32 j = 0; j < real; ++j)
              if (ks[j] >= kappa) out[count++] = ks[j];
          }
          if (count == 0) continue;
          const u64 base = w.atomic_add(cursor, 0, static_cast<u64>(count));
          for (u32 pos = 0; pos < count; pos += vgpu::kWarpSize) {
            const u32 a = std::min<u32>(vgpu::kWarpSize, count - pos);
            vgpu::LaneArray<K> lanes{};
            for (u32 l = 0; l < a; ++l) lanes[l] = out[pos + l];
            w.store_coalesced(cand, base + pos, lanes, a);
          }
          continue;
        }
        // Qualified subrange: stream + filter + warp-aggregated append.
        const u32 sid = w.ld(qualified, i - pchunks);
        const u64 begin = static_cast<u64>(sid) * len;
        append_filtered_subrange(w, v, begin, std::min(len, n - begin),
                                 kappa, filter, cand, cursor);
      }
    });
  });
}

/// Warp-centric concatenation of the qualified subranges with Rule 2
/// filtering (elements >= kappa) and warp-aggregated cursor reservation —
/// one atomic per surviving 32-element batch.
template <class K>
void concat_qualified(topk::Accum& acc, std::span<const K> v, u64 len,
                      K kappa, bool filter, std::span<const u32> qualified,
                      u64 q_count, std::span<K> cand, std::span<u64> cursor) {
  if (q_count == 0) return;
  const u64 n = v.size();
  auto cfg = acc.device().launch_for_warp_items(q_count, "concat");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      for (u64 i = w.global_id(); i < q_count; i += w.grid_warps()) {
        const u32 sid = w.ld(qualified, i);
        const u64 begin = static_cast<u64>(sid) * len;
        append_filtered_subrange(w, v, begin, std::min(len, n - begin),
                                 kappa, filter, cand, cursor);
      }
    });
  });
}

}  // namespace drtopk::core
