// Minimal blocking client for the drtopk wire protocol — the test and
// bench harness's counterpart to NetServer (production clients would speak
// the protocol from their own stacks; this one optimizes for determinism
// and fault injection, not throughput).
//
// Two usage shapes:
//   * call()/metrics(): strict request/response lockstep — send one frame,
//     block for one frame. What the conformance tests use.
//   * send()/recv_response(): decoupled halves for pipelined traffic (the
//     open-loop bench sends on Poisson ticks from one thread and matches
//     request_ids on a reader thread — responses legitimately arrive out
//     of order: sheds return immediately, admitted work later).
//
// Fault injection: fd() exposes the raw socket so tests can shutdown() or
// close() mid-frame; send_raw() writes arbitrary bytes (the fuzzer's door
// for malformed traffic).
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>

#include "net/protocol.hpp"

namespace drtopk::net {

/// Blocking loopback client: framed sends, incremental frame reassembly on
/// reads, raw-byte and raw-fd escape hatches for fuzzing/fault injection.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  /// Connects to 127.0.0.1:port. False on failure.
  bool connect(u16 port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close();
      return false;
    }
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }
  /// Raw socket for fault injection (shutdown mid-stream, etc.).
  int fd() const { return fd_; }

  /// Writes arbitrary bytes (not necessarily a whole — or valid — frame).
  /// MSG_NOSIGNAL: a server-dropped connection surfaces as `false`, never
  /// as SIGPIPE (fuzz clients hit this constantly).
  bool send_raw(std::span<const u8> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool send(const TopkRequest& req) {
    const auto f = encode(req);
    return send_raw(f);
  }

  /// Blocks for the next complete frame payload; nullopt on EOF/error or
  /// when the stream turns out to be unframable garbage (server bug).
  std::optional<std::vector<u8>> recv_frame() {
    u8 buf[64 * 1024];
    for (;;) {
      if (auto f = dec_.next()) return f;
      if (dec_.error()) return std::nullopt;
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r == 0) return std::nullopt;
      if (r < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      dec_.feed({buf, static_cast<size_t>(r)});
    }
  }

  /// Blocks for the next TopkResponse (skipping non-response frames).
  std::optional<TopkResponse> recv_response() {
    for (;;) {
      auto f = recv_frame();
      if (!f) return std::nullopt;
      TopkResponse resp;
      if (decode(*f, resp)) return resp;
    }
  }

  /// Lockstep request/response.
  std::optional<TopkResponse> call(const TopkRequest& req) {
    if (!send(req)) return std::nullopt;
    return recv_response();
  }

  /// Fetches a Prometheus-text metrics snapshot over the socket.
  std::optional<std::string> metrics() {
    const auto f = encode_metrics_request();
    if (!send_raw(f)) return std::nullopt;
    for (;;) {
      auto frame = recv_frame();
      if (!frame) return std::nullopt;
      std::string text;
      if (decode_metrics_response(*frame, text)) return text;
    }
  }

  /// Liveness probe: ping, wait for pong.
  bool ping() {
    const auto f = encode_ping();
    if (!send_raw(f)) return false;
    auto frame = recv_frame();
    return frame && peek_type(*frame) == MsgType::kPong;
  }

 private:
  int fd_ = -1;
  FrameDecoder dec_;
};

}  // namespace drtopk::net
