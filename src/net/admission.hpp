// Deadline/SLO-aware admission for the network front door.
//
// Every request is answered in bounded time, one way or another — the
// queue is never the pressure-relief valve. The ladder, in order:
//
//   1. rate     — per-client token bucket empty        -> kShedRate
//   2. quota    — per-client in-flight cap reached     -> kShedQuota
//   3. overload — server-wide in-flight bound reached  -> kShedOverload
//   4. deadline — predicted latency vs the budget:
//        estimate(fidelity) = service_ewma(PlanKey) * safety + queue_p90
//        (the PlanCache's measured service EWMA for the query's shape,
//        inflated by a safety factor, plus the live serve_queue_wait_us
//        p90 — both observed quantities, not model guesses);
//        exact fits the budget                         -> admit kOk
//        exact misses, client has a recall floor, the
//        *degraded* estimate fits                      -> admit kDegraded
//        even the floor's estimate misses              -> kShedDeadline
//
// Cold start is optimistic: an unknown service estimate (no sample yet for
// the shape) admits rather than sheds — the first few queries of a shape
// are the only way to learn its cost, and a wrong optimistic admit costs
// one missed deadline while a wrong pessimistic shed never learns.
// Degradation happens at ADMISSION, not mid-flight: the fidelity the query
// is admitted at is the fidelity it runs and reports (honest fidelity_bp).
//
// The controller is pure decision logic over injected estimator callables
// — tests pin the whole matrix with fixed estimates, no sockets, no
// backend (tests/test_admission.cpp).
#pragma once

#include <chrono>
#include <functional>

#include "core/fidelity.hpp"
#include "net/protocol.hpp"
#include "serve/plan_cache.hpp"

namespace drtopk::net {

/// Per-client request-rate limiter (standard token bucket, microsecond
/// clock, caller-provided timestamps so tests are deterministic).
/// rate_qps == 0 disables the bucket (always allows).
class TokenBucket {
 public:
  TokenBucket(double rate_qps = 0.0, double burst = 16.0)
      : rate_(rate_qps), burst_(burst < 1.0 ? 1.0 : burst), tokens_(burst_) {}

  bool try_take(u64 now_us) {
    if (rate_ <= 0.0) return true;
    if (last_us_ != 0 && now_us > last_us_) {
      tokens_ += static_cast<double>(now_us - last_us_) * rate_ / 1e6;
      if (tokens_ > burst_) tokens_ = burst_;
    }
    last_us_ = now_us;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  u64 last_us_ = 0;
};

/// What the controller decided for one request.
struct AdmissionVerdict {
  /// kOk / kDegraded mean "admitted" (run at `fidelity`); any kShed* means
  /// "answer the typed rejection now, run nothing".
  Status status = Status::kOk;
  core::FidelityPolicy fidelity;  ///< policy the query runs at, if admitted
  u32 fidelity_bp = kExactBp;     ///< quantized form, echoed in the response
  u64 estimate_us = 0;            ///< predicted latency backing the decision
  bool admitted() const {
    return status == Status::kOk || status == Status::kDegraded;
  }
};

/// The deadline-aware admission controller (see the file comment). Owns
/// only decision logic and config; live inputs — service estimator, queue
/// predictor, in-flight counts, token buckets — are injected per call or
/// at construction, so the same code path is exercised end-to-end by the
/// server and in isolation by the unit tests.
class AdmissionController {
 public:
  struct Config {
    /// Server-wide admitted-but-unanswered bound. Keep at or below the
    /// backend's max_in_flight so the event loop's submit() never blocks —
    /// backpressure becomes a typed kShedOverload instead of a stalled
    /// accept loop.
    u64 max_in_flight = 64;
    /// Multiplier on the service EWMA: absorbs estimator lag and
    /// scheduling jitter. >1 sheds earlier (conservative), 1 trusts the
    /// EWMA exactly.
    double safety = 1.5;
    /// Quantile of the live queue-wait histogram added to every estimate.
    double queue_quantile = 0.9;
  };

  /// `service_estimate_us`: measured service-time EWMA for a shape
  /// (PlanCache::service_estimate_us; 0 = unknown). `queue_wait_us`:
  /// predicted time-in-queue (live histogram quantile; 0 = no data).
  AdmissionController(Config cfg,
                      std::function<u64(const serve::PlanKey&)>
                          service_estimate_us,
                      std::function<u64()> queue_wait_us)
      : cfg_(cfg),
        service_(std::move(service_estimate_us)),
        queue_(std::move(queue_wait_us)) {}

  const Config& config() const { return cfg_; }

  /// Predicted end-to-end latency of a query of shape `key`; 0 = unknown
  /// service time (cold shape) — the caller treats it as "admit".
  u64 estimate_us(const serve::PlanKey& key) const {
    const u64 svc = service_(key);
    if (svc == 0) return 0;
    return static_cast<u64>(static_cast<double>(svc) * cfg_.safety) + queue_();
  }

  /// The whole ladder for one request. `exact_key`/`floor_key` are the
  /// request's PlanCache shape keys at exact fidelity and at the client's
  /// floor (ignored unless recall_floor_bp < kExactBp); `rate_ok`/
  /// `quota_ok` are the per-client gate results (evaluated by the caller,
  /// who owns the per-connection state); `in_flight` is the server-wide
  /// admitted count.
  AdmissionVerdict decide(const serve::PlanKey& exact_key,
                          const serve::PlanKey& floor_key, u64 deadline_us,
                          u32 recall_floor_bp, bool rate_ok, bool quota_ok,
                          u64 in_flight) const {
    AdmissionVerdict v;
    if (!rate_ok) {
      v.status = Status::kShedRate;
      return v;
    }
    if (!quota_ok) {
      v.status = Status::kShedQuota;
      return v;
    }
    if (in_flight >= cfg_.max_in_flight) {
      v.status = Status::kShedOverload;
      return v;
    }
    // No budget: run exact, nothing to trade away.
    if (deadline_us == 0) return v;

    const u64 exact_est = estimate_us(exact_key);
    v.estimate_us = exact_est;
    if (exact_est <= deadline_us) return v;  // fits (or unknown: optimistic)

    if (recall_floor_bp < kExactBp) {
      // Degrade to the client's floor — the cheapest fidelity it accepts,
      // hence the best shot at the deadline. (Intermediate rungs would
      // fragment admission groups and plan-cache shapes for little gain.)
      const u64 floor_est = estimate_us(floor_key);
      v.estimate_us = floor_est;
      if (floor_est <= deadline_us) {  // fits (or unknown: optimistic)
        v.status = Status::kDegraded;
        v.fidelity = core::FidelityPolicy::approx(
            static_cast<double>(recall_floor_bp) / 10000.0);
        v.fidelity_bp = v.fidelity.quantized_bp();
        return v;
      }
    }
    v.status = Status::kShedDeadline;
    return v;
  }

 private:
  Config cfg_;
  std::function<u64(const serve::PlanKey&)> service_;
  std::function<u64()> queue_;
};

/// Monotonic microsecond clock shared by the net layer (token buckets,
/// request timing).
inline u64 mono_us() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace drtopk::net
