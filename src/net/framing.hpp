// Length-prefixed framing for the network front door.
//
// Wire format (little-endian throughout):
//
//   [u32 magic = 'DTK1' (0x314B5444)] [u32 payload_len] [payload bytes]
//
// The magic guards against port scanners and desynchronized peers: a frame
// whose first four bytes are wrong is not a protocol error to recover from
// — the stream position is unknown — so the decoder enters a terminal
// error state and the server drops the connection. The same applies to a
// declared payload length above kMaxFrame (a 1 MiB frame is already ~100x
// the largest legitimate top-k response; anything bigger is garbage or an
// attack, and pre-allocating for it would let a client DoS the server with
// eight bytes). A *well-framed* payload that fails protocol decoding is a
// different, recoverable story — src/net/protocol.hpp answers it with a
// typed kBadRequest and the connection lives on.
//
// FrameDecoder is incremental: feed() whatever the socket produced,
// next() yields complete payloads. Reader/Writer are the bounds-checked
// little-endian primitives the protocol layer composes messages from.
// Everything here is pure in-memory byte manipulation — deterministic and
// fuzzable without a socket (tests/test_net.cpp drives both levels).
#pragma once

#include <cstring>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::net {

/// Frame magic: ASCII "DTK1" read as a little-endian u32.
inline constexpr u32 kFrameMagic = 0x314B5444u;  // 'D' 'T' 'K' '1'
/// Hard payload-size ceiling; a declared length above this is a framing
/// error (connection dropped), never an allocation.
inline constexpr u32 kMaxFrame = u32{1} << 20;
/// Bytes of header preceding every payload (magic + length).
inline constexpr u32 kFrameHeader = 8;

/// Serializes `payload` as one wire frame (header + copy of the bytes).
inline std::vector<u8> encode_frame(std::span<const u8> payload) {
  std::vector<u8> out(kFrameHeader + payload.size());
  const u32 magic = kFrameMagic;
  const u32 len = static_cast<u32>(payload.size());
  std::memcpy(out.data(), &magic, 4);
  std::memcpy(out.data() + 4, &len, 4);
  if (!payload.empty())
    std::memcpy(out.data() + kFrameHeader, payload.data(), payload.size());
  return out;
}

/// Incremental frame reassembly over an arbitrary byte stream. feed()
/// accepts whatever arrived; next() pops complete payloads in order. A
/// framing violation (bad magic or oversized declared length) is terminal:
/// error() stays true, feed() becomes a no-op and next() yields nothing —
/// the owner must drop the connection (the stream position is unknowable).
class FrameDecoder {
 public:
  void feed(std::span<const u8> bytes) {
    if (error_) return;
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    parse();
  }

  /// Next complete payload, if any.
  std::optional<std::vector<u8>> next() {
    if (frames_.empty()) return std::nullopt;
    std::vector<u8> f = std::move(frames_.front());
    frames_.pop_front();
    return f;
  }

  bool error() const { return error_; }
  /// Bytes buffered awaiting a complete frame (diagnostics/tests).
  size_t pending_bytes() const { return buf_.size(); }

 private:
  void parse() {
    size_t pos = 0;
    while (buf_.size() - pos >= kFrameHeader) {
      u32 magic = 0, len = 0;
      std::memcpy(&magic, buf_.data() + pos, 4);
      std::memcpy(&len, buf_.data() + pos + 4, 4);
      if (magic != kFrameMagic || len > kMaxFrame) {
        error_ = true;
        buf_.clear();
        return;
      }
      if (buf_.size() - pos - kFrameHeader < len) break;  // partial payload
      frames_.emplace_back(buf_.begin() + pos + kFrameHeader,
                           buf_.begin() + pos + kFrameHeader + len);
      pos += kFrameHeader + len;
    }
    if (pos) buf_.erase(buf_.begin(), buf_.begin() + pos);
  }

  std::vector<u8> buf_;
  std::deque<std::vector<u8>> frames_;
  bool error_ = false;
};

/// Bounds-checked little-endian reader over one payload. Every get_*
/// returns false (and poisons the reader) on underrun, so a decoder is a
/// straight-line sequence of reads with one failure check — malformed
/// payloads can truncate anywhere without UB.
class Reader {
 public:
  explicit Reader(std::span<const u8> bytes) : bytes_(bytes) {}

  bool u8_(u8& out) { return get(&out, 1); }
  bool u32_(u32& out) { return get(&out, 4); }
  bool u64_(u64& out) { return get(&out, 8); }
  bool bytes(std::span<u8> out) { return get(out.data(), out.size()); }

  bool ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool get(void* out, size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::span<const u8> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Little-endian payload builder (the Reader's mirror image).
class Writer {
 public:
  void u8_(u8 v) { put(&v, 1); }
  void u32_(u32 v) { put(&v, 4); }
  void u64_(u64 v) { put(&v, 8); }
  void bytes(std::span<const u8> v) { put(v.data(), v.size()); }

  std::vector<u8>& payload() { return buf_; }
  /// The finished payload wrapped in a wire frame.
  std::vector<u8> frame() const { return encode_frame(buf_); }

 private:
  void put(const void* v, size_t n) {
    const u8* p = static_cast<const u8*>(v);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<u8> buf_;
};

}  // namespace drtopk::net
