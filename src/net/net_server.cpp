#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/export.hpp"

namespace drtopk::net {

namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("NetServer: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

NetServer::NetServer(Backend& backend, NetServerConfig cfg)
    : backend_(backend),
      cfg_(cfg),
      admission_(
          cfg.admission,
          [this](const serve::PlanKey& k) {
            return backend_.service_estimate_us(k);
          },
          [this] {
            return backend_.queue_wait_quantile_us(
                cfg_.admission.queue_quantile);
          }),
      m_conns_opened_(reg_.counter("net_connections_opened",
                                   "Client connections accepted")),
      m_conns_closed_(reg_.counter("net_connections_closed",
                                   "Client connections closed")),
      m_frames_bad_(reg_.counter(
          "net_frames_bad",
          "Framing violations (bad magic / oversized) — connection dropped")),
      m_requests_bad_(reg_.counter(
          "net_requests_bad",
          "Well-framed but undecodable or invalid requests (kBadRequest)")),
      m_admitted_(reg_.counter("net_admitted",
                               "Requests admitted to the backend")),
      m_degraded_(reg_.counter(
          "net_degraded",
          "Requests admitted at the client's recall floor (kDegraded)")),
      m_shed_(reg_.counter("net_shed", "Requests shed with a typed status")),
      m_shed_rate_(reg_.counter("net_shed_rate",
                                "Sheds: per-client token bucket empty")),
      m_shed_quota_(reg_.counter("net_shed_quota",
                                 "Sheds: per-client in-flight quota")),
      m_shed_overload_(reg_.counter("net_shed_overload",
                                    "Sheds: server-wide in-flight bound")),
      m_shed_deadline_(reg_.counter(
          "net_shed_deadline",
          "Sheds: even the degraded estimate exceeds the deadline")),
      m_deadline_missed_(reg_.counter(
          "net_deadline_missed",
          "Admitted requests whose response exceeded their deadline")),
      m_responses_dropped_(reg_.counter(
          "net_responses_dropped",
          "Responses completed after their connection died")),
      m_active_conns_(reg_.gauge("net_active_connections",
                                 "Currently open client connections")),
      m_inflight_gauge_(reg_.gauge("net_inflight",
                                   "Admitted requests awaiting responses")),
      m_request_us_(reg_.histogram(
          "net_request_us",
          "Admission-to-response wall time per admitted request (us)")) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) die("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    die("bind");
  if (listen(listen_fd_, 128) < 0) die("listen");
  socklen_t alen = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) < 0)
    die("getsockname");
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) die("epoll_create1");
  event_fd_ = eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) die("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  const u32 nf = std::max(1u, cfg_.finishers);
  finishers_.reserve(nf);
  for (u32 i = 0; i < nf; ++i)
    finishers_.emplace_back([this] { finisher_loop(); });
  loop_thread_ = std::thread([this] { loop(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard lk(jobs_mu_);
    jobs_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& t : finishers_)
    if (t.joinable()) t.join();
  {
    std::lock_guard lk(conns_mu_);
    for (auto& [fd, c] : conns_) ::close(fd);
    conns_.clear();
    m_active_conns_.set(0);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = event_fd_ = epoll_fd_ = -1;
}

u64 NetServer::active_connections() const {
  std::lock_guard lk(conns_mu_);
  return conns_.size();
}

void NetServer::drain() {
  std::unique_lock lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void NetServer::wake() {
  if (event_fd_ >= 0) {
    const u64 one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

void NetServer::loop() {
  epoll_event evs[64];
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, evs, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
      } else if (fd == event_fd_) {
        u64 v;
        while (::read(event_fd_, &v, sizeof(v)) > 0) {
        }
        arm_writes_locked();
      } else {
        if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (evs[i].events & EPOLLIN) conn_readable(fd);
        if (evs[i].events & EPOLLOUT) conn_writable(fd);
      }
    }
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    {
      std::lock_guard lk(conns_mu_);
      if (conns_.size() >= cfg_.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->gen = next_gen_++;
      c->bucket = TokenBucket(cfg_.client_rate_qps, cfg_.client_burst);
      conns_.emplace(fd, std::move(c));
      m_active_conns_.set(conns_.size());
    }
    m_conns_opened_.add();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void NetServer::conn_readable(int fd) {
  u8 buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r > 0) {
      Conn* c = nullptr;
      {
        std::lock_guard lk(conns_mu_);
        auto it = conns_.find(fd);
        if (it == conns_.end()) return;
        c = it->second.get();
        c->dec.feed({buf, static_cast<size_t>(r)});
      }
      if (c->dec.error()) {
        // Framing violation: the stream position is unknowable — drop the
        // connection (never crash, never leak the slot).
        m_frames_bad_.add();
        close_conn(fd);
        return;
      }
      // Frames are handled outside conns_mu_ (handle_frame may take it via
      // deliver); the decoder is only touched by this thread.
      while (auto f = c->dec.next()) handle_frame(*c, *f);
      continue;
    }
    if (r == 0) {  // orderly shutdown from the peer
      close_conn(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(fd);
    return;
  }
}

void NetServer::handle_frame(Conn& c, std::span<const u8> payload) {
  const auto type = peek_type(payload);
  if (!type) {
    m_requests_bad_.add();
    TopkResponse resp;
    resp.status = Status::kBadRequest;
    deliver(c.fd, c.gen, encode(resp));
    return;
  }
  switch (*type) {
    case MsgType::kTopkRequest:
      handle_topk(c, payload);
      return;
    case MsgType::kPing:
      deliver(c.fd, c.gen, encode_pong());
      return;
    case MsgType::kMetricsRequest: {
      // Live stats over the same socket: net series first, then the
      // backend's (per-shard labeled for sharded deployments).
      m_inflight_gauge_.set(inflight_.load(std::memory_order_relaxed));
      std::string text = obs::to_prometheus(reg_);
      text += backend_.metrics_prometheus();
      deliver(c.fd, c.gen, encode_metrics_response(text));
      return;
    }
    default: {
      // Server-to-client message types arriving at the server are protocol
      // misuse, not a framing violation: typed reject, connection lives.
      m_requests_bad_.add();
      TopkResponse resp;
      resp.status = Status::kBadRequest;
      deliver(c.fd, c.gen, encode(resp));
      return;
    }
  }
}

void NetServer::handle_topk(Conn& c, std::span<const u8> payload) {
  TopkRequest req;
  if (!decode(payload, req)) {
    // Best effort at echoing the id so a pipelining client can correlate
    // the rejection (the id sits at a fixed offset right after the type).
    TopkResponse resp;
    resp.status = Status::kBadRequest;
    if (payload.size() >= 9) std::memcpy(&resp.request_id, payload.data() + 1, 8);
    m_requests_bad_.add();
    deliver(c.fd, c.gen, encode(resp));
    return;
  }
  TopkResponse reject;
  reject.request_id = req.request_id;

  u64 n = 0;
  if (!backend_.corpus_len(req.corpus, n) || req.k > n) {
    reject.status = Status::kBadRequest;
    m_requests_bad_.add();
    deliver(c.fd, c.gen, encode(reject));
    return;
  }

  const auto criterion = static_cast<data::Criterion>(req.criterion);
  const u64 now = mono_us();
  const serve::PlanKey exact_key =
      backend_.shape_key(req.corpus, req.k, criterion, {});
  const core::FidelityPolicy floor_policy =
      req.recall_floor_bp < kExactBp
          ? core::FidelityPolicy::approx(
                static_cast<double>(req.recall_floor_bp) / 10000.0)
          : core::FidelityPolicy{};
  const serve::PlanKey floor_key =
      backend_.shape_key(req.corpus, req.k, criterion, floor_policy);

  const bool rate_ok = c.bucket.try_take(now);
  bool quota_ok = true;
  if (cfg_.client_quota) {
    std::lock_guard lk(conns_mu_);
    quota_ok = c.inflight < cfg_.client_quota;
  }
  const AdmissionVerdict v = admission_.decide(
      exact_key, floor_key, req.deadline_us, req.recall_floor_bp, rate_ok,
      quota_ok, inflight_.load(std::memory_order_relaxed));

  if (!v.admitted()) {
    // Typed rejection, immediately — a shed never waits behind the queue,
    // which is exactly what makes it useful under a deadline.
    m_shed_.add();
    switch (v.status) {
      case Status::kShedRate: m_shed_rate_.add(); break;
      case Status::kShedQuota: m_shed_quota_.add(); break;
      case Status::kShedOverload: m_shed_overload_.add(); break;
      case Status::kShedDeadline: m_shed_deadline_.add(); break;
      default: break;
    }
    reject.status = v.status;
    deliver(c.fd, c.gen, encode(reject));
    return;
  }

  FinishJob job;
  job.fd = c.fd;
  job.gen = c.gen;
  job.request_id = req.request_id;
  job.fidelity_bp = v.fidelity_bp;
  job.deadline_us = req.deadline_us;
  job.t_admit_us = now;
  job.key = v.status == Status::kDegraded ? floor_key : exact_key;
  try {
    job.fut = backend_.submit(req.corpus, req.k, criterion,
                              req.selection_only != 0, v.fidelity,
                              req.deadline_us);
  } catch (...) {
    reject.status = Status::kError;
    deliver(c.fd, c.gen, encode(reject));
    return;
  }
  m_admitted_.add();
  if (v.status == Status::kDegraded) m_degraded_.add();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (cfg_.client_quota) {
    std::lock_guard lk(conns_mu_);
    ++c.inflight;
  }
  {
    std::lock_guard lk(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void NetServer::finisher_loop() {
  for (;;) {
    FinishJob job;
    {
      std::unique_lock lk(jobs_mu_);
      jobs_cv_.wait(lk, [&] { return jobs_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (jobs_stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    TopkResponse resp;
    resp.request_id = job.request_id;
    resp.fidelity_bp = job.fidelity_bp;
    try {
      serve::QueryResult r = job.fut.get();
      resp.status =
          job.fidelity_bp == kExactBp ? Status::kOk : Status::kDegraded;
      resp.values = std::move(r.values);
      resp.kth = r.kth;
      const u64 wall_us = mono_us() - job.t_admit_us;
      resp.server_us = wall_us;
      m_request_us_.observe(wall_us);
      if (job.deadline_us && wall_us > job.deadline_us)
        m_deadline_missed_.add();
      // Feedback: wall minus MEASURED queue wait is the service component
      // — the quantity the admission estimator predicts (queue wait is
      // predicted separately from the live histogram, so folding it into
      // the EWMA would double-count congestion).
      const u64 service_us =
          wall_us > r.queue_us ? wall_us - r.queue_us : wall_us;
      backend_.note_service_time(job.key, service_us);
    } catch (...) {
      resp.status = Status::kError;
    }
    deliver(job.fd, job.gen, encode(resp));
    {
      std::lock_guard lk(conns_mu_);
      auto it = conns_.find(job.fd);
      if (it != conns_.end() && it->second->gen == job.gen &&
          it->second->inflight > 0)
        --it->second->inflight;
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lk(drain_mu_);
      drain_cv_.notify_all();
    }
  }
}

void NetServer::deliver(int fd, u64 gen, std::vector<u8> frame_bytes) {
  {
    std::lock_guard lk(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end() || it->second->gen != gen) {
      // The connection died (or the fd was reused by a new client — the
      // generation check catches that) while the query ran: drop, count,
      // move on. The query itself completed; only delivery was impossible.
      m_responses_dropped_.add();
      return;
    }
    it->second->outbox.push_back(std::move(frame_bytes));
  }
  wake();
}

void NetServer::arm_writes_locked() {
  std::lock_guard lk(conns_mu_);
  for (auto& [fd, c] : conns_) {
    if (c->outbox.empty() || c->want_write) continue;
    c->want_write = true;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
}

void NetServer::conn_writable(int fd) {
  Conn* c = nullptr;
  {
    std::lock_guard lk(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    c = it->second.get();
  }
  flush_conn(*c);
}

void NetServer::flush_conn(Conn& c) {
  for (;;) {
    std::vector<u8>* front = nullptr;
    {
      std::lock_guard lk(conns_mu_);
      if (c.outbox.empty()) break;
      front = &c.outbox.front();
    }
    // MSG_NOSIGNAL: a peer closing mid-response must surface as EPIPE on
    // this call, not kill the process with SIGPIPE.
    const ssize_t w = ::send(c.fd, front->data() + c.out_off,
                             front->size() - c.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      c.out_off += static_cast<size_t>(w);
      if (c.out_off == front->size()) {
        std::lock_guard lk(conns_mu_);
        c.outbox.pop_front();
        c.out_off = 0;
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (w < 0 && errno == EINTR) continue;
    close_conn(c.fd);  // peer vanished mid-write
    return;
  }
  // Outbox drained: stop asking for EPOLLOUT.
  std::lock_guard lk(conns_mu_);
  if (!c.want_write) return;
  c.want_write = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = c.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void NetServer::close_conn(int fd) {
  {
    std::lock_guard lk(conns_mu_);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    conns_.erase(it);
    m_active_conns_.set(conns_.size());
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  m_conns_closed_.add();
}

}  // namespace drtopk::net
