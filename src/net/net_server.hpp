// NetServer: the TCP front door over TopkServer / ShardedTopkServer.
//
//   vgpu::Device dev;  serve::TopkServer srv(dev);
//   net::SingleBackend be(srv);
//   u32 corpus = be.add_corpus(std::span<const u32>(data));
//   net::NetServer fd(be, {.port = 0});        // 0 = ephemeral
//   ... clients connect to fd.port(), speak net/protocol.hpp frames ...
//
// Threading model (one of each, by design):
//   * ONE event-loop thread owns the listener, every connection fd, the
//     epoll set and all socket reads/writes. Nonblocking end to end: the
//     only place it can block is epoll_wait. It never calls future.get().
//   * N finisher threads block on backend futures and hand finished
//     response bytes back to the loop (conn-table deposit + eventfd wake).
//     Blocking is quarantined here, sized independently of connections.
//
// A connection is (fd, generation): the generation is a process-unique
// u64, so a response completing after its connection died — and after the
// kernel reused the fd for a NEW client — can never be misdelivered; it is
// dropped and counted (net_responses_dropped).
//
// Admission (net/admission.hpp) runs on the loop thread before any query
// touches the backend; the net-level in-flight bound stays at or below the
// backend's, so backend submit() — which blocks at ITS bound — never
// stalls the loop. Framing violations drop the connection; well-framed
// garbage gets a typed kBadRequest; docs/SERVING.md is the full state
// machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/admission.hpp"
#include "serve/server.hpp"
#include "serve/sharded.hpp"

namespace drtopk::net {

/// What the front door needs from a serving engine, factored so one event
/// loop drives both the single-device TopkServer and the sharded
/// deployment. Corpora are registered out of band (before clients are let
/// in); ids are dense and validated per request.
class Backend {
 public:
  virtual ~Backend() = default;
  /// Corpus length; false when the id is unregistered.
  virtual bool corpus_len(u32 id, u64& n_out) const = 0;
  /// The request's PlanCache shape key at a given fidelity — the handle
  /// admission uses for service-time estimates and feedback.
  virtual serve::PlanKey shape_key(u32 id, u64 k, data::Criterion c,
                                   core::FidelityPolicy f) const = 0;
  virtual std::future<serve::QueryResult> submit(u32 id, u64 k,
                                                 data::Criterion c,
                                                 bool selection_only,
                                                 core::FidelityPolicy f,
                                                 u64 deadline_us) = 0;
  /// Measured service time (wall minus queue wait) fed back into the
  /// estimator after each completion.
  virtual void note_service_time(const serve::PlanKey& key, u64 us) = 0;
  virtual u64 service_estimate_us(const serve::PlanKey& key) const = 0;
  /// Live queue-wait quantile from the serving layer's histogram.
  virtual u64 queue_wait_quantile_us(double q) const = 0;
  virtual std::string metrics_prometheus() const = 0;
  virtual void drain() = 0;
};

/// Backend over one TopkServer; owns the corpus id -> span table.
class SingleBackend final : public Backend {
 public:
  explicit SingleBackend(serve::TopkServer& srv) : srv_(srv) {}

  u32 add_corpus(std::span<const u32> v) {
    corpora_.push_back({v, {}});
    return static_cast<u32>(corpora_.size() - 1);
  }
  u32 add_corpus(std::span<const u64> v) {
    corpora_.push_back({{}, v});
    return static_cast<u32>(corpora_.size() - 1);
  }

  bool corpus_len(u32 id, u64& n_out) const override {
    if (id >= corpora_.size()) return false;
    const Corpus& c = corpora_[id];
    n_out = c.v64.empty() ? c.v32.size() : c.v64.size();
    return true;
  }

  serve::PlanKey shape_key(u32 id, u64 k, data::Criterion c,
                           core::FidelityPolicy f) const override {
    const Corpus& co = corpora_[id];
    return co.v64.empty() ? serve::PlanCache::make_key(co.v32, k, c, f)
                          : serve::PlanCache::make_key(co.v64, k, c, f);
  }

  std::future<serve::QueryResult> submit(u32 id, u64 k, data::Criterion c,
                                         bool selection_only,
                                         core::FidelityPolicy f,
                                         u64 deadline_us) override {
    const Corpus& co = corpora_[id];
    return co.v64.empty()
               ? srv_.submit(serve::Query::view(co.v32, k, c, selection_only,
                                                f)
                                 .with_deadline(deadline_us))
               : srv_.submit(serve::Query::view(co.v64, k, c, selection_only,
                                                f)
                                 .with_deadline(deadline_us));
  }

  void note_service_time(const serve::PlanKey& key, u64 us) override {
    srv_.plan_cache().note_service_time(key, us);
  }
  u64 service_estimate_us(const serve::PlanKey& key) const override {
    return srv_.plan_cache().service_estimate_us(key);
  }
  u64 queue_wait_quantile_us(double q) const override {
    const obs::Histogram* h =
        srv_.metrics().find_histogram("serve_queue_wait_us");
    return h ? h->percentile(q) : 0;
  }
  std::string metrics_prometheus() const override {
    return srv_.metrics_prometheus();
  }
  void drain() override { srv_.drain(); }

 private:
  struct Corpus {
    std::span<const u32> v32;
    std::span<const u64> v64;
  };
  serve::TopkServer& srv_;
  std::vector<Corpus> corpora_;  ///< append-only before clients connect
};

/// Backend over the sharded deployment. Shape keys are computed over the
/// FULL corpus span (a shard-count-independent handle for the whole
/// scatter/merge operation); the service-time EWMA lives in shard 0's
/// PlanCache — the estimate map is separate from calibrated plans, so a
/// full-span key needs no plan there.
class ShardedBackend final : public Backend {
 public:
  explicit ShardedBackend(serve::ShardedTopkServer& srv) : srv_(srv) {}

  u32 add_corpus(std::span<const u32> v) {
    const u32 id = srv_.register_corpus(v);
    corpora_.push_back({v, {}});
    (void)id;  // registration order makes net ids == sharded CorpusIds
    return static_cast<u32>(corpora_.size() - 1);
  }
  u32 add_corpus(std::span<const u64> v) {
    srv_.register_corpus(v);
    corpora_.push_back({{}, v});
    return static_cast<u32>(corpora_.size() - 1);
  }

  bool corpus_len(u32 id, u64& n_out) const override {
    if (id >= corpora_.size()) return false;
    const Corpus& c = corpora_[id];
    n_out = c.v64.empty() ? c.v32.size() : c.v64.size();
    return true;
  }

  serve::PlanKey shape_key(u32 id, u64 k, data::Criterion c,
                           core::FidelityPolicy f) const override {
    const Corpus& co = corpora_[id];
    return co.v64.empty() ? serve::PlanCache::make_key(co.v32, k, c, f)
                          : serve::PlanCache::make_key(co.v64, k, c, f);
  }

  std::future<serve::QueryResult> submit(u32 id, u64 k, data::Criterion c,
                                         bool selection_only,
                                         core::FidelityPolicy f,
                                         u64 deadline_us) override {
    return srv_.submit(id, k, c, selection_only, f, deadline_us);
  }

  void note_service_time(const serve::PlanKey& key, u64 us) override {
    srv_.shard(0).plan_cache().note_service_time(key, us);
  }
  u64 service_estimate_us(const serve::PlanKey& key) const override {
    return srv_.shard(0).plan_cache().service_estimate_us(key);
  }
  u64 queue_wait_quantile_us(double q) const override {
    const obs::Histogram* h =
        srv_.shard(0).metrics().find_histogram("serve_queue_wait_us");
    return h ? h->percentile(q) : 0;
  }
  std::string metrics_prometheus() const override {
    return srv_.metrics_prometheus();
  }
  void drain() override { srv_.drain(); }

 private:
  struct Corpus {
    std::span<const u32> v32;
    std::span<const u64> v64;
  };
  serve::ShardedTopkServer& srv_;
  std::vector<Corpus> corpora_;
};

/// Front-door knobs. Defaults are safe for tests (loopback, ephemeral
/// port, limits off); drtopk_serverd exposes them as flags.
struct NetServerConfig {
  u16 port = 0;           ///< 0 = ephemeral; resolved port via port()
  u32 finishers = 2;      ///< threads blocking on backend futures
  u32 max_connections = 256;  ///< beyond this, accepts are closed on sight
  double client_rate_qps = 0.0;  ///< per-connection token bucket; 0 = off
  double client_burst = 16.0;
  u32 client_quota = 0;   ///< per-connection in-flight cap; 0 = off
  AdmissionController::Config admission;
};

/// The epoll front door (see the file comment for the threading model).
class NetServer {
 public:
  /// Binds 127.0.0.1:<port>, starts the loop and finisher threads. Throws
  /// std::runtime_error when the socket plumbing fails.
  NetServer(Backend& backend, NetServerConfig cfg = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound (possibly ephemeral) port.
  u16 port() const { return port_; }

  /// Live connection count — the fuzz tests' slot-leak probe.
  u64 active_connections() const;

  /// Requests admitted to the backend but not yet answered.
  u64 in_flight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Blocks until every admitted request has been answered (responses may
  /// still sit in dead connections' dropped counters — that is "answered").
  void drain();

  /// Stops accepting, closes every connection, joins all threads. Admitted
  /// queries are completed first (their responses are dropped). Idempotent;
  /// the destructor calls it.
  void stop();

  /// Front-door metrics (net_* series). Backend metrics stay in the
  /// backend's own registries; the kMetricsRequest response concatenates
  /// both, exactly like this accessor's consumers should.
  obs::Registry& metrics() { return reg_; }
  const obs::Registry& metrics() const { return reg_; }

 private:
  struct Conn {
    int fd = -1;
    u64 gen = 0;             ///< process-unique; the anti-misdelivery token
    FrameDecoder dec;
    std::deque<std::vector<u8>> outbox;
    size_t out_off = 0;      ///< bytes of outbox.front() already written
    TokenBucket bucket;
    u32 inflight = 0;        ///< per-client quota accounting
    bool want_write = false; ///< EPOLLOUT currently armed
  };

  /// One admitted query handed to the finisher pool.
  struct FinishJob {
    std::future<serve::QueryResult> fut;
    int fd = -1;
    u64 gen = 0;
    u64 request_id = 0;
    u32 fidelity_bp = kExactBp;
    u64 deadline_us = 0;
    u64 t_admit_us = 0;
    serve::PlanKey key;      ///< shape key at the ADMITTED fidelity
  };

  void loop();
  void finisher_loop();
  void accept_ready();
  void conn_readable(int fd);
  void conn_writable(int fd);
  void handle_frame(Conn& c, std::span<const u8> payload);
  void handle_topk(Conn& c, std::span<const u8> payload);
  /// Queues response bytes for (fd, gen) and wakes the loop; drops (and
  /// counts) when the connection is gone. Safe from any thread.
  void deliver(int fd, u64 gen, std::vector<u8> frame_bytes);
  /// Loop thread only: arm/flush/close primitives.
  void arm_writes_locked();
  void flush_conn(Conn& c);
  void close_conn(int fd);
  void wake();

  Backend& backend_;
  NetServerConfig cfg_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  u16 port_ = 0;
  std::atomic<bool> stop_{false};

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  u64 next_gen_ = 1;

  std::atomic<u64> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<FinishJob> jobs_;
  bool jobs_stop_ = false;

  obs::Registry reg_;
  obs::Counter& m_conns_opened_;
  obs::Counter& m_conns_closed_;
  obs::Counter& m_frames_bad_;
  obs::Counter& m_requests_bad_;
  obs::Counter& m_admitted_;
  obs::Counter& m_degraded_;
  obs::Counter& m_shed_;
  obs::Counter& m_shed_rate_;
  obs::Counter& m_shed_quota_;
  obs::Counter& m_shed_overload_;
  obs::Counter& m_shed_deadline_;
  obs::Counter& m_deadline_missed_;
  obs::Counter& m_responses_dropped_;
  obs::Gauge& m_active_conns_;
  obs::Gauge& m_inflight_gauge_;
  obs::Histogram& m_request_us_;

  std::thread loop_thread_;
  std::vector<std::thread> finishers_;
};

}  // namespace drtopk::net
