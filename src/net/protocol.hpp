// Message types for the drtopk serving protocol (docs/SERVING.md).
//
// Every frame payload begins with one MsgType byte. Requests carry the
// client's latency budget (deadline_us) and its *fidelity floor*
// (recall_floor_bp): the server runs exact when the budget allows, degrades
// down to — never past — the floor when it does not, and sheds with a typed
// Status otherwise. Responses echo the request_id (responses to pipelined
// requests may arrive out of order: admission-shed rejections return
// immediately while admitted work completes later) and report the fidelity
// the answer was actually computed at, so a degraded client always knows
// what it got.
//
// Encoding is the little-endian Reader/Writer of net/framing.hpp; decode_*
// return false on any truncation, trailing garbage, or out-of-range enum —
// the caller answers kBadRequest without crashing (the fuzz tests in
// tests/test_net.cpp hammer exactly this contract).
#pragma once

#include <string>

#include "net/framing.hpp"

namespace drtopk::net {

/// First payload byte of every message.
enum class MsgType : u8 {
  kTopkRequest = 1,
  kTopkResponse = 2,
  kMetricsRequest = 3,   ///< ask for a Prometheus-text metrics snapshot
  kMetricsResponse = 4,
  kPing = 5,
  kPong = 6,
};

/// Response disposition. kOk/kDegraded carry an answer; the kShed* family
/// and kBadRequest/kError are typed rejections with no values.
enum class Status : u8 {
  kOk = 0,            ///< exact answer (or the client asked for nothing less)
  kDegraded = 1,      ///< answered at a reduced recall target >= the
                      ///< client's floor; see TopkResponse::fidelity_bp
  kShedOverload = 2,  ///< server-wide in-flight bound reached
  kShedDeadline = 3,  ///< even the degraded estimate exceeds the deadline
  kShedQuota = 4,     ///< per-client in-flight quota exceeded
  kShedRate = 5,      ///< per-client token bucket empty
  kBadRequest = 6,    ///< well-framed but undecodable/invalid request
  kError = 7,         ///< execution failed server-side
};

/// Exact fidelity in basis points — the sentinel for "no degradation
/// allowed" in TopkRequest::recall_floor_bp.
inline constexpr u32 kExactBp = 10000;

/// One top-k query over a server-registered corpus.
struct TopkRequest {
  u64 request_id = 0;   ///< echoed verbatim in the response
  u32 corpus = 0;       ///< server-side corpus id (registration is out of
                        ///< band: drtopk_serverd loads corpora at startup)
  u64 k = 1;
  u8 criterion = 0;     ///< data::Criterion, validated on decode
  u8 selection_only = 0;
  /// Fidelity floor in basis points: kExactBp (10000) = exact only;
  /// 5000..9999 = the server may degrade to FidelityPolicy::approx(bp/1e4)
  /// under deadline pressure. Values below the FidelityPolicy domain floor
  /// (0.5) are invalid.
  u32 recall_floor_bp = kExactBp;
  u64 deadline_us = 0;  ///< wall-clock latency budget; 0 = none
};

/// The answer (or typed rejection) to one TopkRequest.
struct TopkResponse {
  u64 request_id = 0;
  Status status = Status::kOk;
  /// Fidelity the answer was computed at, in basis points (kExactBp for
  /// exact). Honest reporting is load-bearing: a degraded client uses this
  /// to decide whether to re-query at leisure. Meaningless for sheds.
  u32 fidelity_bp = kExactBp;
  u64 kth = 0;               ///< the k-selection answer
  std::vector<u64> values;   ///< top-k best-first (empty for sheds and
                             ///< selection-only requests' value lists)
  u64 server_us = 0;         ///< admission-to-response wall time observed
                             ///< by the server (0 for pre-admission sheds)
};

/// Serializes a TopkRequest as one wire frame.
inline std::vector<u8> encode(const TopkRequest& r) {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kTopkRequest));
  w.u64_(r.request_id);
  w.u32_(r.corpus);
  w.u64_(r.k);
  w.u8_(r.criterion);
  w.u8_(r.selection_only);
  w.u32_(r.recall_floor_bp);
  w.u64_(r.deadline_us);
  return w.frame();
}

/// Serializes a TopkResponse (status, fidelity, kth, values) as one
/// wire frame.
inline std::vector<u8> encode(const TopkResponse& r) {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kTopkResponse));
  w.u64_(r.request_id);
  w.u8_(static_cast<u8>(r.status));
  w.u32_(r.fidelity_bp);
  w.u64_(r.kth);
  w.u64_(r.server_us);
  w.u32_(static_cast<u32>(r.values.size()));
  for (const u64 v : r.values) w.u64_(v);
  return w.frame();
}

/// The one-byte metrics-snapshot request.
inline std::vector<u8> encode_metrics_request() {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kMetricsRequest));
  return w.frame();
}

/// Wraps a Prometheus text snapshot as a kMetricsResponse frame.
inline std::vector<u8> encode_metrics_response(const std::string& text) {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kMetricsResponse));
  w.u32_(static_cast<u32>(text.size()));
  w.bytes({reinterpret_cast<const u8*>(text.data()), text.size()});
  return w.frame();
}

/// Liveness probe; the server answers encode_pong().
inline std::vector<u8> encode_ping() {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kPing));
  return w.frame();
}

/// The ping answer.
inline std::vector<u8> encode_pong() {
  Writer w;
  w.u8_(static_cast<u8>(MsgType::kPong));
  return w.frame();
}

/// Message type of a payload, without consuming it. nullopt on empty.
inline std::optional<MsgType> peek_type(std::span<const u8> payload) {
  if (payload.empty()) return std::nullopt;
  const u8 t = payload[0];
  if (t < static_cast<u8>(MsgType::kTopkRequest) ||
      t > static_cast<u8>(MsgType::kPong))
    return std::nullopt;
  return static_cast<MsgType>(t);
}

/// Decodes a TopkRequest payload. False on truncation, trailing bytes, or
/// any out-of-domain field — the transport answers kBadRequest. Semantic
/// validation against the actual corpus (does it exist, k <= n) is the
/// server's job; this is pure wire-format hygiene.
inline bool decode(std::span<const u8> payload, TopkRequest& out) {
  Reader r(payload);
  u8 type = 0;
  if (!r.u8_(type) || type != static_cast<u8>(MsgType::kTopkRequest))
    return false;
  if (!r.u64_(out.request_id) || !r.u32_(out.corpus) || !r.u64_(out.k) ||
      !r.u8_(out.criterion) || !r.u8_(out.selection_only) ||
      !r.u32_(out.recall_floor_bp) || !r.u64_(out.deadline_us))
    return false;
  if (r.remaining() != 0) return false;
  if (out.k == 0) return false;
  if (out.criterion > 1) return false;  // data::Criterion: kLargest/kSmallest
  if (out.selection_only > 1) return false;
  // The floor is either "exact only" or inside FidelityPolicy's domain.
  if (out.recall_floor_bp != kExactBp &&
      (out.recall_floor_bp < 5000 || out.recall_floor_bp >= kExactBp))
    return false;
  return true;
}

/// Decodes a TopkResponse payload; false on truncation, a bad status
/// byte, or a value count that disagrees with the payload length.
inline bool decode(std::span<const u8> payload, TopkResponse& out) {
  Reader r(payload);
  u8 type = 0, status = 0;
  u32 count = 0;
  if (!r.u8_(type) || type != static_cast<u8>(MsgType::kTopkResponse))
    return false;
  if (!r.u64_(out.request_id) || !r.u8_(status) || !r.u32_(out.fidelity_bp) ||
      !r.u64_(out.kth) || !r.u64_(out.server_us) || !r.u32_(count))
    return false;
  if (status > static_cast<u8>(Status::kError)) return false;
  out.status = static_cast<Status>(status);
  if (r.remaining() != static_cast<size_t>(count) * 8) return false;
  out.values.resize(count);
  for (u32 i = 0; i < count; ++i)
    if (!r.u64_(out.values[i])) return false;
  return true;
}

/// Decodes a kMetricsResponse payload into its Prometheus text.
inline bool decode_metrics_response(std::span<const u8> payload,
                                    std::string& out) {
  Reader r(payload);
  u8 type = 0;
  u32 len = 0;
  if (!r.u8_(type) || type != static_cast<u8>(MsgType::kMetricsResponse))
    return false;
  if (!r.u32_(len) || r.remaining() != len) return false;
  out.resize(len);
  return r.bytes({reinterpret_cast<u8*>(out.data()), out.size()});
}

}  // namespace drtopk::net
