// Minimal in-process message-passing substrate with MPI semantics.
//
// The paper runs distributed Dr. Top-k over MPI across 4 nodes x 4 V100s
// (Section 5.4). This substrate reproduces the communication structure —
// ranks, asynchronous (buffered) sends, blocking receives, gather / bcast /
// barrier — with ranks as host threads and mailboxes ordered per
// (source, destination, tag), which is exactly MPI's non-overtaking
// guarantee. A latency + bandwidth cost model converts the recorded traffic
// into the "Communication (ms)" column of Table 2.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::mpi {

/// Inter-GPU communication cost: per-message latency plus wire time.
/// Defaults approximate GPUDirect over PCIe/NVLink-ish fabric with MPI
/// stack overhead.
struct CommCostModel {
  double latency_ms = 0.02;  ///< per message (MPI + driver round trip)
  double bw_gbps = 10.0;     ///< effective point-to-point bandwidth

  double message_ms(u64 bytes) const {
    return latency_ms + static_cast<double>(bytes) / (bw_gbps * 1e9) * 1e3;
  }
};

struct CommStats {
  u64 msgs_sent = 0;
  u64 bytes_sent = 0;
  u64 msgs_received = 0;
  u64 bytes_received = 0;
  double modeled_ms = 0.0;  ///< accumulated at the receiving side
};

class Context;

/// Per-rank communicator handle (the MPI_COMM_WORLD analogue).
class Comm {
 public:
  Comm(Context& ctx, int rank) : ctx_(&ctx), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Buffered (asynchronous) send: copies the payload into the receiver's
  /// mailbox and returns immediately — MPI_Isend with an internal buffer.
  template <class T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size_bytes());
    std::memcpy(bytes.data(), data.data(), data.size_bytes());
    post(dst, tag, std::move(bytes));
  }

  /// Blocking receive of a whole message from (src, tag). Messages between
  /// a given (src, dst, tag) triple arrive in send order.
  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = take(src, tag);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Gather: every rank's payload collected at root (index = rank).
  /// Non-root sends are asynchronous; root blocks until all arrive.
  template <class T>
  std::vector<std::vector<T>> gather(std::span<const T> mine, int root,
                                     int tag = kGatherTag) {
    std::vector<std::vector<T>> out;
    if (rank_ == root) {
      out.resize(static_cast<size_t>(size()));
      out[static_cast<size_t>(root)].assign(mine.begin(), mine.end());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        out[static_cast<size_t>(r)] = recv<T>(r, tag);
      }
    } else {
      send(root, tag, mine);
    }
    return out;
  }

  /// Broadcast from root to all ranks.
  template <class T>
  std::vector<T> bcast(std::span<const T> data, int root,
                       int tag = kBcastTag) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, tag, data);
      }
      return {data.begin(), data.end()};
    }
    return recv<T>(root, tag);
  }

  /// All-reduce max of a single value (gather to 0 + bcast).
  u64 allreduce_max(u64 value);

  void barrier();

  const CommStats& stats() const { return stats_; }

  static constexpr int kGatherTag = 1000;
  static constexpr int kBcastTag = 1001;
  static constexpr int kReduceTag = 1002;

 private:
  void post(int dst, int tag, std::vector<std::byte> bytes);
  std::vector<std::byte> take(int src, int tag);

  Context* ctx_;
  int rank_;
  CommStats stats_;
};

/// Runs fn(comm) on `nranks` threads sharing one Context; joins them all and
/// rethrows the first exception. Returns per-rank communication stats.
std::vector<CommStats> run(int nranks, const std::function<void(Comm&)>& fn,
                           CommCostModel cost = {});

}  // namespace drtopk::mpi
