#include "mpi/comm.hpp"

#include <thread>

namespace drtopk::mpi {

class Context {
 public:
  Context(int size, CommCostModel cost) : size_(size), cost_(cost) {}

  int size() const { return size_; }
  const CommCostModel& cost() const { return cost_; }

  void post(int src, int dst, int tag, std::vector<std::byte> bytes) {
    std::lock_guard lk(mu_);
    boxes_[key(src, dst, tag)].push_back(std::move(bytes));
    cv_.notify_all();
  }

  std::vector<std::byte> take(int src, int dst, int tag) {
    std::unique_lock lk(mu_);
    auto& box = boxes_[key(src, dst, tag)];
    cv_.wait(lk, [&] { return !box.empty(); });
    std::vector<std::byte> out = std::move(box.front());
    box.pop_front();
    return out;
  }

  void barrier() {
    std::unique_lock lk(mu_);
    const u64 gen = barrier_gen_;
    if (++barrier_waiting_ == size_) {
      barrier_waiting_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
  }

 private:
  static u64 key(int src, int dst, int tag) {
    return (static_cast<u64>(static_cast<u32>(src)) << 40) |
           (static_cast<u64>(static_cast<u32>(dst)) << 20) |
           static_cast<u64>(static_cast<u32>(tag));
  }

  int size_;
  CommCostModel cost_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<u64, std::deque<std::vector<std::byte>>> boxes_;
  int barrier_waiting_ = 0;
  u64 barrier_gen_ = 0;
};

int Comm::size() const { return ctx_->size(); }

void Comm::post(int dst, int tag, std::vector<std::byte> bytes) {
  stats_.msgs_sent += 1;
  stats_.bytes_sent += bytes.size();
  ctx_->post(rank_, dst, tag, std::move(bytes));
}

std::vector<std::byte> Comm::take(int src, int tag) {
  std::vector<std::byte> bytes = ctx_->take(src, rank_, tag);
  stats_.msgs_received += 1;
  stats_.bytes_received += bytes.size();
  stats_.modeled_ms += ctx_->cost().message_ms(bytes.size());
  return bytes;
}

u64 Comm::allreduce_max(u64 value) {
  std::span<const u64> mine(&value, 1);
  auto all = gather<u64>(mine, 0, kReduceTag);
  u64 best = value;
  if (rank_ == 0) {
    for (const auto& v : all)
      for (u64 x : v) best = std::max(best, x);
  }
  auto result = bcast<u64>(std::span<const u64>(&best, 1), 0, kReduceTag + 1);
  return result[0];
}

void Comm::barrier() { ctx_->barrier(); }

std::vector<CommStats> run(int nranks, const std::function<void(Comm&)>& fn,
                           CommCostModel cost) {
  Context ctx(nranks, cost);
  std::vector<Comm> comms;
  comms.reserve(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) comms.emplace_back(ctx, r);

  std::vector<std::thread> threads;
  std::exception_ptr error;
  std::mutex err_mu;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(comms[static_cast<size_t>(r)]);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);

  std::vector<CommStats> stats;
  stats.reserve(comms.size());
  for (const auto& c : comms) stats.push_back(c.stats());
  return stats;
}

}  // namespace drtopk::mpi
