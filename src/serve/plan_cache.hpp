// Execution-plan cache: (shape, distribution) -> tuned (alpha, engines).
//
// A serving workload re-sees the same query shapes over and over; paying
// Rule-4 evaluation — let alone probing — per query is wasted work. The
// cache key is (log2 |V|, log2 k, key width, criterion, distribution
// fingerprint); the value is a core::ExecPlan resolved once by one-time
// calibration:
//
//  * alpha — probe the Rule-4 closed form and its ±probe_radius neighbours
//    on a prefix subsample with k scaled to preserve log2|V| - log2 k (the
//    quantity Rule 4 depends on), keep the measured argmin. This recovers
//    the oracle-vs-rule-4 gap of Figure 14 at a fraction of a query's cost.
//  * second engine — seeded by topk::choose_engine's roofline ranking, then
//    the contenders are probed and the measured winner kept.
//
// Steady-state queries hit the cache and skip tuning entirely; the probes'
// simulated cost is charged to whichever executor resolves the miss, so
// server throughput numbers honestly include cold-start calibration.
#pragma once

#include <atomic>
#include <bit>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "core/dr_topk.hpp"

namespace drtopk::serve {

/// Cache key: the query's shape class. Deliberately shard-independent —
/// no device or placement state — so a plan calibrated on one shard is
/// valid on every sibling (see ShardedTopkServer plan sharing).
struct PlanKey {
  u32 log2n = 0;      ///< bit_width(|V|)
  u32 log2k = 0;      ///< bit_width(k)
  u32 key_bits = 32;  ///< 32 or 64
  u32 criterion = 0;
  u32 fingerprint = 0;
  /// FidelityPolicy::quantized_bp(): exact (10000) and each distinct recall
  /// target calibrate separately — an approx plan (beta 1, budget-capped
  /// alpha, no probes) must never be replayed for an exact query or for a
  /// different target's budget.
  u32 fidelity_bp = 10000;

  bool operator==(const PlanKey&) const = default;
};

/// Polynomial hash over the six PlanKey fields.
struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    u64 h = k.log2n;
    h = h * 131 + k.log2k;
    h = h * 131 + k.key_bits;
    h = h * 131 + k.criterion;
    h = h * 131 + k.fingerprint;
    h = h * 131 + k.fidelity_bp;
    return std::hash<u64>{}(h);
  }
};

/// A calibrated plan plus everything a replay presizes from: workspace
/// high-water marks and the provenance bits behind the probe-skip count.
struct CachedPlan {
  core::ExecPlan plan;
  double probe_sim_ms = 0.0;  ///< one-time calibration cost paid on miss
  /// Workspace high-water marks observed while executing this shape,
  /// fed back via PlanCache::note_workspace. Executors and group
  /// workspaces presize from these on a hit, so a recurring shape never
  /// grows an arena mid-query.
  u64 group_ws_bytes = 0;  ///< shared construction (delegate vector, keys)
                           ///< plus the group's deferred candidate spans
                           ///< (dedup-shared; re-recorded at finalization,
                           ///< which a cross-group window flush may run)
  u64 exec_ws_bytes = 0;   ///< per-query stages 2-4 scratch (and, with
                           ///< batched_concat, the group-wide classify
                           ///< staging arrays)
  /// Cross-shard plan sharing: true when this entry arrived via publish()
  /// (a sibling shard calibrated it) rather than local calibration. The
  /// PlanKey is shard-independent — same log2-shape and distribution
  /// fingerprint on every equal slice of one corpus — so the first hit on
  /// a published entry is exactly one probe set this shard skipped.
  bool published = false;
  bool skip_counted = false;  ///< first published-entry hit already counted
};

/// Cheap distribution fingerprint: max bit width over a strided sample plus
/// the number of distinct high bytes among the samples. Distinguishes the
/// paper's regimes (uniform spreads ~30 distinct high bytes, the tie-heavy
/// normal distribution collapses to 1) without reading the vector.
template <class T>
u32 data_fingerprint(std::span<const T> v) {
  constexpr u32 kSamples = 32;
  if (v.empty()) return 0;
  const u64 stride = std::max<u64>(1, v.size() / kSamples);
  u32 max_width = 0;
  bool seen[256] = {};
  u32 distinct = 0;
  for (u64 i = 0; i < v.size(); i += stride) {
    const u64 bits = static_cast<u64>(v[i]);
    max_width = std::max<u32>(max_width, static_cast<u32>(std::bit_width(bits)));
    const u8 hi = static_cast<u8>(bits >> (8 * sizeof(T) - 8));
    if (!seen[hi]) {
      seen[hi] = true;
      ++distinct;
    }
  }
  return max_width * 64 + distinct;
}

/// The (shape -> calibrated plan) map: resolve() replays on a hit and
/// runs the one-time probe calibration on a miss; publish()/entries()
/// expose the cross-shard sharing surface.
class PlanCache {
 public:
  struct Options {
    int probe_radius = 1;        ///< probe alpha in [rule4 - r, rule4 + r]
    u64 probe_sample = u64{1} << 15;  ///< calibration subsample length
    bool probe_engines = true;   ///< also probe the second-stage engine
  };

  PlanCache() = default;
  explicit PlanCache(Options opts) : opts_(opts) {}

  /// Returns the cached plan for the query's shape, running the one-time
  /// calibration on a miss. `hit_out` reports which path was taken. Misses
  /// probe outside the lock, so two executors racing on a brand-new shape
  /// may both calibrate; the insert is idempotent and the duplicated probe
  /// cost is charged to whoever paid it.
  template <class T>
  CachedPlan resolve(vgpu::Device& dev, std::span<const T> v, u64 k,
                     data::Criterion criterion,
                     const core::DrTopkConfig& base, bool* hit_out = nullptr,
                     vgpu::Workspace& ws = vgpu::tls_workspace());

  /// Records workspace high-water marks observed while serving `key`
  /// (max-merged; zero means "no update"). Future hits presize from them.
  void note_workspace(const PlanKey& key, u64 group_bytes, u64 exec_bytes) {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    it->second.group_ws_bytes = std::max(it->second.group_ws_bytes,
                                         group_bytes);
    it->second.exec_ws_bytes = std::max(it->second.exec_ws_bytes, exec_bytes);
  }

  /// Records one measured wall-clock *service* time (queue wait excluded)
  /// for `key`, folded into a per-shape EWMA. Unlike note_workspace this
  /// does not require a cached plan: the map is separate, so shapes that
  /// never calibrate locally (e.g. the sharded server's full-span keys)
  /// still build an estimate. The EWMA (alpha = 1/4) tracks load shifts
  /// within a few samples while smoothing scheduling noise — it is the
  /// deadline-admission service predictor (src/net/admission.hpp).
  void note_service_time(const PlanKey& key, u64 wall_us) {
    std::lock_guard lk(mu_);
    auto [it, inserted] = service_us_.emplace(key, 0.0);
    it->second = inserted ? static_cast<double>(wall_us)
                          : it->second * 0.75 +
                                static_cast<double>(wall_us) * 0.25;
  }

  /// Current service-time estimate for `key` in microseconds; 0 = no
  /// sample yet (the admission controller treats that as "unknown" and
  /// admits optimistically).
  u64 service_estimate_us(const PlanKey& key) const {
    std::lock_guard lk(mu_);
    auto it = service_us_.find(key);
    return it == service_us_.end() ? 0 : static_cast<u64>(it->second + 0.5);
  }

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Calibration probe sets this cache never ran because a sibling's
  /// published plan was hit instead (counted once per published entry, at
  /// its first hit — the moment calibration would otherwise have fired).
  u64 probes_skipped() const {
    return probes_skipped_.load(std::memory_order_relaxed);
  }
  size_t size() const {
    std::lock_guard lk(mu_);
    return map_.size();
  }

  /// Coherent copy of every cached entry, for cross-shard sharing.
  std::vector<std::pair<PlanKey, CachedPlan>> entries() const {
    std::lock_guard lk(mu_);
    std::vector<std::pair<PlanKey, CachedPlan>> out;
    out.reserve(map_.size());
    for (const auto& [k, p] : map_) out.push_back({k, p});
    return out;
  }

  /// Adopts a plan calibrated elsewhere (insert-if-absent: a locally
  /// calibrated entry always wins over a published copy). Returns true
  /// when the entry was new here — the next hit on it skips a probe set.
  bool publish(const PlanKey& key, const CachedPlan& plan) {
    std::lock_guard lk(mu_);
    auto [it, inserted] = map_.emplace(key, plan);
    if (inserted) {
      it->second.published = true;
      it->second.skip_counted = false;
      it->second.probe_sim_ms = 0.0;  // this cache never paid the probes
    }
    return inserted;
  }

  template <class T>
  static PlanKey make_key(std::span<const T> v, u64 k,
                          data::Criterion criterion,
                          core::FidelityPolicy fidelity = {}) {
    PlanKey key;
    key.log2n = static_cast<u32>(std::bit_width(v.size()));
    key.log2k = static_cast<u32>(std::bit_width(k));
    key.key_bits = 8 * sizeof(T);
    key.criterion = static_cast<u32>(criterion);
    key.fingerprint = data_fingerprint(v);
    key.fidelity_bp = fidelity.quantized_bp();
    return key;
  }

 private:
  template <class T>
  CachedPlan calibrate(vgpu::Device& dev, std::span<const T> v, u64 k,
                       data::Criterion criterion,
                       const core::DrTopkConfig& base,
                       vgpu::Workspace& ws) const;

  Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<PlanKey, CachedPlan, PlanKeyHash> map_;
  /// Measured service-time EWMAs, keyed like plans but stored apart so an
  /// estimate can exist for shapes with no locally calibrated plan.
  std::unordered_map<PlanKey, double, PlanKeyHash> service_us_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> probes_skipped_{0};
};

template <class T>
CachedPlan PlanCache::resolve(vgpu::Device& dev, std::span<const T> v, u64 k,
                              data::Criterion criterion,
                              const core::DrTopkConfig& base, bool* hit_out,
                              vgpu::Workspace& ws) {
  const PlanKey key = make_key(v, k, criterion, base.fidelity);
  {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // First hit on a shared-in plan: this is when local calibration
      // would have fired — one probe set skipped thanks to the sibling.
      if (it->second.published && !it->second.skip_counted) {
        it->second.skip_counted = true;
        probes_skipped_.fetch_add(1, std::memory_order_relaxed);
      }
      if (hit_out) *hit_out = true;
      CachedPlan hit = it->second;
      hit.probe_sim_ms = 0.0;  // already paid by the miss
      return hit;
    }
  }
  CachedPlan fresh = calibrate(dev, v, k, criterion, base, ws);
  {
    std::lock_guard lk(mu_);
    map_.emplace(key, fresh);  // idempotent under races
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit_out) *hit_out = false;
  return fresh;
}

template <class T>
CachedPlan PlanCache::calibrate(vgpu::Device& dev, std::span<const T> v,
                                u64 k, data::Criterion criterion,
                                const core::DrTopkConfig& base,
                                vgpu::Workspace& ws) const {
  const u64 n = v.size();
  CachedPlan out;
  out.plan.beta = core::resolve_beta(base);
  out.plan.first_algo = base.first_algo;
  out.plan.second_algo = base.second_algo;

  // Approximate plans are closed-form, not probed: the recall budget alone
  // decides alpha (approx_alpha) and beta is 1 by definition. Probing could
  // only pick a *smaller* alpha — more delegates, same answer quality class
  // but slower — and would make the delivered recall depend on measured
  // noise. Deterministic sizing keeps the recall guarantee reproducible.
  if (!base.fidelity.exact()) {
    const int a = base.alpha >= 0
                      ? core::clamp_alpha(n, k, out.plan.beta, base.alpha)
                      : core::approx_alpha(n, k, base.fidelity);
    out.plan.alpha = a < 0 ? core::kDirectAlpha : a;
    return out;
  }

  // Probe on a prefix subsample with k scaled to preserve the ratio Rule 4
  // depends on; the alpha ranking transfers to full size.
  const u64 m = std::min(n, std::max<u64>(opts_.probe_sample, 64));
  const u64 kp = std::clamp<u64>(
      static_cast<u64>(static_cast<double>(k) * static_cast<double>(m) /
                       static_cast<double>(n)),
      1, std::max<u64>(1, m / 4));
  std::span<const T> sample = v.subspan(0, m);

  // Probes are purely local measurements: never fire a configured
  // kappa_hook (a collective whose once-per-invocation contract a variable
  // number of probes would break) and measure the full pipeline, not the
  // selection-only shortcut.
  core::DrTopkConfig probe_base = base;
  probe_base.kappa_hook = nullptr;
  probe_base.selection_only = false;

  // An explicitly pinned base.alpha wins (resolve_alpha's contract): no
  // alpha search, only a baseline probe at the pinned value so the engine
  // comparison below still has a measurement to beat.
  const bool pinned = base.alpha >= 0;
  const int a0 = pinned
                     ? base.alpha
                     : core::AlphaTuner{base.tuner_const}.rule4_alpha(n, k);
  const int radius = pinned ? 0 : opts_.probe_radius;
  int best_alpha = core::resolve_alpha(n, k, out.plan.beta, base);
  double best_ms = std::numeric_limits<double>::infinity();
  for (int a = a0 - radius; a <= a0 + radius; ++a) {
    // A candidate alpha must be feasible at probe scale *and* full scale.
    if (core::clamp_alpha(m, kp, out.plan.beta, a) != a) continue;
    if (core::clamp_alpha(n, k, out.plan.beta, a) != a) continue;
    core::DrTopkConfig cfg = probe_base;
    cfg.alpha = a;
    auto r = core::dr_topk<T>(dev, sample, kp, criterion, cfg, nullptr, ws);
    out.probe_sim_ms += r.sim_ms;
    if (r.sim_ms < best_ms) {
      best_ms = r.sim_ms;
      best_alpha = a;
    }
  }
  // Infeasible delegation is cached as the explicit direct sentinel so a
  // replay goes straight to the direct top-k instead of re-tuning.
  out.plan.alpha = best_alpha < 0 ? core::kDirectAlpha : best_alpha;

  // Engine probe: only meaningful against a *measured* baseline. If every
  // alpha probe was infeasible at the subsample scale, there is nothing to
  // compare the suggested engine to — keep the base engine rather than
  // adopting an unmeasured suggestion.
  if (opts_.probe_engines && best_alpha >= 0 &&
      best_ms < std::numeric_limits<double>::infinity()) {
    const topk::Algo suggested =
        topk::choose_engine(dev.profile(), n, k, sizeof(T));
    if (suggested != out.plan.second_algo) {
      core::DrTopkConfig cfg = probe_base;
      cfg.alpha = best_alpha;
      cfg.second_algo = suggested;
      auto r = core::dr_topk<T>(dev, sample, kp, criterion, cfg, nullptr, ws);
      out.probe_sim_ms += r.sim_ms;
      if (r.sim_ms < best_ms) out.plan.second_algo = suggested;
    }
  }
  return out;
}

}  // namespace drtopk::serve
