#include "serve/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/export.hpp"
#include "topk/batched.hpp"

namespace drtopk::serve {

ShardedTopkServer::ShardedTopkServer(ShardedConfig cfg)
    : cfg_(cfg),
      m_single_(registry_.counter(
          "sharded_single_shard_queries",
          "Queries short-circuited to one shard's TopkServer")),
      m_merged_(registry_.counter("sharded_merged_queries",
                                  "Queries served via scatter + merge")),
      m_batches_(registry_.counter("sharded_merge_batches",
                                   "Merge-thread rounds executed")),
      m_launches_(registry_.counter("sharded_merge_launches",
                                    "Kernel launches spent merging")),
      merge_batch_size_(registry_.histogram(
          "sharded_merge_batch_size", "Queries merged per merge round")) {
  cfg_.num_shards = std::max(1u, cfg_.num_shards);
  cfg_.min_shard_elems = std::max<u64>(1, cfg_.min_shard_elems);
  shards_.reserve(cfg_.num_shards);
  for (u32 s = 0; s < cfg_.num_shards; ++s) {
    Shard sh;
    sh.dev = std::make_unique<vgpu::Device>(
        cfg_.profile, std::max(1u, cfg_.host_threads_per_shard));
    sh.server = std::make_unique<TopkServer>(*sh.dev, cfg_.shard);
    shards_.push_back(std::move(sh));
  }
  // The merge sets are tiny (shards x k keys); one host thread suffices.
  merge_dev_ = std::make_unique<vgpu::Device>(cfg_.profile, 1);
  merger_ = std::thread([this] { merge_loop(); });
}

ShardedTopkServer::~ShardedTopkServer() {
  {
    std::lock_guard lk(jobs_mu_);
    stop_ = true;
  }
  jobs_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
  // Shard servers drain in their own destructors.
}

u32 ShardedTopkServer::shards_for(u64 n) const {
  const u64 want = n / cfg_.min_shard_elems;
  return static_cast<u32>(
      std::clamp<u64>(want, 1, static_cast<u64>(cfg_.num_shards)));
}

ShardedTopkServer::CorpusId ShardedTopkServer::add_corpus(Corpus c) {
  std::lock_guard lk(corpora_mu_);
  // Round-robin placement keeps many small corpora off one hot shard.
  if (c.shards == 1)
    c.first_shard = static_cast<u32>(corpora_.size() % shards_.size());
  corpora_.push_back(c);
  return static_cast<CorpusId>(corpora_.size() - 1);
}

ShardedTopkServer::CorpusId ShardedTopkServer::register_corpus(
    std::span<const u32> v) {
  Corpus c;
  c.width = KeyWidth::k32;
  c.v32 = v;
  c.shards = shards_for(v.size());
  c.shard_len = (v.size() + c.shards - 1) / c.shards;
  return add_corpus(c);
}

ShardedTopkServer::CorpusId ShardedTopkServer::register_corpus(
    std::span<const u64> v) {
  Corpus c;
  c.width = KeyWidth::k64;
  c.v64 = v;
  c.shards = shards_for(v.size());
  c.shard_len = (v.size() + c.shards - 1) / c.shards;
  return add_corpus(c);
}

u32 ShardedTopkServer::corpus_shards(CorpusId id) const {
  std::lock_guard lk(corpora_mu_);
  return corpora_[id].shards;
}

std::future<QueryResult> ShardedTopkServer::submit(CorpusId id, u64 k,
                                                   data::Criterion criterion,
                                                   bool selection_only,
                                                   core::FidelityPolicy
                                                       fidelity,
                                                   u64 deadline_us) {
  Corpus c;
  {
    std::lock_guard lk(corpora_mu_);
    assert(id < corpora_.size() && "unregistered corpus");
    c = corpora_[id];
  }
  const u64 n = c.width == KeyWidth::k64 ? c.v64.size() : c.v32.size();
  assert(k >= 1 && k <= n);

  // ---- Single-shard route: today's TopkServer path, zero overhead. ----
  if (c.shards == 1) {
    m_single_.add();
    {
      std::lock_guard lk(stats_mu_);
      ++agg_.single_shard_queries;
      ++agg_.completed;
    }
    TopkServer& srv = *shards_[c.first_shard].server;
    return c.width == KeyWidth::k64
               ? srv.submit(Query::view(c.v64, k, criterion, selection_only,
                                        fidelity)
                                .with_deadline(deadline_us))
               : srv.submit(Query::view(c.v32, k, criterion, selection_only,
                                        fidelity)
                                .with_deadline(deadline_us));
  }

  // ---- Scatter: one clamped full-top-k sub-query per shard. The local
  // list must be a real top-min(k, len) (never selection-only): any global
  // winner living on shard s is within its local top-k, so the union of
  // the local lists contains the global top-k (Σ min(k, len_s) >= k). ----
  //
  // Under a recall target the scatter shrinks on both axes, splitting the
  // miss budget in half: each shard runs its local pipeline at a
  // *tightened* target (half the budget covers per-partition loss inside
  // the shards) and serves a *reduced* local k (the other half covers
  // truncation — the global top-k spreads ~uniformly over S shards, mean
  // k/S per shard, and a concentration slack of 2*sqrt(mu*ln(S+1)) + 8
  // caps how lopsided a shard's share can get). The merge itself stays the
  // exact engine either way — it sees smaller, approximate local lists.
  core::FidelityPolicy local = fidelity;
  u64 reduced_k = k;
  if (!fidelity.exact()) {
    local = core::FidelityPolicy::approx(
        1.0 - (1.0 - fidelity.recall_target) / 2.0);
    const double mu = static_cast<double>(k) / static_cast<double>(c.shards);
    reduced_k = static_cast<u64>(std::ceil(
        mu + 2.0 * std::sqrt(mu * std::log(static_cast<double>(c.shards) +
                                           1.0)) +
        8.0));
  }
  MergeJob job;
  job.k = k;
  job.criterion = criterion;
  job.selection_only = selection_only;
  job.width = c.width;
  job.t_submit = std::chrono::steady_clock::now();
  job.parts.reserve(c.shards);
  for (u32 s = 0; s < c.shards; ++s) {
    const u64 lo = static_cast<u64>(s) * c.shard_len;
    const u64 len = std::min(c.shard_len, n - lo);
    const u64 kk = std::min({k, reduced_k, len});
    TopkServer& srv = *shards_[s].server;
    job.parts.push_back(
        c.width == KeyWidth::k64
            ? srv.submit(Query::view(c.v64.subspan(lo, len), kk, criterion,
                                     /*selection_only=*/false, local)
                             .with_deadline(deadline_us))
            : srv.submit(Query::view(c.v32.subspan(lo, len), kk, criterion,
                                     /*selection_only=*/false, local)
                             .with_deadline(deadline_us)));
  }
  auto fut = job.promise.get_future();
  {
    std::lock_guard lk(jobs_mu_);
    job.id = next_id_++;
    ++jobs_in_flight_;
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
  return fut;
}

void ShardedTopkServer::merge_loop() {
  for (;;) {
    std::vector<MergeJob> batch;
    {
      std::unique_lock lk(jobs_mu_);
      jobs_cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      // Drain EVERYTHING queued: while this round blocks on shard futures
      // below, new submissions pile up and merge together next round —
      // batching follows load with no tuning knob.
      while (!jobs_.empty()) {
        batch.push_back(std::move(jobs_.front()));
        jobs_.pop_front();
      }
    }
    std::vector<MergeJob> j32, j64;
    for (auto& j : batch)
      (j.width == KeyWidth::k64 ? j64 : j32).push_back(std::move(j));
    if (!j32.empty()) merge_batch_typed<u32>(j32);
    if (!j64.empty()) merge_batch_typed<u64>(j64);
    // A merge round is a natural sync point: every shard just calibrated
    // whatever shapes this batch introduced — cross-publish them so the
    // next corpus of a recurring shape skips N-1 probe sets.
    share_plans();
    {
      std::lock_guard lk(jobs_mu_);
      jobs_in_flight_ -= batch.size();
    }
    drain_cv_.notify_all();
  }
}

template <class T>
void ShardedTopkServer::merge_batch_typed(std::vector<MergeJob>& jobs) {
  using Key = typename data::KeyTraits<T>::Key;

  // ---- Collect the shard answers (blocks until the slowest shard has
  // locally finalized) and re-key them into the directed-key domain, where
  // "better" is simply "bigger" regardless of criterion — the merge
  // network needs one total order. The lists arrive best-first, so the
  // re-keyed runs are sorted descending, exactly what the merge wants. ----
  struct Gathered {
    std::vector<std::vector<Key>> runs;
    double latency_ms = 0.0;  ///< max over shards: they run concurrently
    u64 queue_us = 0;         ///< max over shards, same concurrency argument
    core::StageBreakdown breakdown;
    bool plan_hit = true;
    bool fused = false;
  };
  std::vector<Gathered> in(jobs.size());
  for (size_t ji = 0; ji < jobs.size(); ++ji) {
    MergeJob& j = jobs[ji];
    Gathered& g = in[ji];
    g.runs.reserve(j.parts.size());
    for (auto& part : j.parts) {
      QueryResult pr = part.get();
      std::vector<Key> run(pr.values.size());
      for (size_t i = 0; i < pr.values.size(); ++i)
        run[i] = data::directed_key<T>(static_cast<T>(pr.values[i]),
                                       j.criterion);
      g.runs.push_back(std::move(run));
      g.latency_ms = std::max(g.latency_ms, pr.latency_sim_ms);
      g.queue_us = std::max(g.queue_us, pr.queue_us);
      g.breakdown += pr.breakdown;
      g.plan_hit = g.plan_hit && pr.plan_cache_hit;
      g.fused = g.fused || pr.fused;
    }
  }

  // ---- Merge on the merge device: one batched launch per level for the
  // WHOLE batch. Level 1 (only when the hierarchy engages) pre-merges
  // leader groups — dist/topology.hpp's grouping, the serving twin of the
  // multi-GPU node-leader reduction; the final level selects each query's
  // global top-k over its (pre-merged) runs. ----
  topk::Accum acc(*merge_dev_);
  vgpu::StageScope stage("merge");
  u64 launches = 0;

  std::vector<std::vector<std::vector<Key>>> level1(jobs.size());
  for (size_t ji = 0; ji < jobs.size(); ++ji) {
    const u32 nruns = static_cast<u32>(in[ji].runs.size());
    if (!dist::hierarchy_engages(nruns, cfg_.merge_fanin)) continue;
    std::vector<topk::MergeSegment<Key>> segs;
    for (u32 leader = 0; leader < nruns; leader += cfg_.merge_fanin) {
      topk::MergeSegment<Key> seg;
      u64 total = 0;
      for (u32 m = leader; m < dist::group_end(leader, cfg_.merge_fanin, nruns);
           ++m) {
        seg.runs.emplace_back(in[ji].runs[m]);
        total += in[ji].runs[m].size();
      }
      seg.k = std::min(jobs[ji].k, total);
      segs.push_back(std::move(seg));
    }
    auto r = topk::batched_merge_topk<Key>(acc, segs);
    launches += r.launches;
    level1[ji] = std::move(r.keys);
  }

  std::vector<topk::MergeSegment<Key>> finals(jobs.size());
  for (size_t ji = 0; ji < jobs.size(); ++ji) {
    auto& runs = level1[ji].empty() ? in[ji].runs : level1[ji];
    topk::MergeSegment<Key>& seg = finals[ji];
    u64 total = 0;
    for (auto& run : runs) {
      seg.runs.emplace_back(run);
      total += run.size();
    }
    seg.k = std::min(jobs[ji].k, total);
    seg.tag = jobs[ji].id;
  }
  auto fr = topk::batched_merge_topk<Key>(acc, finals);
  launches += fr.launches;

  // ---- Price and fulfil: every merged query carries an equal share of
  // the round's merge time on top of its slowest shard's local latency
  // (the shards ran concurrently; the merge ran once for everyone). ----
  const double share =
      acc.sim_ms() / static_cast<double>(std::max<size_t>(1, jobs.size()));
  const auto t_done = std::chrono::steady_clock::now();
  for (size_t ji = 0; ji < jobs.size(); ++ji) {
    MergeJob& j = jobs[ji];
    QueryResult out;
    out.id = j.id;
    const std::vector<Key>& keys = fr.keys[ji];
    const u64 keff = keys.size();
    if (j.selection_only) {
      out.kth = static_cast<u64>(
          data::value_from_directed_key<T>(keys[keff - 1], j.criterion));
      out.values = {out.kth};
    } else {
      out.values.resize(keff);
      for (u64 i = 0; i < keff; ++i)
        out.values[i] = static_cast<u64>(
            data::value_from_directed_key<T>(keys[i], j.criterion));
      out.kth = out.values.back();
    }
    out.latency_sim_ms = in[ji].latency_ms + share;
    out.queue_us = in[ji].queue_us;
    out.breakdown = in[ji].breakdown;
    out.breakdown.second_ms += share;
    out.plan_cache_hit = in[ji].plan_hit;
    out.fused = in[ji].fused;
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      t_done - j.t_submit)
                      .count();
    j.promise.set_value(std::move(out));
  }

  m_merged_.add(jobs.size());
  m_batches_.add();
  m_launches_.add(launches);
  merge_batch_size_.observe(jobs.size());
  std::lock_guard lk(stats_mu_);
  agg_.completed += jobs.size();
  agg_.merged_queries += jobs.size();
  ++agg_.merge_batches;
  agg_.merge_launches += launches;
  agg_.merge_sim_ms += acc.sim_ms();
}

void ShardedTopkServer::drain() {
  {
    std::unique_lock lk(jobs_mu_);
    drain_cv_.wait(lk, [&] { return jobs_in_flight_ == 0; });
  }
  for (auto& sh : shards_) sh.server->drain();
  // Quiesced: single-shard routes never pass the merge thread, so this is
  // their plan-sharing sync point.
  share_plans();
}

u64 ShardedTopkServer::share_plans() {
  if (shards_.size() < 2) return 0;
  // Union of every shard's calibrated plans, then insert-if-absent into
  // every sibling. Publishing a shard's own entry back is a no-op, and a
  // local calibration racing a publish keeps whichever landed first —
  // both are valid plans for the shape.
  std::vector<std::pair<PlanKey, CachedPlan>> all;
  for (auto& sh : shards_) {
    auto e = sh.server->plan_cache().entries();
    all.insert(all.end(), e.begin(), e.end());
  }
  u64 published = 0;
  for (auto& sh : shards_)
    for (const auto& [key, plan] : all)
      published += sh.server->plan_cache().publish(key, plan) ? 1 : 0;
  if (published) {
    std::lock_guard lk(stats_mu_);
    agg_.plan_publishes += published;
  }
  return published;
}

ShardedStats ShardedTopkServer::stats() const {
  ShardedStats s;
  {
    std::lock_guard lk(stats_mu_);
    s = agg_;
  }
  double shard_makespan = 0.0;
  for (const auto& sh : shards_) {
    shard_makespan =
        std::max(shard_makespan, sh.server->stats().makespan_sim_ms);
    s.plan_probes_skipped += sh.server->plan_cache().probes_skipped();
  }
  s.makespan_sim_ms = shard_makespan + s.merge_sim_ms;
  return s;
}

u64 ShardedTopkServer::workspace_growths() const {
  u64 g = 0;
  for (const auto& sh : shards_) g += sh.server->workspace_growths();
  return g;
}

u64 ShardedTopkServer::unattributed_launches() const {
  u64 u = merge_dev_->unattributed_launches();
  for (const auto& sh : shards_) u += sh.dev->unattributed_launches();
  return u;
}

std::string ShardedTopkServer::metrics_prometheus() const {
  std::string out;
  for (u32 s = 0; s < shards_.size(); ++s)
    out += obs::to_prometheus(shards_[s].server->metrics(),
                              "shard=\"" + std::to_string(s) + "\"");
  out += obs::to_prometheus(registry_, "shard=\"merge\"");
  return out;
}

std::string ShardedTopkServer::metrics_json() const {
  // Each per-shard object's braces are stripped and the labeled keys are
  // spliced into one flat document.
  std::string out = "{";
  bool first = true;
  auto splice = [&](const std::string& obj) {
    if (obj.size() <= 2) return;  // "{}"
    if (!first) out += ",";
    first = false;
    out.append(obj, 1, obj.size() - 2);
  };
  for (u32 s = 0; s < shards_.size(); ++s)
    splice(obs::to_json(shards_[s].server->metrics(),
                        "shard=\"" + std::to_string(s) + "\""));
  splice(obs::to_json(registry_, "shard=\"merge\""));
  out += "}";
  return out;
}

bool ShardedTopkServer::dump_trace(const std::string& path) const {
  std::vector<std::pair<std::string, const obs::Tracer*>> tracers;
  for (u32 s = 0; s < shards_.size(); ++s) {
    const obs::Tracer& t = shards_[s].server->tracer();
    if (t.enabled())
      tracers.emplace_back("shard-" + std::to_string(s), &t);
  }
  if (tracers.empty()) return false;
  std::ofstream f(path);
  if (!f) return false;
  obs::export_chrome_multi(f, tracers);
  return true;
}

}  // namespace drtopk::serve
