// TopkServer: batched multi-query top-k serving on one virtual GPU.
//
//   vgpu::Device dev;
//   serve::TopkServer server(dev);
//   auto f1 = server.submit(serve::Query::view(corpus, 100));
//   auto f2 = server.submit(serve::Query::view(corpus, 10, Criterion::kLargest,
//                                              /*selection_only=*/true));
//   auto r = f1.get();   // exact top-k, same bits as core::dr_topk
//
// Architecture (the seam every scaling PR plugs into):
//
//   submit() -> AdmissionQueue (bounded, backpressure)
//            -> admission groups (compatible queries batch together)
//            -> executor threads claim work: one resolves the group's plan
//               via the PlanCache (calibrated alpha/engines, skipping the
//               tuner on hits) and builds ONE shared delegate vector for
//               the whole group; then all executors cooperatively drain the
//               group's queries through core::dr_topk_from_delegates on the
//               shared Device (whose thread pool multiplexes the kernels).
//
// Batching wins because delegate construction — the dominant stage of the
// pipeline (Figure 15) — is paid once per group instead of once per query;
// the plan cache wins by replaying calibrated decisions for recurring
// query shapes. Two further collapse axes ride the same machinery:
// Phase-A dedup (identical queries of a group share one candidate span and
// one finalization segment, results fanned out to every subscriber) and
// cross-group finalization windows (groups completing within a short
// window share ONE batched second-top-k launch, even across corpora).
// docs/ARCHITECTURE.md walks a query through the whole pipeline.
#pragma once

#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace drtopk::serve {

/// Observability knobs (docs/OBSERVABILITY.md). Everything here is off by
/// default so the zero-allocation hot path and the committed BENCH_*
/// baselines are unaffected; the metrics registry itself is always live
/// (its record path is a handful of relaxed atomics).
struct ObsOptions {
  /// Record per-query trace spans (queue wait, phase A, parks, finalize,
  /// fan-out) into per-executor rings; export with TopkServer::dump_trace.
  bool tracing = false;
  /// Ring capacity in spans per lane (executors + 1 lanes). Pre-reserved
  /// at server construction, so steady-state tracing allocates nothing.
  u64 trace_capacity = u64{1} << 13;
  /// Compute stats() percentiles by exact-sorting a latency reservoir (the
  /// pre-histogram behavior) instead of reading the streaming histogram.
  /// Debug/parity flag: snapshots get strictly more expensive.
  bool exact_percentiles = false;
};

/// Server tuning knobs. Every optimization keeps its predecessor
/// measurable: `batched_select=false` replays the PR-2 per-query hot path,
/// `dedup=false` gives every query its own phase A, and
/// `finalize_window_us=0` finalizes each group by its own last finisher
/// (the PR-3 behavior) — see docs/ARCHITECTURE.md for the full map.
struct ServerConfig {
  u32 executors = 2;       ///< concurrent query executors
  u32 batch_max = 16;      ///< max queries per admission group
  u32 max_in_flight = 64;  ///< submit() blocks beyond this (backpressure)
  core::DrTopkConfig base; ///< baseline pipeline configuration
  bool use_plan_cache = true;
  PlanCache::Options plan;
  /// Batched second-stage selection (PR 3): group setup resolves every
  /// member's stage-2 threshold with one batched launch over the shared
  /// delegate vector; per-query execution defers stage 4 and parks its
  /// candidate span in the group arena; and the executor completing the
  /// group's last query selects top-k for ALL parked queries in a single
  /// launch (topk/batched.hpp) — one second-top-k launch per admission
  /// group instead of one per query. `false` replays the PR-2 per-query
  /// hot path, kept as the measurable baseline.
  bool batched_select = true;
  /// Phase-A dedup (PR 5): queries of one admission group with identical
  /// (k, selection_only) — corpus, length, width and criterion already
  /// matched at admission — share ONE stage-3 candidate span and ONE
  /// segment of the batched finalization launch; results fan out to every
  /// subscriber, bit-identical by construction. Only active on the batched
  /// fused path (it rides the deferred-span machinery); `false` gives
  /// every query its own phase A, the measurable PR-3 behavior.
  bool dedup = true;
  /// Group-wide batched stage 3 (PR 8): setup classifies the shared
  /// delegate vector against EVERY distinct k's exact kappa in one
  /// classify + one concat launch (core/concat_batched.hpp) right after
  /// the batched kappa resolution, staging one candidate span per k in
  /// the group arena. Per-item execution then launches NOTHING: a query
  /// whose k was precomputed parks a deferred segment referencing the
  /// shared span (identical ks coalesce into one sort inside the batched
  /// finalization), or self-serves with a host sort on the Rule-3 fast
  /// path. Phase B collapses to delegate -> [one classify/concat pair] ->
  /// [one batched second top-k] per group. Rides the batched_select
  /// machinery (no effect when that is off or the plan is ineligible);
  /// `false` replays the PR-7 per-query stage 3, kept measurable as the
  /// bench baseline.
  bool batched_concat = true;
  /// Cross-group finalization window, in microseconds of host wall clock:
  /// groups becoming finalization-ready within this window are finalized
  /// together in ONE shared batched launch per key width present —
  /// possibly over different corpora (the engine accepts mixed-corpus
  /// segment lists); u32 and u64 groups sharing a window still take one
  /// launch each. The first group to park becomes the *window owner* and
  /// waits (at most this long) while other executors keep draining
  /// queries; while parked the owner itself also polls the admission queue
  /// (AdmissionQueue::try_next) and executes queued groups, so even a
  /// single-executor server keeps making progress — and those groups can
  /// join the owner's own window instead of waiting behind it. 0
  /// (default): every group is finalized immediately by its own last
  /// finisher, exactly the PR-3 behavior.
  u32 finalize_window_us = 0;
  /// Parked-segment count at which a window flush fires early (before the
  /// window elapses) — accumulating past the point where one launch
  /// already fills the GPU only delays ready results. 0 = auto:
  /// topk::batched_segment_cap for the server's device.
  u32 finalize_max_segments = 0;
  /// Queue-empty early flush for the finalization window: the parked
  /// window owner is woken as soon as the executor pool goes idle (no
  /// queued groups, no running items) — nothing else can possibly join
  /// the window, so waiting out the timer would be pure added latency.
  /// In particular a single-executor server stops paying the full
  /// finalize_window_us on every group. `false` replays the PR-5
  /// timer/cap-only behavior.
  bool window_early_flush = true;
  /// Observability: tracing, trace ring capacity, exact-percentile debug.
  ObsOptions obs;
};

/// The batched multi-query top-k server (see the file comment for the
/// pipeline). Owns the executor threads, the admission queue, the plan
/// cache, the workspace arenas and the cross-group finalization staging
/// area; submit()/run_batch() are thread-safe.
class TopkServer {
 public:
  explicit TopkServer(vgpu::Device& dev, ServerConfig cfg = {});
  ~TopkServer();

  TopkServer(const TopkServer&) = delete;
  TopkServer& operator=(const TopkServer&) = delete;

  /// Admits a query; blocks while max_in_flight queries are pending.
  std::future<QueryResult> submit(Query q);

  /// Convenience: submit a whole batch and wait for every result, returned
  /// in submission order.
  std::vector<QueryResult> run_batch(std::vector<Query> queries);

  /// Blocks until every admitted query has completed.
  void drain();

  /// Aggregate metrics (plan counters merged from the cache).
  ServerStats stats() const;

  /// Feeds one oracle-measured recall sample (fraction of the true top-k
  /// an answer contained, in [0, 1]) into the metrics. The server cannot
  /// measure recall itself — that requires the exact answer it skipped
  /// computing — so benches/tests compute it against topk::reference_topk
  /// and report it here; it lands in ServerStats::recall_mean and the
  /// serve_recall_measured_bp histogram.
  void record_recall(double recall) { collector_.record_recall(recall); }

  /// Total arena growths (heap blocks acquired) across every executor
  /// workspace and the group workspace pool. A warmed-up server serving
  /// recurring shapes must not increase this — the allocation-regression
  /// test asserts exactly that. Call while the server is quiescent.
  u64 workspace_growths() const;

  /// Peak arena bytes in use across all server workspaces.
  u64 workspace_high_water() const;

  /// The live metrics registry (counters, gauges, latency histograms).
  /// Always populated — the record path is lock-free — whether or not
  /// tracing is enabled.
  obs::Registry& metrics() { return registry_; }
  const obs::Registry& metrics() const { return registry_; }

  /// Metrics snapshot in Prometheus text exposition format.
  std::string metrics_prometheus() const;

  /// Metrics snapshot as a JSON object keyed by metric name.
  std::string metrics_json() const;

  /// The per-query trace recorder (disabled unless ObsOptions::tracing).
  const obs::Tracer& tracer() const { return tracer_; }

  /// Writes the recorded trace as Chrome trace_event JSON (load at
  /// chrome://tracing). Returns false when tracing is off or the file
  /// cannot be opened.
  bool dump_trace(const std::string& path) const;

  const PlanCache& plan_cache() const { return plans_; }
  /// Mutable plan-cache access for cross-shard plan sharing
  /// (ShardedTopkServer publishes calibrated plans between siblings).
  PlanCache& plan_cache() { return plans_; }
  vgpu::Device& device() { return dev_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  void executor_loop(u32 executor_id);
  /// Handles one claimed unit of work (group setup or item execution) —
  /// the executor loop's body, also driven by a parked window owner that
  /// polls the queue (AdmissionQueue::try_next) while its window is open.
  void process_claim(AdmissionQueue::Claim& c, u32 executor_id);
  void setup_group(Group& g, u32 executor_id);
  void execute_item(Group& g, Pending& p, u64 amortize_over, u32 executor_id);
  /// Marks one item executed. The executor whose item completes the group
  /// either finalizes every parked (deferred) query now (window off) or
  /// parks the group in the cross-group staging area. Returns true when
  /// responsibility for the item's queue_.finish_item() was transferred to
  /// the staging-area flush (the caller must then NOT release the slot —
  /// drain() may not observe an idle queue with unfulfilled promises).
  bool maybe_finalize_group(const std::shared_ptr<Group>& g, u32 executor_id);
  /// Finalizes a set of completed groups — one batched launch per key
  /// width present, segments from all groups assembled into one list (the
  /// engine handles mixed corpora). A failure in one width's launch fails
  /// only that width's parked queries.
  void finalize_groups(std::span<const std::shared_ptr<Group>> groups,
                       u32 executor_id);
  /// THE batched-selection eligibility gate — one predicate shared by the
  /// group setup (does a batched kappa launch pay off?) and per-item
  /// execution (may this query defer its stage 4?), so the two sites
  /// cannot silently desynchronize. `cfg` must be the plan-applied config
  /// the queries will actually run with.
  bool batched_eligible(const core::DrTopkConfig& cfg) const {
    return cfg_.batched_select && !cfg.kappa_hook &&
           cfg.first_algo == topk::Algo::kRadixFlag &&
           cfg.second_algo == topk::Algo::kRadixFlag;
  }
  template <class T>
  void setup_group_typed(Group& g, u32 executor_id);
  template <class T>
  QueryResult run_item_typed(Group& g, Pending& p, u64 amortize_over,
                             vgpu::Workspace& ws, bool* deferred,
                             u32 executor_id);
  template <class T>
  void finalize_groups_typed(std::span<const std::shared_ptr<Group>> groups,
                             u32 executor_id);
  /// Releases one claim's running slot (AdmissionQueue::finish_running)
  /// and, when the pool just went idle, wakes a parked window owner so the
  /// queue-empty early flush fires.
  void item_done();
  /// Trace lane of an executor (lane 0 is the submit path).
  static u32 lane(u32 executor_id) { return executor_id + 1; }

  vgpu::Device& dev_;
  ServerConfig cfg_;
  PlanCache plans_;
  /// Declared before queue_/collector_: the queue holds a tracer pointer
  /// and the collector registers its metrics here (member init order).
  obs::Registry registry_;
  obs::Tracer tracer_;
  obs::Histogram* queue_wait_us_ = nullptr;  ///< admission -> claim (us)
  obs::Histogram* group_size_ = nullptr;     ///< queries per admission group
  /// Recycled workspaces backing each group's shared delegate vector
  /// (leases keep the pool's shared state alive, so group teardown order
  /// is a non-issue).
  vgpu::WorkspacePool group_ws_;
  /// One persistent workspace per executor thread: all per-query scratch
  /// (stages 2-4, engine buffers, plan probes) bump-allocates here.
  std::vector<std::unique_ptr<vgpu::Workspace>> exec_ws_;
  AdmissionQueue queue_;
  StatsCollector collector_;
  /// Cross-group finalization staging area (PR 5): completed groups with
  /// parked deferred spans wait here up to finalize_window_us for peers;
  /// the first parker becomes the *window owner* and flushes everyone in
  /// one shared launch sequence. "Owned by the executor pool": parking
  /// executors return to claiming work immediately, only the owner blocks
  /// (bounded by the window, woken early by the segment cap). Staged
  /// shared_ptr<Group>s keep each group's pooled-arena lease — and thus
  /// every parked candidate span — alive until the flush has consumed
  /// them (the DeferredSecond ownership contract in core/dr_topk.hpp).
  struct FinalizeStage {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::shared_ptr<Group>> groups;
    u64 segments = 0;  ///< parked deferred segments across staged groups
    bool owner_waiting = false;
  };
  FinalizeStage stage_;
  u64 stage_cap_ = 0;  ///< resolved finalize_max_segments (0-auto applied)
  std::vector<std::thread> executors_;
};

}  // namespace drtopk::serve
