// TopkServer: batched multi-query top-k serving on one virtual GPU.
//
//   vgpu::Device dev;
//   serve::TopkServer server(dev);
//   auto f1 = server.submit(serve::Query::view(corpus, 100));
//   auto f2 = server.submit(serve::Query::view(corpus, 10, Criterion::kLargest,
//                                              /*selection_only=*/true));
//   auto r = f1.get();   // exact top-k, same bits as core::dr_topk
//
// Architecture (the seam every scaling PR plugs into):
//
//   submit() -> AdmissionQueue (bounded, backpressure)
//            -> admission groups (compatible queries batch together)
//            -> executor threads claim work: one resolves the group's plan
//               via the PlanCache (calibrated alpha/engines, skipping the
//               tuner on hits) and builds ONE shared delegate vector for
//               the whole group; then all executors cooperatively drain the
//               group's queries through core::dr_topk_from_delegates on the
//               shared Device (whose thread pool multiplexes the kernels).
//
// Batching wins because delegate construction — the dominant stage of the
// pipeline (Figure 15) — is paid once per group instead of once per query;
// the plan cache wins by replaying calibrated decisions for recurring
// query shapes.
#pragma once

#include <thread>

#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace drtopk::serve {

struct ServerConfig {
  u32 executors = 2;       ///< concurrent query executors
  u32 batch_max = 16;      ///< max queries per admission group
  u32 max_in_flight = 64;  ///< submit() blocks beyond this (backpressure)
  core::DrTopkConfig base; ///< baseline pipeline configuration
  bool use_plan_cache = true;
  PlanCache::Options plan;
  /// Batched second-stage selection (PR 3): group setup resolves every
  /// member's stage-2 threshold with one batched launch over the shared
  /// delegate vector; per-query execution defers stage 4 and parks its
  /// candidate span in the group arena; and the executor completing the
  /// group's last query selects top-k for ALL parked queries in a single
  /// launch (topk/batched.hpp) — one second-top-k launch per admission
  /// group instead of one per query. `false` replays the PR-2 per-query
  /// hot path, kept as the measurable baseline.
  bool batched_select = true;
};

class TopkServer {
 public:
  explicit TopkServer(vgpu::Device& dev, ServerConfig cfg = {});
  ~TopkServer();

  TopkServer(const TopkServer&) = delete;
  TopkServer& operator=(const TopkServer&) = delete;

  /// Admits a query; blocks while max_in_flight queries are pending.
  std::future<QueryResult> submit(Query q);

  /// Convenience: submit a whole batch and wait for every result, returned
  /// in submission order.
  std::vector<QueryResult> run_batch(std::vector<Query> queries);

  /// Blocks until every admitted query has completed.
  void drain();

  /// Aggregate metrics (plan counters merged from the cache).
  ServerStats stats() const;

  /// Total arena growths (heap blocks acquired) across every executor
  /// workspace and the group workspace pool. A warmed-up server serving
  /// recurring shapes must not increase this — the allocation-regression
  /// test asserts exactly that. Call while the server is quiescent.
  u64 workspace_growths() const;

  /// Peak arena bytes in use across all server workspaces.
  u64 workspace_high_water() const;

  const PlanCache& plan_cache() const { return plans_; }
  vgpu::Device& device() { return dev_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  void executor_loop(u32 executor_id);
  void setup_group(Group& g, u32 executor_id);
  void execute_item(Group& g, Pending& p, u64 amortize_over, u32 executor_id);
  /// Marks one item executed; the executor whose item completes the group
  /// runs the batched finalization for every parked (deferred) query.
  void maybe_finalize_group(Group& g, u32 executor_id);
  /// THE batched-selection eligibility gate — one predicate shared by the
  /// group setup (does a batched kappa launch pay off?) and per-item
  /// execution (may this query defer its stage 4?), so the two sites
  /// cannot silently desynchronize. `cfg` must be the plan-applied config
  /// the queries will actually run with.
  bool batched_eligible(const core::DrTopkConfig& cfg) const {
    return cfg_.batched_select && !cfg.kappa_hook &&
           cfg.first_algo == topk::Algo::kRadixFlag &&
           cfg.second_algo == topk::Algo::kRadixFlag;
  }
  template <class T>
  void setup_group_typed(Group& g, u32 executor_id);
  template <class T>
  QueryResult run_item_typed(Group& g, Pending& p, u64 amortize_over,
                             vgpu::Workspace& ws, bool* deferred);
  template <class T>
  void finalize_group_typed(Group& g, u32 executor_id);

  vgpu::Device& dev_;
  ServerConfig cfg_;
  PlanCache plans_;
  /// Recycled workspaces backing each group's shared delegate vector
  /// (leases keep the pool's shared state alive, so group teardown order
  /// is a non-issue).
  vgpu::WorkspacePool group_ws_;
  /// One persistent workspace per executor thread: all per-query scratch
  /// (stages 2-4, engine buffers, plan probes) bump-allocates here.
  std::vector<std::unique_ptr<vgpu::Workspace>> exec_ws_;
  AdmissionQueue queue_;
  StatsCollector collector_;
  std::vector<std::thread> executors_;
};

}  // namespace drtopk::serve
