// Typed query/result objects for the top-k serving engine.
//
// A Query either *views* server-resident data (the common serving shape:
// many queries against one corpus — these are what admission batching can
// fuse into a single delegate-construction pass) or *owns* its payload
// (ad-hoc data shipped with the request). Key widths u32/u64 are supported;
// the criterion and selection-only flag mirror DrTopkConfig's semantics.
//
// Fidelity: every query carries a core::FidelityPolicy. The default is
// exact; Query::approx-constructed policies request the recall-target mode
// and flow through the whole path (group signature, dedup class, PlanKey,
// core config) — see core/fidelity.hpp for the execution model.
#pragma once

#include <bit>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/dr_topk.hpp"
#include "data/key_traits.hpp"

namespace drtopk::serve {

/// Key width of a query's payload; part of the admission-group signature.
enum class KeyWidth : u8 { k32, k64 };

/// One top-k request: k, criterion, selection-only flag, fidelity policy
/// and a payload that either views server-resident data or owns a shipped
/// buffer (see the file comment). Cheaply copyable; construct via the
/// factories.
struct Query {
  u64 k = 1;
  data::Criterion criterion = data::Criterion::kLargest;
  bool selection_only = false;  ///< k-selection: only the k-th value needed
  core::FidelityPolicy fidelity;  ///< exact (default) or recall target
  /// Latency budget in wall-clock microseconds from admission; 0 = none.
  /// Deadlines shape scheduling, not correctness: the answer (exact or at
  /// the fidelity policy's recall target) is unchanged, but the query's
  /// *deadline class* (log2 bucket) joins the admission-group signature —
  /// a tight-deadline query never shares a group with deadline-free peers,
  /// so it cannot be stalled behind their cross-group finalization window
  /// (the window is bypassed outright when the group's tightest deadline
  /// is within an order of magnitude of the window length). The network
  /// front door (src/net/) sets this from the client's requested deadline.
  u64 deadline_us = 0;

  // Exactly one payload is set (enforced by the factories below). Owned
  // buffers sit behind shared_ptr so Query stays cheaply copyable.
  std::span<const u32> view32;
  std::span<const u64> view64;
  std::shared_ptr<const std::vector<u32>> own32;
  std::shared_ptr<const std::vector<u64>> own64;

  /// One factory per (payload kind × key width), expressed once: K selects
  /// the width, the payload type selects view (span) vs owned (vector).
  template <class K>
  static Query view(std::span<const K> v, u64 k,
                    data::Criterion c = data::Criterion::kLargest,
                    bool selection_only = false,
                    core::FidelityPolicy fidelity = {}) {
    static_assert(std::is_same_v<K, u32> || std::is_same_v<K, u64>);
    Query q = common(k, c, selection_only, fidelity);
    if constexpr (std::is_same_v<K, u32>) q.view32 = v;
    else q.view64 = v;
    return q;
  }
  template <class K>
  static Query owned(std::vector<K> v, u64 k,
                     data::Criterion c = data::Criterion::kLargest,
                     bool selection_only = false,
                     core::FidelityPolicy fidelity = {}) {
    static_assert(std::is_same_v<K, u32> || std::is_same_v<K, u64>);
    Query q = common(k, c, selection_only, fidelity);
    auto owned = std::make_shared<const std::vector<K>>(std::move(v));
    if constexpr (std::is_same_v<K, u32>) q.own32 = std::move(owned);
    else q.own64 = std::move(owned);
    return q;
  }

  /// Fluent fidelity override: `Query::view(v, k).with_recall(0.9)`.
  Query with_recall(double rho) && {
    fidelity = core::FidelityPolicy::approx(rho);
    return std::move(*this);
  }

  /// Fluent deadline: `Query::view(v, k).with_deadline(5000)` — a 5 ms
  /// wall-clock budget from admission (see deadline_us).
  Query with_deadline(u64 us) && {
    deadline_us = us;
    return std::move(*this);
  }

  /// Log2 bucket of the deadline for the admission-group signature (0 =
  /// no deadline). Bucketing keeps batching effective — deadlines within
  /// the same power of two still group — while guaranteeing a group's
  /// tightest and loosest member deadlines differ by at most 2x, so the
  /// group-level window-bypass decision is right for every member.
  u32 deadline_class() const {
    return deadline_us == 0
               ? 0
               : static_cast<u32>(std::bit_width(deadline_us));
  }

  KeyWidth width() const {
    return (own64 || !view64.empty()) ? KeyWidth::k64 : KeyWidth::k32;
  }
  std::span<const u32> data32() const {
    return own32 ? std::span<const u32>(own32->data(), own32->size())
                 : view32;
  }
  std::span<const u64> data64() const {
    return own64 ? std::span<const u64>(own64->data(), own64->size())
                 : view64;
  }
  u64 n() const {
    return width() == KeyWidth::k64 ? data64().size() : data32().size();
  }
  /// Identity of the underlying buffer — the admission scheduler fuses
  /// queries whose data_id/n/width/criterion/fidelity all match into one
  /// group that shares a single delegate-construction pass.
  const void* data_id() const {
    return width() == KeyWidth::k64
               ? static_cast<const void*>(data64().data())
               : static_cast<const void*>(data32().data());
  }

 private:
  static Query common(u64 k, data::Criterion c, bool selection_only,
                      core::FidelityPolicy fidelity) {
    Query q;
    q.k = k;
    q.criterion = c;
    q.selection_only = selection_only;
    q.fidelity = fidelity;
    return q;
  }
};

/// The answer to one Query: top-k values (widened to u64; exact fidelity
/// guarantees the true multiset, a recall target guarantees it in
/// expectation), the k-th value, and per-query accounting (simulated
/// latency including amortized shares of group-shared work, stage
/// breakdown, cache/fusion flags).
struct QueryResult {
  u64 id = 0;                ///< server-assigned, monotonically increasing
  std::vector<u64> values;   ///< top-k, best-first, widened to u64
                             ///< (selection-only: just the k-th value)
  u64 kth = 0;               ///< the k-selection answer
  double latency_sim_ms = 0; ///< modeled GPU latency of this query: its
                             ///< stages 2-4 plus an amortized share of the
                             ///< group's shared construction pass
  double wall_ms = 0;        ///< host wall-clock from admission to finish
  u64 queue_us = 0;          ///< wall-clock microseconds spent queued before
                             ///< an executor claimed the query — wall_ms
                             ///< minus this is the service component, the
                             ///< quantity deadline admission estimates from
  core::StageBreakdown breakdown;
  bool plan_cache_hit = false;
  bool fused = false;        ///< delegate construction was shared with
                             ///< other queries of its admission group
};

}  // namespace drtopk::serve
