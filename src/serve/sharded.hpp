// ShardedTopkServer: multi-device top-k serving with a hierarchical
// cross-shard merge.
//
//   serve::ShardedConfig cfg;            // 2 shards by default
//   serve::ShardedTopkServer srv(cfg);
//   auto corpus = srv.register_corpus(big_span);   // sharded once, here
//   auto f = srv.submit(corpus, 100);
//   auto r = f.get();                    // bit-identical to one TopkServer
//
// One vgpu::Device tops out at its SM and memory budget; past that,
// throughput comes from partition-local selection plus a cheap merge (the
// paper's Section 5.4 multi-GPU design; RadiK's multi-partition serving
// confirms the shape). A corpus is registered ONCE and cut into
// contiguous shards across N devices; every shard owns a full TopkServer
// — executor pool, shard-local PlanCache, pooled workspaces, admission
// groups, phase-A dedup, batched kappa resolution, finalization windows —
// and serves its sub-span exactly as the single-device engine would.
//
// Life of a multi-shard query:
//
//   submit(corpus, k) -> scatter: one sub-query per shard, k clamped to
//                        the shard's length (a shard's local top-k is a
//                        superset of its members of the global top-k)
//                     -> each shard resolves its candidates through the
//                        DeferredSecond seam and finalizes LOCALLY (the
//                        existing batched machinery, unchanged)
//                     -> merge thread: shard winner lists are re-keyed to
//                        the directed-key domain and merged by ONE
//                        topk::batched_merge_topk launch per key width for
//                        the whole in-flight batch — optionally two-level
//                        (leader pre-merge, dist/topology.hpp) when
//                        merge_fanin says the flat fan-in is too wide
//                     -> global top-k, bit-identical to the single-device
//                        answer (values are merged as exact multisets).
//
// Single-shard corpora short-circuit: submit() forwards straight to the
// owning shard's TopkServer and returns ITS future — zero added latency,
// no merge hop. docs/ARCHITECTURE.md walks the full path.
#pragma once

#include <condition_variable>
#include <deque>
#include <thread>

#include "dist/topology.hpp"
#include "serve/server.hpp"

namespace drtopk::serve {

/// Sharded-deployment knobs. `shard` is the per-shard ServerConfig — every
/// single-device option (batching, dedup, windows, obs) applies per shard
/// unchanged.
struct ShardedConfig {
  u32 num_shards = 2;  ///< devices (and TopkServers) to spread corpora over
  /// Corpora shorter than 2x this stay on one shard: below it the merge
  /// hop costs more than shard parallelism recovers. A corpus of n
  /// elements lands on clamp(n / min_shard_elems, 1, num_shards) shards.
  u64 min_shard_elems = u64{1} << 12;
  ServerConfig shard;            ///< per-shard server configuration
  vgpu::GpuProfile profile = vgpu::GpuProfile::v100s();
  u32 host_threads_per_shard = 2;  ///< host threads backing each device
  /// Cross-shard reduction fan-in: 0 = flat (one merge level over all
  /// shard lists). A value in (0, shards) groups shards under leaders
  /// (dist::group_leader) and merges in two levels — the serving twin of
  /// dist::MultiGpuConfig::hierarchical, worthwhile once the flat fan-in
  /// exceeds what one merge CTA's shared memory holds.
  u32 merge_fanin = 0;
};

/// Aggregate sharded-deployment metrics. Per-shard detail lives in each
/// shard's own ServerStats (ShardedTopkServer::shard(i).stats()).
struct ShardedStats {
  u64 completed = 0;             ///< queries answered (both routes)
  u64 single_shard_queries = 0;  ///< short-circuited to one TopkServer
  u64 merged_queries = 0;        ///< scatter/merge route
  u64 merge_batches = 0;         ///< merge-thread rounds executed
  u64 merge_launches = 0;        ///< kernel launches spent merging
  u64 plan_publishes = 0;        ///< plan-cache entries adopted from a
                                 ///< sibling shard via share_plans()
  u64 plan_probes_skipped = 0;   ///< calibration probe sets shards never
                                 ///< ran because a published plan hit first
                                 ///< (summed over shard PlanCaches)
  double merge_sim_ms = 0.0;     ///< simulated GPU time of all merges
  /// Modeled makespan of the deployment: shards run concurrently (max
  /// over shard makespans) and the merge device runs after the last
  /// contributor, serialized on the merge accumulator.
  double makespan_sim_ms = 0.0;
  /// Modeled aggregate queries/second of the sharded deployment.
  double qps() const {
    return makespan_sim_ms > 0.0
               ? static_cast<double>(completed) * 1e3 / makespan_sim_ms
               : 0.0;
  }
};

/// N-device sharded serving front end (see the file comment). Owns the
/// shard devices, their TopkServers, the merge device and the merge
/// thread; register_corpus()/submit()/drain() are thread-safe.
class ShardedTopkServer {
 public:
  using CorpusId = u32;

  explicit ShardedTopkServer(ShardedConfig cfg = {});
  ~ShardedTopkServer();

  ShardedTopkServer(const ShardedTopkServer&) = delete;
  ShardedTopkServer& operator=(const ShardedTopkServer&) = delete;

  /// Registers a corpus: cut into contiguous shards (the last one ragged)
  /// spread over the shard devices. The data must outlive the server,
  /// exactly like Query::view. Single-shard corpora are placed round-robin
  /// for balance.
  CorpusId register_corpus(std::span<const u32> v);
  CorpusId register_corpus(std::span<const u64> v);

  /// Top-k over a registered corpus. Multi-shard corpora scatter one
  /// clamped sub-query per shard and merge; single-shard corpora forward
  /// to the owning TopkServer (zero overhead — the returned future IS that
  /// server's future). Exact fidelity (the default) keeps the bit-exact
  /// cross-shard merge; a recall target scatters *reduced* shard-local
  /// sub-queries (smaller local k, tightened local target — see submit's
  /// implementation for the budget split) and merges those exactly.
  /// `deadline_us` (0 = none) is stamped on every scattered sub-query, so
  /// shard-local scheduling (deadline-class grouping, finalize-window
  /// bypass — see Query::deadline_us) honors the caller's budget on each
  /// shard independently.
  std::future<QueryResult> submit(CorpusId corpus, u64 k,
                                  data::Criterion criterion =
                                      data::Criterion::kLargest,
                                  bool selection_only = false,
                                  core::FidelityPolicy fidelity = {},
                                  u64 deadline_us = 0);

  /// Blocks until every submitted query (both routes) has completed, then
  /// cross-publishes calibrated plans between shards (share_plans).
  void drain();

  /// Cross-shard plan sharing: publishes the union of every shard's
  /// calibrated plans to every sibling (insert-if-absent — local
  /// calibrations always win). PlanKeys are shard-independent (log2 shape
  /// + distribution fingerprint), so shapes recur across shards and the
  /// next shard to see a shared shape skips its whole probe set. Runs
  /// automatically after each merge round and on drain(); public so tests
  /// and routing layers can force a sync point. Returns the number of
  /// entries newly adopted by some shard.
  u64 share_plans();

  ShardedStats stats() const;

  u32 num_shards() const { return static_cast<u32>(shards_.size()); }
  /// Shards a registered corpus actually spans.
  u32 corpus_shards(CorpusId id) const;

  TopkServer& shard(u32 i) { return *shards_[i].server; }
  const TopkServer& shard(u32 i) const { return *shards_[i].server; }
  vgpu::Device& shard_device(u32 i) { return *shards_[i].dev; }
  /// The device the cross-shard merge kernels run on.
  vgpu::Device& merge_device() { return *merge_dev_; }

  /// Summed arena growths across every shard server (the zero-steady-state
  /// growth invariant holds per shard, hence for the sum).
  u64 workspace_growths() const;
  /// Launches missing a stage label, summed over shard + merge devices —
  /// the CI gate's input, must be 0.
  u64 unattributed_launches() const;

  /// All shards' metrics, each series labeled `shard="i"`, followed by the
  /// deployment-level merge metrics labeled `shard="merge"`.
  std::string metrics_prometheus() const;
  /// Same data as one flat JSON object with labeled keys.
  std::string metrics_json() const;

  /// Unified Chrome trace: one process row per shard ("shard-i", its
  /// executors as threads) via obs::export_chrome_multi. Returns false
  /// when tracing is off in the shard config or the file cannot open.
  bool dump_trace(const std::string& path) const;

  const ShardedConfig& config() const { return cfg_; }

 private:
  struct Shard {
    std::unique_ptr<vgpu::Device> dev;
    std::unique_ptr<TopkServer> server;
  };
  /// A registered corpus: the per-shard sub-spans (indexed by shard id;
  /// empty spans on shards the corpus does not reach) plus its width.
  struct Corpus {
    KeyWidth width = KeyWidth::k32;
    u32 shards = 1;      ///< sub-span count
    u32 first_shard = 0; ///< owning shard when shards == 1
    std::span<const u32> v32;
    std::span<const u64> v64;
    u64 shard_len = 0;   ///< elements per shard (last one ragged)
  };
  /// One scatter/merge query in flight: the shard futures plus everything
  /// the merge thread needs to assemble and price the global answer.
  struct MergeJob {
    std::promise<QueryResult> promise;
    std::vector<std::future<QueryResult>> parts;
    u64 id = 0;
    u64 k = 1;
    data::Criterion criterion = data::Criterion::kLargest;
    bool selection_only = false;
    KeyWidth width = KeyWidth::k32;
    std::chrono::steady_clock::time_point t_submit;
  };

  u32 shards_for(u64 n) const;
  CorpusId add_corpus(Corpus c);
  void merge_loop();
  /// Merges one batch of jobs of width T: level-1 leader pre-merge when
  /// the hierarchy engages, then the final merge — one batched launch per
  /// level for ALL jobs. Fulfils every job's promise.
  template <class T>
  void merge_batch_typed(std::vector<MergeJob>& jobs);

  ShardedConfig cfg_;
  std::vector<Shard> shards_;
  /// Merge kernels run on their own small device so shard makespans stay
  /// clean (the merge is serialized after its contributors anyway; its
  /// cost is accounted in ShardedStats::merge_sim_ms).
  std::unique_ptr<vgpu::Device> merge_dev_;

  mutable std::mutex corpora_mu_;
  std::vector<Corpus> corpora_;

  // Merge-thread state: jobs queue in submission order; the thread drains
  // ALL queued jobs as one batch (natural batching under load — while it
  // blocks on shard futures, new arrivals pile up for the next round).
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;   ///< wakes the merge thread
  std::condition_variable drain_cv_;  ///< wakes drain()
  std::deque<MergeJob> jobs_;
  u64 jobs_in_flight_ = 0;  ///< queued + being merged
  bool stop_ = false;
  std::thread merger_;

  mutable std::mutex stats_mu_;
  ShardedStats agg_;
  u64 next_id_ = 1;

  obs::Registry registry_;  ///< deployment-level (merge-path) metrics
  obs::Counter& m_single_;
  obs::Counter& m_merged_;
  obs::Counter& m_batches_;
  obs::Counter& m_launches_;
  obs::Histogram& merge_batch_size_;
};

}  // namespace drtopk::serve
