// Aggregate serving metrics, in simulated-GPU-time terms.
//
// Latencies are the cost-model milliseconds each query would take on the
// profiled GPU (its pipeline stages plus an amortized share of any
// group-shared work). Aggregate throughput uses the *makespan*: the largest
// per-executor sum of simulated work — concurrent executors overlap, so
// completed / makespan is the modeled steady-state QPS of the deployment.
//
// The collector double-publishes: coherent snapshot fields under one mutex
// (TopkServer::stats()), and lock-free obs::Registry metrics for live
// export (Prometheus/JSON). Percentiles come from a streaming log-scale
// histogram — O(1) per query, O(buckets) per snapshot — instead of sorting
// a latency vector; the exact-sort reservoir survives only behind
// ObsOptions::exact_percentiles for parity testing.
#pragma once

#include <algorithm>
#include <mutex>
#include <vector>

#include "core/dr_topk.hpp"
#include "data/rng.hpp"
#include "obs/metrics.hpp"

namespace drtopk::serve {

/// Aggregate server metrics snapshot (TopkServer::stats()): query counts,
/// batching/dedup/window counters, simulated-latency percentiles and the
/// makespan-based modeled QPS.
struct ServerStats {
  u64 completed = 0;
  u64 failed = 0;
  u64 groups = 0;         ///< admission groups executed
  u64 fused_queries = 0;  ///< queries served from a group-shared delegate
  u64 plan_hits = 0;      ///< plan-cache lookups that skipped tuning
  u64 plan_misses = 0;    ///< lookups that paid calibration probes
  u64 batched_groups = 0;   ///< groups finalized with a batched second top-k
  u64 batched_queries = 0;  ///< queries whose stage 4 ran inside a batched
                            ///< finalization (dedup subscribers included)
  u64 finalize_launches = 0;  ///< selection launches spent finalizing groups:
                              ///< exactly one per finalization when the
                              ///< candidate segments fit one SM (the asserted
                              ///< common case), two when the multi-CTA path
                              ///< runs; a cross-group window flush counts
                              ///< ONCE for all groups it covers
  u64 deduped_queries = 0;  ///< queries served from another query's phase-A
                            ///< span/result instead of running their own
  u64 dedup_classes = 0;    ///< query classes that actually shared (had at
                            ///< least one subscriber join a leader)
  u64 window_flushes = 0;   ///< cross-group staging-area flushes performed
  u64 window_merged_groups = 0;  ///< groups whose finalization shared a
                                 ///< window flush with at least one other
                                 ///< group (counted per group)
  u64 window_early_flushes = 0;  ///< window flushes triggered by the
                                 ///< queue-empty early-flush path rather
                                 ///< than the timer or the segment cap
  u64 window_deadline_bypasses = 0;  ///< groups finalized immediately —
                                     ///< never parked — because their
                                     ///< member deadline was too tight for
                                     ///< the cross-group window to be safe
  u64 concat_launches = 0;  ///< kernel launches attributed to stage 3
                            ///< (classify + concat): per-query pairs on the
                            ///< baseline path, ONE pair per group with
                            ///< batched_concat — the stage the lpq gate
                            ///< watches (ROADMAP item 1)
  u64 relax_guard_trips = 0;  ///< relaxation-guard re-thresholds (tie-heavy
                              ///< distributions forcing the exact-kappa
                              ///< recompute; see core/concat_fused.hpp)
  u64 relax_guard_skips = 0;  ///< guard trips the fidelity policy waved off
                              ///< (recall-target queries never re-threshold)
  u64 approx_queries = 0;     ///< queries executed under a recall target
                              ///< (FidelityPolicy not exact)
  u64 recall_samples = 0;     ///< oracle-measured recall samples recorded
  double recall_mean = 0.0;   ///< mean measured recall over those samples
                              ///< (1.0 when no sample was recorded)

  double total_sim_ms = 0.0;     ///< summed per-query simulated latency
  double calibration_sim_ms = 0.0;  ///< plan-cache probe work (cold starts)
  double makespan_sim_ms = 0.0;  ///< max per-executor simulated work
  double p50_sim_ms = 0.0;
  double p99_sim_ms = 0.0;
  core::StageBreakdown stages;  ///< aggregate stage breakdown (construction
                                ///< counted once per group, not per query)

  /// Modeled aggregate queries/second of the executor fleet.
  double qps() const {
    return makespan_sim_ms > 0.0
               ? static_cast<double>(completed) * 1e3 / makespan_sim_ms
               : 0.0;
  }
  double plan_hit_rate() const {
    const u64 total = plan_hits + plan_misses;
    return total ? static_cast<double>(plan_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }
  double mean_latency_sim_ms() const {
    return completed ? total_sim_ms / static_cast<double>(completed) : 0.0;
  }
};

/// Thread-safe accumulator behind TopkServer::stats(). Mirrors every
/// counter into the obs::Registry (lock-free reads for Prometheus/JSON
/// export) while keeping the mutex-guarded fields for coherent snapshots.
class StatsCollector {
 public:
  /// With `exact_percentiles` the collector additionally keeps the
  /// reservoir of raw latency samples and computes snapshot percentiles by
  /// sorting it (the pre-histogram behavior, kept for parity tests and
  /// debugging); otherwise percentiles read the streaming histogram.
  StatsCollector(u32 executors, obs::Registry& reg,
                 bool exact_percentiles = false)
      : per_executor_(executors, 0.0),
        exact_percentiles_(exact_percentiles),
        latency_us_(reg.histogram("serve_latency_sim_us",
                                  "Per-query simulated latency (us)")),
        m_completed_(reg.counter("serve_queries_completed",
                                 "Queries answered successfully")),
        m_failed_(reg.counter("serve_queries_failed",
                              "Queries rejected or failed")),
        m_groups_(reg.counter("serve_groups", "Admission groups executed")),
        m_fused_(reg.counter("serve_fused_queries",
                             "Queries served from a group-shared delegate")),
        m_batched_groups_(reg.counter(
            "serve_batched_groups",
            "Groups finalized with a batched second top-k")),
        m_batched_queries_(reg.counter(
            "serve_batched_queries",
            "Queries finalized inside a batched second top-k")),
        m_finalize_launches_(reg.counter(
            "serve_finalize_launches",
            "Selection launches spent finalizing groups")),
        m_deduped_(reg.counter("serve_deduped_queries",
                               "Queries served from another query's phase A")),
        m_dedup_classes_(reg.counter("serve_dedup_classes",
                                     "Query classes that actually shared")),
        m_window_flushes_(reg.counter("serve_window_flushes",
                                      "Cross-group staging-area flushes")),
        m_window_merged_(reg.counter(
            "serve_window_merged_groups",
            "Groups that shared a window flush with another group")),
        m_early_flushes_(reg.counter(
            "serve_window_early_flushes",
            "Window flushes triggered by queue-empty early flush")),
        m_deadline_bypasses_(reg.counter(
            "serve_window_deadline_bypass",
            "Groups finalized immediately: deadline too tight to park")),
        m_concat_launches_(reg.counter(
            "serve_concat_launches",
            "Kernel launches attributed to stage 3 (classify + concat)")),
        m_guard_trips_(reg.counter(
            "serve_relax_guard_trips",
            "Relaxation-guard re-thresholds (per segment)")),
        m_guard_skips_(reg.counter(
            "serve_relax_guard_skips",
            "Guard trips waved off by a recall-target fidelity policy")),
        m_approx_(reg.counter(
            "serve_approx_queries",
            "Queries executed under a recall-target fidelity policy")),
        recall_bp_(reg.histogram(
            "serve_recall_measured_bp",
            "Oracle-measured recall per sampled query (basis points)")) {}

  /// Reservoir bound for the exact-percentiles debug path: a long-running
  /// server must not grow memory per query. Up to kLatencyReservoir samples
  /// are exact; beyond that, uniform (deterministic) replacement keeps the
  /// percentiles an unbiased estimate over the whole history.
  static constexpr size_t kLatencyReservoir = 1 << 16;

  void record_query(double sim_latency_ms,
                    const core::StageBreakdown& stages, bool fused) {
    latency_us_.observe(to_us(sim_latency_ms));
    m_completed_.add();
    if (fused) m_fused_.add();
    if (stages.concat_stats.kernels_launched)
      m_concat_launches_.add(stages.concat_stats.kernels_launched);
    if (stages.guard_trips) m_guard_trips_.add(stages.guard_trips);
    if (stages.guard_skips) m_guard_skips_.add(stages.guard_skips);
    std::lock_guard lk(mu_);
    ++completed_;
    if (exact_percentiles_) {
      if (latencies_.size() < kLatencyReservoir) {
        latencies_.push_back(sim_latency_ms);
      } else {
        const u64 slot = data::rand_u64(0x5ee0, completed_) % completed_;
        if (slot < kLatencyReservoir)
          latencies_[static_cast<size_t>(slot)] = sim_latency_ms;
      }
    }
    total_sim_ms_ += sim_latency_ms;
    stages_ += stages;
    if (fused) ++fused_queries_;
  }

  void record_failure() {
    m_failed_.add();
    std::lock_guard lk(mu_);
    ++failed_;
  }

  void record_group(const core::StageBreakdown& setup_stages) {
    m_groups_.add();
    if (setup_stages.concat_stats.kernels_launched)
      m_concat_launches_.add(setup_stages.concat_stats.kernels_launched);
    if (setup_stages.guard_trips) m_guard_trips_.add(setup_stages.guard_trips);
    if (setup_stages.guard_skips) m_guard_skips_.add(setup_stages.guard_skips);
    std::lock_guard lk(mu_);
    ++groups_;
    stages_ += setup_stages;
  }

  /// One batched finalization: `launches` selection launches served
  /// `queries` deferred/deduped queries across `groups` admission groups
  /// (1 for a per-group finalization; a cross-group window flush passes
  /// more). The kernel counters land in the aggregate second-stage stats
  /// once (per-query breakdowns carry only their sim-ms share, so the
  /// aggregate stays double-count-free).
  void record_finalize(u64 launches, u64 groups, u64 queries,
                       const vgpu::KernelStats& second_stats) {
    m_batched_groups_.add(groups);
    m_batched_queries_.add(queries);
    m_finalize_launches_.add(launches);
    std::lock_guard lk(mu_);
    batched_groups_ += groups;
    batched_queries_ += queries;
    finalize_launches_ += launches;
    stages_.second_stats += second_stats;
  }

  /// One query joined an existing query class (Phase-A dedup) instead of
  /// running its own phase A; `first_share` marks the class's first
  /// subscriber (a singleton class is not counted — no sharing happened).
  void record_dedup(bool first_share) {
    m_deduped_.add();
    if (first_share) m_dedup_classes_.add();
    std::lock_guard lk(mu_);
    ++deduped_queries_;
    if (first_share) ++dedup_classes_;
  }

  /// One cross-group staging-area flush finalized `groups` groups in a
  /// shared launch sequence; `early` marks the queue-empty early-flush
  /// trigger (vs timer expiry or the segment cap).
  void record_window_flush(u64 groups, bool early = false) {
    m_window_flushes_.add();
    if (groups > 1) m_window_merged_.add(groups);
    if (early) m_early_flushes_.add();
    std::lock_guard lk(mu_);
    ++window_flushes_;
    if (groups > 1) window_merged_groups_ += groups;
    if (early) ++window_early_flushes_;
  }

  /// One group finalized immediately because its tightest member deadline
  /// could not afford the cross-group finalization window.
  void record_window_deadline_bypass() {
    m_deadline_bypasses_.add();
    std::lock_guard lk(mu_);
    ++window_deadline_bypasses_;
  }

  /// One query executed under a recall-target fidelity policy (counted at
  /// execution, so dedup subscribers and deferred items are each counted
  /// exactly once).
  void record_approx() {
    m_approx_.add();
    std::lock_guard lk(mu_);
    ++approx_queries_;
  }

  /// One oracle-measured recall sample in [0, 1] (the oracle — an exact
  /// reference top-k — lives with the caller: benches and tests compute it
  /// and feed the measurement back). Exported as basis points so the
  /// histogram's integer buckets stay meaningful.
  void record_recall(double recall) {
    const double r = std::clamp(recall, 0.0, 1.0);
    recall_bp_.observe(static_cast<u64>(r * 10000.0 + 0.5));
    std::lock_guard lk(mu_);
    recall_sum_ += r;
    ++recall_samples_;
  }

  /// One-time plan-calibration probe work (not part of any query's
  /// latency, but part of some executor's makespan).
  void record_calibration(double sim_ms) {
    std::lock_guard lk(mu_);
    calibration_sim_ms_ += sim_ms;
  }

  /// Simulated work actually performed by one executor (probes, shared
  /// construction, per-query stages) — the makespan input.
  void record_executor_work(u32 executor, double sim_ms) {
    std::lock_guard lk(mu_);
    per_executor_[executor] += sim_ms;
  }

  /// Snapshot with percentiles; plan counters are merged in by the caller
  /// (they live in the PlanCache). Percentiles come from the streaming
  /// histogram (a fixed-size bucket walk), so a monitoring poll never
  /// stalls the executors' record_* calls for the duration of a
  /// 64k-element sort; exact_percentiles restores the sort (outside the
  /// lock, on a copy) for parity testing.
  ServerStats snapshot() const {
    ServerStats s;
    std::vector<double> sorted;
    {
      std::lock_guard lk(mu_);
      s.completed = completed_;
      s.failed = failed_;
      s.groups = groups_;
      s.fused_queries = fused_queries_;
      s.batched_groups = batched_groups_;
      s.batched_queries = batched_queries_;
      s.finalize_launches = finalize_launches_;
      s.deduped_queries = deduped_queries_;
      s.dedup_classes = dedup_classes_;
      s.window_flushes = window_flushes_;
      s.window_merged_groups = window_merged_groups_;
      s.window_early_flushes = window_early_flushes_;
      s.window_deadline_bypasses = window_deadline_bypasses_;
      s.total_sim_ms = total_sim_ms_;
      s.calibration_sim_ms = calibration_sim_ms_;
      s.stages = stages_;
      // Stage-3 attribution: every classify/concat launch lands in the
      // aggregate concat stats exactly once (group-level batched passes
      // via record_group, per-query pairs via record_query).
      s.concat_launches = stages_.concat_stats.kernels_launched;
      s.relax_guard_trips = stages_.guard_trips;
      s.relax_guard_skips = stages_.guard_skips;
      s.approx_queries = approx_queries_;
      s.recall_samples = recall_samples_;
      s.recall_mean = recall_samples_
                          ? recall_sum_ / static_cast<double>(recall_samples_)
                          : 1.0;
      for (double w : per_executor_)
        s.makespan_sim_ms = std::max(s.makespan_sim_ms, w);
      if (exact_percentiles_) sorted = latencies_;
    }
    if (exact_percentiles_) {
      if (!sorted.empty()) {
        std::sort(sorted.begin(), sorted.end());
        const auto at = [&](double q) {
          const size_t i = static_cast<size_t>(
              q * static_cast<double>(sorted.size() - 1));
          return sorted[i];
        };
        s.p50_sim_ms = at(0.5);
        s.p99_sim_ms = at(0.99);
      }
    } else {
      s.p50_sim_ms = static_cast<double>(latency_us_.percentile(0.5)) / 1e3;
      s.p99_sim_ms = static_cast<double>(latency_us_.percentile(0.99)) / 1e3;
    }
    return s;
  }

 private:
  static u64 to_us(double ms) {
    return ms <= 0.0 ? 0 : static_cast<u64>(ms * 1e3 + 0.5);
  }

  mutable std::mutex mu_;
  std::vector<double> latencies_;  ///< reservoir; exact_percentiles only
  std::vector<double> per_executor_;
  core::StageBreakdown stages_;
  double total_sim_ms_ = 0.0;
  double calibration_sim_ms_ = 0.0;
  u64 completed_ = 0;
  u64 failed_ = 0;
  u64 groups_ = 0;
  u64 fused_queries_ = 0;
  u64 batched_groups_ = 0;
  u64 batched_queries_ = 0;
  u64 finalize_launches_ = 0;
  u64 deduped_queries_ = 0;
  u64 dedup_classes_ = 0;
  u64 window_flushes_ = 0;
  u64 window_merged_groups_ = 0;
  u64 window_early_flushes_ = 0;
  u64 window_deadline_bypasses_ = 0;
  u64 approx_queries_ = 0;
  u64 recall_samples_ = 0;
  double recall_sum_ = 0.0;

  bool exact_percentiles_;
  obs::Histogram& latency_us_;
  obs::Counter& m_completed_;
  obs::Counter& m_failed_;
  obs::Counter& m_groups_;
  obs::Counter& m_fused_;
  obs::Counter& m_batched_groups_;
  obs::Counter& m_batched_queries_;
  obs::Counter& m_finalize_launches_;
  obs::Counter& m_deduped_;
  obs::Counter& m_dedup_classes_;
  obs::Counter& m_window_flushes_;
  obs::Counter& m_window_merged_;
  obs::Counter& m_early_flushes_;
  obs::Counter& m_deadline_bypasses_;
  obs::Counter& m_concat_launches_;
  obs::Counter& m_guard_trips_;
  obs::Counter& m_guard_skips_;
  obs::Counter& m_approx_;
  obs::Histogram& recall_bp_;
};

}  // namespace drtopk::serve
