// Admission scheduling for the top-k server.
//
// Submitted queries are admitted into *groups*: a query joins the youngest
// queued group whose compatibility signature (data identity, length,
// key width, criterion) matches, up to batch_max queries; otherwise it
// opens a new group. Groups queue FIFO. Executors claim work with
// group-granular setup (one executor resolves the plan and builds the
// shared delegate vector) followed by query-granular stealing: once a
// group's setup is published, *any* executor can claim its next unclaimed
// query via the group's cursor, so a large batch is drained cooperatively
// rather than pinned to one executor.
//
// A group stays open for admission for as long as it is queued — in
// particular *while its setup is running*, which is exactly the expensive
// window worth amortizing: a client streaming compatible queries one at a
// time joins the group whose construction is already in flight and rides
// the shared delegate vector for free (items live in a deque, so references
// handed to executors stay valid across late admissions; a late query
// whose k exceeds the built delegate capacity simply falls back to the
// unfused path). The setup itself covers the items present at claim time
// (kmax snapshot); every deque traversal happens under the queue mutex.
//
// The queue bounds in-flight queries: submit() blocks while the bound is
// reached — backpressure toward the client instead of unbounded memory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/query.hpp"

namespace drtopk::serve {

/// One admitted query in flight: its promise, server-assigned id, and the
/// wall clock started at admission (reported as QueryResult::wall_ms).
struct Pending {
  u64 id = 0;
  Query query;
  std::promise<QueryResult> promise;
  topk::WallTimer admitted;  ///< wall-clock from admission to completion
  u64 enqueue_ts_us = 0;     ///< tracer timestamp at admission — queue-wait
                             ///< span start and histogram sample
  u64 queue_wait_us = 0;     ///< measured admission-to-claim wait, stamped
                             ///< by the claiming executor and surfaced as
                             ///< QueryResult::queue_us
};

/// Sentinel class id: this deferred item shares its span with nobody
/// (dedup off, or the query's signature was unique within the group).
inline constexpr u32 kNoQueryClass = ~u32{0};

/// A phase-A output parked for batched finalization: the query's stages
/// 2-3 ran (its candidate span lives in the group's arena); stage 4 runs
/// once for the whole group — or, under a cross-group finalization window,
/// once for several groups — fulfilling every parked promise.
template <class K>
struct DeferredItem {
  Pending* item = nullptr;
  QueryResult out;          ///< partial result: latency/breakdown to stage 3
  std::span<const K> cand;  ///< candidate span (group-arena memory)
  u64 k = 0;
  data::Criterion criterion = data::Criterion::kLargest;
  bool selection_only = false;
  /// Owning query class (index into Group::classes) when Phase-A dedup
  /// shares this span: finalization fans the segment's result out to the
  /// class's subscribers as well. kNoQueryClass: this item alone.
  u32 class_id = kNoQueryClass;
  u64 park_ts_us = 0;  ///< tracer timestamp when this item parked (the
                       ///< deferred-park span runs from here to finalize)
};

/// A parked dedup subscriber: a query identical to its class leader,
/// fulfilled by copying the leader's result at delivery time (bit-identical
/// by construction — the pipeline is deterministic for a fixed signature).
struct DedupSub {
  Pending* item = nullptr;
  QueryResult out;  ///< partial result: id + amortized setup share
};

/// Phase-A dedup: queries of one admission group whose remaining signature
/// (k, selection_only) matches — corpus, length, width and criterion
/// already matched at admission — form a *query class*. The first executor
/// to reach a class becomes its leader and runs phase A once; every later
/// member subscribes and is fulfilled by fan-out from the leader's
/// candidate span (deferred leaders) or stored result (inline leaders),
/// never touching the data itself. The subscriber list doubles as the
/// span's reference count: the group arena may only be released after the
/// leader AND every subscriber have been delivered. Guarded by the owning
/// group's batch_mu.
struct QueryClass {
  u64 k = 0;
  bool selection_only = false;
  /// Part of the class key even though the group signature already pins it
  /// (all members of a group share one fidelity): the invariant that an
  /// exact and an approximate query never share a leader must not depend
  /// on admission-grouping policy staying that way.
  core::FidelityPolicy fidelity;
  bool shared = false;        ///< a subscriber actually joined (stats)
  /// Leader finished without deferring (Rule-3 fast path, plan-probed
  /// engines, ...): its result is stored here and later subscribers
  /// self-serve immediately instead of parking.
  bool inline_ready = false;
  std::vector<u64> inline_values;
  u64 inline_kth = 0;
  bool failed = false;        ///< leader threw; the class must not be joined
  std::vector<DedupSub> subs; ///< parked subscribers awaiting fan-out
};

/// One admission group: compatible queries plus the shared execution state
/// the setup phase publishes (plan + optional shared delegate vector).
struct Group {
  // Compatibility signature.
  const void* data_id = nullptr;
  u64 n = 0;
  KeyWidth width = KeyWidth::k32;
  data::Criterion criterion = data::Criterion::kLargest;
  /// Part of the signature: exact and recall-target queries never share a
  /// group — they need different delegate vectors (beta/alpha differ) and
  /// different stage-3 treatment, and the shared setup is fidelity-wide.
  core::FidelityPolicy fidelity;
  /// Part of the signature: Query::deadline_class() — a tight-deadline
  /// query must never share a group with deadline-free (or much looser)
  /// peers, or group-granular scheduling decisions made for the majority
  /// (most importantly parking in a cross-group finalization window) would
  /// stall the tight member past its budget.
  u32 deadline_class = 0;
  /// Tightest member deadline in microseconds (0 = none). Same-class
  /// deadlines differ by at most 2x, so this is representative for the
  /// whole group; maybe_finalize_group compares it against the window.
  u64 deadline_min_us = 0;

  u64 seq = 0;          ///< admission order (1-based); trace span grouping
  u64 park_ts_us = 0;   ///< tracer timestamp when the group parked in the
                        ///< cross-group finalization window

  // Deque: stable element references under late admission (push_back).
  std::deque<Pending> items;

  // Scheduling state, guarded by the owning queue's mutex.
  bool setup_claimed = false;  ///< one executor is resolving plan/delegates
  bool runnable = false;       ///< setup published; items may be claimed
  u64 next = 0;                ///< stealing cursor: next unclaimed item
  u64 setup_items = 0;         ///< items present when setup was claimed
  u64 setup_kmax = 1;          ///< max k over those items
  std::vector<u64> setup_ks;   ///< their k values (delegate sizing decides
                               ///< the largest *feasible* k to build for)
  Query setup_query;           ///< snapshot for the setup's data access

  // Execution state, written single-threaded during setup, read-only after
  // `runnable` is published.
  core::ExecPlan plan;
  bool plan_resolved = false;  ///< plan lookup/calibration completed
  bool plan_hit = false;
  PlanKey plan_key;            ///< cache key, for workspace feedback
  u64 plan_exec_ws = 0;        ///< recorded per-query peak: every executor
                               ///< claiming an item presizes to it first
  bool has_delegates = false;  ///< shared construction succeeded
  /// Backing storage for the group-shared delegate vector and directed
  /// keys: a pooled workspace leased for the group's lifetime and recycled
  /// (capacity retained) when the last item finishes — steady state leases
  /// are allocation-free.
  vgpu::WorkspacePool::Lease ws;
  core::DelegateVector<u32> dv32;
  core::DelegateVector<u64> dv64;
  std::span<const u32> keys32;  ///< directed keys (non-identity criteria)
  std::span<const u64> keys64;
  bool keys_materialized = false;
  double setup_sim_ms = 0.0;  ///< construction + key conversion, shared by
                              ///< the whole group (amortized into latency)
  core::StageBreakdown setup_stages;

  // --- Batched second-stage selection (PR 3) ---
  /// Exact stage-2 thresholds resolved by the setup's batched launch over
  /// the shared delegate vector, one per distinct feasible k of the setup
  /// snapshot (parallel arrays; values carried as u64 regardless of width).
  std::vector<u64> kappa_ks;
  std::vector<u64> kappa_vals;

  // --- Group-wide batched stage 3 (PR 8) ---
  /// One precomputed stage-3 result per distinct feasible k: setup ran the
  /// whole group's classify + concat as ONE launch pair over the shared
  /// delegate vector, so an item whose k matches performs ZERO launches —
  /// it parks a DeferredItem referencing the group-arena candidate span
  /// (or, on the Rule-3 fast path, self-serves with a host sort). Written
  /// single-threaded before publish; read-only afterwards. Only the span
  /// matching the group's key width is set.
  struct Stage3Entry {
    u64 k = 0;
    u64 cand_count = 0;
    u64 taken_total = 0;         ///< delegates >= kappa (breakdown metadata)
    u64 qualified = 0;           ///< Rule-3 qualified subranges
    bool second_skipped = false; ///< q==0 && taken==k: candidates ARE the answer
    std::span<const u32> cand32;
    std::span<const u64> cand64;
  };
  std::vector<Stage3Entry> stage3;
  /// Guards the deferred lists, the executed counter and group-arena
  /// candidate allocations (executors park phase-A results concurrently).
  std::mutex batch_mu;
  u64 executed = 0;     ///< items whose phase A (or full pipeline) finished
  u64 final_items = 0;  ///< items.size() frozen when admission closed
  std::atomic<bool> closed{false};  ///< fully claimed; final_items is valid
  std::vector<DeferredItem<u32>> def32;
  std::vector<DeferredItem<u64>> def64;
  /// Phase-A dedup classes (guarded by batch_mu; linear scan — admission
  /// groups are small). Entries are created lazily by the first executor
  /// that runs a batched-eligible fused query of that signature.
  std::vector<QueryClass> classes;

  bool compatible(const Query& q) const {
    return q.data_id() == data_id && q.n() == n && q.width() == width &&
           q.criterion == criterion && q.fidelity == fidelity &&
           q.deadline_class() == deadline_class;
  }
};

/// The bounded admission queue: groups compatible queries, hands executors
/// group-setup and query-granular work units, and backpressures submitters
/// once max_in_flight queries are pending (see the file comment).
class AdmissionQueue {
 public:
  /// `tracer` (optional) records enqueue/group-open instants on the submit
  /// lane and stamps Pending::enqueue_ts_us for queue-wait spans.
  AdmissionQueue(u32 batch_max, u32 max_in_flight,
                 obs::Tracer* tracer = nullptr)
      : batch_max_(std::max(1u, batch_max)),
        max_in_flight_(std::max(1u, max_in_flight)),
        tracer_(tracer) {}

  /// Admits one query (blocking while the in-flight bound is reached) and
  /// returns its result future.
  std::future<QueryResult> submit(Query q) {
    std::unique_lock lk(mu_);
    space_cv_.wait(lk, [&] { return in_flight_ < max_in_flight_ || stop_; });
    if (stop_) throw std::runtime_error("AdmissionQueue stopped");
    auto fut = admit_locked(std::move(q));
    lk.unlock();
    work_cv_.notify_one();
    return fut;
  }

  /// Admits a whole batch. Queries that fit under the in-flight bound are
  /// admitted atomically (one critical section), so compatible queries are
  /// guaranteed to land in shared admission groups before any executor can
  /// claim them — the deterministic route to batched construction. Blocks
  /// for space between chunks when the batch exceeds the bound.
  std::vector<std::future<QueryResult>> submit_many(std::vector<Query> qs) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(qs.size());
    size_t i = 0;
    while (i < qs.size()) {
      {
        std::unique_lock lk(mu_);
        space_cv_.wait(lk,
                       [&] { return in_flight_ < max_in_flight_ || stop_; });
        if (stop_) throw std::runtime_error("AdmissionQueue stopped");
        while (i < qs.size() && in_flight_ < max_in_flight_)
          futures.push_back(admit_locked(std::move(qs[i++])));
      }
      work_cv_.notify_all();
    }
    return futures;
  }

  struct Claim {
    std::shared_ptr<Group> group;
    Pending* item = nullptr;  ///< valid when !needs_setup
    /// How many queries split the group's shared setup cost: the setup-time
    /// snapshot for items it covered, 0 for late joiners (their marginal
    /// construction cost is zero — the pass was already paid for). Shares
    /// across a group thus sum to exactly the cost paid once.
    u64 amortize_over = 0;
    bool needs_setup = false;
  };

  /// Blocks for the next unit of work: either a group needing setup or an
  /// unclaimed query of a runnable group (stealing across groups in FIFO
  /// order). Returns false when stopped and fully drained of claimables.
  bool next(Claim& out) {
    std::unique_lock lk(mu_);
    for (;;) {
      if (claim_locked(out)) return true;
      if (stop_) return false;
      work_cv_.wait(lk);
    }
  }

  /// Non-blocking next(): claims a unit of work if one is immediately
  /// available, never waits. This is how a parked finalization-window owner
  /// keeps the pool live: while waiting out the window it polls for queued
  /// groups and executes them instead of idling — the PR-6 residual
  /// single-executor limitation. Claim accounting matches next(): an item
  /// claim increments running_, so the owner must pair it with
  /// finish_running() (it resumes its own parked claim around the work).
  bool try_next(Claim& out) {
    std::lock_guard lk(mu_);
    return claim_locked(out);
  }

  /// Publishes a group's setup; its items become claimable by any executor.
  void publish(const std::shared_ptr<Group>& g) {
    {
      std::lock_guard lk(mu_);
      g->runnable = true;
    }
    work_cv_.notify_all();
  }

  /// Marks one claimed item's *execution* finished (the pool_idle()
  /// counterpart of the ++running_ in next()). Returns true when the pool
  /// just went idle — no queued groups, no running claims — which is the
  /// queue-empty early-flush signal for a parked finalization window.
  bool finish_running() {
    std::lock_guard lk(mu_);
    --running_;
    return queue_.empty() && running_ == 0;
  }

  /// Re-acquires a running claim (a window owner that released its claim
  /// with finish_running() before parking takes it back after waking).
  void resume_running() {
    std::lock_guard lk(mu_);
    ++running_;
  }

  /// True when no group is queued and no claimed item is still executing.
  /// A group under setup is still queued, so it keeps the pool busy.
  bool pool_idle() const {
    std::lock_guard lk(mu_);
    return queue_.empty() && running_ == 0;
  }

  /// Marks one item finished; releases backpressure and drain waiters.
  void finish_item(const std::shared_ptr<Group>&) {
    {
      std::lock_guard lk(mu_);
      --in_flight_;
    }
    space_cv_.notify_one();
    idle_cv_.notify_all();
  }

  /// Blocks until every admitted query has completed.
  void drain() {
    std::unique_lock lk(mu_);
    idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
  }

  void stop() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
  }

  u64 in_flight() const {
    std::lock_guard lk(mu_);
    return in_flight_;
  }

 private:
  /// Claim core (mu_ held), shared by next()/try_next(): FIFO scan for a
  /// group needing setup or an unclaimed item of a runnable group.
  bool claim_locked(Claim& out) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Group& g = **it;
      if (!g.setup_claimed) {
        g.setup_claimed = true;
        g.setup_items = g.items.size();
        for (const Pending& p : g.items) {
          g.setup_kmax = std::max(g.setup_kmax, p.query.k);
          g.setup_ks.push_back(p.query.k);
        }
        g.setup_query = g.items.front().query;
        out.group = *it;
        out.needs_setup = true;
        return true;
      }
      if (g.runnable && g.next < g.items.size()) {
        out.group = *it;
        const u64 index = g.next++;
        out.item = &g.items[index];
        out.amortize_over = index < g.setup_items ? g.setup_items : 0;
        out.needs_setup = false;
        // Claim accounting for pool_idle(): incremented in the SAME
        // critical section as the claim, so there is never a moment
        // where the last item left the queue but is not yet counted as
        // running (a parked finalize window keying off pool_idle()
        // would otherwise flush early and split the merge).
        ++running_;
        // Fully claimed: leave the queue (which also ends admission, so
        // the item count is final — the batched finalizer keys off it).
        if (g.next == g.items.size()) {
          g.final_items = g.items.size();
          g.closed.store(true, std::memory_order_release);
          queue_.erase(it);
        }
        return true;
      }
    }
    return false;
  }

  /// Admission core (mu_ held): join the open tail group or start a new one.
  std::future<QueryResult> admit_locked(Query q) {
    ++in_flight_;
    Pending p;
    p.id = next_id_++;
    p.query = std::move(q);
    // Stamped whether or not tracing is on: the queue-wait histogram (a
    // steady_clock read + one atomic) is part of the always-live metrics.
    if (tracer_) p.enqueue_ts_us = tracer_->now_us();
    auto fut = p.promise.get_future();

    // Youngest-first scan over the queued (hence still-open) groups, so
    // interleaved streams — e.g. round-robin over several corpora — still
    // coalesce per corpus instead of opening a singleton group each time.
    Group* host = nullptr;
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if ((*it)->items.size() < batch_max_ && (*it)->compatible(p.query)) {
        host = it->get();
        break;
      }
    }
    const u64 qid = p.id;
    const u64 ddl = p.query.deadline_us;
    u64 gseq = 0;
    if (host) {
      gseq = host->seq;
      if (ddl != 0 &&
          (host->deadline_min_us == 0 || ddl < host->deadline_min_us))
        host->deadline_min_us = ddl;
      host->items.push_back(std::move(p));
    } else {
      auto g = std::make_shared<Group>();
      g->seq = ++group_seq_;
      gseq = g->seq;
      g->data_id = p.query.data_id();
      g->n = p.query.n();
      g->width = p.query.width();
      g->criterion = p.query.criterion;
      g->fidelity = p.query.fidelity;
      g->deadline_class = p.query.deadline_class();
      g->deadline_min_us = ddl;
      g->items.push_back(std::move(p));
      queue_.push_back(std::move(g));
      if (tracer_) tracer_->instant(0, "group-open", qid, gseq);
    }
    if (tracer_) tracer_->instant(0, "enqueue", qid, gseq);
    return fut;
  }

  const u32 batch_max_;
  const u32 max_in_flight_;
  obs::Tracer* tracer_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // executors: new claimable work
  std::condition_variable space_cv_;  // submitters: in-flight bound freed
  std::condition_variable idle_cv_;   // drain(): a query completed
  std::deque<std::shared_ptr<Group>> queue_;
  u64 in_flight_ = 0;
  u64 running_ = 0;   // claimed items whose execution has not finished
  u64 next_id_ = 0;
  u64 group_seq_ = 0;
  bool stop_ = false;
};

}  // namespace drtopk::serve
