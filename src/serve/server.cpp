#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/concat_batched.hpp"
#include "obs/export.hpp"
#include "topk/batched.hpp"

namespace drtopk::serve {

namespace {

template <class T>
std::span<const T> query_data(const Query& q);
template <>
std::span<const u32> query_data<u32>(const Query& q) {
  return q.data32();
}
template <>
std::span<const u64> query_data<u64>(const Query& q) {
  return q.data64();
}

template <class T>
core::DelegateVector<T>& group_dv(Group& g);
template <>
core::DelegateVector<u32>& group_dv<u32>(Group& g) {
  return g.dv32;
}
template <>
core::DelegateVector<u64>& group_dv<u64>(Group& g) {
  return g.dv64;
}

template <class T>
std::span<const T>& group_keys(Group& g);
template <>
std::span<const u32>& group_keys<u32>(Group& g) {
  return g.keys32;
}
template <>
std::span<const u64>& group_keys<u64>(Group& g) {
  return g.keys64;
}

template <class K>
std::span<const K> stage3_cand(const Group::Stage3Entry& e);
template <>
std::span<const u32> stage3_cand<u32>(const Group::Stage3Entry& e) {
  return e.cand32;
}
template <>
std::span<const u64> stage3_cand<u64>(const Group::Stage3Entry& e) {
  return e.cand64;
}

template <class K>
std::vector<DeferredItem<K>>& group_deferred(Group& g);
template <>
std::vector<DeferredItem<u32>>& group_deferred<u32>(Group& g) {
  return g.def32;
}
template <>
std::vector<DeferredItem<u64>>& group_deferred<u64>(Group& g) {
  return g.def64;
}

}  // namespace

TopkServer::TopkServer(vgpu::Device& dev, ServerConfig cfg)
    : dev_(dev),
      cfg_(cfg),
      plans_(cfg.plan),
      tracer_(cfg.obs.tracing, std::max(1u, cfg.executors) + 1,
              cfg.obs.trace_capacity),
      queue_(cfg.batch_max, cfg.max_in_flight, &tracer_),
      collector_(std::max(1u, cfg.executors), registry_,
                 cfg.obs.exact_percentiles) {
  queue_wait_us_ = &registry_.histogram(
      "serve_queue_wait_us", "Admission-to-claim wait per query (us)");
  group_size_ = &registry_.histogram(
      "serve_group_size", "Queries per admission group at close");
  // Resolve the window's early-flush segment cap once: the configured value
  // or the batched engine's capacity-ladder ceiling for this device.
  stage_cap_ = cfg_.finalize_max_segments
                   ? cfg_.finalize_max_segments
                   : topk::batched_segment_cap(dev_.profile());
  const u32 n = std::max(1u, cfg_.executors);
  exec_ws_.reserve(n);
  for (u32 i = 0; i < n; ++i)
    exec_ws_.push_back(std::make_unique<vgpu::Workspace>());
  executors_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

u64 TopkServer::workspace_growths() const {
  u64 total = group_ws_.growths();
  for (const auto& ws : exec_ws_) total += ws->growths();
  return total;
}

u64 TopkServer::workspace_high_water() const {
  u64 peak = group_ws_.high_water_bytes();
  for (const auto& ws : exec_ws_)
    peak = std::max(peak, ws->high_water_bytes());
  return peak;
}

TopkServer::~TopkServer() {
  queue_.drain();
  queue_.stop();
  for (auto& t : executors_) t.join();
}

namespace {

void validate(const Query& q) {
  const u64 n = q.n();
  if (n == 0 || q.k < 1 || q.k > n)
    throw std::invalid_argument("TopkServer: query requires 1 <= k <= |V|");
}

}  // namespace

std::future<QueryResult> TopkServer::submit(Query q) {
  validate(q);
  return queue_.submit(std::move(q));
}

std::vector<QueryResult> TopkServer::run_batch(std::vector<Query> queries) {
  for (const auto& q : queries) validate(q);
  auto futures = queue_.submit_many(std::move(queries));
  std::vector<QueryResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void TopkServer::drain() { queue_.drain(); }

ServerStats TopkServer::stats() const {
  ServerStats s = collector_.snapshot();
  s.plan_hits = plans_.hits();
  s.plan_misses = plans_.misses();
  return s;
}

std::string TopkServer::metrics_prometheus() const {
  return obs::to_prometheus(registry_);
}

std::string TopkServer::metrics_json() const {
  return obs::to_json(registry_);
}

bool TopkServer::dump_trace(const std::string& path) const {
  if (!tracer_.enabled()) return false;
  return tracer_.export_chrome_file(path);
}

void TopkServer::item_done() {
  const bool idle = queue_.finish_running();
  if (!idle || !cfg_.window_early_flush) return;
  // The pool just went idle: nothing else can join a parked finalization
  // window, so wake its owner (queue-empty early flush). Taking stage_.mu
  // orders this notify against the owner's predicate evaluation — the
  // wakeup cannot fall between its check and its wait.
  std::lock_guard lk(stage_.mu);
  if (stage_.owner_waiting) stage_.cv.notify_all();
}

void TopkServer::executor_loop(u32 executor_id) {
  AdmissionQueue::Claim c;
  while (queue_.next(c)) {
    process_claim(c, executor_id);
    c.group.reset();
  }
}

void TopkServer::process_claim(AdmissionQueue::Claim& c, u32 executor_id) {
  const bool tracing = tracer_.enabled();
  if (c.needs_setup) {
    const u64 t0 = tracing ? tracer_.now_us() : 0;
    setup_group(*c.group, executor_id);
    queue_.publish(c.group);
    if (tracing)
      tracer_.complete(lane(executor_id), "group-setup", 0, c.group->seq,
                       t0, tracer_.now_us());
  } else {
    if (c.item->enqueue_ts_us != 0) {
      const u64 now = tracer_.now_us();
      const u64 waited = now - c.item->enqueue_ts_us;
      c.item->queue_wait_us = waited;
      if (queue_wait_us_) queue_wait_us_->observe(waited);
      if (tracing)
        tracer_.complete(lane(executor_id), "queue-wait", c.item->id,
                         c.group->seq, c.item->enqueue_ts_us, now);
    }
    execute_item(*c.group, *c.item, c.amortize_over, executor_id);
    // Group-completion bookkeeping (and, for the executor completing the
    // last item, the batched finalization of every parked query) happens
    // before the in-flight slot is released, so drain() cannot observe a
    // drained queue with unfulfilled promises. When the group parks in
    // the cross-group window instead, the slot release moves to the
    // staging-area flush for the same reason.
    if (!maybe_finalize_group(c.group, executor_id))
      queue_.finish_item(c.group);
    // Release the claim's running slot LAST — in particular after any
    // window deposit above — so pool_idle() (the queue-empty early-flush
    // predicate) can never be true while a deposit is still on its way.
    item_done();
  }
}

void TopkServer::setup_group(Group& g, u32 executor_id) {
  try {
    if (g.width == KeyWidth::k64) {
      setup_group_typed<u64>(g, executor_id);
    } else {
      setup_group_typed<u32>(g, executor_id);
    }
  } catch (...) {
    // Setup is an optimization; a failure (e.g. a probe hitting an engine
    // edge case) degrades the group to unfused per-query execution rather
    // than failing its queries.
    g.has_delegates = false;
  }
  collector_.record_group(g.setup_stages);
}

template <class T>
void TopkServer::setup_group_typed(Group& g, u32 executor_id) {
  using Key = typename data::KeyTraits<T>::Key;
  // Setup works from the snapshot the queue took at claim time (the group
  // may still be admitting; the deque itself is only traversed under the
  // queue's mutex). Late joiners whose k exceeds this kmax fall back to the
  // unfused path per item.
  const std::span<const T> values = query_data<T>(g.setup_query);

  // The group's effective base config: the server baseline with the
  // group's fidelity (part of the admission signature, so it is uniform
  // across members). Everything downstream — feasibility, plan key,
  // calibration, construction sizing — reads fidelity from here.
  core::DrTopkConfig base = cfg_.base;
  base.fidelity = g.fidelity;

  // Size the shared delegate vector for the largest *feasible* k among the
  // snapshot's queries: one near-n outlier must not disable fusion for the
  // whole group — it simply runs unfused (the dv.size() >= k guard), while
  // the feasible majority still shares one construction pass.
  const u32 beta_base = core::resolve_beta(base);
  u64 kmax = 0;
  for (const u64 k : g.setup_ks)
    if (core::resolve_alpha(g.n, k, beta_base, base) >= 0)
      kmax = std::max(kmax, k);
  if (kmax == 0) kmax = g.setup_kmax;  // none feasible: plan caches direct

  double executor_work = 0.0;
  vgpu::Workspace& ews = *exec_ws_[executor_id];
  u64 group_ws_reserve = 0;

  // Plan: cache hit replays the calibrated decision; miss pays the probes.
  g.plan_key = PlanCache::make_key(values, kmax, g.criterion, g.fidelity);
  if (cfg_.use_plan_cache) {
    bool hit = false;
    CachedPlan cp;
    {
      // Probe launches are one-time tuning, not steady-state pipeline
      // work: the ambient label keeps them out of the per-stage breakdown
      // (the probes' internal stage scopes all default to it).
      vgpu::StageScope calibrate("calibrate");
      cp = plans_.resolve<T>(dev_, values, kmax, g.criterion, base, &hit,
                             ews);
    }
    g.plan = cp.plan;
    g.plan_hit = hit;
    g.plan_resolved = true;
    executor_work += cp.probe_sim_ms;
    if (cp.probe_sim_ms > 0) collector_.record_calibration(cp.probe_sim_ms);
    // Presize from the shape's recorded peaks so arenas meeting a
    // recurring shape for the first time usually skip organic growth
    // (capacity-based reserve is best effort: an already-fragmented arena
    // may still grow once before converging). The per-query peak is
    // stashed on the group so EVERY executor that later claims one of its
    // items (not just this setup executor) presizes before running.
    group_ws_reserve = cp.group_ws_bytes;
    g.plan_exec_ws = cp.exec_ws_bytes;
    if (cp.exec_ws_bytes) ews.reserve_bytes(cp.exec_ws_bytes);
  } else {
    g.plan.alpha = base.alpha;
    g.plan.beta = core::resolve_beta(base);
    g.plan.first_algo = base.first_algo;
    g.plan.second_algo = base.second_algo;
  }

  // Shared construction: one delegate vector serves every query of the
  // group. Sized for the largest k so dv.size() >= k holds for all items.
  // Its storage lives in a pooled workspace leased for the group's
  // lifetime (executor workspaces rewind per query; the group's delegate
  // vector must not).
  core::DrTopkConfig planned = base;
  planned.alpha = g.plan.alpha;
  planned.beta = g.plan.beta;
  const u32 beta = core::resolve_beta(planned);
  const int alpha = core::resolve_alpha(g.n, kmax, beta, planned);
  if (alpha >= 0) {
    // Affinity: prefer the pooled arena this executor last returned
    // (first-touch locality groundwork for NUMA pinning).
    g.ws = group_ws_.acquire(group_ws_reserve, executor_id);
    g.ws->reset_peak();  // measure THIS shape's construction footprint
    topk::Accum acc(dev_);
    std::span<const Key> keyspan;
    {
      // Key conversion + shared delegate construction are the group's
      // phase-A pass: both charge to "construct".
      vgpu::StageScope construct("construct");
      if (topk::key_is_identity<T>(g.criterion)) {
        keyspan = values;  // Key == T for u32/u64
      } else {
        group_keys<Key>(g) =
            topk::make_directed_keys(acc, values, g.criterion, *g.ws);
        g.keys_materialized = true;
        keyspan = group_keys<Key>(g);
      }
      core::ConstructOpts copts = cfg_.base.construct;
      if (cfg_.base.fused_concat) copts.emit_sids = false;
      group_dv<Key>(g) = core::build_delegate_vector<Key>(acc, keyspan,
                                                          alpha, beta, copts,
                                                          *g.ws);
    }
    g.has_delegates = true;
    g.plan.alpha = alpha;
    g.plan.beta = beta;
    g.setup_sim_ms = acc.sim_ms();
    g.setup_stages.construct_ms = acc.sim_ms();
    g.setup_stages.construct_stats = acc.stats();
    executor_work += acc.sim_ms();

    // Batched stage 2: ONE launch resolves the exact threshold kappa for
    // every distinct feasible k of the setup snapshot. All segments view
    // the same delegate vector, so the batched engine sorts it once and
    // emits each k's k-th key — N same-corpus selections for the price of
    // one sort. Per-query execution then skips its own first top-k.
    // Same gate as run_item_typed's deferral: if no member will consume
    // the batched kappas, don't pay the launch.
    if (batched_eligible(core::apply_plan(base, g.plan))) {
      // Exactly the ks the per-item path will serve from the shared
      // delegate vector (run_item_typed's fused condition).
      std::vector<u64> ks;
      for (const u64 k : g.setup_ks) {
        if (k > group_dv<Key>(g).size()) continue;
        if (std::find(ks.begin(), ks.end(), k) == ks.end()) ks.push_back(k);
      }
      if (!ks.empty()) {
        const auto& dvk = group_dv<Key>(g).keys;
        std::span<const Key> dkeys(dvk.data(), dvk.size());
        // Recall-target groups: the per-partition answer IS the top-k of
        // the delegate vector, so the batched stage-2 launch asks for the
        // full sorted top-k per distinct k (selection_only=false) instead
        // of just the threshold — the same one launch then doubles as the
        // whole group's stage 3 AND stage 4 (see the approx branch below).
        const bool approx_group = !g.fidelity.exact();
        std::vector<topk::BatchedSegment<Key>> segs;
        segs.reserve(ks.size());
        for (const u64 k : ks)
          segs.push_back({dkeys, k, k, /*selection_only=*/!approx_group});
        // The batched kappa launch is the group's shared first top-k.
        vgpu::StageScope first("first");
        topk::Accum acc2(dev_);
        auto br = topk::batched_topk<Key>(
            acc2, std::span<const topk::BatchedSegment<Key>>(segs),
            topk::BatchedMode::kAuto, ews);
        for (size_t i = 0; i < ks.size(); ++i) {
          g.kappa_ks.push_back(ks[i]);
          g.kappa_vals.push_back(
              static_cast<u64>(br.keys[i].back()));  // k-th = kappa
        }
        // The group paid its members' first top-k here: amortized into
        // their latencies with the construction pass.
        g.setup_sim_ms += acc2.sim_ms();
        g.setup_stages.first_ms = acc2.sim_ms();
        g.setup_stages.first_stats = acc2.stats();
        executor_work += acc2.sim_ms();

        if (approx_group && cfg_.batched_concat) {
          // Approximate stage 3+4, already paid for: the batched launch
          // above returned each distinct k's sorted top-k *of the
          // delegates* — under the per-partition policy that is the
          // answer. Stage each as a precomputed second_skipped entry in
          // the group arena; items whose k matches self-serve with a host
          // copy and launch NOTHING (run_item_typed's Rule-3 fast path —
          // the same code path, same accounting).
          for (size_t i = 0; i < ks.size(); ++i) {
            auto cand = g.ws->alloc<Key>(ks[i]);
            std::copy(br.keys[i].begin(), br.keys[i].end(), cand.begin());
            Group::Stage3Entry e;
            e.k = ks[i];
            e.cand_count = ks[i];
            e.taken_total = ks[i];
            e.qualified = 0;
            e.second_skipped = true;
            std::span<const Key> cspan(cand.data(), ks[i]);
            if constexpr (std::is_same_v<Key, u64>)
              e.cand64 = cspan;
            else
              e.cand32 = cspan;
            g.stage3.push_back(e);
          }
        }
        // Group-wide batched stage 3 (PR 8): the kappas above are exact,
        // so every member's classification is already decidable — run the
        // whole group's classify + concat as ONE launch pair over the
        // shared delegate vector (core/concat_batched.hpp). Per-subrange
        // scratch is executor-arena transient; the candidate spans land in
        // the group arena, where the deferred finalization machinery
        // consumes them (identical ks share a span, and batched_topk
        // coalesces same-span segments into one sort). Items whose k was
        // precomputed then launch NOTHING. (Approx groups staged their
        // entries above — the classify/concat pass has nothing left to
        // compute for them.)
        if (!approx_group && cfg_.batched_concat) {
          vgpu::StageScope concat("concat");
          topk::Accum acc3(dev_);
          const u64 S = group_dv<Key>(g).num_subranges;
          ews.reset_peak();  // record the batched classify scratch footprint
          vgpu::Workspace::Scope scratch(ews);
          std::vector<core::BatchedConcatSegment<Key>> csegs(ks.size());
          for (size_t i = 0; i < ks.size(); ++i) {
            csegs[i].kappa = static_cast<Key>(g.kappa_vals[i]);
            csegs[i].taken = ews.alloc<u8>(S);
            csegs[i].qualified = ews.alloc<u32>(S);
            csegs[i].partial = ews.alloc<u32>(S);
          }
          std::span<core::BatchedConcatSegment<Key>> cspan(csegs);
          core::classify_subranges_batched<Key>(acc3, dkeys, S, beta,
                                                g.plan.alpha, g.n, cspan);
          for (size_t i = 0; i < ks.size(); ++i)
            csegs[i].cand = g.ws->alloc<Key>(core::batched_concat_capacity(
                csegs[i], S, beta, g.plan.alpha, g.n));
          core::concat_candidates_batched<Key>(
              acc3, keyspan, dkeys, beta, g.plan.alpha,
              core::apply_plan(cfg_.base, g.plan).filtering, cspan);
          for (size_t i = 0; i < ks.size(); ++i) {
            Group::Stage3Entry e;
            e.k = ks[i];
            e.cand_count = csegs[i].cand_count;
            e.taken_total = csegs[i].taken_total;
            e.qualified = csegs[i].qualified_count;
            // Rule-3 fast path: exactly k delegates met kappa and no
            // subrange fully qualified — the candidates ARE the answer.
            e.second_skipped =
                csegs[i].qualified_count == 0 && csegs[i].taken_total == e.k;
            std::span<const Key> cand(csegs[i].cand.data(),
                                      csegs[i].cand_count);
            if constexpr (std::is_same_v<Key, u64>)
              e.cand64 = cand;
            else
              e.cand32 = cand;
            g.stage3.push_back(e);
          }
          g.setup_sim_ms += acc3.sim_ms();
          g.setup_stages.concat_ms = acc3.sim_ms();
          g.setup_stages.concat_stats = acc3.stats();
          executor_work += acc3.sim_ms();
          // The wider batched staging arrays raise the plan's executor-
          // workspace high-water mark; re-record so future groups of this
          // shape presize instead of growing.
          plans_.note_workspace(g.plan_key, 0, ews.peak_bytes());
        }
      }
    }
    plans_.note_workspace(g.plan_key, g.ws->peak_bytes(), 0);
  }
  collector_.record_executor_work(executor_id, executor_work);
}

void TopkServer::execute_item(Group& g, Pending& p, u64 amortize_over,
                              u32 executor_id) {
  bool deferred = false;
  try {
    if (!p.query.fidelity.exact()) collector_.record_approx();
    vgpu::Workspace& ws = *exec_ws_[executor_id];
    if (g.plan_exec_ws) ws.reserve_bytes(g.plan_exec_ws);
    ws.reset_peak();  // per-query footprint, not this arena's lifetime peak
    const u64 t0 = tracer_.enabled() ? tracer_.now_us() : 0;
    QueryResult r =
        g.width == KeyWidth::k64
            ? run_item_typed<u64>(g, p, amortize_over, ws, &deferred,
                                  executor_id)
            : run_item_typed<u32>(g, p, amortize_over, ws, &deferred,
                                  executor_id);
    if (tracer_.enabled())
      tracer_.complete(lane(executor_id), "phase-a", p.id, g.seq, t0,
                       tracer_.now_us());
    if (g.plan_resolved)
      plans_.note_workspace(g.plan_key, 0, ws.peak_bytes());
    // Work actually performed here: a fused item's breakdown holds only its
    // stages 2-4 (the group's construction was charged at setup); an
    // unfused item's latency is exactly its own full pipeline. A deferred
    // item parked its result — its stage-4 share is charged to whichever
    // executor finalizes the group.
    collector_.record_executor_work(
        executor_id, r.fused ? r.breakdown.total_ms() : r.latency_sim_ms);
    if (!deferred) {
      collector_.record_query(r.latency_sim_ms, r.breakdown, r.fused);
      p.promise.set_value(std::move(r));
    }
  } catch (...) {
    // Once the item is parked its promise belongs to the group finalizer —
    // a throw from the post-parking bookkeeping must not double-set it.
    if (!deferred) {
      collector_.record_failure();
      p.promise.set_exception(std::current_exception());
    }
  }
}

bool TopkServer::maybe_finalize_group(const std::shared_ptr<Group>& gp,
                                      u32 executor_id) {
  Group& g = *gp;
  bool finalize = false;
  bool last = false;
  {
    std::lock_guard lk(g.batch_mu);
    ++g.executed;
    // Admission closed (final_items frozen) and every item's phase A done:
    // the group is complete. Exactly one executor observes the transition.
    last = g.closed.load(std::memory_order_acquire) &&
           g.executed == g.final_items;
    finalize = last && (!g.def32.empty() || !g.def64.empty());
  }
  if (last && group_size_) group_size_->observe(g.final_items);
  if (!finalize) return false;

  if (cfg_.finalize_window_us == 0) {
    // PR-3 behavior: the last finisher finalizes its own group, alone,
    // before the in-flight slot is released by the caller.
    finalize_groups({&gp, 1}, executor_id);
    return false;
  }

  // Deadline bypass: a group whose tightest member deadline is within an
  // order of magnitude of the window length cannot afford to park — the
  // window would eat the whole budget. Finalize immediately, exactly like
  // the window-off path. deadline_min_us is representative for every
  // member because the deadline class (log2 bucket) is part of the
  // admission signature: no deadline-free or much-looser query shares the
  // group, so this decision is never made for a mixed population.
  if (g.deadline_min_us != 0 &&
      g.deadline_min_us <= static_cast<u64>(cfg_.finalize_window_us) * 8) {
    collector_.record_window_deadline_bypass();
    finalize_groups({&gp, 1}, executor_id);
    return false;
  }

  // Cross-group finalization window: park the group in the staging area.
  // The first parker becomes the window owner — it blocks here (at most
  // finalize_window_us, woken early once the parked segments reach the
  // capacity-ladder cap OR the executor pool drains empty — nothing else
  // could join) while every other executor keeps draining queries, then
  // flushes all staged groups in one shared launch sequence. Later parkers
  // just deposit and go back to claiming work.
  const bool tracing = tracer_.enabled();
  std::vector<std::shared_ptr<Group>> staged;
  bool early = false;
  {
    std::unique_lock lk(stage_.mu);
    if (tracing) g.park_ts_us = tracer_.now_us();
    stage_.groups.push_back(gp);
    stage_.segments += g.def32.size() + g.def64.size();
    if (stage_.owner_waiting) {
      // The owner flushes (and releases the in-flight slot of) this group.
      if (stage_.segments >= stage_cap_) stage_.cv.notify_all();
      return true;
    }
    stage_.owner_waiting = true;
    // Release this claim's running slot before parking: the owner's own
    // item is done executing, and holding the slot would keep pool_idle()
    // false forever (the early flush could never fire). Until this line
    // the slot was held, so no other executor can have observed an idle
    // pool before owner_waiting was set — the wakeup cannot be missed.
    queue_.finish_running();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(cfg_.finalize_window_us);
    // Parked-owner work stealing: while the window is open the owner
    // polls the admission queue and executes any claimable work itself —
    // groups it completes deposit into its own window (the inner
    // maybe_finalize_group sees owner_waiting) — so a single-executor
    // server keeps draining instead of stalling queued groups behind the
    // timer. The wait is sliced so work submitted after the owner goes to
    // sleep is still picked up within a fraction of the window.
    const auto slice =
        std::chrono::microseconds(std::max<u32>(1, cfg_.finalize_window_us / 8));
    while (stage_.segments < stage_cap_) {
      AdmissionQueue::Claim wc;
      if (queue_.try_next(wc)) {
        lk.unlock();
        process_claim(wc, executor_id);
        wc.group.reset();
        lk.lock();
        continue;  // re-evaluate cap/idle with the deposit (if any) counted
      }
      if (cfg_.window_early_flush && queue_.pool_idle()) {
        early = true;
        break;
      }
      const auto wake = std::min(deadline,
                                 std::chrono::steady_clock::now() + slice);
      if (stage_.cv.wait_until(lk, wake) == std::cv_status::timeout &&
          wake == deadline)
        break;
    }
    staged.swap(stage_.groups);
    stage_.segments = 0;
    stage_.owner_waiting = false;
  }
  // Take the running slot back: executor_loop releases it once per claim
  // (item_done), and the flush below is still this claim's work.
  queue_.resume_running();
  if (tracing) {
    const u64 flush_ts = tracer_.now_us();
    for (const auto& sg : staged)
      tracer_.complete(lane(executor_id), "window-park", 0, sg->seq,
                       sg->park_ts_us, flush_ts);
  }
  // Window stats before any promise is fulfilled (snapshot coherence, same
  // discipline as record_finalize below).
  collector_.record_window_flush(staged.size(), early);
  finalize_groups(staged, executor_id);
  // Release the in-flight slot each staged group's last item was holding
  // (its claimant skipped finish_item when it parked) — ours included.
  for (const auto& sg : staged) queue_.finish_item(sg);
  return true;
}

void TopkServer::finalize_groups(std::span<const std::shared_ptr<Group>> gs,
                                 u32 executor_id) {
  // One independent attempt per key width: a throw from one width's
  // batched launch fails only the queries that launch was serving — the
  // other width's groups (whose separate launch never ran) still get
  // their answers, matching the blast radius of per-group finalization.
  const auto run_width = [&](auto width_tag) {
    using T = decltype(width_tag);
    try {
      finalize_groups_typed<T>(gs, executor_id);
    } catch (...) {
      // Fail every parked query of this width — dedup subscribers
      // included — that was not yet fulfilled (delivery nulls each item
      // as it goes, so a mid-loop throw cannot lead to a double set that
      // would itself throw out of this handler).
      auto fail_one = [&](Pending*& item) {
        if (!item) return;
        collector_.record_failure();
        item->promise.set_exception(std::current_exception());
        item = nullptr;
      };
      for (const auto& gp : gs) {
        for (auto& d : group_deferred<T>(*gp)) {
          if (d.class_id != kNoQueryClass)
            for (auto& sub : gp->classes[d.class_id].subs) fail_one(sub.item);
          fail_one(d.item);
        }
      }
    }
  };
  run_width(u32{});
  run_width(u64{});
}

template <class T>
void TopkServer::finalize_groups_typed(
    std::span<const std::shared_ptr<Group>> gs, u32 executor_id) {
  using Key = typename data::KeyTraits<T>::Key;
  // Assemble ONE segment list over every staged group's parked items of
  // this key width (mixed corpora are fine: the engine keys problems by
  // span identity). No synchronization needed past this point: every item
  // of every staged group executed, so no thread appends to the deferred
  // lists, joins a query class or allocates from a group arena anymore.
  struct Ref {
    Group* g = nullptr;
    DeferredItem<Key>* d = nullptr;
  };
  std::vector<Ref> refs;
  u64 ngroups = 0;
  for (const auto& gp : gs) {
    auto& parked = group_deferred<Key>(*gp);
    if (parked.empty()) continue;
    ++ngroups;
    for (auto& d : parked) refs.push_back({gp.get(), &d});
  }
  if (refs.empty()) return;

  std::vector<topk::BatchedSegment<Key>> segs;
  segs.reserve(refs.size());
  for (const Ref& r : refs)
    segs.push_back({r.d->cand, r.d->k, r.d->out.id, r.d->selection_only});

  const bool tracing = tracer_.enabled();
  const u64 t_flush = tracing ? tracer_.now_us() : 0;
  if (tracing) {
    // Close each parked item's deferred-park span: parked at phase-A
    // completion, resolved by this flush.
    for (const Ref& r : refs)
      tracer_.complete(lane(executor_id), "deferred-park", r.d->out.id,
                       r.g->seq, r.d->park_ts_us, t_flush);
  }

  vgpu::Workspace& ws = *exec_ws_[executor_id];
  vgpu::Workspace::Scope scope(ws);
  topk::Accum acc(dev_);
  vgpu::StageScope second("second");  // the groups' shared second top-k
  auto br = topk::batched_topk<Key>(
      acc, std::span<const topk::BatchedSegment<Key>>(segs),
      topk::BatchedMode::kAuto, ws);
  if (tracing)
    tracer_.complete(lane(executor_id), "batched-finalize", 0,
                     refs.front().g->seq, t_flush, tracer_.now_us());

  // Deliveries = parked leaders plus their dedup subscribers: the count
  // that shares the launch's cost and lands in batched_queries.
  u64 deliveries = 0;
  for (const Ref& r : refs)
    deliveries += 1 + (r.d->class_id != kNoQueryClass
                           ? r.g->classes[r.d->class_id].subs.size()
                           : 0);

  // Batch-level accounting first: every counter must be recorded before
  // the last promise is fulfilled, or a stats() snapshot taken right after
  // the batch completes could miss this finalization.
  collector_.record_finalize(br.launches, ngroups, deliveries, acc.stats());
  collector_.record_executor_work(executor_id, acc.sim_ms());
  // Re-record each group arena's peak now that it holds the deferred
  // candidate spans: the next hit on the shape presizes for them too.
  for (const auto& gp : gs) {
    if (group_deferred<Key>(*gp).empty()) continue;
    if (gp->plan_resolved)
      plans_.note_workspace(gp->plan_key, gp->ws ? gp->ws->peak_bytes() : 0,
                            0);
  }

  // One launch sequence served every group; each delivered query's latency
  // carries an equal share (the kernel counters were recorded once at
  // batch level above), so the shares sum to exactly the cost paid once.
  const u64 t_fanout = tracing ? tracer_.now_us() : 0;
  const double share = acc.sim_ms() / static_cast<double>(deliveries);
  for (size_t i = 0; i < refs.size(); ++i) {
    DeferredItem<Key>& d = *refs[i].d;
    d.out.values.reserve(br.keys[i].size());
    for (const Key key : br.keys[i])
      d.out.values.push_back(static_cast<u64>(
          data::value_from_directed_key<T>(key, d.criterion)));
    d.out.kth = d.out.values.back();
    d.out.latency_sim_ms += share;
    d.out.breakdown.second_ms = share;
    // Dedup fan-out: every subscriber of the leader's class receives a
    // copy of the segment's result — one sort, one emission, N answers.
    if (d.class_id != kNoQueryClass) {
      for (DedupSub& sub : refs[i].g->classes[d.class_id].subs) {
        sub.out.values = d.out.values;
        sub.out.kth = d.out.kth;
        sub.out.latency_sim_ms += share;
        sub.out.breakdown.second_ms = share;
        sub.out.wall_ms = sub.item->admitted.ms();
        collector_.record_query(sub.out.latency_sim_ms, sub.out.breakdown,
                                sub.out.fused);
        Pending* item = sub.item;
        sub.item = nullptr;  // fulfilled: failure path must not touch it
        item->promise.set_value(std::move(sub.out));
      }
    }
    d.out.wall_ms = d.item->admitted.ms();
    collector_.record_query(d.out.latency_sim_ms, d.out.breakdown,
                            d.out.fused);
    Pending* item = d.item;
    d.item = nullptr;  // fulfilled: the failure path must not touch it again
    item->promise.set_value(std::move(d.out));
  }
  if (tracing)
    tracer_.complete(lane(executor_id), "fan-out", 0, refs.front().g->seq,
                     t_fanout, tracer_.now_us());
}

template <class T>
QueryResult TopkServer::run_item_typed(Group& g, Pending& p, u64 amortize_over,
                                       vgpu::Workspace& ws, bool* deferred,
                                       u32 executor_id) {
  using Key = typename data::KeyTraits<T>::Key;
  const Query& q = p.query;
  QueryResult out;
  out.id = p.id;
  out.queue_us = p.queue_wait_us;
  out.plan_cache_hit = g.plan_resolved && g.plan_hit;
  *deferred = false;

  // A resolved plan accelerates both paths: fused execution replays its
  // alpha/beta via the shared delegate vector, and the unfused fallback
  // still reuses the calibrated engines/alpha (dr_topk re-clamps per k).
  core::DrTopkConfig cfg = cfg_.base;
  if (g.plan_resolved || g.has_delegates) {
    cfg = core::apply_plan(cfg, g.plan);
    // The direct sentinel encodes infeasibility at the *group's* planning
    // k; an individual item re-resolves for its own k (closed form only —
    // a small k sharing a group with a near-n outlier still delegates).
    if (cfg.alpha == core::kDirectAlpha) cfg.alpha = cfg_.base.alpha;
  }
  cfg.selection_only = q.selection_only;
  // The query's fidelity governs every stage it runs itself (delegate
  // sizing on the unfused path, delegates-only classification, guard
  // skip); group-shared state was built under the same policy because
  // fidelity is part of the admission signature.
  cfg.fidelity = q.fidelity;

  core::StageBreakdown bd;
  if (g.has_delegates && group_dv<Key>(g).size() >= q.k) {
    const std::span<const T> values = query_data<T>(q);
    std::span<const Key> keyspan = g.keys_materialized
                                       ? group_keys<Key>(g)
                                       : std::span<const Key>(values);
    const bool eligible = batched_eligible(cfg);

    // ---- Phase-A dedup: join or found this query's class ----
    // Within a group the only signature left is (k, selection_only); the
    // first executor to reach a class is its leader and runs phase A
    // below, everyone else subscribes and never touches the data. The
    // decision is deterministic per signature (both members of a class
    // reach this same branch with the same group state), so a subscriber
    // can never be waiting on a leader that took a different path.
    u32 class_id = kNoQueryClass;
    if (eligible && cfg_.dedup) {
      std::lock_guard lk(g.batch_mu);
      u32 found = kNoQueryClass;
      for (u32 i = 0; i < g.classes.size(); ++i) {
        if (g.classes[i].k == q.k &&
            g.classes[i].selection_only == q.selection_only &&
            g.classes[i].fidelity == q.fidelity) {
          found = i;
          break;
        }
      }
      if (found == kNoQueryClass) {
        QueryClass cls;
        cls.k = q.k;
        cls.selection_only = q.selection_only;
        cls.fidelity = q.fidelity;
        g.classes.push_back(std::move(cls));
        class_id = static_cast<u32>(g.classes.size() - 1);  // leader
      } else if (!g.classes[found].failed) {
        QueryClass& cls = g.classes[found];
        out.fused = g.setup_items > 1 || amortize_over == 0;
        // A deduped query's own cost is just its setup share; the
        // finalization share is added at fan-out (zero for inline fan-out
        // — copying a published result models as free host work).
        if (amortize_over > 0)
          out.latency_sim_ms =
              g.setup_sim_ms / static_cast<double>(amortize_over);
        collector_.record_dedup(!cls.shared);
        cls.shared = true;
        if (tracer_.enabled())
          tracer_.instant(lane(executor_id), "dedup-subscribe", p.id, g.seq);
        if (cls.inline_ready) {
          // The leader already resolved without deferring: self-serve.
          out.values = cls.inline_values;
          out.kth = cls.inline_kth;
          out.wall_ms = p.admitted.ms();
          return out;
        }
        // Subscribe: delivery happens at leader completion (inline
        // leaders) or batched finalization (deferred leaders).
        cls.subs.push_back({&p, out});
        *deferred = true;
        return out;
      }
      // else: the class's leader threw — don't ride a poisoned class; run
      // this query independently (exact, just unshared).
    }

    // Group-wide batched stage 3 (PR 8): if setup already classified and
    // concatenated for this k, phase A is DONE — no launch, no scratch.
    // The item either parks a deferred segment referencing the shared
    // group-arena candidate span (identical ks coalesce into one sort in
    // the batched finalization) or, on the Rule-3 fast path, self-serves
    // with a host sort of the exactly-k candidates.
    const Group::Stage3Entry* pre = nullptr;
    if (eligible && cfg_.batched_concat) {
      for (const auto& e : g.stage3) {
        if (e.k == q.k) {
          pre = &e;
          break;
        }
      }
    }
    try {
      if (pre != nullptr) {
        out.fused = g.setup_items > 1 || amortize_over == 0;
        // This item launched nothing: its latency is purely its share of
        // the group's construction + kappa + classify/concat passes.
        if (amortize_over > 0)
          out.latency_sim_ms =
              g.setup_sim_ms / static_cast<double>(amortize_over);
        bd.alpha = g.plan.alpha;
        bd.beta = g.plan.beta;
        bd.delegate_len = group_dv<Key>(g).size();
        bd.num_subranges = group_dv<Key>(g).num_subranges;
        bd.concat_len = pre->cand_count;
        bd.taken_delegates = pre->taken_total;
        bd.qualified_subranges = pre->qualified;
        bd.second_skipped = pre->second_skipped;
        if (!pre->second_skipped) {
          // Park the precomputed phase-A result; values/kth arrive at the
          // batched finalization.
          out.breakdown = bd;
          DeferredItem<Key> d;
          d.item = &p;
          d.out = out;
          d.cand = stage3_cand<Key>(*pre);
          d.k = q.k;
          d.criterion = q.criterion;
          d.selection_only = q.selection_only;
          d.class_id = class_id;
          if (tracer_.enabled()) d.park_ts_us = tracer_.now_us();
          {
            std::lock_guard lk(g.batch_mu);
            group_deferred<Key>(g).push_back(std::move(d));
          }
          *deferred = true;
          return out;
        }
        // Rule-3 fast path: exactly k delegates met the exact threshold
        // and no subrange fully qualified — the candidate span IS the
        // answer (same semantics as dr_topk's second_skipped host sort).
        std::span<const Key> cand = stage3_cand<Key>(*pre);
        std::vector<Key> keys(cand.begin(), cand.begin() + q.k);
        std::sort(keys.begin(), keys.end(), std::greater<Key>());
        if (cfg.selection_only && keys.size() > 1)
          keys.erase(keys.begin(), keys.end() - 1);
        out.values.reserve(keys.size());
        for (const Key key : keys)
          out.values.push_back(static_cast<u64>(
              data::value_from_directed_key<T>(key, q.criterion)));
        out.kth = out.values.back();
      } else {
        // Batched second-stage selection: replay the setup's exact kappa
        // (one batched launch covered the group), allocate the candidate
        // span from the group arena so it outlives this call, and defer
        // stage 4 — the group's last finisher (or a cross-group window
        // flush) selects for everyone in a single launch. Gated on the
        // default engine so plan-probed engine choices (and the per-query
        // baseline) stay measurable.
        core::DeferredSecond<Key> dsec;
        core::DeferredSecond<Key>* dsp = nullptr;
        if (eligible) {
          for (size_t i = 0; i < g.kappa_ks.size(); ++i) {
            if (g.kappa_ks[i] == q.k) {
              dsec.have_kappa = true;
              dsec.kappa = static_cast<Key>(g.kappa_vals[i]);
              break;
            }
          }
          dsec.alloc_cand = [&g](u64 cap) {
            std::lock_guard lk(g.batch_mu);
            return g.ws->alloc<Key>(cap);
          };
          dsp = &dsec;
        }
        auto r = core::dr_topk_from_delegates<Key>(dev_, keyspan, q.k,
                                                   group_dv<Key>(g), cfg, &bd,
                                                   ws, dsp);
        // "Fused" means construction was genuinely shared: either the
        // setup covered several queries, or this is a late joiner riding a
        // pass that others paid for. A singleton group paid full freight —
        // not fused.
        out.fused = g.setup_items > 1 || amortize_over == 0;
        // Latency: this query's stages plus its share of the group's
        // single construction (+ batched first top-k) pass. Late joiners
        // (amortize_over == 0) ride passes that were already paid for, so
        // the shares across a group sum to exactly the cost charged once
        // at setup.
        out.latency_sim_ms = r.sim_ms;
        if (amortize_over > 0)
          out.latency_sim_ms +=
              g.setup_sim_ms / static_cast<double>(amortize_over);
        if (dsp && dsec.deferred) {
          // Park the phase-A result; values/kth arrive at finalization.
          out.breakdown = bd;
          DeferredItem<Key> d;
          d.item = &p;
          d.out = out;
          d.cand = dsec.cand;
          d.k = q.k;
          d.criterion = q.criterion;
          d.selection_only = q.selection_only;
          d.class_id = class_id;
          if (tracer_.enabled()) d.park_ts_us = tracer_.now_us();
          {
            std::lock_guard lk(g.batch_mu);
            group_deferred<Key>(g).push_back(std::move(d));
          }
          *deferred = true;
          return out;
        }
        out.values.reserve(r.keys.size());
        for (const Key key : r.keys)
          out.values.push_back(static_cast<u64>(
              data::value_from_directed_key<T>(key, q.criterion)));
        out.kth = static_cast<u64>(
            data::value_from_directed_key<T>(r.kth, q.criterion));
      }
    } catch (...) {
      // Leader threw before publishing anything: poison the class so late
      // members run independently, and fail anyone already subscribed.
      if (class_id != kNoQueryClass) {
        std::vector<DedupSub> subs;
        {
          std::lock_guard lk(g.batch_mu);
          QueryClass& cls = g.classes[class_id];
          cls.failed = true;
          subs.swap(cls.subs);
        }
        for (DedupSub& sub : subs) {
          collector_.record_failure();
          sub.item->promise.set_exception(std::current_exception());
        }
      }
      throw;
    }
    // Leader completed inline (no deferral — Rule-3 fast path, plan-probed
    // engine, ...): publish the result for the class and deliver anyone
    // already parked; later members self-serve from the published copy.
    if (class_id != kNoQueryClass) {
      std::vector<DedupSub> subs;
      {
        std::lock_guard lk(g.batch_mu);
        QueryClass& cls = g.classes[class_id];
        cls.inline_ready = true;
        cls.inline_values = out.values;
        cls.inline_kth = out.kth;
        subs.swap(cls.subs);
      }
      const u64 t0 = tracer_.enabled() && !subs.empty() ? tracer_.now_us() : 0;
      for (DedupSub& sub : subs) {
        sub.out.values = out.values;
        sub.out.kth = out.kth;
        sub.out.wall_ms = sub.item->admitted.ms();
        collector_.record_query(sub.out.latency_sim_ms, sub.out.breakdown,
                                sub.out.fused);
        sub.item->promise.set_value(std::move(sub.out));
      }
      if (tracer_.enabled() && !subs.empty())
        tracer_.complete(lane(executor_id), "fan-out", p.id, g.seq, t0,
                         tracer_.now_us());
    }
  } else {
    // Unfused fallback: delegation infeasible for this shape (or setup
    // degraded); the full single-query pipeline, still plan-accelerated
    // when a plan resolved.
    auto r = core::dr_topk<T>(dev_, query_data<T>(q), q.k, q.criterion, cfg,
                              &bd, ws);
    out.values.reserve(r.values.size());
    for (const T v : r.values) out.values.push_back(static_cast<u64>(v));
    out.kth = static_cast<u64>(r.kth);
    out.latency_sim_ms = r.sim_ms;
  }
  out.breakdown = bd;
  out.wall_ms = p.admitted.ms();
  return out;
}

}  // namespace drtopk::serve
