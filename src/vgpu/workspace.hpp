// Workspace: a bump arena for device scratch memory, the backbone of the
// zero-allocation hot path.
//
// Every engine and pipeline stage used to cudaMalloc-equivalently allocate
// fresh full-size scratch per call (two n-sized radix buffers, the stage-3
// qualified/cand arrays, ...). A Workspace replaces those with pointer-bump
// allocations out of a small set of large blocks that are acquired once and
// reused forever:
//
//   vgpu::Workspace ws;
//   {
//     vgpu::Workspace::Scope scope(ws);      // checkpoint
//     auto buf = ws.alloc<u32>(n);           // O(1), no heap traffic
//     ...
//   }                                        // rewind: buf's bytes reusable
//
// Blocks are never freed or moved while the Workspace lives, so spans handed
// out stay valid until the bump pointer is rewound past them — LIFO scratch
// discipline, exactly what kernel pipelines need. Three counters make the
// steady-state contract testable:
//
//   * allocs()            — alloc<T>() calls served (cheap, informational)
//   * growths()           — heap blocks acquired; a warmed-up serving path
//                           must not increase this (the allocation-
//                           regression test asserts exactly that)
//   * high_water_bytes()  — peak bytes in use; recorded per plan by
//                           serve::PlanCache so executor/group workspaces
//                           can be presized for recurring shapes
//
// Workspaces are single-threaded by design: one per executor thread, plus a
// WorkspacePool of recycled workspaces for state whose lifetime spans
// threads (a serving group's shared delegate vector). tls_workspace() is the
// convenience fallback for ad-hoc callers (tests, examples, benches).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::vgpu {

class Workspace {
 public:
  /// Block growth floor; real workloads outgrow it immediately, tiny tests
  /// stay tiny.
  static constexpr u64 kMinBlockBytes = u64{64} << 10;

  Workspace() = default;
  explicit Workspace(u64 initial_bytes) {
    if (initial_bytes) grow(initial_bytes);
  }

  // Pinned in place: arenas are owned behind stable pointers (pool,
  // per-executor vector, thread_local), and the growth/high-water counters
  // are atomics so monitoring reads from other threads are race-free.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = delete;
  Workspace& operator=(Workspace&&) = delete;

  /// Bump-allocates `n` elements of trivially-copyable T. The returned span
  /// is uninitialized (like cudaMalloc'd memory) and stays valid until the
  /// workspace is rewound at or before the current position.
  template <class T>
  std::span<T> alloc(u64 n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Workspace holds raw device-style buffers");
    ++allocs_;
    if (n == 0) return {};
    std::byte* p = bump(n * sizeof(T), alignof(T));
    return {reinterpret_cast<T*>(p), n};
  }

  /// Bump position; rewinding to it frees (for reuse) everything allocated
  /// after it was taken.
  struct Checkpoint {
    u64 block = 0;
    u64 offset = 0;
  };

  Checkpoint checkpoint() const { return {cur_, off_}; }

  void rewind(const Checkpoint& c) {
    assert(c.block < cur_ || (c.block == cur_ && c.offset <= off_) ||
           blocks_.empty());
    cur_ = c.block;
    off_ = c.offset;
  }

  /// Rewind to empty; capacity (and the growth counter) is retained.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  /// RAII checkpoint/rewind — the per-call scratch scope every engine opens.
  class Scope {
   public:
    explicit Scope(Workspace& ws) : ws_(&ws), c_(ws.checkpoint()) {}
    ~Scope() { ws_->rewind(c_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    Checkpoint c_;
  };

  /// Presizes the arena to at least `bytes` of total capacity. A fresh
  /// workspace gets one contiguous block, so an allocation stream whose
  /// peak in-use total is <= `bytes` cannot grow mid-flight. A workspace
  /// that already reached this capacity organically is left alone — its
  /// existing block walk is what the recorded high-water mark measured, so
  /// replaying the same stream stays growth-free.
  void reserve_bytes(u64 bytes) {
    if (bytes == 0 || capacity_bytes() >= bytes) return;
    grow(bytes);
  }

  u64 capacity_bytes() const {
    u64 total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes currently reserved by live allocations (blocks fully behind the
  /// bump position count whole — skipped tails are unusable until rewind).
  u64 in_use_bytes() const {
    u64 total = off_;
    for (u64 b = 0; b < cur_ && b < blocks_.size(); ++b)
      total += blocks_[b].size;
    return total;
  }

  u64 high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  u64 allocs() const { return allocs_; }
  u64 growths() const { return growths_.load(std::memory_order_relaxed); }

  /// Windowed peak: the largest in-use total since the last reset_peak().
  /// Lets a caller measure the footprint of ONE unit of work (a query, a
  /// group construction) on a long-lived workspace whose lifetime
  /// high_water_bytes() aggregates every shape it ever served.
  u64 peak_bytes() const { return peak_; }
  void reset_peak() { peak_ = in_use_bytes(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    u64 size = 0;
  };

  std::byte* bump(u64 bytes, u64 align) {
    for (;;) {
      if (cur_ < blocks_.size()) {
        const u64 off = (off_ + align - 1) / align * align;
        if (off + bytes <= blocks_[cur_].size) {
          std::byte* p = blocks_[cur_].data.get() + off;
          off_ = off + bytes;
          const u64 in_use = in_use_bytes();
          if (in_use > high_water_.load(std::memory_order_relaxed))
            high_water_.store(in_use, std::memory_order_relaxed);
          peak_ = std::max(peak_, in_use);
          return p;
        }
        // Doesn't fit here: leave the tail as a hole and try the next block
        // (rewind reclaims it). Identical allocation streams walk identical
        // block sequences, so steady state never grows.
        ++cur_;
        off_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  void grow(u64 min_bytes) {
    // Geometric growth: each new block at least doubles total capacity, so
    // a workload reaches its high-water mark in O(log) growths. The bump
    // position is NOT moved: earlier blocks keep serving smaller
    // allocations (bump() walks forward to the new block only when it
    // must), so a reserve_bytes() on a rewound workspace neither strands
    // capacity nor inflates in_use/peak accounting.
    const u64 size = std::max({min_bytes, kMinBlockBytes, capacity_bytes()});
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    growths_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<Block> blocks_;
  u64 cur_ = 0;   ///< block the bump pointer is in
  u64 off_ = 0;   ///< offset within that block
  std::atomic<u64> high_water_{0};  ///< lifetime peak in-use (monitorable)
  u64 peak_ = 0;                    ///< peak in-use since reset_peak()
  u64 allocs_ = 0;
  std::atomic<u64> growths_{0};     ///< heap blocks acquired (monitorable)
};

/// Thread-local fallback workspace for callers outside the serving hot path
/// (tests, examples, ad-hoc engine invocations). Persistent per thread, so
/// repeated scoped calls reuse one allocation.
inline Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

/// Recycling pool of workspaces for scratch whose lifetime is not tied to
/// one call stack — e.g. a serving group's shared delegate vector, which is
/// built by one executor and read by all of them until the group drains.
/// Leases return their workspace (reset, capacity retained) on destruction,
/// so a steady-state server converges on a fixed set of pooled workspaces
/// and performs zero further heap allocations.
class WorkspacePool {
  struct FreeEntry {
    std::unique_ptr<Workspace> ws;
    u64 affinity;  ///< who returned it (kNoAffinity when untagged)
  };
  struct State {
    std::mutex mu;
    std::vector<FreeEntry> free;
    std::vector<Workspace*> all;  ///< stable observers for metric sums
  };

 public:
  /// Affinity token for acquire(): callers that pass a stable id (e.g. an
  /// executor index) are preferentially re-issued the arena they last
  /// returned — first-touch locality groundwork for NUMA pinning, where a
  /// pool block's pages live on the socket of whoever touched them first.
  static constexpr u64 kNoAffinity = ~u64{0};

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept
        : state_(std::move(o.state_)),
          ws_(std::move(o.ws_)),
          affinity_(o.affinity_) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        state_ = std::move(o.state_);
        ws_ = std::move(o.ws_);
        affinity_ = o.affinity_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return ws_ != nullptr; }
    Workspace& operator*() const { return *ws_; }
    Workspace* operator->() const { return ws_.get(); }
    Workspace* get() const { return ws_.get(); }

   private:
    friend class WorkspacePool;
    Lease(std::shared_ptr<State> state, std::unique_ptr<Workspace> ws,
          u64 affinity)
        : state_(std::move(state)), ws_(std::move(ws)), affinity_(affinity) {}

    void release() {
      if (!ws_) return;
      ws_->reset();
      std::lock_guard lk(state_->mu);
      state_->free.push_back({std::move(ws_), affinity_});
    }

    std::shared_ptr<State> state_;
    std::unique_ptr<Workspace> ws_;
    u64 affinity_ = kNoAffinity;
  };

  /// Pops a recycled workspace (or creates one on first use) and presizes
  /// it. Pick order: capacity first, affinity second — an arena already
  /// big enough for `reserve_bytes` (preferring the one this caller last
  /// returned) beats the affine-but-too-small arena, so affinity can bias
  /// placement but never force an avoidable heap growth; any free arena
  /// still beats allocating a new workspace.
  Lease acquire(u64 reserve_bytes = 0, u64 affinity = kNoAffinity) {
    std::unique_ptr<Workspace> ws;
    {
      std::lock_guard lk(state_->mu);
      if (!state_->free.empty()) {
        size_t pick = state_->free.size() - 1;
        size_t fitting = state_->free.size();  // best capacity-sufficient
        size_t affine = state_->free.size();   // best affinity match
        for (size_t i = state_->free.size(); i-- > 0;) {
          const FreeEntry& e = state_->free[i];
          const bool fits = e.ws->capacity_bytes() >= reserve_bytes;
          const bool mine = affinity != kNoAffinity && e.affinity == affinity;
          if (fits && mine) {
            fitting = affine = i;
            break;  // ideal: my own arena, already big enough
          }
          if (fits && fitting == state_->free.size()) fitting = i;
          if (mine && affine == state_->free.size()) affine = i;
        }
        if (fitting < state_->free.size()) {
          pick = fitting;
        } else if (affine < state_->free.size()) {
          pick = affine;
        }
        ws = std::move(state_->free[pick].ws);
        state_->free.erase(state_->free.begin() +
                           static_cast<std::ptrdiff_t>(pick));
      } else {
        ws = std::make_unique<Workspace>();
        state_->all.push_back(ws.get());
      }
    }
    if (reserve_bytes) ws->reserve_bytes(reserve_bytes);
    return Lease(state_, std::move(ws), affinity);
  }

  /// Aggregate counters over every workspace ever created by this pool
  /// (leased or free) — what the allocation-regression test watches.
  u64 growths() const {
    std::lock_guard lk(state_->mu);
    u64 total = 0;
    for (const Workspace* ws : state_->all) total += ws->growths();
    return total;
  }

  u64 high_water_bytes() const {
    std::lock_guard lk(state_->mu);
    u64 peak = 0;
    for (const Workspace* ws : state_->all)
      peak = std::max(peak, ws->high_water_bytes());
    return peak;
  }

  u64 size() const {
    std::lock_guard lk(state_->mu);
    return state_->all.size();
  }

 private:
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace drtopk::vgpu
