// Basic integer/float aliases and warp-wide register file types shared by the
// whole virtual-GPU substrate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace drtopk {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

namespace vgpu {

/// SIMT width. Matches NVIDIA hardware; the paper's shuffle accounting
/// (31 shuffles per full-warp reduction, Section 5.2) assumes this value.
inline constexpr u32 kWarpSize = 32;

/// Global-memory transaction (sector) granularity in bytes. V100-class GPUs
/// move 32-byte sectors; Table 3 of the paper counts these transactions.
inline constexpr u32 kSectorBytes = 32;

/// Number of shared-memory banks; consecutive 4-byte words map to
/// consecutive banks. Used by the bank-conflict model.
inline constexpr u32 kSharedBanks = 32;

/// One register per lane of a warp. Warp-cooperative kernels keep their
/// per-thread state in LaneArrays and exchange it through Warp collectives,
/// mirroring how CUDA kernels keep values in registers and shuffle them.
template <class T>
using LaneArray = std::array<T, kWarpSize>;

/// Fills a LaneArray with a single value (the usual register initializer).
template <class T>
constexpr LaneArray<T> lane_fill(const T& v) {
  LaneArray<T> a{};
  for (u32 i = 0; i < kWarpSize; ++i) a[i] = v;
  return a;
}

}  // namespace vgpu
}  // namespace drtopk
