// Hardware profiles for the GPUs the paper evaluates on (V100S, Titan Xp).
// The cost model converts instrumented kernel counters into simulated
// milliseconds using these numbers, so "which GPU" is a pure parameter —
// exactly how Figure 23 of the paper swaps V100S for Titan Xp.
#pragma once

#include <string>

#include "vgpu/types.hpp"

namespace drtopk::vgpu {

struct GpuProfile {
  std::string name;

  // Memory system.
  double mem_bw_gbps = 0.0;     ///< Peak global-memory bandwidth (GB/s).
  u64 global_mem_bytes = 0;     ///< Device memory capacity.
  u64 shared_bytes_per_sm = 0;  ///< Configurable shared memory per SM.
  double pcie_gbps = 0.0;       ///< Host<->device transfer bandwidth (GB/s);
                                ///< drives the reload-overhead model (Table 2).

  // Compute.
  double clock_ghz = 0.0;
  u32 num_sms = 0;
  u32 cores_per_sm = 0;
  u32 max_threads_per_sm = 0;

  // Throughput knobs for the roofline cost model.
  double atomic_gops = 0.0;  ///< global atomics per second (x1e9)
  double shfl_issue_lanes_per_sm_per_cycle = 8.0;
  ///< Effective shuffle lane-ops issued per SM per cycle. Shuffles are
  ///< latency ~25-cycle instructions; at the low occupancy of
  ///< one-warp-per-subrange kernels the sustained rate is far below the
  ///< 128-lane peak — this knob captures that (it is what makes the
  ///< delegate-construction optimization of Section 5.3 worthwhile).

  // Per-instruction latencies in cycles: the C_global / C_shfl constants of
  // Rule 4 (Section 5.2), used by the alpha tuner's analytic Const.
  double c_global = 0.0;
  double c_shfl = 0.0;

  /// Aggregate shared-memory bandwidth: 32 banks x 4 B per SM per cycle.
  double shared_bw_gbps() const {
    return static_cast<double>(num_sms) * kSharedBanks * 4.0 * clock_ghz;
  }

  /// Sustained shuffle throughput in lane-ops per second.
  double shfl_glanes_per_sec() const {
    return static_cast<double>(num_sms) * shfl_issue_lanes_per_sm_per_cycle *
           clock_ghz * 1e9;
  }

  /// Tesla V100S (Volta): 1,134 GB/s HBM2, 80 SMs @ 1.5 GHz, 32 GB
  /// (Section 2.1 of the paper).
  static const GpuProfile& v100s();

  /// Titan Xp (Pascal): 547.7 GB/s GDDR5X, 30 SMs, 12 GB (Section 6.5).
  static const GpuProfile& titan_xp();

  /// A100 80GB (Ampere): 2,039 GB/s HBM2e, 108 SMs — the "most recent"
  /// GPU the paper's introduction cites as motivation. Included as a
  /// forward-looking profile: Dr. Top-k's bandwidth-bound stages scale
  /// with the 2039/1134 ratio.
  static const GpuProfile& a100();
};

}  // namespace drtopk::vgpu
