// Per-CTA shared memory with a bank-conflict model.
//
// V100-class GPUs expose 32 banks of 4-byte words; a warp access in which
// multiple lanes hit *different words in the same bank* is replayed once per
// extra word. Section 5.3 of the paper pads its shared-memory layout to
// avoid exactly these replays; SharedSpan::warp_gather/warp_scatter measure
// them so the padding ablation is observable.
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "vgpu/stats.hpp"
#include "vgpu/types.hpp"

namespace drtopk::vgpu {

template <class T>
class SharedSpan {
 public:
  SharedSpan() = default;
  SharedSpan(T* p, u64 n, KernelStats* stats) : p_(p), n_(n), stats_(stats) {}

  u64 size() const { return n_; }

  T ld(u64 i) const {
    assert(i < n_);
    stats_->shared_loads += 1;
    return p_[i];
  }

  void st(u64 i, const T& v) {
    assert(i < n_);
    stats_->shared_stores += 1;
    p_[i] = v;
  }

  /// Warp-wide gather: lane l reads element idx(l). Counts `active` loads
  /// plus the replay cycles caused by bank conflicts.
  template <class IdxFn>
  LaneArray<T> warp_gather(u32 active, IdxFn&& idx) const {
    LaneArray<T> out{};
    u64 idxs[kWarpSize];
    for (u32 l = 0; l < active; ++l) {
      idxs[l] = idx(l);
      assert(idxs[l] < n_);
      out[l] = p_[idxs[l]];
    }
    stats_->shared_loads += active;
    stats_->shared_bank_conflicts += conflict_replays(idxs, active);
    return out;
  }

  /// Warp-wide scatter: lane l writes val[l] to element idx(l).
  template <class IdxFn>
  void warp_scatter(u32 active, IdxFn&& idx, const LaneArray<T>& val) {
    u64 idxs[kWarpSize];
    for (u32 l = 0; l < active; ++l) {
      idxs[l] = idx(l);
      assert(idxs[l] < n_);
      p_[idxs[l]] = val[l];
    }
    stats_->shared_stores += active;
    stats_->shared_bank_conflicts += conflict_replays(idxs, active);
  }

  /// Raw access for verification in tests (not charged).
  T* data() { return p_; }
  const T* data() const { return p_; }

 private:
  /// Replays beyond the first cycle: for each bank, count distinct words
  /// touched; the access is serialized max-over-banks times.
  u64 conflict_replays(const u64* idxs, u32 active) const {
    u32 bank_words[kSharedBanks][kWarpSize];
    u32 bank_count[kSharedBanks] = {};
    u32 worst = 1;
    for (u32 l = 0; l < active; ++l) {
      const u64 word = idxs[l] * sizeof(T) / 4;
      const u32 bank = static_cast<u32>(word % kSharedBanks);
      bool seen = false;
      for (u32 j = 0; j < bank_count[bank]; ++j) {
        if (bank_words[bank][j] == static_cast<u32>(word)) {
          seen = true;  // same word: broadcast, no extra replay
          break;
        }
      }
      if (!seen) {
        bank_words[bank][bank_count[bank]++] = static_cast<u32>(word);
        worst = std::max(worst, bank_count[bank]);
      }
    }
    return worst - 1;
  }

  T* p_ = nullptr;
  u64 n_ = 0;
  KernelStats* stats_ = nullptr;
};

/// Bump allocator over the CTA's shared-memory arena. Kernels carve typed
/// spans out of it exactly like `__shared__` array declarations.
class SharedMem {
 public:
  SharedMem(std::byte* arena, u64 capacity, KernelStats* stats)
      : arena_(arena), capacity_(capacity), stats_(stats) {}

  template <class T>
  SharedSpan<T> alloc(u64 n) {
    const u64 align = alignof(T);
    u64 off = (used_ + align - 1) / align * align;
    const u64 bytes = n * sizeof(T);
    assert(off + bytes <= capacity_ && "shared memory overflow");
    used_ = off + bytes;
    return SharedSpan<T>(reinterpret_cast<T*>(arena_ + off), n, stats_);
  }

  u64 used() const { return used_; }
  u64 capacity() const { return capacity_; }

 private:
  std::byte* arena_;
  u64 capacity_;
  u64 used_ = 0;
  KernelStats* stats_;
};

}  // namespace drtopk::vgpu
