#include "vgpu/profile.hpp"

namespace drtopk::vgpu {

namespace {

GpuProfile make_v100s() {
  GpuProfile p;
  p.name = "V100S";
  p.mem_bw_gbps = 1134.0;
  p.global_mem_bytes = 32ull << 30;
  p.shared_bytes_per_sm = 96ull << 10;
  p.pcie_gbps = 12.0;  // PCIe 3.0 x16 effective; reproduces Table 2 reloads.
  p.clock_ghz = 1.5;
  p.num_sms = 80;
  p.cores_per_sm = 64;
  p.max_threads_per_sm = 2048;
  p.atomic_gops = 8.0;
  p.shfl_issue_lanes_per_sm_per_cycle = 8.0;
  // Latency of an L2-missing global access on Volta is ~400-500 cycles
  // (microbenchmark literature); shuffles are ~25-cycle fixed-latency ops.
  p.c_global = 440.0;
  p.c_shfl = 25.0;
  return p;
}

GpuProfile make_titan_xp() {
  GpuProfile p;
  p.name = "TitanXp";
  p.mem_bw_gbps = 547.7;
  p.global_mem_bytes = 12ull << 30;
  p.shared_bytes_per_sm = 96ull << 10;
  p.pcie_gbps = 12.0;
  p.clock_ghz = 1.58;
  p.num_sms = 30;
  p.cores_per_sm = 128;
  p.max_threads_per_sm = 2048;
  p.atomic_gops = 4.0;
  p.shfl_issue_lanes_per_sm_per_cycle = 8.0;
  p.c_global = 480.0;
  p.c_shfl = 28.0;
  return p;
}

GpuProfile make_a100() {
  GpuProfile p;
  p.name = "A100";
  p.mem_bw_gbps = 2039.0;
  p.global_mem_bytes = 80ull << 30;
  p.shared_bytes_per_sm = 164ull << 10;
  p.pcie_gbps = 25.0;  // PCIe 4.0 x16
  p.clock_ghz = 1.41;
  p.num_sms = 108;
  p.cores_per_sm = 64;
  p.max_threads_per_sm = 2048;
  p.atomic_gops = 16.0;
  p.shfl_issue_lanes_per_sm_per_cycle = 8.0;
  p.c_global = 470.0;
  p.c_shfl = 23.0;
  return p;
}

}  // namespace

const GpuProfile& GpuProfile::v100s() {
  static const GpuProfile p = make_v100s();
  return p;
}

const GpuProfile& GpuProfile::titan_xp() {
  static const GpuProfile p = make_titan_xp();
  return p;
}

const GpuProfile& GpuProfile::a100() {
  static const GpuProfile p = make_a100();
  return p;
}

}  // namespace drtopk::vgpu
