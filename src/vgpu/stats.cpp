#include "vgpu/stats.hpp"

#include <sstream>

namespace drtopk::vgpu {

std::string KernelStats::to_string() const {
  std::ostringstream os;
  os << "loads=" << global_load_elems << " (" << global_load_txns << " txn)"
     << " stores=" << global_store_elems << " (" << global_store_txns << " txn)"
     << " shfl=" << shfl_ops << " atomics=" << atomic_ops
     << " shared=" << (shared_loads + shared_stores)
     << " (+" << shared_bank_conflicts << " conflicts)"
     << " kernels=" << kernels_launched << " ctas=" << ctas_run;
  return os.str();
}

}  // namespace drtopk::vgpu
