// Instrumentation counters gathered while a kernel runs on the virtual GPU.
// These are the quantities the paper reasons about: global-memory element
// accesses and sector transactions (Table 3, Equations 2-5), shuffle
// instructions (Equation 2), atomics (Section 4.2) and shared-memory traffic
// with bank conflicts (Section 5.3).
#pragma once

#include <string>

#include "vgpu/types.hpp"

namespace drtopk::vgpu {

struct KernelStats {
  // Global memory, element granularity (what Eq. 2-5 count).
  u64 global_load_elems = 0;
  u64 global_store_elems = 0;
  u64 global_load_bytes = 0;
  u64 global_store_bytes = 0;

  // Global memory, 32-byte sector transactions (what Table 3 counts).
  // A fully coalesced warp access of 32 x 4B elements costs 4 sectors;
  // a scattered access costs one sector per lane.
  u64 global_load_txns = 0;
  u64 global_store_txns = 0;

  // Intra-warp communication: shuffle executions, counted per active lane
  // per step exactly as Section 5.2 does (a full 32-lane max-reduction is
  // 16+8+4+2+1 = 31 shuffles).
  u64 shfl_ops = 0;

  // Warp vote (ballot) instructions; cheap, tracked separately.
  u64 vote_ops = 0;

  u64 atomic_ops = 0;

  // Shared memory.
  u64 shared_loads = 0;
  u64 shared_stores = 0;
  u64 shared_bank_conflicts = 0;  ///< extra serialized cycles beyond 1/access

  // Control.
  u64 kernels_launched = 0;
  u64 ctas_run = 0;

  KernelStats& operator+=(const KernelStats& o) {
    global_load_elems += o.global_load_elems;
    global_store_elems += o.global_store_elems;
    global_load_bytes += o.global_load_bytes;
    global_store_bytes += o.global_store_bytes;
    global_load_txns += o.global_load_txns;
    global_store_txns += o.global_store_txns;
    shfl_ops += o.shfl_ops;
    vote_ops += o.vote_ops;
    atomic_ops += o.atomic_ops;
    shared_loads += o.shared_loads;
    shared_stores += o.shared_stores;
    shared_bank_conflicts += o.shared_bank_conflicts;
    kernels_launched += o.kernels_launched;
    ctas_run += o.ctas_run;
    return *this;
  }

  friend KernelStats operator+(KernelStats a, const KernelStats& b) {
    a += b;
    return a;
  }

  u64 global_elems() const { return global_load_elems + global_store_elems; }
  u64 global_bytes() const { return global_load_bytes + global_store_bytes; }
  u64 global_txns() const { return global_load_txns + global_store_txns; }

  std::string to_string() const;
};

}  // namespace drtopk::vgpu
