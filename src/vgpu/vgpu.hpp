// Umbrella header for the virtual-GPU substrate.
#pragma once

#include "vgpu/cost_model.hpp"
#include "vgpu/device.hpp"
#include "vgpu/profile.hpp"
#include "vgpu/shared_mem.hpp"
#include "vgpu/stats.hpp"
#include "vgpu/thread_pool.hpp"
#include "vgpu/types.hpp"
#include "vgpu/warp.hpp"
#include "vgpu/workspace.hpp"
