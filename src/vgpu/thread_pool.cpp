#include "vgpu/thread_pool.hpp"

#include <algorithm>

namespace drtopk::vgpu {

ThreadPool::ThreadPool(u32 threads) {
  u32 n = threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                       : threads;
  // Worker 0 is the calling thread; spawn n-1 helpers.
  for (u32 i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_job(Job& job, u32 worker_id) {
  try {
    for (;;) {
      const u64 base = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
      if (base >= job.end) break;
      const u64 hi = std::min(job.end, base + job.chunk);
      for (u64 i = base; i < hi; ++i) (*job.fn)(i, worker_id);
    }
  } catch (...) {
    std::lock_guard lk(job.error_mu);
    if (!job.error) job.error = std::current_exception();
  }
}

ThreadPool::Job* ThreadPool::pick_runnable_locked() {
  for (Job* j : jobs_) {
    if (!j->exhausted()) return j;
  }
  return nullptr;
}

void ThreadPool::worker_loop(u32 worker_id) {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lk(mu_);
      // The lock is held from predicate to claim, so a non-stop wakeup
      // guarantees `job` is a runnable group.
      cv_.wait(lk,
               [&] { return stop_ || (job = pick_runnable_locked()) != nullptr; });
      if (stop_) return;
      ++job->active_workers;
    }
    run_job(*job, worker_id);
    {
      std::lock_guard lk(mu_);
      --job->active_workers;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(u64 begin, u64 end,
                              const std::function<void(u64, u32)>& fn) {
  if (begin >= end) return;
  const u64 n = end - begin;
  if (n == 1 || workers_.empty()) {
    for (u64 i = begin; i < end; ++i) fn(i, 0);
    return;
  }

  // Offset-free iteration: job indexes [0, n), fn sees begin+i.
  std::function<void(u64, u32)> shifted = [&](u64 i, u32 w) { fn(begin + i, w); };

  Job job;
  job.fn = &shifted;
  job.end = n;
  // A few chunks per worker keeps load balanced without contention.
  job.chunk = std::max<u64>(1, n / (size() * 4));

  {
    std::lock_guard lk(mu_);
    jobs_.push_back(&job);
  }
  cv_.notify_all();

  run_job(job, 0);  // calling thread participates as its job's worker 0

  {
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [&] { return job.exhausted() && job.active_workers == 0; });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace drtopk::vgpu
