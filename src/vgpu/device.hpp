// The virtual GPU device: kernel launch, CTA context, stats accounting and
// the simulated-time ledger.
//
// A kernel is any callable `void(CtaCtx&)`. CTAs run in parallel on a host
// thread pool; warps inside a CTA run warp-synchronously. All instrumentation
// flows into per-worker KernelStats that are merged when the launch returns,
// so hot paths never touch shared counters.
#pragma once

#include <algorithm>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "vgpu/cost_model.hpp"
#include "vgpu/profile.hpp"
#include "vgpu/shared_mem.hpp"
#include "vgpu/stats.hpp"
#include "vgpu/thread_pool.hpp"
#include "vgpu/types.hpp"
#include "vgpu/warp.hpp"

namespace drtopk::vgpu {

/// Kernel launch configuration (grid geometry + shared memory request).
struct Launch {
  std::string name = "kernel";
  u32 num_ctas = 1;
  u32 warps_per_cta = 8;
  u64 shared_bytes = 0;
  /// Pipeline-stage label for per-stage KernelStats attribution. Must point
  /// at a string with static storage duration. When null, the launch
  /// inherits the ambient StageScope; with no scope either it is charged to
  /// the "unattributed" bucket (CI gates on that bucket staying empty).
  const char* stage = nullptr;
};

/// RAII ambient stage label (thread-local). Library entry points open a
/// defaulting scope — it only takes effect when no caller already
/// established one — so outer context wins: serve's "calibrate" scope keeps
/// plan-cache probe launches out of the steady-state stage ledger even
/// though the probes run the regular pipeline underneath. Pass
/// `force = true` to relabel within an enclosing scope (used for the
/// stage-3 relaxation guard, whose recomputation is charged back to the
/// first selection).
class StageScope {
 public:
  explicit StageScope(const char* stage, bool force = false) {
    if (force || active_ == nullptr) {
      saved_ = active_;
      active_ = stage;
      engaged_ = true;
    }
  }
  ~StageScope() {
    if (engaged_) active_ = saved_;
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  /// True when this scope actually set the ambient label (i.e. it was the
  /// outermost scope, or forced).
  bool engaged() const { return engaged_; }

  /// The ambient stage label on this thread, or null.
  static const char* active() { return active_; }

 private:
  static inline thread_local const char* active_ = nullptr;
  const char* saved_ = nullptr;
  bool engaged_ = false;
};

/// Per-stage aggregate: KernelStats plus simulated time attributed to one
/// stage label.
struct StageStats {
  std::string stage;
  KernelStats stats;
  double sim_ms = 0.0;
};

/// Execution context handed to the kernel, one per CTA.
class CtaCtx {
 public:
  CtaCtx(u32 cta_id, const Launch& cfg, std::byte* shared_arena,
         KernelStats& stats)
      : cta_id_(cta_id),
        cfg_(&cfg),
        stats_(&stats),
        shared_(shared_arena, cfg.shared_bytes, &stats) {}

  u32 cta_id() const { return cta_id_; }
  u32 num_ctas() const { return cfg_->num_ctas; }
  u32 warps_per_cta() const { return cfg_->warps_per_cta; }
  u32 grid_warps() const { return cfg_->num_ctas * cfg_->warps_per_cta; }

  KernelStats& stats() { return *stats_; }
  SharedMem& shared() { return shared_; }

  /// Warp `w` of this CTA (0 <= w < warps_per_cta).
  Warp warp(u32 w) {
    return Warp(*stats_, cta_id_ * cfg_->warps_per_cta + w, grid_warps());
  }

  /// Runs fn(warp) for every warp of the CTA (warps execute sequentially
  /// within a CTA; parallelism comes from CTAs).
  template <class F>
  void for_each_warp(F&& fn) {
    for (u32 w = 0; w < cfg_->warps_per_cta; ++w) {
      Warp wp = warp(w);
      fn(wp);
    }
  }

  /// Thread-style scalar accessors for control logic.
  template <class T>
  T ld(std::span<const T> v, u64 i) {
    stats_->global_load_elems += 1;
    stats_->global_load_bytes += sizeof(T);
    stats_->global_load_txns += 1;
    return v[i];
  }

  template <class T>
  void st(std::span<T> v, u64 i, const T& x) {
    stats_->global_store_elems += 1;
    stats_->global_store_bytes += sizeof(T);
    stats_->global_store_txns += 1;
    v[i] = x;
  }

  template <class T>
  T atomic_add(std::span<T> v, u64 i, T delta) {
    stats_->atomic_ops += 1;
    return detail::AtomicOps<T>::fetch_add(&v[i], delta);
  }

 private:
  u32 cta_id_;
  const Launch* cfg_;
  KernelStats* stats_;
  SharedMem shared_;
};

class Device {
 public:
  explicit Device(GpuProfile profile = GpuProfile::v100s(),
                  u32 host_threads = 0)
      : profile_(std::move(profile)), cost_(profile_), pool_(host_threads) {}

  const GpuProfile& profile() const { return profile_; }
  const CostModel& cost() const { return cost_; }
  ThreadPool& pool() { return pool_; }

  /// Launches the kernel and blocks until every CTA finished. Returns the
  /// stats of this launch; also adds them (and the simulated time) to the
  /// device's running totals.
  template <class F>
  KernelStats launch(const Launch& cfg, F&& kernel) {
    const u32 workers = pool_.size();
    std::vector<KernelStats> per_worker(workers);

    pool_.parallel_for(0, cfg.num_ctas, [&](u64 cta, u32 worker) {
      // Shared-memory arena: grow-only and thread_local, so an OS thread —
      // which runs one CTA at a time, whatever launch or Device it belongs
      // to — reuses one allocation across launches while concurrent
      // launches (serving executors) stay isolated by construction.
      CtaCtx ctx(static_cast<u32>(cta), cfg,
                 cfg.shared_bytes ? thread_arena(cfg.shared_bytes) : nullptr,
                 per_worker[worker]);
      kernel(ctx);
    });

    KernelStats s;
    for (const auto& w : per_worker) s += w;
    s.kernels_launched = 1;
    s.ctas_run = cfg.num_ctas;

    const double ms = cost_.kernel_ms(s);
    const char* stage = cfg.stage ? cfg.stage : StageScope::active();
    {
      std::lock_guard lk(mu_);
      total_ += s;
      total_sim_ms_ += ms;
      // The stage ledger adds the *same* KernelStats under the *same* lock,
      // so per-stage totals reconcile exactly with total_stats().
      StageSlot& slot = stages_[stage ? stage : "unattributed"];
      slot.stats += s;
      slot.sim_ms += ms;
    }
    return s;
  }

  /// Simulated milliseconds for a stats snapshot under this device's profile.
  double sim_ms(const KernelStats& s) const { return cost_.kernel_ms(s); }

  void reset_stats() {
    std::lock_guard lk(mu_);
    total_ = KernelStats{};
    total_sim_ms_ = 0.0;
    stages_.clear();
  }

  KernelStats total_stats() const {
    std::lock_guard lk(mu_);
    return total_;
  }

  double total_sim_ms() const {
    std::lock_guard lk(mu_);
    return total_sim_ms_;
  }

  /// Per-stage kernel-stats breakdown, sorted by stage label. Summing the
  /// returned KernelStats reproduces total_stats() exactly (same counters
  /// added under the same lock).
  std::vector<StageStats> stage_stats() const {
    std::vector<StageStats> out;
    std::lock_guard lk(mu_);
    out.reserve(stages_.size());
    for (const auto& [name, slot] : stages_)
      out.push_back(StageStats{name, slot.stats, slot.sim_ms});
    return out;
  }

  /// Kernel launches that carried no stage label (neither explicit nor
  /// ambient). CI gates on this staying zero for served queries.
  u64 unattributed_launches() const {
    std::lock_guard lk(mu_);
    auto it = stages_.find("unattributed");
    return it == stages_.end() ? 0 : it->second.stats.kernels_launched;
  }

  /// Grid geometry for a workload of `items` independent warp-sized work
  /// units. Grid-stride loops make the exact CTA count a performance knob,
  /// not a correctness one; we size it like a persistent-occupancy launch.
  Launch launch_for_warp_items(u64 items, std::string name,
                               u32 warps_per_cta = 8,
                               u64 shared_bytes = 0) const {
    const u64 resident_warps = static_cast<u64>(profile_.num_sms) *
                               profile_.max_threads_per_sm / kWarpSize;
    const u64 warps = std::clamp<u64>(items, 1, resident_warps);
    Launch cfg;
    cfg.name = std::move(name);
    cfg.warps_per_cta = warps_per_cta;
    cfg.num_ctas =
        static_cast<u32>((warps + warps_per_cta - 1) / warps_per_cta);
    cfg.shared_bytes = shared_bytes;
    return cfg;
  }

 private:
  static std::byte* thread_arena(u64 bytes) {
    thread_local std::vector<std::byte> arena;
    if (arena.size() < bytes) arena.resize(bytes);
    return arena.data();
  }

  GpuProfile profile_;
  CostModel cost_;
  ThreadPool pool_;

  struct StageSlot {
    KernelStats stats;
    double sim_ms = 0.0;
  };

  mutable std::mutex mu_;
  KernelStats total_;
  double total_sim_ms_ = 0.0;
  std::map<std::string, StageSlot> stages_;
};

/// std::vector that skips zero-initialization on resize — the device-buffer
/// equivalent of cudaMalloc'd memory.
template <class T>
struct default_init_allocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = default_init_allocator<U>;
  };
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;  // default-init: no zero fill
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

template <class T>
using device_vector = std::vector<T, default_init_allocator<T>>;

}  // namespace drtopk::vgpu
