// Warp-cooperative programming model.
//
// Kernels on the virtual GPU are written warp-synchronously: a Warp executes
// as a unit, per-thread registers live in LaneArray<T>, and lanes exchange
// data only through the collectives below. Each collective charges the
// shuffle count the hardware would execute — a full 32-lane reduction costs
// 16+8+4+2+1 = 31 shuffle executions, the exact accounting used in the
// paper's Equation 2 and Rule 4.
#pragma once

#include <bit>
#include <cassert>
#include <span>
#include <utility>

#include "vgpu/stats.hpp"
#include "vgpu/types.hpp"

namespace drtopk::vgpu {

namespace detail {

/// Sector transactions for a contiguous warp access of `bytes` bytes.
/// Contiguous aligned accesses are perfectly coalesced.
inline u64 coalesced_txns(u64 bytes) {
  return (bytes + kSectorBytes - 1) / kSectorBytes;
}

template <class T>
struct AtomicOps {
  static T fetch_add(T* p, T v) {
    return std::atomic_ref<T>(*p).fetch_add(v, std::memory_order_relaxed);
  }
  static T fetch_max(T* p, T v) {
    std::atomic_ref<T> a(*p);
    T cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    return cur;
  }
};

}  // namespace detail

class Warp {
 public:
  Warp(KernelStats& stats, u32 global_id, u32 grid_warps)
      : sink_(&stats), global_id_(global_id), grid_warps_(grid_warps) {}

  // Accounting is accumulated into a warp-local KernelStats (a hot-loop
  // store into a stack struct, not a pointer chase into the per-worker
  // sink) and flushed once when the warp retires. Copies are forbidden so
  // a warp's counters are flushed exactly once.
  Warp(const Warp&) = delete;
  Warp& operator=(const Warp&) = delete;
  ~Warp() { flush_stats(); }

  u32 global_id() const { return global_id_; }
  u32 grid_warps() const { return grid_warps_; }

  /// The warp's local (not yet flushed) counters; kernels may charge
  /// analytic costs directly through this.
  KernelStats& stats() { return local_; }

  /// Adds the local counters to the launch's per-worker sink. Called
  /// automatically on destruction; idempotent.
  void flush_stats() {
    *sink_ += local_;
    local_ = KernelStats{};
  }

  // ------------------------------------------------------------------
  // Global memory
  // ------------------------------------------------------------------

  /// Single-lane (divergent) load: one sector transaction regardless of size.
  template <class T>
  T ld(std::span<const T> v, u64 i) {
    local_.global_load_elems += 1;
    local_.global_load_bytes += sizeof(T);
    local_.global_load_txns += 1;
    return v[i];
  }

  /// Single-lane (divergent) store.
  template <class T>
  void st(std::span<T> v, u64 i, const T& x) {
    local_.global_store_elems += 1;
    local_.global_store_bytes += sizeof(T);
    local_.global_store_txns += 1;
    v[i] = x;
  }

  /// Warp-coalesced load of `active` consecutive elements starting at base;
  /// lane l receives v[base + l]. Inactive lanes get value-initialized T.
  /// The full-warp case runs a constant-trip-count copy with no per-lane
  /// branches so it auto-vectorizes (the accounting is hoisted in front).
  template <class T>
  LaneArray<T> load_coalesced(std::span<const T> v, u64 base,
                              u32 active = kWarpSize) {
    assert(active <= kWarpSize && base + active <= v.size());
    charge_coalesced_load<T>(active);
    const T* src = v.data() + base;
    LaneArray<T> out;
    if (active == kWarpSize) {
      for (u32 l = 0; l < kWarpSize; ++l) out[l] = src[l];
    } else {
      out = LaneArray<T>{};
      for (u32 l = 0; l < active; ++l) out[l] = src[l];
    }
    return out;
  }

  /// Warp-coalesced store of `active` consecutive elements. Full-warp fast
  /// path as in load_coalesced.
  template <class T>
  void store_coalesced(std::span<T> v, u64 base, const LaneArray<T>& x,
                       u32 active = kWarpSize) {
    assert(active <= kWarpSize && base + active <= v.size());
    charge_coalesced_store<T>(active);
    T* dst = v.data() + base;
    if (active == kWarpSize) {
      for (u32 l = 0; l < kWarpSize; ++l) dst[l] = x[l];
    } else {
      for (u32 l = 0; l < active; ++l) dst[l] = x[l];
    }
  }

  /// Streams [begin, begin+len) through the warp in coalesced 32-element
  /// chunks; calls f(lane, value) for every element. This is the canonical
  /// "each thread strides through the subrange" pattern of the paper's
  /// warp-centric delegate construction.
  ///
  /// Hot-loop structure: the accounting (element/byte/transaction totals)
  /// is in closed form and hoisted out entirely, and the full 32-element
  /// chunks run with a constant trip count and no branches — an inlined f
  /// over the contiguous slice auto-vectorizes. The ragged tail is handled
  /// once at the end.
  template <class T, class F>
  void scan_coalesced(std::span<const T> v, u64 begin, u64 len, F&& f) {
    assert(begin + len <= v.size());
    const u64 full = len / kWarpSize;
    const u32 tail = static_cast<u32>(len % kWarpSize);
    const T* p = v.data();
    u64 pos = begin;
    for (u64 c = 0; c < full; ++c, pos += kWarpSize) {
      for (u32 l = 0; l < kWarpSize; ++l) f(l, p[pos + l]);
    }
    for (u32 l = 0; l < tail; ++l) f(l, p[pos + l]);
    charge_scan<T>(len, full, tail);
  }

  /// Like scan_coalesced but also passes the element index:
  /// f(lane, value, index).
  template <class T, class F>
  void scan_coalesced_idx(std::span<const T> v, u64 begin, u64 len, F&& f) {
    assert(begin + len <= v.size());
    const u64 full = len / kWarpSize;
    const u32 tail = static_cast<u32>(len % kWarpSize);
    const T* p = v.data();
    u64 pos = begin;
    for (u64 c = 0; c < full; ++c, pos += kWarpSize) {
      for (u32 l = 0; l < kWarpSize; ++l) f(l, p[pos + l], pos + l);
    }
    for (u32 l = 0; l < tail; ++l) f(l, p[pos + l], pos + l);
    charge_scan<T>(len, full, tail);
  }

  /// Scattered warp store: lane l (if bit l of mask set) writes val[l] to
  /// v[idx[l]]. Charged one sector per active lane — the uncoalesced pattern
  /// the paper's flag-based radix optimization removes.
  template <class T>
  void store_scattered(std::span<T> v, const LaneArray<u64>& idx,
                       const LaneArray<T>& val, u32 mask) {
    const u32 active = std::popcount(mask);
    local_.global_store_elems += active;
    local_.global_store_bytes += static_cast<u64>(active) * sizeof(T);
    local_.global_store_txns += active;
    for (u32 l = 0; l < kWarpSize; ++l) {
      if (mask & (1u << l)) v[idx[l]] = val[l];
    }
  }

  /// Lane-scoped atomic fetch-add (thread-safe across CTAs).
  template <class T>
  T atomic_add(std::span<T> v, u64 i, T delta) {
    local_.atomic_ops += 1;
    return detail::AtomicOps<T>::fetch_add(&v[i], delta);
  }

  template <class T>
  T atomic_max(std::span<T> v, u64 i, T x) {
    local_.atomic_ops += 1;
    return detail::AtomicOps<T>::fetch_max(&v[i], x);
  }

  // ------------------------------------------------------------------
  // Collectives (intra-warp communication via shuffles)
  // ------------------------------------------------------------------

  /// Butterfly max-reduction; charges sum_{i=1..5} active/2^i shuffles
  /// (31 for a full warp, per Section 5.2).
  template <class T>
  T reduce_max(const LaneArray<T>& x, u32 active = kWarpSize) {
    charge_reduction(active);
    T best = x[0];
    for (u32 l = 1; l < active; ++l)
      if (x[l] > best) best = x[l];
    return best;
  }

  template <class T>
  T reduce_min(const LaneArray<T>& x, u32 active = kWarpSize) {
    charge_reduction(active);
    T best = x[0];
    for (u32 l = 1; l < active; ++l)
      if (x[l] < best) best = x[l];
    return best;
  }

  template <class T>
  T reduce_add(const LaneArray<T>& x, u32 active = kWarpSize) {
    charge_reduction(active);
    T sum{};
    for (u32 l = 0; l < active; ++l) sum += x[l];
    return sum;
  }

  /// Max-reduction that also reports the winning lane (lowest lane wins
  /// ties, matching the deterministic behaviour of a shfl-based argmax).
  template <class T>
  std::pair<T, u32> reduce_max_index(const LaneArray<T>& x,
                                     u32 active = kWarpSize) {
    charge_reduction(active);
    T best = x[0];
    u32 lane = 0;
    for (u32 l = 1; l < active; ++l) {
      if (x[l] > best) {
        best = x[l];
        lane = l;
      }
    }
    return {best, lane};
  }

  /// Broadcast from src lane to all active lanes (shfl with a uniform
  /// source); one shuffle execution per receiving lane.
  template <class T>
  T broadcast(const LaneArray<T>& x, u32 src, u32 active = kWarpSize) {
    assert(src < kWarpSize);
    local_.shfl_ops += active;
    return x[src];
  }

  /// Warp vote: bit l of the result is pred[l] != 0 for active lanes.
  u32 ballot(const LaneArray<u8>& pred, u32 active = kWarpSize) {
    local_.vote_ops += 1;
    u32 mask = 0;
    for (u32 l = 0; l < active; ++l)
      if (pred[l]) mask |= (1u << l);
    return mask;
  }

  /// Exclusive prefix sum across lanes (Hillis-Steele via shfl_up):
  /// step d in {1,2,4,8,16} has (active - d) receiving lanes.
  template <class T>
  LaneArray<T> exclusive_scan_add(const LaneArray<T>& x,
                                  u32 active = kWarpSize) {
    for (u32 d = 1; d < active; d <<= 1) local_.shfl_ops += active - d;
    LaneArray<T> out{};
    T run{};
    for (u32 l = 0; l < active; ++l) {
      out[l] = run;
      run += x[l];
    }
    return out;
  }

 private:
  /// Closed-form accounting for a coalesced scan of `len` elements in
  /// `full` whole-warp chunks plus a `tail`-lane chunk: three counter adds
  /// total, none inside the scan loop.
  template <class T>
  void charge_scan(u64 len, u64 full, u32 tail) {
    local_.global_load_elems += len;
    local_.global_load_bytes += len * sizeof(T);
    local_.global_load_txns +=
        full * detail::coalesced_txns(u64{kWarpSize} * sizeof(T)) +
        (tail ? detail::coalesced_txns(static_cast<u64>(tail) * sizeof(T))
              : 0);
  }

  template <class T>
  void charge_coalesced_load(u32 active) {
    local_.global_load_elems += active;
    local_.global_load_bytes += static_cast<u64>(active) * sizeof(T);
    local_.global_load_txns +=
        detail::coalesced_txns(static_cast<u64>(active) * sizeof(T));
  }

  template <class T>
  void charge_coalesced_store(u32 active) {
    local_.global_store_elems += active;
    local_.global_store_bytes += static_cast<u64>(active) * sizeof(T);
    local_.global_store_txns +=
        detail::coalesced_txns(static_cast<u64>(active) * sizeof(T));
  }

  void charge_reduction(u32 active) {
    // Tree reduction: halve the active lanes each step.
    for (u32 w = active / 2; w >= 1; w /= 2) local_.shfl_ops += w;
    if (active == 1) return;  // no communication needed
  }

  KernelStats* sink_;       ///< the launch's per-worker stats
  KernelStats local_;       ///< warp-local accumulator, flushed once
  u32 global_id_;
  u32 grid_warps_;
};

}  // namespace drtopk::vgpu
