// Converts KernelStats into simulated GPU milliseconds.
//
// Roofline-style model: each hardware resource (DRAM bandwidth, shared-
// memory banks, shuffle issue slots, atomic throughput) has a peak rate from
// the GpuProfile; a kernel takes as long as its most-saturated resource,
// plus a fixed launch overhead. This is Equation 6 of the paper evaluated
// over *measured* counters instead of analytic counts. Absolute numbers are
// a model; shapes (who wins, where crossovers fall) are what the
// reproduction validates against the paper's figures.
//
// Memory traffic details:
//  * The DRAM system moves whole 32-byte sectors, so scattered accesses are
//    charged sector bytes even when the warp uses 4 of them.
//  * A store that does not fill its sector triggers a read-modify-write:
//    the fill read is charged on top (write-allocate). This is what makes
//    GGKS's in-place zeroing stores so expensive relative to the flag-based
//    design (Figure 12).
#pragma once

#include <algorithm>
#include <bit>

#include "vgpu/profile.hpp"
#include "vgpu/stats.hpp"

namespace drtopk::vgpu {

/// Compare-exchange count of a P-way merge network over m total elements
/// arriving as p_ways pre-sorted runs (a binary tree of pairwise bitonic
/// merges, the standard multiway merge-network construction). Tree level j
/// (j = 1..ceil(log2 P)) merges pairs of runs of combined length
/// (m/P)·2^j, and a bitonic merge of L elements costs (L/2)·log2(L)
/// exchanges; summing the levels gives
///
///   cx = (m/2) · [ lgP·lg(m/P) + lgP·(lgP+1)/2 ]
///
/// — strictly below the full bitonic *sort* charge (m/2)·lgm·(lgm+1)/2
/// whenever the input is already runs (P < m), which is exactly the
/// multi-CTA merge stage's situation: its input is a concatenation of
/// per-slice sorted prefixes. One run (P <= 1) needs no exchanges; runs
/// that are not a power of two round P up (the network pads with empty
/// runs, costing a partial extra level at most).
inline u64 merge_network_cx(u64 m, u64 p_ways) {
  if (m < 2 || p_ways <= 1) return 0;
  const u64 pw = std::bit_ceil(std::min(p_ways, m));
  const u64 mw = std::bit_ceil(m);
  const u64 lgp = static_cast<u64>(std::bit_width(pw) - 1);
  const u64 lgrun = static_cast<u64>(std::bit_width(mw / pw) - 1);
  return (m / 2) * (lgp * lgrun + lgp * (lgp + 1) / 2);
}

class CostModel {
 public:
  explicit CostModel(GpuProfile profile) : profile_(std::move(profile)) {}

  const GpuProfile& profile() const { return profile_; }

  /// DRAM time: sector-granular traffic plus write-allocate fills.
  double mem_ms(const KernelStats& s) const {
    const double load_bytes =
        std::max<double>(static_cast<double>(s.global_load_bytes),
                         static_cast<double>(s.global_load_txns) * kSectorBytes);
    const double store_sector_bytes =
        static_cast<double>(s.global_store_txns) * kSectorBytes;
    const double store_bytes =
        std::max<double>(static_cast<double>(s.global_store_bytes),
                         store_sector_bytes);
    const double write_allocate = std::max(
        0.0, store_sector_bytes - static_cast<double>(s.global_store_bytes));
    return (load_bytes + store_bytes + write_allocate) /
           (profile_.mem_bw_gbps * 1e9) * 1e3;
  }

  /// Shared-memory time: 4 bytes per access across num_sms x 32 banks,
  /// conflicts serialize as extra accesses.
  double shared_ms(const KernelStats& s) const {
    const double accesses = static_cast<double>(
        s.shared_loads + s.shared_stores + s.shared_bank_conflicts);
    return accesses * 4.0 / (profile_.shared_bw_gbps() * 1e9) * 1e3;
  }

  /// Shuffle/vote time: lane-ops through the SMs' issue slots.
  double shfl_ms(const KernelStats& s) const {
    const double lane_ops =
        static_cast<double>(s.shfl_ops) + static_cast<double>(s.vote_ops);
    return lane_ops / (profile_.shfl_glanes_per_sec()) * 1e3;
  }

  /// Global-atomic time.
  double atomic_ms(const KernelStats& s) const {
    return static_cast<double>(s.atomic_ops) /
           (profile_.atomic_gops * 1e9) * 1e3;
  }

  /// Simulated kernel time: slowest resource + launch overhead.
  double kernel_ms(const KernelStats& s) const {
    const double t = std::max({mem_ms(s), shared_ms(s), shfl_ms(s),
                               atomic_ms(s)});
    return t + static_cast<double>(s.kernels_launched) * kKernelLaunchMs;
  }

  /// Host<->device transfer time; used by the distributed reload model.
  double transfer_ms(u64 bytes) const {
    return static_cast<double>(bytes) / (profile_.pcie_gbps * 1e9) * 1e3;
  }

  /// Fixed kernel launch overhead (driver + scheduling), ~5 microseconds.
  static constexpr double kKernelLaunchMs = 0.005;

 private:
  GpuProfile profile_;
};

}  // namespace drtopk::vgpu
