// A small persistent thread pool used to execute CTAs in parallel.
// One pool per Device; parallel_for hands out contiguous chunks of the
// iteration space so neighbouring CTAs (which touch neighbouring memory)
// stay on the same worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::vgpu {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(u32 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 size() const { return static_cast<u32>(workers_.size()) + 1; }

  /// Runs fn(index, worker_id) for every index in [begin, end), blocking
  /// until all iterations finish. worker_id < size() and is stable for the
  /// duration of the call, so callers can keep per-worker accumulators
  /// without atomics. Exceptions from fn propagate to the caller.
  void parallel_for(u64 begin, u64 end,
                    const std::function<void(u64, u32)>& fn);

 private:
  struct Job {
    const std::function<void(u64, u32)>* fn = nullptr;
    std::atomic<u64> next{0};
    u64 end = 0;
    u64 chunk = 1;
    std::atomic<u32> remaining_workers{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_loop(u32 worker_id);
  static void run_job(Job& job, u32 worker_id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;  // guarded by mu_
  u64 job_seq_ = 0;     // guarded by mu_
  bool stop_ = false;   // guarded by mu_
};

}  // namespace drtopk::vgpu
