// A small persistent thread pool used to execute CTAs in parallel.
// One pool per Device; parallel_for hands out contiguous chunks of the
// iteration space so neighbouring CTAs (which touch neighbouring memory)
// stay on the same worker.
//
// parallel_for is safe to call from several threads at once: each call
// enqueues an independent job group, workers drain whichever groups are
// runnable (cooperatively stealing chunks via the group's atomic cursor),
// and each caller blocks only until its own group completes. This is what
// lets multiple serving executors drive kernels on one Device concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::vgpu {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(u32 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 size() const { return static_cast<u32>(workers_.size()) + 1; }

  /// Runs fn(index, worker_id) for every index in [begin, end), blocking
  /// until all iterations finish. worker_id < size() and is stable for the
  /// duration of the call, so callers can keep per-worker accumulators
  /// without atomics: the calling thread is worker 0 of its own job, pool
  /// workers are 1..size()-1. Concurrent callers get independent jobs that
  /// the workers interleave. Exceptions from fn propagate to the caller.
  void parallel_for(u64 begin, u64 end,
                    const std::function<void(u64, u32)>& fn);

 private:
  struct Job {
    const std::function<void(u64, u32)>* fn = nullptr;
    std::atomic<u64> next{0};
    u64 end = 0;
    u64 chunk = 1;
    u32 active_workers = 0;  // guarded by pool mu_
    std::exception_ptr error;
    std::mutex error_mu;

    bool exhausted() const {
      return next.load(std::memory_order_relaxed) >= end;
    }
  };

  void worker_loop(u32 worker_id);
  static void run_job(Job& job, u32 worker_id);
  Job* pick_runnable_locked();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers: new runnable job / stop
  std::condition_variable done_cv_;  // callers: a job finished draining
  std::deque<Job*> jobs_;  // active job groups, guarded by mu_
  bool stop_ = false;      // guarded by mu_
};

}  // namespace drtopk::vgpu
