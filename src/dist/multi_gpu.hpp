// Distributed Dr. Top-k across multiple simulated GPUs — Section 5.4.
//
// The input vector is cut into shards no larger than one device's memory;
// shards are assigned round-robin to GPUs (ranks of the message-passing
// substrate). Each GPU runs the full Dr. Top-k pipeline per resident shard,
// paying a PCIe reload for every shard beyond its first (Table 2's reload
// column), merges its local winners, and the per-GPU top-ks are reduced at
// the primary GPU:
//
//  * flat reduction — every rank gathers directly at rank 0 (#GPUs - 1
//    messages at the primary);
//  * hierarchical reduction — node leaders pre-merge their members' lists
//    so the primary receives #nodes - 1 messages, the scheme Section 5.4
//    anticipates "when Dr. Top-k scales to a large number of GPUs".
//
// The optional k-th exchange sharpens the gather: ranks allreduce-max their
// local k-th elements and ship only candidates >= that global threshold.
// Exactness: the global k-th element is >= the k-th of any rank (a superset
// k-th dominates a subset k-th), so the threshold never filters a true
// top-k member, and the rank attaining the max keeps all k of its elements,
// so at least k candidates always reach the primary.
#pragma once

#include "core/dr_topk.hpp"
#include "dist/topology.hpp"
#include "mpi/comm.hpp"

namespace drtopk::dist {

struct MultiGpuConfig {
  u32 num_gpus = 1;
  u64 device_capacity_elems = u64{1} << 21;  ///< per-GPU resident elements
  u32 host_threads_per_gpu = 2;  ///< host threads backing each virtual GPU
  vgpu::GpuProfile profile = vgpu::GpuProfile::v100s();
  mpi::CommCostModel comm;       ///< inter-GPU fabric model
  core::DrTopkConfig dr;         ///< per-shard pipeline configuration

  /// Section 5.4's optional filter-sharpening step: exchange local k-th
  /// elements (allreduce max) and gather only candidates >= the result.
  bool kth_exchange = false;

  /// Node-leader pre-merge before the primary reduction. A no-op while
  /// num_gpus <= gpus_per_node (everything is one node).
  bool hierarchical = false;
  u32 gpus_per_node = 4;
};

struct MultiGpuResult {
  std::vector<u32> keys;     ///< exact global top-k, sorted descending
  u32 shards_total = 0;      ///< number of capacity-sized shards
  u64 primary_messages = 0;  ///< messages received by rank 0 in the final
                             ///< reduction (flat: #GPUs-1, hier: #leaders-1)
  double compute_ms = 0.0;   ///< max over GPUs of summed pipeline time
  double reload_ms = 0.0;    ///< max over GPUs of PCIe shard reload time
  double comm_ms = 0.0;      ///< max over ranks of modeled message time
  double final_topk_ms = 0.0;  ///< primary's final reduction kernel time
  double total_ms = 0.0;
};

inline MultiGpuResult multi_gpu_topk(std::span<const u32> v, u64 k,
                                     const MultiGpuConfig& cfg) {
  const u64 n = v.size();
  assert(k >= 1 && k <= n);
  const u32 gpus = std::max(1u, cfg.num_gpus);
  const u64 cap = std::max<u64>(1, cfg.device_capacity_elems);
  const u32 shards =
      static_cast<u32>(std::max<u64>(gpus, (n + cap - 1) / cap));
  const u64 shard_len = (n + shards - 1) / shards;

  MultiGpuResult res;
  res.shards_total = shards;

  const bool hier =
      cfg.hierarchical && hierarchy_engages(gpus, cfg.gpus_per_node);
  constexpr int kLeaderTag = 2000;
  constexpr int kPrimaryTag = 2001;

  std::vector<double> compute(gpus, 0.0), reload(gpus, 0.0);

  auto stats = mpi::run(
      static_cast<int>(gpus),
      [&](mpi::Comm& c) {
        const u32 r = static_cast<u32>(c.rank());
        vgpu::Device dev(cfg.profile, cfg.host_threads_per_gpu);
        const vgpu::CostModel xfer(cfg.profile);

        // ---- Local phase: pipeline per resident shard (round-robin) ----
        std::vector<u32> local;
        u32 shards_done = 0;
        for (u32 s = r; s < shards; s += gpus) {
          const u64 lo = static_cast<u64>(s) * shard_len;
          if (lo >= n) break;
          const u64 len = std::min(shard_len, n - lo);
          const u64 kk = std::min<u64>(k, len);
          auto sr = core::dr_topk_keys<u32>(dev, v.subspan(lo, len), kk,
                                            cfg.dr);
          compute[r] += sr.sim_ms;
          // The first shard is resident; every further one is reloaded over
          // PCIe (the paper's Table 2 reload overhead).
          if (shards_done > 0)
            reload[r] += xfer.transfer_ms(len * sizeof(u32));
          ++shards_done;
          local.insert(local.end(), sr.keys.begin(), sr.keys.end());
        }
        std::vector<u32> mine = topk::reference_topk(
            std::span<const u32>(local.data(), local.size()),
            std::min<u64>(k, local.size()));

        // ---- Optional k-th exchange (Section 5.4 sharpening) ----
        if (cfg.kth_exchange) {
          // Ranks holding fewer than k elements cannot bound the global
          // k-th; they contribute 0 (never raises the max above a bound).
          const u64 local_kth =
              mine.size() == k ? static_cast<u64>(mine.back()) : 0;
          const u64 kappa = c.allreduce_max(local_kth);
          std::erase_if(mine, [&](u32 x) {
            return static_cast<u64>(x) < kappa;
          });
        }

        // ---- Reduction to the primary ----
        std::vector<u32> pool;
        auto append = [&](const std::vector<u32>& xs) {
          pool.insert(pool.end(), xs.begin(), xs.end());
        };
        if (!hier) {
          auto all = c.gather<u32>(
              std::span<const u32>(mine.data(), mine.size()), 0);
          if (r == 0) {
            for (auto& xs : all) append(xs);
            res.primary_messages = gpus - 1;
          }
        } else {
          const u32 gpn = cfg.gpus_per_node;
          const u32 leader = group_leader(r, gpn);
          if (r != leader) {
            c.send<u32>(static_cast<int>(leader), kLeaderTag,
                        std::span<const u32>(mine.data(), mine.size()));
          } else {
            append(mine);
            for (u32 m = leader + 1; m < group_end(leader, gpn, gpus); ++m)
              append(c.recv<u32>(static_cast<int>(m), kLeaderTag));
            auto merged = topk::reference_topk(
                std::span<const u32>(pool.data(), pool.size()),
                std::min<u64>(k, pool.size()));
            if (r != 0) {
              c.send<u32>(0, kPrimaryTag,
                          std::span<const u32>(merged.data(), merged.size()));
            } else {
              pool = std::move(merged);
              u64 msgs = 0;
              for (u32 l = gpn; l < gpus; l += gpn, ++msgs)
                append(c.recv<u32>(static_cast<int>(l), kPrimaryTag));
              assert(msgs == primary_messages(gpus, gpn, true) &&
                     "reduction fan-in must match the topology helpers");
              res.primary_messages = msgs;
            }
          }
        }

        // ---- Final top-k at the primary (a device kernel: the gathered
        // candidate set is small but the reduction still runs on-GPU) ----
        if (r == 0) {
          auto fr = topk::run_topk_keys<u32>(
              dev, std::span<const u32>(pool.data(), pool.size()), k,
              topk::Algo::kRadixFlag);
          res.final_topk_ms = fr.sim_ms;
          res.keys = std::move(fr.keys);
        }
      },
      cfg.comm);

  for (u32 g = 0; g < gpus; ++g) {
    res.compute_ms = std::max(res.compute_ms, compute[g]);
    res.reload_ms = std::max(res.reload_ms, reload[g]);
  }
  for (const auto& s : stats)
    res.comm_ms = std::max(res.comm_ms, s.modeled_ms);
  res.total_ms =
      res.compute_ms + res.reload_ms + res.comm_ms + res.final_topk_ms;
  return res;
}

}  // namespace drtopk::dist
