// Reduction-topology helpers shared by the distributed pipeline and the
// sharded serving engine.
//
// Both `dist::multi_gpu_topk` (Section 5.4's multi-GPU reduction) and
// `serve::ShardedTopkServer` (cross-shard merge) reduce per-participant
// winner lists at a primary, optionally through a node-leader pre-merge:
// participants are packed `group_size` per node, the first rank of each
// node merges its members' lists, and only leaders talk to the primary.
// Keeping the rank arithmetic here — instead of inlined at each call
// site — guarantees the two reductions can never disagree about who
// leads whom, and lets tests assert the topology in one place.
#pragma once

#include <algorithm>

#include "vgpu/types.hpp"

namespace drtopk::dist {

/// The leader of `rank`'s group: ranks are packed `group_size` per group
/// and the group's first rank pre-merges its members' winner lists.
/// group_size == 0 degenerates to one global group led by rank 0.
inline u32 group_leader(u32 rank, u32 group_size) {
  return group_size == 0 ? 0u : (rank / group_size) * group_size;
}

/// True when `rank` pre-merges for its group.
inline bool is_group_leader(u32 rank, u32 group_size) {
  return group_leader(rank, group_size) == rank;
}

/// One past the last member rank of the group led by `leader` (clamped to
/// the participant count — the last group may be ragged).
inline u32 group_end(u32 leader, u32 group_size, u32 count) {
  if (group_size == 0) return count;
  return std::min(leader + group_size, count);
}

/// Number of leader groups over `count` participants (the primary's fan-in
/// under a hierarchical reduction).
inline u32 group_count(u32 count, u32 group_size) {
  if (count == 0) return 0;
  if (group_size == 0) return 1;
  return (count + group_size - 1) / group_size;
}

/// The pre-merge only pays for itself past one group: with
/// count <= group_size the "pre-merge" would BE the whole reduction.
inline bool hierarchy_engages(u32 count, u32 group_size) {
  return group_size > 0 && count > group_size;
}

/// Messages the primary receives in the final reduction: #participants - 1
/// flat, #groups - 1 once the hierarchy engages. This is the quantity the
/// topology tests pin (`MultiGpuResult::primary_messages`).
inline u64 primary_messages(u32 count, u32 group_size, bool hierarchical) {
  if (count == 0) return 0;
  if (hierarchical && hierarchy_engages(count, group_size))
    return group_count(count, group_size) - 1;
  return count - 1;
}

}  // namespace drtopk::dist
