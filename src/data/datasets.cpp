#include "data/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "data/rng.hpp"
#include "vgpu/thread_pool.hpp"

namespace drtopk::data {

namespace {

vgpu::ThreadPool& gen_pool() {
  static vgpu::ThreadPool pool;
  return pool;
}

template <class T, class F>
vgpu::device_vector<T> parallel_generate(u64 n, F&& fn) {
  vgpu::device_vector<T> out(n);
  const u64 block = 1ull << 14;
  const u64 blocks = (n + block - 1) / block;
  gen_pool().parallel_for(0, blocks, [&](u64 b, u32) {
    const u64 lo = b * block;
    const u64 hi = std::min(n, lo + block);
    for (u64 i = lo; i < hi; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace

std::vector<DatasetInfo> dataset_table() {
  return {
      {"AN", "ANN_SIFT1B (synthetic)", 536'870'912ull,
       "k-Nearest Neighbor", Criterion::kSmallest},
      {"CW", "ClueWeb09 (synthetic)", 1'073'741'824ull,
       "Sparse Networks", Criterion::kLargest},
      {"TR", "TwitterCOVID-19 (synthetic)", 1'073'741'824ull,
       "Social Networks", Criterion::kSmallest},
  };
}

vgpu::device_vector<f32> ann_distances(u64 n, u32 dim, u64 seed) {
  // Query point: random but fixed by the seed (the paper uses the dataset's
  // first vector as the query).
  std::vector<f32> query(dim);
  for (u32 d = 0; d < dim; ++d)
    query[d] = static_cast<f32>(rand_unit(seed ^ 0xABCDEF, d));

  return parallel_generate<f32>(n, [&, seed, dim](u64 i) {
    f64 acc = 0.0;
    for (u32 d = 0; d < dim; ++d) {
      const f64 x = rand_unit(seed, i * dim + d);
      const f64 diff = x - query[d];
      acc += diff * diff;
    }
    return static_cast<f32>(std::sqrt(acc));
  });
}

vgpu::device_vector<u32> clueweb_degrees(u64 n, u64 seed, f64 alpha,
                                         u32 max_degree) {
  // Inverse-CDF Pareto sampling: deg = floor(u^(-1/(alpha-1))), clipped.
  const f64 exponent = -1.0 / (alpha - 1.0);
  return parallel_generate<u32>(n, [=](u64 i) {
    const f64 u = std::max(rand_unit(seed, i), 0x1.0p-60);
    const f64 deg = std::pow(u, exponent);
    return static_cast<u32>(
        std::clamp(deg, 1.0, static_cast<f64>(max_degree)));
  });
}

vgpu::device_vector<f32> twitter_covid_scores(u64 n, u64 seed,
                                              f64 unique_fraction) {
  const u64 uniques = std::max<u64>(
      1, static_cast<u64>(static_cast<f64>(n) * unique_fraction));
  // Fear scores skew low (most tweets mildly fearful): score = u^2 gives a
  // density concentrated near 0 with a thin tail toward 1.
  return parallel_generate<f32>(n, [=](u64 i) {
    const u64 base = i % uniques;  // tiling duplicates the unique pool
    const f64 u = rand_unit(seed, base);
    return static_cast<f32>(u * u);
  });
}

}  // namespace drtopk::data
