// Order-preserving key transforms.
//
// Every top-k engine in this library operates internally on unsigned integer
// keys ordered "largest wins" — exactly what radix/bucket machinery wants.
// KeyTraits maps user value types (unsigned ints, signed ints, floats) to
// such keys bijectively and back; Criterion selects largest-k vs smallest-k
// by complementing the key, so e.g. the k-nearest-neighbor example (smallest
// distances, Table 1 of the paper) reuses the same engines unchanged.
#pragma once

#include <bit>
#include <cstring>

#include "vgpu/types.hpp"

namespace drtopk::data {

enum class Criterion {
  kLargest,   ///< top-k largest (the paper's default)
  kSmallest,  ///< top-k smallest (k-NN distances, least-fearful tweets)
};

template <class T>
struct KeyTraits;

template <>
struct KeyTraits<u32> {
  using Key = u32;
  static Key to_key(u32 v) { return v; }
  static u32 from_key(Key k) { return k; }
};

template <>
struct KeyTraits<u64> {
  using Key = u64;
  static Key to_key(u64 v) { return v; }
  static u64 from_key(Key k) { return k; }
};

template <>
struct KeyTraits<i32> {
  using Key = u32;
  static Key to_key(i32 v) {
    return static_cast<u32>(v) ^ 0x8000'0000u;  // flip sign bit
  }
  static i32 from_key(Key k) { return static_cast<i32>(k ^ 0x8000'0000u); }
};

template <>
struct KeyTraits<i64> {
  using Key = u64;
  static Key to_key(i64 v) {
    return static_cast<u64>(v) ^ 0x8000'0000'0000'0000ull;
  }
  static i64 from_key(Key k) {
    return static_cast<i64>(k ^ 0x8000'0000'0000'0000ull);
  }
};

template <>
struct KeyTraits<f32> {
  using Key = u32;
  // The classic monotone float map: flip all bits of negatives, flip only
  // the sign bit of non-negatives. Total order matches IEEE-754 ordering
  // (with -0 < +0; NaNs sort above +inf and are the caller's problem).
  static Key to_key(f32 v) {
    u32 bits = std::bit_cast<u32>(v);
    return (bits & 0x8000'0000u) ? ~bits : bits | 0x8000'0000u;
  }
  static f32 from_key(Key k) {
    u32 bits = (k & 0x8000'0000u) ? k & 0x7FFF'FFFFu : ~k;
    return std::bit_cast<f32>(bits);
  }
};

template <>
struct KeyTraits<f64> {
  using Key = u64;
  static Key to_key(f64 v) {
    u64 bits = std::bit_cast<u64>(v);
    return (bits & 0x8000'0000'0000'0000ull) ? ~bits
                                             : bits | 0x8000'0000'0000'0000ull;
  }
  static f64 from_key(Key k) {
    u64 bits = (k & 0x8000'0000'0000'0000ull) ? k & 0x7FFF'FFFF'FFFF'FFFFull
                                              : ~k;
    return std::bit_cast<f64>(bits);
  }
};

/// Key for value v under criterion c: complementing the key reverses the
/// order, so "smallest" becomes "largest" on complemented keys.
template <class T>
typename KeyTraits<T>::Key directed_key(T v, Criterion c) {
  auto k = KeyTraits<T>::to_key(v);
  return c == Criterion::kLargest ? k : ~k;
}

template <class T>
T value_from_directed_key(typename KeyTraits<T>::Key k, Criterion c) {
  return KeyTraits<T>::from_key(c == Criterion::kLargest ? k : ~k);
}

}  // namespace drtopk::data
