// Synthetic input-vector distributions from Section 6 of the paper.
//
//  * UD — uniform over [0, 2^32-1].
//  * ND — normal(mean 1e8, stddev 10) rounded to unsigned ints; the tiny
//         stddev concentrates a billion elements on ~100 distinct values,
//         the tie-heavy regime that destabilizes bucket/radix top-k.
//  * CD — a distribution constructed so that, at every bucket-top-k
//         iteration, the bucket containing the k-th element keeps the vast
//         majority of elements while every other bucket still holds at
//         least one (so no iteration can terminate early). This is the
//         adversarial case of Figure 4.
#pragma once

#include <span>
#include <string>

#include "data/rng.hpp"
#include "vgpu/device.hpp"
#include "vgpu/types.hpp"

namespace drtopk::data {

enum class Distribution { kUniform, kNormal, kCustomized };

/// Short names used throughout the paper's figures: UD / ND / CD.
std::string to_string(Distribution d);

/// Number of per-level decoy values the CD generator plants (one per
/// non-target bucket per level; see generate_cd).
inline constexpr u32 kCdLevels = 3;
inline constexpr u32 kCdBuckets = 256;
inline constexpr u64 kCdDecoys = static_cast<u64>(kCdLevels) * (kCdBuckets - 1);

/// Fills `out` with n = out.size() values of the given distribution,
/// deterministically from `seed`, in parallel.
void fill_uniform(std::span<u32> out, u64 seed);
void fill_normal(std::span<u32> out, u64 seed, f64 mean = 1e8,
                 f64 stddev = 10.0);
void fill_customized(std::span<u32> out, u64 seed);
void fill(std::span<u32> out, Distribution d, u64 seed);

/// Convenience allocating wrappers.
vgpu::device_vector<u32> generate(u64 n, Distribution d, u64 seed);

}  // namespace drtopk::data
