// Counter-based deterministic random number generation.
//
// Generation is a pure function of (seed, index): any element of any dataset
// can be produced independently and in parallel, and every run of every
// bench/test sees identical data. This replaces the paper's one-off dataset
// files with reproducible generators.
#pragma once

#include <cmath>
#include <numbers>

#include "vgpu/types.hpp"

namespace drtopk::data {

/// SplitMix64 finalizer — a high-quality 64-bit mix.
inline u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform u64 for stream position `index` of stream `seed`.
inline u64 rand_u64(u64 seed, u64 index) {
  return splitmix64(splitmix64(seed) ^ splitmix64(index * 0xD6E8FEB86659FD93ull + 1));
}

inline u32 rand_u32(u64 seed, u64 index) {
  return static_cast<u32>(rand_u64(seed, index) >> 32);
}

/// Uniform double in [0, 1).
inline f64 rand_unit(u64 seed, u64 index) {
  return static_cast<f64>(rand_u64(seed, index) >> 11) * 0x1.0p-53;
}

/// Standard normal via Box-Muller (one value per index; the second
/// Box-Muller output is derived from a sub-stream so indices stay
/// independent).
inline f64 rand_normal(u64 seed, u64 index) {
  // Avoid log(0) by nudging u1 away from zero.
  const f64 u1 = std::max(rand_unit(seed ^ 0xA5A5A5A5A5A5A5A5ull, index),
                          0x1.0p-60);
  const f64 u2 = rand_unit(seed ^ 0x5A5A5A5A5A5A5A5Aull, index);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace drtopk::data
