#include "data/distributions.hpp"

#include <algorithm>
#include <cassert>

#include "vgpu/thread_pool.hpp"

namespace drtopk::data {

namespace {

/// Pool shared by all data generators (generation is host-side work, not
/// simulated-GPU work, so it does not go through a Device).
vgpu::ThreadPool& gen_pool() {
  static vgpu::ThreadPool pool;
  return pool;
}

/// Parallel elementwise fill: out[i] = fn(i).
template <class F>
void parallel_fill(std::span<u32> out, F&& fn) {
  const u64 n = out.size();
  const u64 block = 1ull << 16;
  const u64 blocks = (n + block - 1) / block;
  gen_pool().parallel_for(0, blocks, [&](u64 b, u32) {
    const u64 lo = b * block;
    const u64 hi = std::min(n, lo + block);
    for (u64 i = lo; i < hi; ++i) out[i] = fn(i);
  });
}

}  // namespace

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "UD";
    case Distribution::kNormal: return "ND";
    case Distribution::kCustomized: return "CD";
  }
  return "?";
}

void fill_uniform(std::span<u32> out, u64 seed) {
  parallel_fill(out, [seed](u64 i) { return rand_u32(seed, i); });
}

void fill_normal(std::span<u32> out, u64 seed, f64 mean, f64 stddev) {
  parallel_fill(out, [=](u64 i) {
    const f64 v = mean + stddev * rand_normal(seed, i);
    return static_cast<u32>(std::clamp(v, 0.0, 4294967295.0));
  });
}

void fill_customized(std::span<u32> out, u64 seed) {
  const u64 n = out.size();
  assert(n > kCdDecoys && "CD needs room for its decoy elements");

  // The target bucket at every level is the top one (index 255), so the
  // k-th element always lives on the all-0xFF prefix path. Each level
  // contributes one decoy per non-target bucket; everything else collapses
  // into the final 8-bit-wide cluster at the top of the value range.
  //
  // Level l refines the range [hi - 2^(32-8l), hi]; bucket b at level l is
  // prefix | b << (32 - 8(l+1)).
  parallel_fill(out, [seed, n](u64 i) -> u32 {
    if (i < kCdDecoys) {
      const u32 level = static_cast<u32>(i / (kCdBuckets - 1));
      const u32 bucket = static_cast<u32>(i % (kCdBuckets - 1));  // 0..254
      const u32 shift = 32 - 8 * (level + 1);
      // Prefix of `level` 0xFF bytes, then the (non-top) bucket byte, then
      // random low bits inside that bucket.
      u32 prefix = level == 0 ? 0u : ~0u << (32 - 8 * level);
      u32 low = shift == 0 ? 0u : (rand_u32(seed ^ 0xCD, i) >> (32 - shift));
      return prefix | (bucket << shift) | low;
    }
    // Cluster: top bucket at every level → top 24 bits all ones; jitter the
    // final byte so the cluster is not a single value.
    return 0xFFFFFF00u | (rand_u32(seed ^ 0xC1, i) & 0xFFu);
  });
}

void fill(std::span<u32> out, Distribution d, u64 seed) {
  switch (d) {
    case Distribution::kUniform: fill_uniform(out, seed); return;
    case Distribution::kNormal: fill_normal(out, seed); return;
    case Distribution::kCustomized: fill_customized(out, seed); return;
  }
}

vgpu::device_vector<u32> generate(u64 n, Distribution d, u64 seed) {
  vgpu::device_vector<u32> v(n);
  fill(std::span<u32>(v.data(), v.size()), d, seed);
  return v;
}

}  // namespace drtopk::data
