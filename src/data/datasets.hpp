// Synthetic equivalents of the paper's three real-world datasets (Table 1).
//
// The originals (ANN_SIFT1B, ClueWeb09, TwitterCOVID-19) are multi-GB
// downloads; what top-k actually consumes from each is a value vector with a
// characteristic distribution. These generators reproduce those
// distributions deterministically and at any scale:
//
//  * AN — k-nearest-neighbor: Euclidean distances from a query vector to n
//         random 128-dimensional points (the paper computes distances from
//         the first SIFT vector to the other 1B). Criterion: smallest.
//  * CW — web-graph degree centrality: a Zipf/power-law degree sequence
//         like ClueWeb09's. Criterion: largest.
//  * TR — COVID-fear tweet scores: a small pool of unique scores tiled to
//         full size (the paper duplicates 132M tweets onto a 1B vector,
//         preserving the distribution). Criterion: smallest (k least
//         fearful tweets).
#pragma once

#include <string>
#include <vector>

#include "data/key_traits.hpp"
#include "vgpu/device.hpp"
#include "vgpu/types.hpp"

namespace drtopk::data {

struct DatasetInfo {
  std::string abbr;
  std::string name;
  u64 paper_size;  ///< |V| used in the paper (Table 1)
  std::string domain;
  Criterion criterion;
};

/// Table 1 of the paper.
std::vector<DatasetInfo> dataset_table();

/// AN: L2 distances from the query point to n random points in [0,1)^dim.
/// The distances concentrate around sqrt(dim/6) with a smooth unimodal
/// spread — the same regime as real SIFT descriptor distances.
vgpu::device_vector<f32> ann_distances(u64 n, u32 dim = 128, u64 seed = 1);

/// CW: power-law degrees deg ~ Pareto(alpha) clipped to [1, max_degree],
/// matching a web crawl's degree distribution (ClueWeb09: 4.78B pages,
/// 7.94B links → mean degree ~1.7, heavy tail).
vgpu::device_vector<u32> clueweb_degrees(u64 n, u64 seed = 2,
                                         f64 alpha = 2.1,
                                         u32 max_degree = 10'000'000);

/// TR: fear scores in [0,1]; `unique_fraction` of n distinct scores tiled
/// over the whole vector (paper: 132M unique over 1B total ≈ 0.123).
vgpu::device_vector<f32> twitter_covid_scores(u64 n, u64 seed = 3,
                                              f64 unique_fraction = 0.123);

}  // namespace drtopk::data
