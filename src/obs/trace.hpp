// Per-query tracing: spans covering the full life of a served query —
// enqueue, queue wait, group formation, dedup subscription, phase-A
// (shared delegate construction), deferred park, window park, batched
// finalize, fan-out — recorded into lock-cheap per-lane ring buffers and
// exportable as Chrome `trace_event` JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Each executor owns one lane (one extra lane serves the submit path), so
// the per-lane mutex is effectively uncontended; a record is a clock read
// plus a ring store. Rings are pre-reserved at construction — steady-state
// tracing allocates nothing, which the CI allocation gate relies on. When
// a ring wraps, the oldest spans are overwritten and counted as dropped.
#pragma once

#include <chrono>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::obs {

/// One trace event. `name` must point at a string with static storage
/// duration (span names are a fixed taxonomy, see docs/OBSERVABILITY.md).
/// A span with `instant == true` is a point event (`dur_us` ignored).
struct Span {
  const char* name = "";
  u64 query = 0;   ///< query id (0 when the span is not query-scoped)
  u64 group = 0;   ///< admission-group sequence number (0 when n/a)
  u64 ts_us = 0;   ///< start, microseconds since tracer epoch
  u64 dur_us = 0;  ///< duration in microseconds (complete spans only)
  bool instant = false;
};

/// Ring-buffered trace recorder. Disabled tracers make every record call a
/// single branch; enabled tracers write into per-lane rings sized at
/// construction. Lane 0 is reserved for the submit/admission path; lane
/// `1 + executor_id` belongs to that executor.
class Tracer {
 public:
  /// `lanes` = executor count + 1 (submit lane). `capacity` is spans per
  /// lane; 0 capacity or 0 lanes leaves the tracer disabled.
  Tracer(bool enabled, u32 lanes, u64 capacity_per_lane)
      : enabled_(enabled && lanes > 0 && capacity_per_lane > 0),
        capacity_(capacity_per_lane),
        epoch_(std::chrono::steady_clock::now()) {
    if (!enabled_) return;
    for (u32 i = 0; i < lanes; ++i) {
      lanes_.emplace_back();
      lanes_.back().ring.reserve(capacity_);
    }
  }

  bool enabled() const { return enabled_; }
  u32 lane_count() const { return static_cast<u32>(lanes_.size()); }

  /// Microseconds since tracer construction (the trace timebase).
  u64 now_us() const {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - epoch_)
                                .count());
  }

  /// Records a complete span [start_us, end_us) on `lane`.
  void complete(u32 lane, const char* name, u64 query, u64 group, u64 start_us,
                u64 end_us) {
    if (!enabled_) return;
    Span s;
    s.name = name;
    s.query = query;
    s.group = group;
    s.ts_us = start_us;
    s.dur_us = end_us >= start_us ? end_us - start_us : 0;
    push(lane, s);
  }

  /// Records an instant (point) event on `lane` stamped with now().
  void instant(u32 lane, const char* name, u64 query, u64 group) {
    if (!enabled_) return;
    Span s;
    s.name = name;
    s.query = query;
    s.group = group;
    s.ts_us = now_us();
    s.instant = true;
    push(lane, s);
  }

  /// Spans recorded so far, in (lane, recording) order with each lane's
  /// ring unrolled oldest-first. Safe to call while recording continues.
  std::vector<std::pair<u32, Span>> snapshot() const {
    std::vector<std::pair<u32, Span>> out;
    for (u32 li = 0; li < lanes_.size(); ++li) {
      const Lane& lane = lanes_[li];
      std::lock_guard lk(lane.mu);
      const u64 n = lane.ring.size();
      // When the ring wrapped, `head` points at the oldest entry.
      const u64 start = n < capacity_ ? 0 : lane.head;
      for (u64 i = 0; i < n; ++i)
        out.emplace_back(li, lane.ring[(start + i) % n]);
    }
    return out;
  }

  /// Total spans overwritten by ring wrap-around across all lanes.
  u64 dropped() const {
    u64 d = 0;
    for (const Lane& lane : lanes_) {
      std::lock_guard lk(lane.mu);
      d += lane.dropped;
    }
    return d;
  }

  /// Writes this tracer's lanes as Chrome `trace_event` events (no JSON
  /// envelope) under `pid`, prefixed with thread_name metadata. `lead`
  /// suppresses the comma before the first event; returns false when at
  /// least one event was written (i.e. the next writer must lead with a
  /// comma). Building block for export_chrome / export_chrome_multi.
  bool export_chrome_events(std::ostream& os, u32 pid, bool lead) const {
    auto sep = [&]() {
      if (!lead) os << ",";
      lead = false;
    };
    for (u32 li = 0; li < lanes_.size(); ++li) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << li << ",\"args\":{\"name\":\""
         << (li == 0 ? "submit" : "executor-" + std::to_string(li - 1))
         << "\"}}";
    }
    for (const auto& [lane, s] : snapshot()) {
      sep();
      os << "{\"name\":\"" << s.name << "\",\"cat\":\"serve\",\"ph\":\""
         << (s.instant ? "i" : "X") << "\",\"ts\":" << s.ts_us;
      if (!s.instant) os << ",\"dur\":" << s.dur_us;
      os << ",\"pid\":" << pid << ",\"tid\":" << lane;
      if (s.instant) os << ",\"s\":\"t\"";
      os << ",\"args\":{\"query\":" << s.query << ",\"group\":" << s.group
         << "}}";
    }
    return lead;
  }

  /// Writes the whole trace as Chrome `trace_event` JSON. `pid` is fixed;
  /// `tid` is the lane (0 = submit path, 1 + e = executor e). Complete
  /// spans become "ph":"X" events, instants "ph":"i" with thread scope.
  void export_chrome(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    export_chrome_events(os, 1, /*lead=*/true);
    os << "]}\n";
  }

  /// export_chrome() to a file; returns false when the file can't open.
  bool export_chrome_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    export_chrome(f);
    return true;
  }

 private:
  struct Lane {
    mutable std::mutex mu;
    std::vector<Span> ring;  ///< reserve()d once; grows to capacity, no more
    u64 head = 0;            ///< next write slot once the ring is full
    u64 dropped = 0;
  };

  void push(u32 lane_idx, const Span& s) {
    if (lane_idx >= lanes_.size()) lane_idx = 0;
    Lane& lane = lanes_[lane_idx];
    std::lock_guard lk(lane.mu);
    if (lane.ring.size() < capacity_) {
      lane.ring.push_back(s);
    } else {
      lane.ring[lane.head] = s;
      lane.head = (lane.head + 1) % capacity_;
      ++lane.dropped;
    }
  }

  bool enabled_;
  u64 capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::deque<Lane> lanes_;  ///< deque: Lane holds a mutex, addresses stable
};

/// Merges several tracers into ONE Chrome trace: each (label, tracer) pair
/// becomes its own process (pid = index + 1, named via process_name
/// metadata) with its lanes as that process's threads. This is how a
/// sharded server exports a unified timeline — one process row per shard,
/// executors nested under it — without the tracers ever sharing state.
inline void export_chrome_multi(
    std::ostream& os,
    const std::vector<std::pair<std::string, const Tracer*>>& tracers) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool lead = true;
  for (u32 i = 0; i < tracers.size(); ++i) {
    const u32 pid = i + 1;
    if (!lead) os << ",";
    lead = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << tracers[i].first << "\"}}";
    if (tracers[i].second)
      tracers[i].second->export_chrome_events(os, pid, /*lead=*/false);
  }
  os << "]}\n";
}

}  // namespace drtopk::obs
