// Snapshot exporters for the metrics registry (Prometheus text format and
// JSON) plus the paper-style per-stage kernel breakdown table.
//
// Prometheus output follows the text exposition format: `# HELP`/`# TYPE`
// headers, histograms as cumulative `_bucket{le="..."}` series ending in
// `+Inf`, plus `_sum` and `_count`. JSON output mirrors the same data for
// programmatic consumers (bench reports, the future network front door).
#pragma once

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "vgpu/device.hpp"

namespace drtopk::obs {

/// Renders the registry in Prometheus text exposition format.
inline std::string to_prometheus(const Registry& reg) {
  std::ostringstream os;
  for (const Registry::Entry* e : reg.entries()) {
    if (!e->help.empty())
      os << "# HELP " << e->name << " " << e->help << "\n";
    switch (e->kind) {
      case Registry::Kind::kCounter:
        os << "# TYPE " << e->name << " counter\n";
        os << e->name << " " << e->c->value() << "\n";
        break;
      case Registry::Kind::kGauge:
        os << "# TYPE " << e->name << " gauge\n";
        os << e->name << " " << e->g->value() << "\n";
        break;
      case Registry::Kind::kHistogram: {
        os << "# TYPE " << e->name << " histogram\n";
        for (const auto& [le, cum] : e->h->cumulative_buckets())
          os << e->name << "_bucket{le=\"" << le << "\"} " << cum << "\n";
        os << e->name << "_bucket{le=\"+Inf\"} " << e->h->count() << "\n";
        os << e->name << "_sum " << e->h->sum() << "\n";
        os << e->name << "_count " << e->h->count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

/// Renders the registry as a JSON object keyed by metric name. Counters
/// and gauges map to numbers; histograms to
/// {"count", "sum", "p50", "p90", "p99", "buckets": [[le, cumulative], ...]}.
inline std::string to_json(const Registry& reg) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Registry::Entry* e : reg.entries()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << e->name << "\":";
    switch (e->kind) {
      case Registry::Kind::kCounter: os << e->c->value(); break;
      case Registry::Kind::kGauge: os << e->g->value(); break;
      case Registry::Kind::kHistogram: {
        os << "{\"count\":" << e->h->count() << ",\"sum\":" << e->h->sum()
           << ",\"p50\":" << e->h->percentile(0.50)
           << ",\"p90\":" << e->h->percentile(0.90)
           << ",\"p99\":" << e->h->percentile(0.99) << ",\"buckets\":[";
        bool bfirst = true;
        for (const auto& [le, cum] : e->h->cumulative_buckets()) {
          if (!bfirst) os << ",";
          bfirst = false;
          os << "[" << le << "," << cum << "]";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

/// Formats the per-stage kernel breakdown as an aligned text table —
/// launches, CTAs, sector transactions (the paper's Table 3 unit), element
/// accesses (Eq. 2-5), shuffles (Eq. 2), atomics (Section 4.2) and
/// simulated milliseconds per stage, with a totals row.
inline std::string stage_table(const std::vector<vgpu::StageStats>& stages) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "stage" << std::right << std::setw(10)
     << "launches" << std::setw(10) << "ctas" << std::setw(14) << "sectors"
     << std::setw(14) << "elems" << std::setw(12) << "shfl" << std::setw(12)
     << "atomics" << std::setw(12) << "sim_ms" << "\n";
  vgpu::KernelStats sum;
  double sum_ms = 0.0;
  for (const vgpu::StageStats& st : stages) {
    os << std::left << std::setw(14) << st.stage << std::right << std::setw(10)
       << st.stats.kernels_launched << std::setw(10) << st.stats.ctas_run
       << std::setw(14) << st.stats.global_txns() << std::setw(14)
       << st.stats.global_elems() << std::setw(12) << st.stats.shfl_ops
       << std::setw(12) << st.stats.atomic_ops << std::setw(12) << std::fixed
       << std::setprecision(3) << st.sim_ms << "\n";
    sum += st.stats;
    sum_ms += st.sim_ms;
  }
  os << std::left << std::setw(14) << "total" << std::right << std::setw(10)
     << sum.kernels_launched << std::setw(10) << sum.ctas_run << std::setw(14)
     << sum.global_txns() << std::setw(14) << sum.global_elems()
     << std::setw(12) << sum.shfl_ops << std::setw(12) << sum.atomic_ops
     << std::setw(12) << std::fixed << std::setprecision(3) << sum_ms << "\n";
  return os.str();
}

}  // namespace drtopk::obs
