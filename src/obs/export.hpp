// Snapshot exporters for the metrics registry (Prometheus text format and
// JSON) plus the paper-style per-stage kernel breakdown table.
//
// Prometheus output follows the text exposition format: `# HELP`/`# TYPE`
// headers, histograms as cumulative `_bucket{le="..."}` series ending in
// `+Inf`, plus `_sum` and `_count`. JSON output mirrors the same data for
// programmatic consumers (bench reports, the future network front door).
#pragma once

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "vgpu/device.hpp"

namespace drtopk::obs {

/// Renders the registry in Prometheus text exposition format. `labels` is
/// an optional pre-rendered label set (e.g. `shard="2"`) attached to every
/// series — sharded servers export one registry per shard under a `shard`
/// label so series from different shards never collide.
inline std::string to_prometheus(const Registry& reg,
                                 const std::string& labels = {}) {
  std::ostringstream os;
  // `name{labels}` for plain series; histogram buckets splice `le` into the
  // same brace set (`name_bucket{shard="2",le="10"}`).
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  const std::string le_open = labels.empty() ? "{" : "{" + labels + ",";
  for (const Registry::Entry* e : reg.entries()) {
    if (!e->help.empty())
      os << "# HELP " << e->name << " " << e->help << "\n";
    switch (e->kind) {
      case Registry::Kind::kCounter:
        os << "# TYPE " << e->name << " counter\n";
        os << e->name << plain << " " << e->c->value() << "\n";
        break;
      case Registry::Kind::kGauge:
        os << "# TYPE " << e->name << " gauge\n";
        os << e->name << plain << " " << e->g->value() << "\n";
        break;
      case Registry::Kind::kHistogram: {
        os << "# TYPE " << e->name << " histogram\n";
        for (const auto& [le, cum] : e->h->cumulative_buckets())
          os << e->name << "_bucket" << le_open << "le=\"" << le << "\"} "
             << cum << "\n";
        os << e->name << "_bucket" << le_open << "le=\"+Inf\"} "
           << e->h->count() << "\n";
        os << e->name << "_sum" << plain << " " << e->h->sum() << "\n";
        os << e->name << "_count" << plain << " " << e->h->count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

/// Renders the registry as a JSON object keyed by metric name. Counters
/// and gauges map to numbers; histograms to
/// {"count", "sum", "p50", "p90", "p99", "buckets": [[le, cumulative], ...]}.
/// A non-empty `labels` (e.g. `shard="2"`) is appended to every key in
/// Prometheus brace style — `"serve_completed{shard=\"2\"}"` — keeping the
/// per-shard objects mergeable into one flat document.
inline std::string to_json(const Registry& reg,
                           const std::string& labels = {}) {
  std::ostringstream os;
  os << "{";
  // The label set is embedded in a JSON string, so its quotes get escaped.
  std::string suffix;
  if (!labels.empty()) {
    suffix = "{";
    for (const char ch : labels) {
      if (ch == '"') suffix += '\\';
      suffix += ch;
    }
    suffix += "}";
  }
  bool first = true;
  for (const Registry::Entry* e : reg.entries()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << e->name << suffix << "\":";
    switch (e->kind) {
      case Registry::Kind::kCounter: os << e->c->value(); break;
      case Registry::Kind::kGauge: os << e->g->value(); break;
      case Registry::Kind::kHistogram: {
        os << "{\"count\":" << e->h->count() << ",\"sum\":" << e->h->sum()
           << ",\"p50\":" << e->h->percentile(0.50)
           << ",\"p90\":" << e->h->percentile(0.90)
           << ",\"p99\":" << e->h->percentile(0.99) << ",\"buckets\":[";
        bool bfirst = true;
        for (const auto& [le, cum] : e->h->cumulative_buckets()) {
          if (!bfirst) os << ",";
          bfirst = false;
          os << "[" << le << "," << cum << "]";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

/// Formats the per-stage kernel breakdown as an aligned text table —
/// launches, CTAs, sector transactions (the paper's Table 3 unit), element
/// accesses (Eq. 2-5), shuffles (Eq. 2), atomics (Section 4.2) and
/// simulated milliseconds per stage, with a totals row.
inline std::string stage_table(const std::vector<vgpu::StageStats>& stages) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "stage" << std::right << std::setw(10)
     << "launches" << std::setw(10) << "ctas" << std::setw(14) << "sectors"
     << std::setw(14) << "elems" << std::setw(12) << "shfl" << std::setw(12)
     << "atomics" << std::setw(12) << "sim_ms" << "\n";
  vgpu::KernelStats sum;
  double sum_ms = 0.0;
  for (const vgpu::StageStats& st : stages) {
    os << std::left << std::setw(14) << st.stage << std::right << std::setw(10)
       << st.stats.kernels_launched << std::setw(10) << st.stats.ctas_run
       << std::setw(14) << st.stats.global_txns() << std::setw(14)
       << st.stats.global_elems() << std::setw(12) << st.stats.shfl_ops
       << std::setw(12) << st.stats.atomic_ops << std::setw(12) << std::fixed
       << std::setprecision(3) << st.sim_ms << "\n";
    sum += st.stats;
    sum_ms += st.sim_ms;
  }
  os << std::left << std::setw(14) << "total" << std::right << std::setw(10)
     << sum.kernels_launched << std::setw(10) << sum.ctas_run << std::setw(14)
     << sum.global_txns() << std::setw(14) << sum.global_elems()
     << std::setw(12) << sum.shfl_ops << std::setw(12) << sum.atomic_ops
     << std::setw(12) << std::fixed << std::setprecision(3) << sum_ms << "\n";
  return os.str();
}

}  // namespace drtopk::obs
