// Metrics registry: named counters, gauges and fixed-bucket log-scale
// histograms with a lock-free hot path.
//
// This is the live-stats seam the serving layer exports through
// (obs/export.hpp renders a Registry as Prometheus text or JSON): executors
// bump atomics; a monitoring poll walks the registry without ever stalling
// the record path. Histograms replace ServerStats' sort-the-whole-vector
// percentile computation with streaming log-scale buckets — O(1) observe,
// O(buckets) percentile, bounded memory forever.
//
// Bucket scheme ("HDR-lite"): each power-of-two octave is subdivided into
// kSub = 8 linear sub-buckets, so the relative width of any bucket is at
// most 1/8 — a percentile read off a bucket's upper bound overestimates
// the exact order statistic by <= 12.5% (the tests pin "within one
// bucket"). Values 0..7 get exact unit buckets; the ladder covers the full
// u64 range in 496 buckets (~4 KB of atomics per histogram).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "vgpu/types.hpp"

namespace drtopk::obs {

/// Monotonically increasing counter (lock-free).
class Counter {
 public:
  void add(u64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Last-write-wins instantaneous value (lock-free). Exporters typically
/// refresh gauges right before rendering (e.g. in-flight queries, arena
/// high-water bytes).
class Gauge {
 public:
  void set(u64 v) { v_.store(v, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Streaming log-scale histogram over non-negative integer samples
/// (typically microseconds). observe() is a single relaxed atomic
/// increment; percentile() walks the fixed bucket array and returns the
/// inclusive upper bound of the bucket holding the requested rank.
class Histogram {
 public:
  static constexpr u32 kSubBits = 3;          ///< 8 sub-buckets per octave
  static constexpr u32 kSub = 1u << kSubBits;
  /// Buckets 0..kSub-1 are exact unit buckets; octave t >= 1 spans
  /// [2^(t+kSubBits-1), 2^(t+kSubBits)) in kSub linear slices.
  static constexpr u32 kBuckets = (64 - kSubBits + 1) * kSub;

  /// Bucket index of a sample (monotone non-decreasing in v).
  static u32 bucket_of(u64 v) {
    if (v < kSub) return static_cast<u32>(v);
    const u32 msb = static_cast<u32>(std::bit_width(v)) - 1;  // >= kSubBits
    const u32 sub = static_cast<u32>(v >> (msb - kSubBits)) & (kSub - 1);
    return (msb - kSubBits + 1) * kSub + sub;
  }

  /// Inclusive upper bound of bucket `b` (the value percentile() reports).
  static u64 bucket_limit(u32 b) {
    if (b < kSub) return b;
    const u32 t = b / kSub;        // octave (>= 1)
    const u32 sub = b % kSub;
    const u32 msb = t + kSubBits - 1;
    const u64 width = u64{1} << (msb - kSubBits);
    return (u64{1} << msb) + sub * width + width - 1;
  }

  void observe(u64 v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket holding the q-quantile sample (q in (0, 1]).
  /// 0 when empty. Overestimates the exact order statistic by at most one
  /// bucket width (<= 12.5% relative).
  u64 percentile(double q) const {
    const u64 n = count();
    if (n == 0) return 0;
    u64 rank = static_cast<u64>(q * static_cast<double>(n) + 0.9999999);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    u64 cum = 0;
    for (u32 b = 0; b < kBuckets; ++b) {
      cum += buckets_[b].load(std::memory_order_relaxed);
      if (cum >= rank) return bucket_limit(b);
    }
    return bucket_limit(kBuckets - 1);
  }

  /// Non-empty buckets as (upper bound, cumulative count) pairs — the
  /// Prometheus-histogram rendering (cumulative, ascending le).
  std::vector<std::pair<u64, u64>> cumulative_buckets() const {
    std::vector<std::pair<u64, u64>> out;
    u64 cum = 0;
    for (u32 b = 0; b < kBuckets; ++b) {
      const u64 c = buckets_[b].load(std::memory_order_relaxed);
      if (c == 0) continue;
      cum += c;
      out.emplace_back(bucket_limit(b), cum);
    }
    return out;
  }

 private:
  std::atomic<u64> buckets_[kBuckets]{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
};

/// Named-metric registry. Registration (counter()/gauge()/histogram())
/// takes a mutex and is meant for startup paths; the returned references
/// are stable for the registry's lifetime and their record paths are
/// lock-free. Re-registering a name returns the existing metric;
/// registering it as a different kind throws.
///
/// Metric names should be Prometheus-safe ([a-zA-Z_][a-zA-Z0-9_]*) — the
/// exporters emit them verbatim.
class Registry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// One registered metric (exactly one of c/g/h is set, per kind).
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Counter& counter(const std::string& name, const std::string& help = "") {
    Entry& e = find_or_create(name, help, Kind::kCounter);
    return *e.c;
  }

  Gauge& gauge(const std::string& name, const std::string& help = "") {
    Entry& e = find_or_create(name, help, Kind::kGauge);
    return *e.g;
  }

  Histogram& histogram(const std::string& name,
                       const std::string& help = "") {
    Entry& e = find_or_create(name, help, Kind::kHistogram);
    return *e.h;
  }

  /// Lookup without creation; nullptr when absent or a different kind.
  const Histogram* find_histogram(const std::string& name) const {
    std::lock_guard lk(mu_);
    for (const Entry& e : entries_)
      if (e.name == name && e.kind == Kind::kHistogram) return e.h.get();
    return nullptr;
  }

  /// Lookup without creation; nullptr when absent or a different kind.
  const Counter* find_counter(const std::string& name) const {
    std::lock_guard lk(mu_);
    for (const Entry& e : entries_)
      if (e.name == name && e.kind == Kind::kCounter) return e.c.get();
    return nullptr;
  }

  /// Stable pointers to every entry, sorted by name (deterministic export
  /// order). Entries live as long as the registry, so the snapshot stays
  /// valid after the lock is dropped.
  std::vector<const Entry*> entries() const {
    std::vector<const Entry*> out;
    {
      std::lock_guard lk(mu_);
      out.reserve(entries_.size());
      for (const Entry& e : entries_) out.push_back(&e);
    }
    std::sort(out.begin(), out.end(),
              [](const Entry* a, const Entry* b) { return a->name < b->name; });
    return out;
  }

 private:
  Entry& find_or_create(const std::string& name, const std::string& help,
                        Kind kind) {
    std::lock_guard lk(mu_);
    for (Entry& e : entries_) {
      if (e.name != name) continue;
      if (e.kind != kind)
        throw std::logic_error("obs::Registry: metric '" + name +
                               "' re-registered as a different kind");
      return e;
    }
    Entry e;
    e.name = name;
    e.help = help;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.c = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.g = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.h = std::make_unique<Histogram>(); break;
    }
    entries_.push_back(std::move(e));
    return entries_.back();
  }

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  ///< deque: stable Entry addresses
};

}  // namespace drtopk::obs
