#include "topk/topk.hpp"

namespace drtopk::topk {

std::string to_string(Algo a) {
  switch (a) {
    case Algo::kRadixFlag: return "radix-flag";
    case Algo::kRadixGgksOop: return "radix-ggks-oop";
    case Algo::kRadixGgksInplace: return "radix-ggks-inplace";
    case Algo::kBucketInplace: return "bucket-inplace";
    case Algo::kBucketOop: return "bucket-ggks-oop";
    case Algo::kBucketGgksInplace: return "bucket-ggks-inplace";
    case Algo::kBitonic: return "bitonic";
    case Algo::kSortAndChoose: return "sort-and-choose";
  }
  return "?";
}

}  // namespace drtopk::topk
