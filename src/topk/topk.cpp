#include "topk/topk.hpp"

#include <algorithm>
#include <bit>

namespace drtopk::topk {

std::string to_string(Algo a) {
  switch (a) {
    case Algo::kRadixFlag: return "radix-flag";
    case Algo::kRadixGgksOop: return "radix-ggks-oop";
    case Algo::kRadixGgksInplace: return "radix-ggks-inplace";
    case Algo::kBucketInplace: return "bucket-inplace";
    case Algo::kBucketOop: return "bucket-ggks-oop";
    case Algo::kBucketGgksInplace: return "bucket-ggks-inplace";
    case Algo::kBitonic: return "bitonic";
    case Algo::kSortAndChoose: return "sort-and-choose";
    case Algo::kHeap: return "heap";
  }
  return "?";
}

Algo choose_engine(const vgpu::GpuProfile& p, u64 n, u64 k, u32 key_bytes) {
  // Roofline sketch per engine family: streaming bytes over peak DRAM
  // bandwidth plus fixed launch overhead. Deliberately coarse — it ranks
  // families, it does not predict absolute times (calibration probes do).
  const double bw = p.mem_bw_gbps * 1e9;
  const auto stream_ms = [&](double bytes, double launches) {
    return bytes / bw * 1e3 + launches * vgpu::CostModel::kKernelLaunchMs;
  };
  const double b =
      static_cast<double>(key_bytes) * static_cast<double>(n);  // one pass
  // Flag-based in-place radix: ~2.5 effective passes (histogram + flagged
  // re-scans shrink geometrically), ~10 small launches across digits.
  const double radix = stream_ms(2.5 * b, 10);
  // Bitonic top-k: rebuild/merge phases scale with log2 k; each phase
  // touches a k-wide working set folded over the input.
  const double lgk = static_cast<double>(std::bit_width(std::max<u64>(k, 1)));
  const double bitonic = stream_ms(0.5 * b * lgk, 2 * lgk);
  // Sort-and-choose: full 4-digit LSD sort, read + write per digit.
  const double sortc = stream_ms(8.0 * b, 8);

  if (bitonic <= radix && bitonic <= sortc) return Algo::kBitonic;
  if (sortc < radix) return Algo::kSortAndChoose;
  return Algo::kRadixFlag;
}

}  // namespace drtopk::topk
