// Reusable device kernels shared by the top-k engines: grid-slice scans,
// 256-way histograms, min/max reduction, threshold collection and compaction.
//
// All kernels follow the same warp-centric shape as the paper's
// implementation: each warp owns a contiguous slice of the vector, streams
// it with coalesced 32-element chunks, reduces warp-locally (registers /
// shared memory), and merges with a handful of global atomics.
#pragma once

#include <array>
#include <cassert>
#include <limits>

#include "topk/common.hpp"
#include "vgpu/vgpu.hpp"

namespace drtopk::topk {

inline constexpr u32 kRadixBuckets = 256;
inline constexpr u32 kRadixBits = 8;

/// Contiguous slice of [0,n) owned by warp `w` out of `total` warps,
/// rounded to warp-sized chunks so accesses stay coalesced.
struct Slice {
  u64 begin = 0;
  u64 len = 0;
};

inline Slice warp_slice(u64 n, u32 w, u32 total) {
  const u64 chunk = vgpu::kWarpSize;
  const u64 chunks = (n + chunk - 1) / chunk;
  const u64 per_warp = (chunks + total - 1) / total;
  const u64 b = std::min<u64>(n, static_cast<u64>(w) * per_warp * chunk);
  const u64 e = std::min<u64>(n, b + per_warp * chunk);
  return {b, e - b};
}

/// Grid geometry for a full-vector streaming kernel.
inline vgpu::Launch stream_launch(vgpu::Device& dev, u64 n, std::string name,
                                  u64 shared_bytes_per_cta = 0,
                                  u32 warps_per_cta = 8) {
  const u64 warps = std::max<u64>(1, n / (vgpu::kWarpSize * 16));
  return dev.launch_for_warp_items(warps, std::move(name), warps_per_cta,
                                   shared_bytes_per_cta);
}

/// 256-bin histogram of digit(x) over elements where alive(x). One shared-
/// memory histogram per CTA (all warps of the CTA accumulate into it, as a
/// real kernel would behind __syncthreads), merged into the global bins
/// with at most 256 atomics per CTA.
template <class K, class Alive, class Digit>
void histogram256(Accum& acc, std::span<const K> v, Alive&& alive,
                  Digit&& digit, std::array<u64, kRadixBuckets>& hist,
                  const char* name = "hist256") {
  for (auto& h : hist) h = 0;
  std::span<u64> hspan(hist.data(), hist.size());
  auto cfg = stream_launch(acc.device(), v.size(), name,
                           kRadixBuckets * sizeof(u32));
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    auto sh = cta.shared().alloc<u32>(kRadixBuckets);
    for (u32 i = 0; i < kRadixBuckets; ++i) sh.st(i, 0);
    bool touched = false;
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      touched = true;
      w.scan_coalesced(v, s.begin, s.len, [&](u32, K x) {
        if (alive(x)) {
          const u32 d = digit(x);
          sh.st(d, sh.ld(d) + 1);
        }
      });
    });
    if (!touched) return;
    for (u32 i = 0; i < kRadixBuckets; ++i) {
      const u32 c = sh.ld(i);
      if (c) cta.atomic_add(hspan, i, static_cast<u64>(c));
    }
  });
}

/// Min and max of the vector (bucket top-k's first step).
template <class K>
std::pair<K, K> device_minmax(Accum& acc, std::span<const K> v) {
  std::array<K, 2> cells = {std::numeric_limits<K>::max(),
                            std::numeric_limits<K>::min()};
  std::span<K> cspan(cells.data(), cells.size());
  auto cfg = stream_launch(acc.device(), v.size(), "minmax");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      auto lmin = vgpu::lane_fill(std::numeric_limits<K>::max());
      auto lmax = vgpu::lane_fill(std::numeric_limits<K>::min());
      w.scan_coalesced(v, s.begin, s.len, [&](u32 lane, K x) {
        lmin[lane] = std::min(lmin[lane], x);
        lmax[lane] = std::max(lmax[lane], x);
      });
      const K wmin = w.reduce_min(lmin);
      const K wmax = w.reduce_max(lmax);
      // atomic min: emulate with max on complemented key
      w.atomic_max(cspan, 1, wmax);
      std::span<K> min_cell(cells.data(), 1);
      // fetch_min via CAS loop, charged as one atomic
      w.stats().atomic_ops += 1;
      std::atomic_ref<K> a(cells[0]);
      K cur = a.load(std::memory_order_relaxed);
      while (wmin < cur &&
             !a.compare_exchange_weak(cur, wmin, std::memory_order_relaxed)) {
      }
    });
  });
  return {cells[0], cells[1]};
}

/// Count of elements matching pred, via per-warp reduce + one atomic.
template <class K, class Pred>
u64 device_count(Accum& acc, std::span<const K> v, Pred&& pred,
                 const char* name = "count") {
  u64 counter = 0;
  std::span<u64> cnt(&counter, 1);
  auto cfg = stream_launch(acc.device(), v.size(), name);
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      auto lc = vgpu::lane_fill<u32>(0);
      w.scan_coalesced(v, s.begin, s.len, [&](u32 lane, K x) {
        if (pred(x)) ++lc[lane];
      });
      const u32 c = w.reduce_add(lc);
      if (c) w.atomic_add(cnt, 0, static_cast<u64>(c));
    });
  });
  return counter;
}

/// Compacts elements matching pred into `out` starting at *out_pos
/// (warp-aggregated atomic reservation, coalesced compacted stores).
/// Returns the new element count. `out` must be large enough.
template <class K, class Pred>
u64 device_compact(Accum& acc, std::span<const K> v, Pred&& pred,
                   std::span<K> out, u64 initial_count = 0,
                   const char* name = "compact") {
  u64 counter = initial_count;
  std::span<u64> cnt(&counter, 1);
  auto cfg = stream_launch(acc.device(), v.size(), name);
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      u64 pos = s.begin;
      const u64 end = s.begin + s.len;
      while (pos < end) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
        auto vals = w.load_coalesced(v, pos, active);
        vgpu::LaneArray<u8> keep{};
        for (u32 l = 0; l < active; ++l) keep[l] = pred(vals[l]) ? 1 : 0;
        const u32 mask = w.ballot(keep, active);
        const u32 c = std::popcount(mask);
        if (c) {
          // Lane 0 reserves c slots; compacted lanes write consecutively —
          // the same warp-aggregated pattern the paper's concatenation uses.
          const u64 base = w.atomic_add(cnt, 0, static_cast<u64>(c));
          vgpu::LaneArray<K> packed{};
          u32 j = 0;
          for (u32 l = 0; l < active; ++l)
            if (keep[l]) packed[j++] = vals[l];
          w.store_coalesced(out, base, packed, c);
        }
        pos += active;
      }
    });
  });
  return counter;
}

/// Finds the unique element satisfying pred (used by the radix/bucket
/// early-exit when the surviving bucket holds exactly one element).
template <class K, class Pred>
K device_find_unique(Accum& acc, std::span<const K> v, Pred&& pred) {
  K found{};
  std::span<K> cell(&found, 1);
  auto cfg = stream_launch(acc.device(), v.size(), "find_unique");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      w.scan_coalesced(v, s.begin, s.len, [&](u32, K x) {
        if (pred(x)) w.st(cell, 0, x);
      });
    });
  });
  return found;
}

/// Standard top-k collection once the k-th value `kth` is known: gathers all
/// elements > kth, then pads with copies of kth up to exactly k. The number
/// of elements > kth is strictly less than k by definition of the k-th
/// largest. Output is sorted descending (host finalization of k elements).
template <class K>
std::vector<K> collect_topk(Accum& acc, std::span<const K> v, K kth, u64 k) {
  std::vector<K> out(k);
  std::span<K> ospan(out.data(), out.size());
  const u64 greater = device_compact(
      acc, v, [kth](K x) { return x > kth; }, ospan, 0, "collect_gt");
  assert(greater < k);
  // Fill kernel: the remaining k-greater slots are copies of kth (their
  // value is known; no reads needed).
  const u64 fill = k - greater;
  auto cfg = acc.device().launch_for_warp_items(
      std::max<u64>(1, fill / vgpu::kWarpSize), "fill_kth");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(fill, w.global_id(), w.grid_warps());
      u64 pos = s.begin;
      const u64 end = s.begin + s.len;
      auto vals = vgpu::lane_fill(kth);
      while (pos < end) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
        w.store_coalesced(ospan, greater + pos, vals, active);
        pos += active;
      }
    });
  });
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

}  // namespace drtopk::topk
