// Single-launch shared-memory sort-and-choose for small inputs.
//
// The Dr. Top-k pipeline's later stages run on inputs that are orders of
// magnitude smaller than |V| (Section 4: the delegate vector and the
// concatenated candidate vector). At serving rates those stages are
// launch-overhead bound: a multi-pass radix selection on a 16 KB candidate
// vector spends far more simulated time in its ~6 kernel launches than in
// its memory traffic. Real GPU top-k implementations special-case exactly
// this regime with a one-block kernel; this engine models it:
//
//   one CTA - one launch:  stage the whole input into one SM's shared
//   memory (coalesced), bitonically sort it there (the network is charged
//   analytically, like topk/bitonic.hpp), and emit the top k (or just the
//   k-th key for selection-only callers).
//
// Applicability is a hard capacity bound: the input must fit the profile's
// per-SM shared memory (small_topk_fits). The pipeline uses it for the
// first top-k when the delegate vector fits and for the second top-k when
// the candidate vector fits, both gated by DrTopkConfig::small_input_shared
// so the multi-pass baseline stays measurable.
#pragma once

#include "topk/bitonic.hpp"

namespace drtopk::topk {

/// Elements of key type K that fit one CTA's shared-memory staging on `p`
/// — the single source of the one-SM capacity bound (topk/batched.hpp's
/// classification uses the same constant, so the two gates move together).
template <class K>
u64 small_topk_cap(const vgpu::GpuProfile& p) {
  return p.shared_bytes_per_sm / sizeof(K);
}

/// True when an n-element input of key type K fits the single-CTA
/// shared-memory path on `p`.
template <class K>
bool small_topk_fits(const vgpu::GpuProfile& p, u64 n) {
  return n > 0 && n <= small_topk_cap<K>(p);
}

/// One-launch top-k of a small input. Returns exactly k keys sorted
/// descending (selection-only: just the k-th key), bit-identical to every
/// other engine's multiset. No scratch beyond the CTA's shared arena.
template <class K>
TopkResult<K> small_topk_shared(Accum& acc, std::span<const K> v, u64 k,
                                bool selection_only = false) {
  const u64 n = v.size();
  assert(k >= 1 && k <= n);
  assert(small_topk_fits<K>(acc.device().profile(), n));
  WallTimer wall;
  TopkResult<K> r;
  r.keys.resize(selection_only ? 1 : k);
  std::span<K> out(r.keys.data(), r.keys.size());

  vgpu::Launch cfg;
  cfg.name = "small_topk_shared";
  cfg.num_ctas = 1;
  cfg.warps_per_cta = 8;
  cfg.shared_bytes = n * sizeof(K);
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    auto sh = cta.shared().alloc<K>(n);
    // (i) Coalesced staging: every warp copies its slice into shared.
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(n, w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      u64 pos = s.begin;
      const u64 end = s.begin + s.len;
      while (pos < end) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
        auto vals = w.load_coalesced(v, pos, active);
        sh.warp_scatter(active, [&](u32 l) { return pos + l; }, vals);
        pos += active;
      }
    });
    // (ii) In-place bitonic sort, descending. Functionally performed with
    // the host library; the compare-exchange network is charged
    // analytically (same convention as topk/bitonic.hpp).
    vgpu::Warp w = cta.warp(0);
    detail::charge_shared_network(w.stats(),
                                  detail::bitonic_sort_cx(std::bit_ceil(n)));
    std::sort(sh.data(), sh.data() + n, std::greater<>());
    // (iii) Emission straight out of shared memory.
    if (selection_only) {
      w.st(out, 0, sh.ld(k - 1));
    } else {
      u64 pos = 0;
      while (pos < k) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, k - pos));
        auto vals = sh.warp_gather(active, [&](u32 l) { return pos + l; });
        w.store_coalesced(out, pos, vals, active);
        pos += active;
      }
    }
  });

  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
