// Radix top-k / k-selection engines.
//
// Three variants, matching Section 5.1 and Figure 12 of the paper:
//
//  * radix_kth_flag / radix_topk_flag — Dr. Top-k's optimized in-place
//    radix: a single (mask, value) flag pair tracks the radixes of interest;
//    every iteration re-scans the input testing
//    `(x & mask) == value` and histograms the next digit. The input is never
//    written — the design point that removes GGKS's scattered stores.
//  * radix_topk_ggks_oop — GGKS-style out-of-place: each iteration compacts
//    the bucket of interest into a fresh buffer and emits the buckets above
//    it straight to the result.
//  * radix_topk_ggks_inplace — GGKS-style in-place: ineligible elements are
//    overwritten with a sentinel (0) so later iterations skip them; the
//    scattered read-modify-write stores are what Figure 12 measures.
//
// All engines process kRadixBits (8) bits per iteration, MSD-first, exactly
// as the paper's "8-bit per digit yields the optimal performance" choice.
#pragma once

#include <bit>

#include "topk/kernels.hpp"

namespace drtopk::topk {

/// K-selection: value of the k-th largest key (1 <= k <= |v|).
/// Flag-based in-place algorithm; zero stores to v.
template <class K>
K radix_kth_flag(Accum& acc, std::span<const K> v, u64 k) {
  assert(k >= 1 && k <= v.size());
  constexpr int kDigits = sizeof(K);  // 8 bits each
  K mask = 0, value = 0;
  u64 rem = k;
  std::array<u64, kRadixBuckets> hist;

  for (int d = kDigits - 1; d >= 0; --d) {
    const u32 shift = static_cast<u32>(d) * kRadixBits;
    histogram256(
        acc, v, [mask, value](K x) { return (x & mask) == value; },
        [shift](K x) { return static_cast<u32>((x >> shift) & 0xFF); }, hist,
        "radix_flag_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        rem -= cum;
        break;
      }
      cum += hist[b];
    }
    value |= static_cast<K>(chosen) << shift;
    mask |= static_cast<K>(0xFF) << shift;
    if (hist[chosen] == 1) {
      // Unique survivor: fetch it directly instead of refining further.
      return device_find_unique(
          acc, v, [mask, value](K x) { return (x & mask) == value; });
    }
  }
  return value;  // all digits fixed: survivors all equal `value`
}

/// Stops the MSD refinement `skip_last` digits early and returns the partial
/// prefix as a *lower bound* on the k-th largest. Used by the paper's
/// "skip the final iteration of the first top-k" optimization (Section 4.3):
/// a lower-bound threshold keeps a superset of candidates at lower cost.
template <class K>
K radix_kth_flag_relaxed(Accum& acc, std::span<const K> v, u64 k,
                         int skip_last) {
  assert(k >= 1 && k <= v.size());
  constexpr int kDigits = sizeof(K);
  K mask = 0, value = 0;
  u64 rem = k;
  std::array<u64, kRadixBuckets> hist;

  for (int d = kDigits - 1; d >= skip_last; --d) {
    const u32 shift = static_cast<u32>(d) * kRadixBits;
    histogram256(
        acc, v, [mask, value](K x) { return (x & mask) == value; },
        [shift](K x) { return static_cast<u32>((x >> shift) & 0xFF); }, hist,
        "radix_flag_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        rem -= cum;
        break;
      }
      cum += hist[b];
    }
    value |= static_cast<K>(chosen) << shift;
    mask |= static_cast<K>(0xFF) << shift;
    if (hist[chosen] == 1) {
      return device_find_unique(
          acc, v, [mask, value](K x) { return (x & mask) == value; });
    }
  }
  return value;  // low `skip_last` digits zero: lower bound on the kth
}

/// Full top-k with the flag-based engine: k-selection, then collection.
template <class K>
TopkResult<K> radix_topk_flag(vgpu::Device& dev, std::span<const K> v,
                              u64 k) {
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.kth = radix_kth_flag(acc, v, k);
  r.keys = collect_topk(acc, v, r.kth, k);
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

/// GGKS-style out-of-place radix top-k: iteration compacts the bucket of
/// interest into a fresh buffer; buckets above it go straight to the output.
/// Scratch (two n-sized ping-pong buffers) comes from the workspace and is
/// rewound on return.
template <class K>
TopkResult<K> radix_topk_ggks_oop(vgpu::Device& dev, std::span<const K> v,
                                  u64 k,
                                  vgpu::Workspace& ws = vgpu::tls_workspace()) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.keys.resize(k);
  std::span<K> out(r.keys.data(), k);

  vgpu::Workspace::Scope scope(ws);
  std::span<const K> cur = v;
  std::span<K> next = ws.alloc<K>(v.size());
  std::span<K> other = ws.alloc<K>(v.size());

  u64 emitted = 0;  // elements already known to be in the top-k
  u64 rem = k;      // rank of the kth element within `cur`
  constexpr int kDigits = sizeof(K);
  std::array<u64, kRadixBuckets> hist;

  for (int d = kDigits - 1; d >= 0 && rem > 0; --d) {
    const u32 shift = static_cast<u32>(d) * kRadixBits;
    histogram256(
        acc, cur, [](K) { return true; },
        [shift](K x) { return static_cast<u32>((x >> shift) & 0xFF); }, hist,
        "radix_oop_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        break;
      }
      cum += hist[b];
    }
    // Emit elements in buckets above `chosen`; keep bucket `chosen`.
    const K chosen_digit = static_cast<K>(chosen);
    emitted = device_compact(
        acc, cur,
        [shift, chosen_digit](K x) {
          return ((x >> shift) & 0xFF) > chosen_digit;
        },
        out, emitted, "radix_oop_emit");
    const u64 kept = device_compact(
        acc, cur,
        [shift, chosen_digit](K x) {
          return ((x >> shift) & 0xFF) == chosen_digit;
        },
        next, 0, "radix_oop_keep");
    rem -= cum;
    cur = std::span<const K>(next.data(), kept);
    std::swap(next, other);
    if (kept == rem) {
      // Everything that survived belongs to the top-k.
      emitted = device_compact(
          acc, cur, [](K) { return true; }, out, emitted, "radix_oop_flush");
      rem = 0;
      break;
    }
  }
  if (rem > 0) {
    // All survivors share every digit — they are `rem` copies of one value.
    assert(!cur.empty());
    const K survivor = cur[0];
    for (u64 i = 0; i < rem; ++i) r.keys[emitted + i] = survivor;
    emitted += rem;
  }
  assert(emitted == k);
  std::sort(r.keys.begin(), r.keys.end(), std::greater<>());
  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

/// GGKS-style in-place radix top-k. Destructive: ineligible elements are
/// overwritten with 0 (the sentinel the paper describes), producing the
/// scattered stores that the flag-based variant eliminates. Elements above
/// the bucket of interest are emitted to the result before being zeroed.
/// Requires all input keys to be nonzero (a documented GGKS limitation).
template <class K>
TopkResult<K> radix_topk_ggks_inplace(vgpu::Device& dev, std::span<K> v,
                                      u64 k) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.keys.resize(k);
  std::span<K> out(r.keys.data(), k);
  std::span<const K> cv(v.data(), v.size());

  u64 emitted = 0;
  u64 rem = k;
  u64 alive = v.size();
  constexpr int kDigits = sizeof(K);
  std::array<u64, kRadixBuckets> hist;
  K prefix_value = 0;

  for (int d = kDigits - 1; d >= 0 && rem > 0; --d) {
    const u32 shift = static_cast<u32>(d) * kRadixBits;
    histogram256(
        acc, cv, [](K x) { return x != 0; },
        [shift](K x) { return static_cast<u32>((x >> shift) & 0xFF); }, hist,
        "radix_inp_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        break;
      }
      cum += hist[b];
    }
    prefix_value |= static_cast<K>(chosen) << shift;

    // Zeroing pass: emit elements above the bucket, zero everything not in
    // the bucket. One scattered store per retired element — the cost GGKS
    // in-place pays and the flag design avoids.
    u64 counter = emitted;
    std::span<u64> cnt(&counter, 1);
    const K chosen_digit = static_cast<K>(chosen);
    auto cfg = stream_launch(acc.device(), v.size(), "radix_inp_zero");
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
        if (s.len == 0) return;
        u64 pos = s.begin;
        const u64 end = s.begin + s.len;
        while (pos < end) {
          const u32 active =
              static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
          auto vals = w.load_coalesced(cv, pos, active);
          vgpu::LaneArray<u8> is_above{}, is_retired{};
          for (u32 l = 0; l < active; ++l) {
            if (vals[l] == 0) continue;
            const u32 digit = static_cast<u32>((vals[l] >> shift) & 0xFF);
            if (digit > chosen_digit) {
              is_above[l] = 1;
              is_retired[l] = 1;
            } else if (digit < chosen_digit) {
              is_retired[l] = 1;
            }
          }
          const u32 above_mask = w.ballot(is_above, active);
          const u32 c = std::popcount(above_mask);
          if (c) {
            const u64 base = w.atomic_add(cnt, 0, static_cast<u64>(c));
            vgpu::LaneArray<K> packed{};
            u32 j = 0;
            for (u32 l = 0; l < active; ++l)
              if (is_above[l]) packed[j++] = vals[l];
            w.store_coalesced(out, base, packed, c);
          }
          const u32 retire_mask = w.ballot(is_retired, active);
          if (retire_mask) {
            vgpu::LaneArray<u64> idx{};
            vgpu::LaneArray<K> zeros{};
            for (u32 l = 0; l < active; ++l) idx[l] = pos + l;
            w.store_scattered(v, idx, zeros, retire_mask);
          }
          pos += active;
        }
      });
    });
    emitted = counter;
    rem -= cum;
    alive = hist[chosen];
    if (alive == rem) {
      // Everything still alive belongs to the top-k: collect the nonzero
      // survivors (retired elements were zeroed above).
      emitted = device_compact(
          acc, cv, [](K x) { return x != 0; }, out, emitted,
          "radix_inp_flush");
      rem = 0;
      break;
    }
  }
  // Survivors all share the chosen prefix; fill the remaining slots.
  for (u64 i = 0; i < rem; ++i) r.keys[emitted + i] = prefix_value;
  emitted += rem;
  assert(emitted == k);
  std::sort(r.keys.begin(), r.keys.end(), std::greater<>());
  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
