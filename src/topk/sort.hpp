// Sort-and-choose top-k (the THRUST baseline of Figures 17/18) and the
// underlying parallel LSD radix sort.
//
// The sort is a textbook stable LSD radix sort with per-warp-slice
// histograms, a host-side exclusive scan over the (warp x digit) table, and
// a stable scatter pass — the classic GPU formulation. Scatter stores are
// inherently data-dependent and are charged as scattered transactions,
// which is what makes full sorting so much more expensive than the top-k
// algorithms it is compared against.
#pragma once

#include "topk/kernels.hpp"

namespace drtopk::topk {

/// In-place ascending radix sort of `data` on the device. Ping-pong and
/// histogram-table scratch come from the workspace.
template <class K>
void device_radix_sort(Accum& acc, std::span<K> data,
                       vgpu::Workspace& ws = vgpu::tls_workspace()) {
  const u64 n = data.size();
  if (n <= 1) return;
  constexpr int kPasses = sizeof(K);
  vgpu::Workspace::Scope scope(ws);
  std::span<K> src = data;
  std::span<K> dst = ws.alloc<K>(n);

  // Each warp keeps a private shared histogram (stability requires
  // per-warp counts), so the CTA arena holds warps_per_cta of them.
  auto cfg = stream_launch(acc.device(), n, "radix_sort",
                           u64{8} * kRadixBuckets * sizeof(u32));
  const u32 total_warps = cfg.num_ctas * cfg.warps_per_cta;

  // (warp, digit) counts, then exclusive-scanned into scatter bases.
  std::span<u64> table =
      ws.alloc<u64>(static_cast<u64>(total_warps) * kRadixBuckets);

  for (int pass = 0; pass < kPasses; ++pass) {
    const u32 shift = static_cast<u32>(pass) * kRadixBits;
    std::fill(table.begin(), table.end(), 0);
    std::span<u64> tspan = table;
    std::span<const K> csrc(src.data(), src.size());

    cfg.name = "radix_sort_hist";
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        const Slice s = warp_slice(n, w.global_id(), w.grid_warps());
        if (s.len == 0) return;
        auto sh = cta.shared().alloc<u32>(kRadixBuckets);
        for (u32 i = 0; i < kRadixBuckets; ++i) sh.st(i, 0);
        w.scan_coalesced(csrc, s.begin, s.len, [&](u32, K x) {
          const u32 d = static_cast<u32>((x >> shift) & 0xFF);
          sh.st(d, sh.ld(d) + 1);
        });
        for (u32 i = 0; i < kRadixBuckets; ++i) {
          const u32 c = sh.ld(i);
          if (c)
            w.st(tspan, static_cast<u64>(w.global_id()) * kRadixBuckets + i,
                 static_cast<u64>(c));
        }
      });
    });

    // Host-side exclusive scan in (digit, warp) order gives each warp a
    // stable base per digit (control work over 256*W entries, not charged).
    u64 run = 0;
    for (u32 d = 0; d < kRadixBuckets; ++d) {
      for (u32 w = 0; w < total_warps; ++w) {
        u64& cell = table[static_cast<u64>(w) * kRadixBuckets + d];
        const u64 c = cell;
        cell = run;
        run += c;
      }
    }

    cfg.name = "radix_sort_scatter";
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        const Slice s = warp_slice(n, w.global_id(), w.grid_warps());
        if (s.len == 0) return;
        u64 offs[kRadixBuckets];
        for (u32 i = 0; i < kRadixBuckets; ++i)
          offs[i] =
              w.ld(std::span<const u64>(tspan),
                   static_cast<u64>(w.global_id()) * kRadixBuckets + i);
        u64 pos = s.begin;
        const u64 end = s.begin + s.len;
        while (pos < end) {
          const u32 active =
              static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
          auto vals = w.load_coalesced(csrc, pos, active);
          vgpu::LaneArray<u64> idx{};
          for (u32 l = 0; l < active; ++l) {
            const u32 d = static_cast<u32>((vals[l] >> shift) & 0xFF);
            idx[l] = offs[d]++;
          }
          const u32 mask =
              active == vgpu::kWarpSize ? ~0u : ((1u << active) - 1);
          w.store_scattered(dst, idx, vals, mask);
          pos += active;
        }
      });
    });

    std::swap(src, dst);
  }
  // sizeof(K) passes is even for u32/u64, so the result is back in `data`.
  static_assert(kPasses % 2 == 0, "ping-pong parity");
}

/// Sort-and-choose: copy, full sort, read the top k from the tail.
template <class K>
TopkResult<K> sort_and_choose_topk(vgpu::Device& dev, std::span<const K> v,
                                   u64 k,
                                   vgpu::Workspace& ws = vgpu::tls_workspace()) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);
  const u64 n = v.size();

  // Device-to-device copy of the input (sorting is destructive).
  vgpu::Workspace::Scope scope(ws);
  std::span<K> wspan = ws.alloc<K>(n);
  auto cfg = stream_launch(dev, n, "sort_copy");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(n, w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      u64 pos = s.begin;
      const u64 end = s.begin + s.len;
      while (pos < end) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
        auto vals = w.load_coalesced(v, pos, active);
        w.store_coalesced(wspan, pos, vals, active);
        pos += active;
      }
    });
  });

  device_radix_sort(acc, wspan, ws);

  TopkResult<K> r;
  r.keys.assign(wspan.end() - static_cast<i64>(k), wspan.end());
  std::reverse(r.keys.begin(), r.keys.end());
  // Reading the k chosen elements back is one more (tiny) access.
  vgpu::KernelStats read;
  read.global_load_elems = k;
  read.global_load_bytes = k * sizeof(K);
  read.global_load_txns = vgpu::detail::coalesced_txns(k * sizeof(K));
  read.kernels_launched = 1;
  acc.add(read);

  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
