// Bucket top-k / k-selection engines (GGKS-style, Section 2.2 / Figure 1).
//
// The value range [lo, hi] is split into 256 equal buckets; a histogram
// locates the bucket holding the k-th element; the range narrows to that
// bucket and the process repeats until the bucket collapses to one value.
// Bucket boundaries are computed in 128-bit integer arithmetic so they are
// exact for both 32- and 64-bit keys (no floating-point drift).
//
//  * bucket_kth_inplace / bucket_topk_inplace — every iteration re-scans the
//    full input with a range predicate (the in-place design the paper says
//    Dr. Top-k prefers for small k).
//  * bucket_topk_oop — compacts the bucket of interest into a fresh buffer
//    each iteration and emits the buckets above it (GGKS out-of-place).
//
// The CD dataset (data/distributions.hpp) is adversarial for exactly these
// engines: the bucket of interest keeps the overwhelming majority of
// elements at every level, so no iteration shrinks the workload.
#pragma once

#include "topk/kernels.hpp"

namespace drtopk::topk {

namespace detail {

using u128 = unsigned __int128;

/// Bucket index of x within [lo, hi] split into kRadixBuckets equal parts.
template <class K>
u32 bucket_of(K x, K lo, K hi) {
  const u128 width = static_cast<u128>(hi) - lo + 1;
  return static_cast<u32>((static_cast<u128>(x) - lo) * kRadixBuckets / width);
}

/// [lo', hi'] bounds of bucket b within [lo, hi].
template <class K>
std::pair<K, K> bucket_bounds(u32 b, K lo, K hi) {
  const u128 width = static_cast<u128>(hi) - lo + 1;
  const u128 lo_off = (static_cast<u128>(b) * width + kRadixBuckets - 1) /
                      kRadixBuckets;
  const u128 hi_off =
      (static_cast<u128>(b + 1) * width + kRadixBuckets - 1) / kRadixBuckets;
  return {static_cast<K>(lo + static_cast<K>(lo_off)),
          static_cast<K>(lo + static_cast<K>(hi_off - 1))};
}

}  // namespace detail

/// K-selection via in-place bucketing. Returns the k-th largest key.
template <class K>
K bucket_kth_inplace(Accum& acc, std::span<const K> v, u64 k) {
  assert(k >= 1 && k <= v.size());
  auto [lo, hi] = device_minmax(acc, v);
  if (k == 1) return hi;  // bucket top-k answers k=1 from the max directly
  u64 rem = k;
  std::array<u64, kRadixBuckets> hist;

  while (lo < hi) {
    const K clo = lo, chi = hi;
    histogram256(
        acc, v, [clo, chi](K x) { return x >= clo && x <= chi; },
        [clo, chi](K x) { return detail::bucket_of(x, clo, chi); }, hist,
        "bucket_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        rem -= cum;
        break;
      }
      cum += hist[b];
    }
    if (hist[chosen] == 1) {
      const auto [blo, bhi] = detail::bucket_bounds(chosen, lo, hi);
      return device_find_unique(
          acc, v, [blo, bhi](K x) { return x >= blo && x <= bhi; });
    }
    std::tie(lo, hi) = detail::bucket_bounds(chosen, lo, hi);
  }
  return lo;
}

/// Full top-k with the in-place bucket engine.
template <class K>
TopkResult<K> bucket_topk_inplace(vgpu::Device& dev, std::span<const K> v,
                                  u64 k) {
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.kth = bucket_kth_inplace(acc, v, k);
  r.keys = collect_topk(acc, v, r.kth, k);
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

/// GGKS-style out-of-place bucket top-k. Ping-pong scratch comes from the
/// workspace and is rewound on return.
template <class K>
TopkResult<K> bucket_topk_oop(vgpu::Device& dev, std::span<const K> v,
                              u64 k,
                              vgpu::Workspace& ws = vgpu::tls_workspace()) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.keys.resize(k);
  std::span<K> out(r.keys.data(), k);

  auto [lo, hi] = device_minmax(acc, v);
  vgpu::Workspace::Scope scope(ws);
  std::span<const K> cur = v;
  std::span<K> next = ws.alloc<K>(v.size());
  std::span<K> other = ws.alloc<K>(v.size());

  u64 emitted = 0;
  u64 rem = k;
  std::array<u64, kRadixBuckets> hist;

  while (lo < hi && rem > 0) {
    const K clo = lo, chi = hi;
    histogram256(
        acc, cur, [](K) { return true; },
        [clo, chi](K x) { return detail::bucket_of(x, clo, chi); }, hist,
        "bucket_oop_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        break;
      }
      cum += hist[b];
    }
    const auto [blo, bhi] = detail::bucket_bounds(chosen, lo, hi);
    emitted = device_compact(
        acc, cur, [bhi](K x) { return x > bhi; }, out, emitted,
        "bucket_oop_emit");
    const u64 kept = device_compact(
        acc, cur, [blo, bhi](K x) { return x >= blo && x <= bhi; }, next, 0,
        "bucket_oop_keep");
    rem -= cum;
    cur = std::span<const K>(next.data(), kept);
    std::swap(next, other);
    lo = blo;
    hi = bhi;
    if (kept == rem) {
      emitted = device_compact(
          acc, cur, [](K) { return true; }, out, emitted, "bucket_oop_flush");
      rem = 0;
    }
  }
  if (rem > 0) {
    // Range collapsed: survivors are copies of `lo`.
    for (u64 i = 0; i < rem; ++i) r.keys[emitted + i] = lo;
    emitted += rem;
  }
  assert(emitted == k);
  std::sort(r.keys.begin(), r.keys.end(), std::greater<>());
  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

/// GGKS-style in-place bucket top-k. Like radix_topk_ggks_inplace, retired
/// elements (outside the bucket of interest) are overwritten with the
/// sentinel 0, paying one scattered read-modify-write store per retired
/// element; elements above the bucket are emitted to the result first.
/// Destructive; requires nonzero keys (documented GGKS limitation).
template <class K>
TopkResult<K> bucket_topk_ggks_inplace(vgpu::Device& dev, std::span<K> v,
                                       u64 k) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);
  TopkResult<K> r;
  r.keys.resize(k);
  std::span<K> out(r.keys.data(), k);
  std::span<const K> cv(v.data(), v.size());

  auto [lo, hi] = device_minmax(acc, cv);
  u64 emitted = 0;
  u64 rem = k;
  std::array<u64, kRadixBuckets> hist;

  while (lo < hi && rem > 0) {
    const K clo = lo, chi = hi;
    histogram256(
        acc, cv, [clo, chi](K x) { return x != 0 && x >= clo && x <= chi; },
        [clo, chi](K x) { return detail::bucket_of(x, clo, chi); }, hist,
        "bucket_inp_hist");
    u64 cum = 0;
    u32 chosen = 0;
    for (int b = kRadixBuckets - 1; b >= 0; --b) {
      if (cum + hist[b] >= rem) {
        chosen = static_cast<u32>(b);
        break;
      }
      cum += hist[b];
    }
    const auto [blo, bhi] = detail::bucket_bounds(chosen, lo, hi);

    // Zeroing pass: emit > bhi, zero everything outside [blo, bhi].
    u64 counter = emitted;
    std::span<u64> cnt(&counter, 1);
    auto cfg = stream_launch(acc.device(), v.size(), "bucket_inp_zero");
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
        if (s.len == 0) return;
        u64 pos = s.begin;
        const u64 end = s.begin + s.len;
        while (pos < end) {
          const u32 active =
              static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
          auto vals = w.load_coalesced(cv, pos, active);
          vgpu::LaneArray<u8> is_above{}, is_retired{};
          for (u32 l = 0; l < active; ++l) {
            if (vals[l] == 0) continue;
            if (vals[l] > bhi) {
              is_above[l] = 1;
              is_retired[l] = 1;
            } else if (vals[l] < blo) {
              is_retired[l] = 1;
            }
          }
          const u32 above_mask = w.ballot(is_above, active);
          const u32 c = std::popcount(above_mask);
          if (c) {
            const u64 base = w.atomic_add(cnt, 0, static_cast<u64>(c));
            vgpu::LaneArray<K> packed{};
            u32 j = 0;
            for (u32 l = 0; l < active; ++l)
              if (is_above[l]) packed[j++] = vals[l];
            w.store_coalesced(out, base, packed, c);
          }
          const u32 retire_mask = w.ballot(is_retired, active);
          if (retire_mask) {
            vgpu::LaneArray<u64> idx{};
            vgpu::LaneArray<K> zeros{};
            for (u32 l = 0; l < active; ++l) idx[l] = pos + l;
            w.store_scattered(v, idx, zeros, retire_mask);
          }
          pos += active;
        }
      });
    });
    emitted = counter;
    rem -= cum;
    lo = blo;
    hi = bhi;
    if (hist[chosen] == rem) {
      emitted = device_compact(
          acc, cv, [](K x) { return x != 0; }, out, emitted,
          "bucket_inp_flush");
      rem = 0;
      break;
    }
  }
  for (u64 i = 0; i < rem; ++i) r.keys[emitted + i] = lo;
  emitted += rem;
  assert(emitted == k);
  std::sort(r.keys.begin(), r.keys.end(), std::greater<>());
  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
