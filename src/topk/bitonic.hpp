// Bitonic top-k (Shanbhag et al. [42], Section 2.2 / Figure 2).
//
// The vector is cut into chunks of k' = bit_ceil(k); each chunk is sorted,
// then pairs of sorted chunks are bitonically merged and only the top k'
// survive — halving the candidate set per iteration until k' remain. The
// workload reduction per pass is exactly 2x, independent of the data
// distribution, which is why Figure 4 shows bitonic as the stable (but
// slow-growing-with-k) baseline.
//
// Hardware mapping: for k' <= 256 each merge fits in shared memory (the
// paper's fast path); beyond that the network must run out of global memory
// and performance collapses — the original code "experiences shared memory
// overflow when k goes beyond 256" and the authors patched it to keep
// running, which is also what we model here.
//
// Simulation note: the compare-exchange networks are *charged* analytically
// (stage count x exchanges per stage, the canonical bitonic cost) while the
// functional sort/merge is performed with the host library — the results are
// identical to running the network, element movement through global memory
// is still performed and counted through the instrumented warp API.
#pragma once

#include <bit>

#include "topk/kernels.hpp"

namespace drtopk::topk {

namespace detail {

/// Compare-exchange count of a bitonic *sort* of m = 2^p elements:
/// p(p+1)/2 stages of m/2 exchanges.
inline u64 bitonic_sort_cx(u64 m) {
  if (m < 2) return 0;
  const u64 p = static_cast<u64>(std::bit_width(m) - 1);
  return (m / 2) * p * (p + 1) / 2;
}

/// Compare-exchange count of a bitonic *merge* of m = 2^p elements:
/// p stages of m/2 exchanges.
inline u64 bitonic_merge_cx(u64 m) {
  if (m < 2) return 0;
  const u64 p = static_cast<u64>(std::bit_width(m) - 1);
  return (m / 2) * p;
}

/// Shared-memory path: every exchange reads and writes two words.
inline void charge_shared_network(vgpu::KernelStats& s, u64 cx) {
  s.shared_loads += 2 * cx;
  s.shared_stores += 2 * cx;
}

/// Global-memory path (k' > 256): each *stage* of the network streams the
/// whole working set through global memory once.
template <class K>
void charge_global_network(vgpu::KernelStats& s, u64 m, u64 stages) {
  s.global_load_elems += m * stages;
  s.global_load_bytes += m * stages * sizeof(K);
  s.global_load_txns += vgpu::detail::coalesced_txns(m * sizeof(K)) * stages;
  s.global_store_elems += m * stages;
  s.global_store_bytes += m * stages * sizeof(K);
  s.global_store_txns += vgpu::detail::coalesced_txns(m * sizeof(K)) * stages;
}

inline u64 bitonic_sort_stages(u64 m) {
  if (m < 2) return 0;
  const u64 p = static_cast<u64>(std::bit_width(m) - 1);
  return p * (p + 1) / 2;
}

inline u64 bitonic_merge_stages(u64 m) {
  if (m < 2) return 0;
  return static_cast<u64>(std::bit_width(m) - 1);
}

}  // namespace detail

/// Largest k' (power of two) whose merges still fit the shared-memory fast
/// path; the paper's bitonic source overflows beyond this.
inline constexpr u64 kBitonicSharedMaxK = 256;

template <class K>
TopkResult<K> bitonic_topk(vgpu::Device& dev, std::span<const K> v, u64 k,
                           vgpu::Workspace& ws = vgpu::tls_workspace()) {
  assert(k >= 1 && k <= v.size());
  WallTimer wall;
  Accum acc(dev);

  const u64 kp = std::bit_ceil(k);
  const bool shared_path = kp <= kBitonicSharedMaxK;
  const u64 n = v.size();
  const u64 chunks0 = (std::max(n, kp) + kp - 1) / kp;
  const u64 np = chunks0 * kp;

  // Ping-pong candidate buffers (workspace scratch, rewound on return);
  // padding slots hold the minimum key, which can never displace a real
  // element from the top-k multiset.
  vgpu::Workspace::Scope scope(ws);
  std::span<K> curv = ws.alloc<K>(np);
  std::span<K> nextv = ws.alloc<K>((chunks0 + 1) / 2 * kp);

  // ---- Phase 1: sort every kp-chunk descending into bufA ----
  {
    auto cfg = dev.launch_for_warp_items(chunks0, "bitonic_localsort");
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        std::vector<K> tmp;
        for (u64 c = w.global_id(); c < chunks0; c += w.grid_warps()) {
          const u64 base = c * kp;
          const u64 real = base < n ? std::min(kp, n - base) : 0;
          tmp.assign(kp, std::numeric_limits<K>::min());
          w.scan_coalesced_idx(v, base, real,
                               [&](u32, K x, u64 i) { tmp[i - base] = x; });
          std::sort(tmp.begin(), tmp.end(), std::greater<>());
          if (shared_path) {
            detail::charge_shared_network(w.stats(),
                                          detail::bitonic_sort_cx(kp));
          } else {
            detail::charge_global_network<K>(
                w.stats(), kp, detail::bitonic_sort_stages(kp));
          }
          u64 pos = 0;
          while (pos < kp) {
            const u32 active =
                static_cast<u32>(std::min<u64>(vgpu::kWarpSize, kp - pos));
            vgpu::LaneArray<K> lanes{};
            for (u32 l = 0; l < active; ++l) lanes[l] = tmp[pos + l];
            w.store_coalesced(curv, base + pos, lanes, active);
            pos += active;
          }
        }
      });
    });
  }

  // ---- Phase 2: tournament of bitonic merges, keep top kp per merge ----
  u64 chunks = chunks0;
  while (chunks > 1) {
    const u64 pairs = chunks / 2;
    const u64 odd = chunks % 2;
    std::span<const K> cur(curv.data(), chunks * kp);
    auto cfg = dev.launch_for_warp_items(pairs + odd, "bitonic_merge");
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        std::vector<K> a, b, outbuf;
        for (u64 p = w.global_id(); p < pairs + odd; p += w.grid_warps()) {
          const u64 base = 2 * p * kp;
          a.resize(kp);
          w.scan_coalesced_idx(cur, base, kp,
                               [&](u32, K x, u64 i) { a[i - base] = x; });
          if (p < pairs) {
            b.resize(kp);
            w.scan_coalesced_idx(
                cur, base + kp, kp,
                [&](u32, K x, u64 i) { b[i - base - kp] = x; });
            // Top-kp of the merge of two descending runs.
            outbuf.clear();
            outbuf.reserve(kp);
            u64 ia = 0, ib = 0;
            while (outbuf.size() < kp) {
              if (ib >= kp || (ia < kp && a[ia] >= b[ib]))
                outbuf.push_back(a[ia++]);
              else
                outbuf.push_back(b[ib++]);
            }
            if (shared_path) {
              detail::charge_shared_network(
                  w.stats(), detail::bitonic_merge_cx(2 * kp));
            } else {
              detail::charge_global_network<K>(
                  w.stats(), 2 * kp, detail::bitonic_merge_stages(2 * kp));
            }
          } else {
            outbuf = a;  // odd tail chunk passes through
          }
          u64 pos = 0;
          while (pos < kp) {
            const u32 active =
                static_cast<u32>(std::min<u64>(vgpu::kWarpSize, kp - pos));
            vgpu::LaneArray<K> lanes{};
            for (u32 l = 0; l < active; ++l) lanes[l] = outbuf[pos + l];
            w.store_coalesced(nextv, p * kp + pos, lanes, active);
            pos += active;
          }
        }
      });
    });
    chunks = pairs + odd;
    std::swap(curv, nextv);
  }

  TopkResult<K> r;
  r.keys.assign(curv.begin(), curv.begin() + static_cast<i64>(k));
  r.kth = r.keys.back();
  r.stats = acc.stats();
  r.sim_ms = acc.sim_ms();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
