// Priority-queue (min-heap) top-k — the textbook CPU baseline from the
// paper's introduction. Kept as the oracle the GPU engines are validated
// against and as the host-side finalizer for small candidate sets (e.g. the
// multi-GPU primary's final top-k).
#pragma once

#include <queue>

#include "topk/common.hpp"
#include "vgpu/thread_pool.hpp"

namespace drtopk::topk {

/// Sequential heap top-k: O(n log k), single pass.
template <class K>
std::vector<K> heap_topk_host(std::span<const K> v, u64 k) {
  assert(k >= 1 && k <= v.size());
  std::priority_queue<K, std::vector<K>, std::greater<K>> heap;
  for (const K x : v) {
    if (heap.size() < k) {
      heap.push(x);
    } else if (x > heap.top()) {
      heap.pop();
      heap.push(x);
    }
  }
  std::vector<K> out(k);
  for (u64 i = k; i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

/// Parallel heap top-k: per-thread local heaps over chunks, merged at the
/// end — the "many local priority queues + global merge" design whose
/// synchronization cost the paper cites as the reason GPUs avoid it.
template <class K>
std::vector<K> heap_topk_parallel(vgpu::ThreadPool& pool,
                                  std::span<const K> v, u64 k) {
  assert(k >= 1 && k <= v.size());
  const u64 n = v.size();
  const u32 parts = pool.size();
  const u64 per = (n + parts - 1) / parts;
  std::vector<std::vector<K>> local(parts);
  pool.parallel_for(0, parts, [&](u64 p, u32) {
    const u64 lo = p * per;
    const u64 hi = std::min(n, lo + per);
    if (lo >= hi) return;
    const u64 kk = std::min<u64>(k, hi - lo);
    local[p] = heap_topk_host(v.subspan(lo, hi - lo), kk);
  });
  std::vector<K> all;
  for (auto& l : local) all.insert(all.end(), l.begin(), l.end());
  return reference_topk(std::span<const K>(all.data(), all.size()), k);
}

/// Engine-shaped wrapper (wall-clock only; a CPU baseline has no device
/// stats or simulated GPU time).
template <class K>
TopkResult<K> heap_topk(std::span<const K> v, u64 k,
                        vgpu::ThreadPool* pool = nullptr) {
  WallTimer wall;
  TopkResult<K> r;
  r.keys = pool ? heap_topk_parallel(*pool, v, k) : heap_topk_host(v, k);
  r.kth = r.keys.back();
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
