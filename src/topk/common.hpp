// Shared result/accounting types for all top-k engines.
//
// Engines operate on "directed keys": unsigned integers whose natural
// ordering is largest-wins (see data/key_traits.hpp). The typed frontend in
// topk/topk.hpp converts user values to keys and back.
#pragma once

#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "data/key_traits.hpp"
#include "vgpu/device.hpp"

namespace drtopk::topk {

using data::Criterion;

/// Result of a top-k engine on directed keys.
template <class K>
struct TopkResult {
  std::vector<K> keys;  ///< exactly k keys, sorted descending
  K kth{};              ///< == keys.back() (the k-selection answer)
  vgpu::KernelStats stats;  ///< summed over every kernel of the call
  double sim_ms = 0.0;      ///< modeled GPU time (cost model)
  double wall_ms = 0.0;     ///< host wall-clock of the call
};

/// Accumulates per-kernel stats and simulated time across an engine call.
class Accum {
 public:
  explicit Accum(vgpu::Device& dev) : dev_(&dev) {}

  /// Record one finished kernel launch.
  void add(const vgpu::KernelStats& s) {
    stats_ += s;
    sim_ms_ += dev_->sim_ms(s);
  }

  /// Record an already-priced multi-kernel snapshot (e.g. a nested engine
  /// run whose per-kernel sim times were summed precisely).
  void add(const vgpu::KernelStats& s, double sim_ms) {
    stats_ += s;
    sim_ms_ += sim_ms;
  }

  /// Launch-and-record convenience.
  template <class F>
  void launch(const vgpu::Launch& cfg, F&& fn) {
    add(dev_->launch(cfg, std::forward<F>(fn)));
  }

  vgpu::Device& device() { return *dev_; }
  const vgpu::KernelStats& stats() const { return stats_; }
  double sim_ms() const { return sim_ms_; }

 private:
  vgpu::Device* dev_;
  vgpu::KernelStats stats_;
  double sim_ms_ = 0.0;
};

/// Scoped wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Host-side reference: the exact multiset of the k largest keys, sorted
/// descending. Used by tests and to finalize small candidate sets.
template <class K>
std::vector<K> reference_topk(std::span<const K> v, u64 k) {
  std::vector<K> copy(v.begin(), v.end());
  if (k >= copy.size()) {
    std::sort(copy.begin(), copy.end(), std::greater<>());
    return copy;
  }
  std::nth_element(copy.begin(), copy.begin() + static_cast<i64>(k),
                   copy.end(), std::greater<>());
  copy.resize(k);
  std::sort(copy.begin(), copy.end(), std::greater<>());
  return copy;
}

}  // namespace drtopk::topk
