// Batched multi-segment top-k selection: one launch selects for N
// independent, query-id-tagged candidate segments.
//
// The Dr. Top-k pipeline ends with a second top-k over a small candidate
// vector. Under the serving engine one admission group produces *many* such
// vectors — and at serving rates each one's launch sequence costs more than
// its memory traffic (cost model: ~5 us launch overhead vs micro-second
// sorts). RadiK (arXiv:2501.14336) shows that batching many independent
// small selections into a single launch recovers exactly this overhead;
// this engine models that design on the virtual GPU:
//
//   * single-CTA path — one CTA per segment inside ONE launch: stage the
//     segment into the SM's shared memory (coalesced), bitonically sort it
//     there (charged analytically, as topk/small.hpp does), emit the top-k.
//     Generalizes small_topk_shared from "one launch, one segment" to
//     "one launch, all segments".
//   * multi-CTA path — segments larger than one SM's shared memory get a
//     two-level treatment: several CTAs each sort one shared-memory-sized
//     slice and keep its top-k prefix (any global top-k element is in its
//     slice's top-k), then a tiny cross-CTA merge CTA selects over the
//     concatenated prefixes. Two launches total for *all* such segments,
//     lifting the one-SM capacity cap by the slice count while staying in
//     the single-digit-launch regime.
//   * per-segment fallback — segments too large even for the two-level
//     path run the regular flag-radix engine, one at a time. Also the
//     measurable "no batching" baseline (BatchedMode::kPerSegment).
//
// Segments that view the *same* underlying span (many queries selecting
// over one shared delegate vector — "queries sharing a corpus") are
// coalesced into one problem: a single sort serves every k over that data,
// so N same-corpus selections cost one sort + N emissions instead of N
// sorts. Each segment keeps its own k / selection_only contract, so
// exactness is per query (cf. the grouping argument of arXiv:2412.04358).
//
// Ragged inputs are first-class: k is clamped to the segment width (the
// result holds min(k, |segment|) keys) and empty segments yield empty
// results — the serving layer's parity suite exercises both.
#pragma once

#include <unordered_map>
#include <vector>

#include "topk/topk.hpp"

namespace drtopk::topk {

/// One selection problem of a batch. `data` typically points into an arena
/// (the serving group's workspace); the engine only reads it.
template <class K>
struct BatchedSegment {
  std::span<const K> data;
  u64 k = 1;                    ///< clamped to data.size() internally
  u64 tag = 0;                  ///< caller id (query id) — carried, not used
  bool selection_only = false;  ///< emit only the k-th key
};

/// Execution-path policy. kAuto picks single-CTA / multi-CTA / per-segment
/// per problem from the capacity ladder — both capacity checks are O(1)
/// closed forms, so pre-recorded "expected path" hints (an earlier design
/// fed them from serve::PlanCache's per-shape stats) cannot beat it, only
/// mispredict; they were dropped. kPerSegment is the one hard switch: it
/// disables batching entirely and is the measurable per-query baseline.
enum class BatchedMode : u8 {
  kAuto,        ///< single-CTA -> multi-CTA -> per-segment, by capacity
  kPerSegment,  ///< no batching: per-segment engine runs (the baseline)
};

/// Per-batch output: each segment's selected keys plus path/launch
/// accounting (the serving layer's launch-count regression tests key off
/// `launches`).
template <class K>
struct BatchedResult {
  /// Per segment: min(k, |segment|) keys sorted descending (selection-only
  /// segments: just the k-th key; empty segments: empty).
  std::vector<std::vector<K>> keys;
  u64 launches = 0;      ///< kernel launches this call performed
  u64 single_cta = 0;    ///< problems served by the one-launch path
  u64 multi_cta = 0;     ///< problems served by the two-level path
  u64 fallback = 0;      ///< problems served per-segment
  u64 shared_sorts = 0;  ///< segments that rode another segment's sort
};

/// The single-CTA capacity bound — exactly small_topk_fits's bound
/// (small_topk_cap), so the batched classification and the per-query
/// small-input path can never drift apart.
template <class K>
u64 batched_single_cap(const vgpu::GpuProfile& p) {
  return small_topk_cap<K>(p);
}

/// True when an n-element segment selecting up to k fits the two-level
/// multi-CTA path: slices of one-SM size, and the cross-CTA merge of the
/// per-slice top-k prefixes must itself fit one SM's shared memory.
template <class K>
bool batched_multi_fits(const vgpu::GpuProfile& p, u64 n, u64 k) {
  const u64 cap = batched_single_cap<K>(p);
  if (cap == 0 || n <= cap) return n <= cap;
  const u64 slices = (n + cap - 1) / cap;
  const u64 last_len = n - (slices - 1) * cap;
  const u64 merge_total =
      (slices - 1) * std::min(k, cap) + std::min(k, last_len);
  return merge_total <= cap;
}

/// The top rung of the capacity ladder, for callers that *accumulate*
/// segments before one shared launch (the serving layer's cross-group
/// finalization window): the segment count past which adding more stops
/// amortizing launch overhead. One single-CTA problem occupies one CTA, so
/// a few waves' worth of CTAs (4 x num_sms) already hides the ~5 us launch
/// cost behind compute; parking further work past that only delays results
/// that are ready to ship. Used as the default
/// serve::ServerConfig::finalize_max_segments.
inline u64 batched_segment_cap(const vgpu::GpuProfile& p) {
  return std::max<u64>(1, static_cast<u64>(p.num_sms) * 4);
}

namespace detail {

/// Coalesced staging of v[begin, begin+len) into a CTA's shared span at
/// shared offset [sh_off, sh_off+len) (every warp of the CTA copies its
/// slice, as in small_topk_shared). The offset form lets one CTA stage
/// several disjoint runs side by side (the merge entry point below).
template <class K>
void batched_stage_shared(vgpu::CtaCtx& cta, std::span<const K> v, u64 begin,
                          u64 len, vgpu::SharedSpan<K>& sh, u64 sh_off = 0) {
  cta.for_each_warp([&](vgpu::Warp& w) {
    const u32 local = w.global_id() % cta.warps_per_cta();
    const Slice s = warp_slice(len, local, cta.warps_per_cta());
    if (s.len == 0) return;
    u64 pos = s.begin;
    const u64 end = s.begin + s.len;
    while (pos < end) {
      const u32 active =
          static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
      auto vals = w.load_coalesced(v, begin + pos, active);
      sh.warp_scatter(active, [&](u32 l) { return sh_off + pos + l; }, vals);
      pos += active;
    }
  });
}

/// Coalesced emission of the leading `count` shared elements into `out`.
template <class K>
void batched_emit_shared(vgpu::Warp& w, vgpu::SharedSpan<K>& sh,
                         std::span<K> out, u64 count) {
  u64 pos = 0;
  while (pos < count) {
    const u32 active =
        static_cast<u32>(std::min<u64>(vgpu::kWarpSize, count - pos));
    auto vals = sh.warp_gather(active, [&](u32 l) { return pos + l; });
    w.store_coalesced(out, pos, vals, active);
    pos += active;
  }
}

}  // namespace detail

/// Selects top-k for every segment of the batch. Scratch (the multi-CTA
/// partial buffers) comes from `ws` and is rewound before returning; stats
/// and simulated time accumulate into `acc`.
template <class K>
BatchedResult<K> batched_topk(Accum& acc,
                              std::span<const BatchedSegment<K>> segs,
                              BatchedMode mode = BatchedMode::kAuto,
                              vgpu::Workspace& ws = vgpu::tls_workspace()) {
  // Defaulting scope: serve's "first"/"second" call-site labels win.
  vgpu::StageScope stage_scope("batched");
  BatchedResult<K> r;
  r.keys.resize(segs.size());
  const vgpu::GpuProfile& prof = acc.device().profile();
  const u64 cap = batched_single_cap<K>(prof);

  for (size_t i = 0; i < segs.size(); ++i) {
    const u64 keff = std::min(segs[i].k, segs[i].data.size());
    r.keys[i].resize(segs[i].selection_only ? (keff ? 1 : 0) : keff);
  }

  // ---- Coalesce same-span segments into problems: one sort per distinct
  // (pointer, length), every attached segment emits from it. ----
  enum class Path : u8 { kSingle, kMulti, kFallback };
  struct Problem {
    const K* ptr = nullptr;
    u64 n = 0;
    u64 kmax = 0;                 ///< max clamped k over attached segments
    std::vector<u32> seg_ids;
    Path path = Path::kSingle;
    u64 slices = 0;               ///< multi-CTA slice count
    u64 part_off = 0;             ///< offset into the shared partial buffer
    u64 part_total = 0;           ///< merge-set size
  };
  std::vector<Problem> probs;
  // Pointer-keyed index keeps coalescing O(N) — the common finalization
  // batch is all-distinct spans, which a linear rescan would make O(N^2).
  // Same pointer with different lengths (prefix views) is rare: those
  // chain through the per-pointer bucket.
  std::unordered_map<const K*, std::vector<u32>> by_ptr;
  for (size_t i = 0; i < segs.size(); ++i) {
    const auto& sg = segs[i];
    const u64 keff = std::min(sg.k, sg.data.size());
    if (sg.data.empty() || keff == 0) continue;
    Problem* host = nullptr;
    for (const u32 pi : by_ptr[sg.data.data()]) {
      if (probs[pi].n == sg.data.size()) {
        host = &probs[pi];
        break;
      }
    }
    if (!host) {
      by_ptr[sg.data.data()].push_back(static_cast<u32>(probs.size()));
      probs.emplace_back();
      host = &probs.back();
      host->ptr = sg.data.data();
      host->n = sg.data.size();
    } else {
      ++r.shared_sorts;
    }
    host->kmax = std::max(host->kmax, keff);
    host->seg_ids.push_back(static_cast<u32>(i));
  }

  // ---- Classify each problem by capacity (or the forced mode). ----
  vgpu::Workspace::Scope scope(ws);
  u64 part_sum = 0;
  for (Problem& pb : probs) {
    if (mode == BatchedMode::kPerSegment) {
      pb.path = Path::kFallback;
    } else if (pb.n <= cap) {
      pb.path = Path::kSingle;
    } else if (batched_multi_fits<K>(prof, pb.n, pb.kmax)) {
      pb.path = Path::kMulti;
      pb.slices = (pb.n + cap - 1) / cap;
      const u64 last_len = pb.n - (pb.slices - 1) * cap;
      pb.part_total = (pb.slices - 1) * std::min(pb.kmax, cap) +
                      std::min(pb.kmax, last_len);
      pb.part_off = part_sum;
      part_sum += pb.part_total;
    } else {
      pb.path = Path::kFallback;
    }
    r.single_cta += pb.path == Path::kSingle;
    r.multi_cta += pb.path == Path::kMulti;
    r.fallback += pb.path == Path::kFallback;
  }
  std::span<K> partial = ws.alloc<K>(part_sum);

  // ---- Launch 1: every single-CTA problem plus every multi-CTA slice,
  // one CTA each, in ONE launch. ----
  constexpr u32 kNoSlice = 0xFFFF'FFFFu;
  struct Item {
    u32 prob;
    u32 slice;
  };
  std::vector<Item> items;
  u64 max_shared = 0;
  for (u32 pi = 0; pi < probs.size(); ++pi) {
    const Problem& pb = probs[pi];
    if (pb.path == Path::kSingle) {
      items.push_back({pi, kNoSlice});
      max_shared = std::max(max_shared, pb.n * sizeof(K));
    } else if (pb.path == Path::kMulti) {
      for (u32 s = 0; s < pb.slices; ++s) items.push_back({pi, s});
      max_shared = std::max(max_shared, cap * sizeof(K));
    }
  }

  if (!items.empty()) {
    vgpu::Launch cfg;
    cfg.name = "batched_select";
    cfg.num_ctas = static_cast<u32>(items.size());
    cfg.warps_per_cta = 8;
    cfg.shared_bytes = max_shared;
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      const Item it = items[cta.cta_id()];
      const Problem& pb = probs[it.prob];
      const std::span<const K> data(pb.ptr, pb.n);
      if (it.slice == kNoSlice) {
        // Single-CTA segment: stage, sort, emit for every attached query.
        auto sh = cta.shared().alloc<K>(pb.n);
        detail::batched_stage_shared(cta, data, 0, pb.n, sh);
        vgpu::Warp w = cta.warp(0);
        topk::detail::charge_shared_network(
            w.stats(), topk::detail::bitonic_sort_cx(std::bit_ceil(pb.n)));
        std::sort(sh.data(), sh.data() + pb.n, std::greater<>());
        for (const u32 si : pb.seg_ids) {
          const auto& sg = segs[si];
          const u64 keff = std::min(sg.k, pb.n);
          std::span<K> out(r.keys[si]);
          if (sg.selection_only)
            w.st(out, 0, sh.ld(keff - 1));
          else
            detail::batched_emit_shared(w, sh, out, keff);
        }
      } else {
        // Multi-CTA slice: sort the slice, keep its top-kmax prefix for
        // the merge CTA (any global top-k element is in its slice's top-k).
        const u64 begin = static_cast<u64>(it.slice) * cap;
        const u64 slen = std::min(cap, pb.n - begin);
        auto sh = cta.shared().alloc<K>(slen);
        detail::batched_stage_shared(cta, data, begin, slen, sh);
        vgpu::Warp w = cta.warp(0);
        topk::detail::charge_shared_network(
            w.stats(), topk::detail::bitonic_sort_cx(std::bit_ceil(slen)));
        std::sort(sh.data(), sh.data() + slen, std::greater<>());
        const u64 keep = std::min(pb.kmax, slen);
        const u64 off = pb.part_off + it.slice * std::min(pb.kmax, cap);
        detail::batched_emit_shared(w, sh, partial.subspan(off, keep), keep);
      }
    });
    ++r.launches;
  }

  // ---- Launch 2 (only when multi-CTA problems exist): one merge CTA per
  // problem selects over the concatenated slice prefixes. ----
  std::vector<u32> multis;
  u64 merge_shared = 0;
  for (u32 pi = 0; pi < probs.size(); ++pi) {
    if (probs[pi].path == Path::kMulti) {
      multis.push_back(pi);
      merge_shared = std::max(merge_shared, probs[pi].part_total * sizeof(K));
    }
  }
  if (!multis.empty()) {
    vgpu::Launch cfg;
    cfg.name = "batched_merge";
    cfg.num_ctas = static_cast<u32>(multis.size());
    cfg.warps_per_cta = 8;
    cfg.shared_bytes = merge_shared;
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      const Problem& pb = probs[multis[cta.cta_id()]];
      const u64 m = pb.part_total;
      auto sh = cta.shared().alloc<K>(m);
      std::span<const K> runs(partial.data() + pb.part_off, m);
      detail::batched_stage_shared(cta, runs, 0, m, sh);
      vgpu::Warp w = cta.warp(0);
      // The merge set is a concatenation of pb.slices sorted runs: charge
      // the P-way merge network (a binary tree of bitonic merges), not a
      // full re-sort — the runs' order is information already paid for in
      // launch 1.
      topk::detail::charge_shared_network(
          w.stats(), vgpu::merge_network_cx(m, pb.slices));
      std::sort(sh.data(), sh.data() + m, std::greater<>());
      for (const u32 si : pb.seg_ids) {
        const auto& sg = segs[si];
        const u64 keff = std::min(sg.k, pb.n);
        std::span<K> out(r.keys[si]);
        if (sg.selection_only)
          w.st(out, 0, sh.ld(keff - 1));
        else
          detail::batched_emit_shared(w, sh, out, keff);
      }
    });
    ++r.launches;
  }

  // ---- Fallback problems: the regular engine, once per problem (attached
  // segments still share the run via the prefix property). ----
  for (const Problem& pb : probs) {
    if (pb.path != Path::kFallback) continue;
    const std::span<const K> data(pb.ptr, pb.n);
    auto fr = run_topk_keys<K>(acc.device(), data, pb.kmax,
                               Algo::kRadixFlag, ws);
    acc.add(fr.stats, fr.sim_ms);
    r.launches += fr.stats.kernels_launched;
    for (const u32 si : pb.seg_ids) {
      const auto& sg = segs[si];
      const u64 keff = std::min(sg.k, pb.n);
      if (sg.selection_only) {
        r.keys[si][0] = fr.keys[keff - 1];
      } else {
        std::copy(fr.keys.begin(), fr.keys.begin() + static_cast<i64>(keff),
                  r.keys[si].begin());
      }
    }
  }

  return r;
}

/// One cross-run merge problem: `runs` are independently *pre-selected*
/// winner lists, each sorted descending (a shard's local top-k, a slice's
/// prefix, a leader's pre-merge output). The merge selects the global
/// top-min(k, Σ|run|) over their union. Unlike BatchedSegment the data is
/// not one contiguous span — the engine stages each run at its offset.
template <class K>
struct MergeSegment {
  std::vector<std::span<const K>> runs;  ///< each sorted descending
  u64 k = 1;                             ///< clamped to Σ|run| internally
  u64 tag = 0;                  ///< caller id (query id) — carried, not used
  bool selection_only = false;  ///< emit only the k-th key
};

/// Merges every segment's pre-sorted runs and selects its top-k, one CTA
/// per segment inside ONE "merge_select" launch. This is the cross-shard
/// reduction kernel of serve::ShardedTopkServer: N shard-local winner lists
/// in, one bit-exact global winner list out, charged as a P-way merge
/// network (vgpu::merge_network_cx) — the runs' order is information the
/// shards already paid for. Segments whose merge set exceeds one SM's
/// shared memory fall back to a charged concatenation + flag-radix run
/// (never hit by serving-sized merges: m = shards·k ≪ the SM cap).
/// Empty runs are skipped; all-empty segments yield empty results.
template <class K>
BatchedResult<K> batched_merge_topk(Accum& acc,
                                    std::span<const MergeSegment<K>> segs,
                                    vgpu::Workspace& ws = vgpu::tls_workspace()) {
  // Defaulting scope: serve's "merge" call-site label wins.
  vgpu::StageScope stage_scope("batched");
  BatchedResult<K> r;
  r.keys.resize(segs.size());
  const vgpu::GpuProfile& prof = acc.device().profile();
  const u64 cap = batched_single_cap<K>(prof);

  enum class Path : u8 { kSingle, kFallback, kEmpty };
  struct Prob {
    u64 m = 0;        ///< Σ run sizes
    u64 nruns = 0;    ///< non-empty run count
    Path path = Path::kEmpty;
  };
  std::vector<Prob> probs(segs.size());
  u64 max_shared = 0;
  for (size_t i = 0; i < segs.size(); ++i) {
    Prob& pb = probs[i];
    for (const auto& run : segs[i].runs) {
      pb.m += run.size();
      pb.nruns += !run.empty();
    }
    const u64 keff = std::min(segs[i].k, pb.m);
    r.keys[i].resize(segs[i].selection_only ? (keff ? 1 : 0) : keff);
    if (pb.m == 0 || keff == 0) {
      pb.path = Path::kEmpty;
    } else if (pb.m <= cap) {
      pb.path = Path::kSingle;
      max_shared = std::max(max_shared, pb.m * sizeof(K));
      ++r.single_cta;
    } else {
      pb.path = Path::kFallback;
      ++r.fallback;
    }
  }

  std::vector<u32> singles;
  for (u32 i = 0; i < probs.size(); ++i)
    if (probs[i].path == Path::kSingle) singles.push_back(i);

  if (!singles.empty()) {
    vgpu::Launch cfg;
    cfg.name = "merge_select";
    cfg.num_ctas = static_cast<u32>(singles.size());
    cfg.warps_per_cta = 8;
    cfg.shared_bytes = max_shared;
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      const u32 si = singles[cta.cta_id()];
      const auto& sg = segs[si];
      const Prob& pb = probs[si];
      auto sh = cta.shared().alloc<K>(pb.m);
      u64 off = 0;
      for (const auto& run : sg.runs) {
        if (run.empty()) continue;
        detail::batched_stage_shared(cta, run, 0, run.size(), sh, off);
        off += run.size();
      }
      vgpu::Warp w = cta.warp(0);
      topk::detail::charge_shared_network(
          w.stats(), vgpu::merge_network_cx(pb.m, pb.nruns));
      std::sort(sh.data(), sh.data() + pb.m, std::greater<>());
      const u64 keff = std::min(sg.k, pb.m);
      std::span<K> out(r.keys[si]);
      if (sg.selection_only)
        w.st(out, 0, sh.ld(keff - 1));
      else
        detail::batched_emit_shared(w, sh, out, keff);
    });
    ++r.launches;
  }

  // ---- Oversized merge sets: concatenate the runs into workspace global
  // memory with a charged copy launch, then run the flag-radix engine. ----
  for (u32 i = 0; i < probs.size(); ++i) {
    if (probs[i].path != Path::kFallback) continue;
    const auto& sg = segs[i];
    const Prob& pb = probs[i];
    vgpu::Workspace::Scope scope(ws);
    std::span<K> flat = ws.alloc<K>(pb.m);
    vgpu::Launch cfg;
    cfg.name = "merge_concat";
    cfg.num_ctas = 1;
    cfg.warps_per_cta = 8;
    acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
      cta.for_each_warp([&](vgpu::Warp& w) {
        if (w.global_id() % cta.warps_per_cta() != 0) return;
        u64 off = 0;
        for (const auto& run : sg.runs) {
          u64 pos = 0;
          while (pos < run.size()) {
            const u32 active = static_cast<u32>(
                std::min<u64>(vgpu::kWarpSize, run.size() - pos));
            auto vals = w.load_coalesced(run, pos, active);
            w.store_coalesced(flat, off + pos, vals, active);
            pos += active;
          }
          off += run.size();
        }
      });
    });
    ++r.launches;
    auto fr = run_topk_keys<K>(acc.device(), std::span<const K>(flat),
                               std::min(sg.k, pb.m), Algo::kRadixFlag, ws);
    acc.add(fr.stats, fr.sim_ms);
    r.launches += fr.stats.kernels_launched;
    const u64 keff = std::min(sg.k, pb.m);
    if (sg.selection_only) {
      r.keys[i][0] = fr.keys[keff - 1];
    } else {
      std::copy(fr.keys.begin(), fr.keys.begin() + static_cast<i64>(keff),
                r.keys[i].begin());
    }
  }

  return r;
}

}  // namespace drtopk::topk
