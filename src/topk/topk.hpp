// Public typed frontend over the top-k engines.
//
//   vgpu::Device dev;
//   auto r = topk::run_topk<float>(dev, distances, k,
//                                  Criterion::kSmallest, Algo::kRadixFlag);
//
// Values of any supported type are mapped to order-preserving unsigned
// "directed keys" (largest-wins) once, the selected engine runs on keys,
// and the result is mapped back. For u32/u64 inputs under kLargest the
// mapping is the identity and costs nothing.
#pragma once

#include "topk/bitonic.hpp"
#include "topk/bucket.hpp"
#include "topk/heap.hpp"
#include "topk/radix.hpp"
#include "topk/small.hpp"
#include "topk/sort.hpp"

namespace drtopk::topk {

enum class Algo {
  kRadixFlag,         ///< optimized flag-based in-place radix (Section 5.1)
  kRadixGgksOop,      ///< GGKS out-of-place radix [2]
  kRadixGgksInplace,  ///< GGKS in-place radix with sentinel zeroing [2]
  kBucketInplace,     ///< in-place bucket (flag-style re-scan) [2]
  kBucketOop,         ///< GGKS out-of-place bucket [2]
  kBucketGgksInplace, ///< GGKS in-place bucket with sentinel zeroing [2]
  kBitonic,           ///< bitonic top-k [42]
  kSortAndChoose,     ///< full radix sort then choose (THRUST stand-in)
  kHeap,              ///< host-side priority-queue baseline (parallel heaps)
};

std::string to_string(Algo a);

/// Cost-model-driven engine choice for an (n, k) shape of `key_bytes`-wide
/// keys on `p`: a cheap analytic roofline comparison (streaming bytes +
/// launch overhead per engine family). serve::PlanCache uses this as the
/// engine-selection seed before its calibration probes refine the pick.
Algo choose_engine(const vgpu::GpuProfile& p, u64 n, u64 k,
                   u32 key_bytes = 4);

/// The GPU algorithms compared throughout the paper's evaluation.
inline std::vector<Algo> baseline_algos() {
  return {Algo::kRadixGgksOop, Algo::kBucketOop, Algo::kBitonic,
          Algo::kSortAndChoose};
}

/// Maps values to directed keys on the device (charged as one streaming
/// pass). Identity-mapped types under kLargest skip the pass entirely
/// (see run_topk). The key buffer is workspace-backed: the caller owns the
/// scope and rewinds when done with the keys.
template <class T>
std::span<typename data::KeyTraits<T>::Key> make_directed_keys(
    Accum& acc, std::span<const T> v, Criterion c,
    vgpu::Workspace& ws = vgpu::tls_workspace()) {
  using Key = typename data::KeyTraits<T>::Key;
  // Key mapping is pre-pipeline work; defaulting scope so an enclosing
  // stage label (e.g. serve's phase-A attribution) wins.
  vgpu::StageScope stage_scope("keys");
  std::span<Key> out = ws.alloc<Key>(v.size());
  auto cfg = stream_launch(acc.device(), v.size(), "to_keys");
  acc.launch(cfg, [&](vgpu::CtaCtx& cta) {
    cta.for_each_warp([&](vgpu::Warp& w) {
      const Slice s = warp_slice(v.size(), w.global_id(), w.grid_warps());
      if (s.len == 0) return;
      u64 pos = s.begin;
      const u64 end = s.begin + s.len;
      while (pos < end) {
        const u32 active =
            static_cast<u32>(std::min<u64>(vgpu::kWarpSize, end - pos));
        auto vals = w.load_coalesced(v, pos, active);
        vgpu::LaneArray<Key> ks{};
        for (u32 l = 0; l < active; ++l)
          ks[l] = data::directed_key(vals[l], c);
        w.store_coalesced(out, pos, ks, active);
        pos += active;
      }
    });
  });
  return out;
}

/// True when T's directed keys are bit-identical to its values.
template <class T>
constexpr bool key_is_identity(Criterion c) {
  return (std::is_same_v<T, u32> || std::is_same_v<T, u64>) &&
         c == Criterion::kLargest;
}

/// Runs `algo` on directed keys (the engine-level entry point). Every
/// engine's scratch comes from `ws` (thread-local fallback when omitted)
/// and is rewound before returning.
template <class K>
TopkResult<K> run_topk_keys(vgpu::Device& dev, std::span<const K> keys,
                            u64 k, Algo algo,
                            vgpu::Workspace& ws = vgpu::tls_workspace()) {
  // Standalone engine runs (benchmarks, tests) get a stage label of their
  // own; inside the Dr. Top-k pipeline the enclosing stage scope wins.
  vgpu::StageScope stage_scope("engine");
  switch (algo) {
    case Algo::kRadixFlag:
      return radix_topk_flag(dev, keys, k);
    case Algo::kRadixGgksOop:
      return radix_topk_ggks_oop(dev, keys, k, ws);
    case Algo::kRadixGgksInplace: {
      // Destructive engine: operate on a scratch copy so callers keep their
      // input (the copy is part of using this engine on borrowed data).
      vgpu::Workspace::Scope scope(ws);
      std::span<K> scratch = ws.alloc<K>(keys.size());
      std::copy(keys.begin(), keys.end(), scratch.begin());
      return radix_topk_ggks_inplace(dev, scratch, k);
    }
    case Algo::kBucketInplace:
      return bucket_topk_inplace(dev, keys, k);
    case Algo::kBucketOop:
      return bucket_topk_oop(dev, keys, k, ws);
    case Algo::kBucketGgksInplace: {
      vgpu::Workspace::Scope scope(ws);
      std::span<K> scratch = ws.alloc<K>(keys.size());
      std::copy(keys.begin(), keys.end(), scratch.begin());
      return bucket_topk_ggks_inplace(dev, scratch, k);
    }
    case Algo::kBitonic:
      return bitonic_topk(dev, keys, k, ws);
    case Algo::kSortAndChoose:
      return sort_and_choose_topk(dev, keys, k, ws);
    case Algo::kHeap:
      // CPU baseline on the device's host thread pool: no kernel stats or
      // simulated GPU time, wall-clock only (see topk/heap.hpp).
      return heap_topk(keys, k, &dev.pool());
  }
  return {};
}

/// Typed frontend: top-k of `values` under `criterion`.
/// result.values[0] is the best element (largest for kLargest, smallest for
/// kSmallest); result.kth is the k-th best — the k-selection answer.
template <class T>
struct TypedTopkResult {
  std::vector<T> values;
  T kth{};
  vgpu::KernelStats stats;
  double sim_ms = 0.0;
  double wall_ms = 0.0;
};

template <class T>
TypedTopkResult<T> run_topk(vgpu::Device& dev, std::span<const T> values,
                            u64 k, Criterion criterion, Algo algo,
                            vgpu::Workspace& ws = vgpu::tls_workspace()) {
  using Key = typename data::KeyTraits<T>::Key;
  WallTimer wall;
  TopkResult<Key> kr;
  if constexpr (std::is_same_v<T, u32> || std::is_same_v<T, u64>) {
    if (criterion == Criterion::kLargest) {
      kr = run_topk_keys<Key>(dev, values, k, algo, ws);
    }
  }
  if (kr.keys.empty()) {
    Accum acc(dev);
    vgpu::Workspace::Scope scope(ws);  // keys live for the engine call only
    auto keys = make_directed_keys(acc, values, criterion, ws);
    kr = run_topk_keys<Key>(
        dev, std::span<const Key>(keys.data(), keys.size()), k, algo, ws);
    kr.stats += acc.stats();
    kr.sim_ms += acc.sim_ms();
  }

  TypedTopkResult<T> r;
  r.values.reserve(kr.keys.size());
  for (const Key key : kr.keys)
    r.values.push_back(data::value_from_directed_key<T>(key, criterion));
  r.kth = r.values.back();
  r.stats = kr.stats;
  r.sim_ms = kr.sim_ms;
  r.wall_ms = wall.ms();
  return r;
}

}  // namespace drtopk::topk
