#include "bmw/bmw.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace drtopk::bmw {

void PostingList::build(u32 block_size) {
  assert(block_size >= 1);
  block_size_ = block_size;
  std::sort(postings_.begin(), postings_.end(),
            [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
  blocks_.clear();
  max_score_ = 0.0f;
  for (u32 begin = 0; begin < postings_.size(); begin += block_size) {
    Block b;
    b.begin = begin;
    b.end = std::min<u32>(begin + block_size,
                          static_cast<u32>(postings_.size()));
    b.last_doc = postings_[b.end - 1].doc;
    for (u32 i = b.begin; i < b.end; ++i)
      b.max_score = std::max(b.max_score, postings_[i].score);
    max_score_ = std::max(max_score_, b.max_score);
    blocks_.push_back(b);
  }
}

void InvertedIndex::add_document(
    u32 doc_id, const std::vector<std::pair<std::string, f32>>& terms) {
  assert(!built_ && "add_document after build()");
  for (const auto& [term, score] : terms) lists_[term].add(doc_id, score);
  num_documents_ = std::max(num_documents_, doc_id + 1);
}

void InvertedIndex::build(u32 block_size) {
  for (auto& [term, list] : lists_) list.build(block_size);
  built_ = true;
}

const PostingList* InvertedIndex::find(const std::string& term) const {
  auto it = lists_.find(term);
  return it == lists_.end() ? nullptr : &it->second;
}

namespace {

/// Cursor over one query term's postings list.
struct Cursor {
  const PostingList* list = nullptr;
  u32 pos = 0;

  bool exhausted() const { return pos >= list->postings().size(); }
  u32 doc() const { return list->postings()[pos].doc; }
  f32 score() const { return list->postings()[pos].score; }
  f32 term_max() const { return list->max_score(); }
  const Block& block() const { return list->blocks()[list->block_of(pos)]; }

  /// Advances to the first posting with doc >= target (galloping would be
  /// the production choice; blocks make linear-in-blocks cheap enough).
  void seek(u32 target, WorkloadStats& w) {
    const auto& ps = list->postings();
    while (pos < ps.size() && ps[pos].doc < target) {
      // Skip whole blocks when possible.
      const Block& b = block();
      if (b.last_doc < target) {
        w.docs_skipped += b.end - pos;
        w.blocks_skipped += 1;
        pos = b.end;
      } else {
        ++pos;
        ++w.postings_touched;
      }
    }
  }
};

/// Min-heap of the current top-k (score, doc).
struct HeapEntry {
  f32 score;
  u32 doc;
  bool operator>(const HeapEntry& o) const {
    return score > o.score || (score == o.score && doc < o.doc);
  }
};

std::vector<ScoredDoc> finalize_heap(
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>& heap) {
  std::vector<ScoredDoc> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = {heap.top().doc, heap.top().score};
    heap.pop();
  }
  return out;
}

}  // namespace

QueryResult bmw_topk(const InvertedIndex& index,
                     const std::vector<std::string>& terms, u32 k) {
  QueryResult result;
  std::vector<Cursor> cursors;
  for (const auto& t : terms) {
    if (const PostingList* l = index.find(t); l && !l->postings().empty())
      cursors.push_back({l, 0});
  }
  if (cursors.empty() || k == 0) return result;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  WorkloadStats& w = result.workload;
  const auto threshold = [&]() -> f32 {
    return heap.size() < k ? -1.0f : heap.top().score;
  };

  for (;;) {
    // Drop exhausted cursors; sort the rest by current doc (WAND order).
    std::erase_if(cursors, [](const Cursor& c) { return c.exhausted(); });
    if (cursors.empty()) break;
    std::sort(cursors.begin(), cursors.end(),
              [](const Cursor& a, const Cursor& b) { return a.doc() < b.doc(); });

    // WAND pivot: first cursor where the prefix sum of term maxima beats
    // the threshold.
    f32 ub = 0.0f;
    size_t pivot = cursors.size();
    for (size_t i = 0; i < cursors.size(); ++i) {
      ub += cursors[i].term_max();
      if (ub > threshold()) {
        pivot = i;
        break;
      }
    }
    if (pivot == cursors.size()) break;  // no document can beat the heap
    const u32 pivot_doc = cursors[pivot].doc();
    // Extend past doc-id ties: every cursor already sitting at pivot_doc
    // contributes to it and to any skip decision.
    size_t last = pivot;
    while (last + 1 < cursors.size() && cursors[last + 1].doc() == pivot_doc)
      ++last;

    // Block-max refinement (the "if (max(b0)+max(b3)+max(b5) > lambda)"
    // test of Figure 11): tighten the upper bound using the maxima of the
    // blocks that actually contain pivot_doc.
    f32 block_ub = 0.0f;
    u32 boundary = std::numeric_limits<u32>::max();
    for (size_t i = 0; i <= last; ++i) {
      Cursor probe = cursors[i];
      WorkloadStats scratch;
      probe.seek(pivot_doc, scratch);
      if (!probe.exhausted()) {
        block_ub += probe.block().max_score;
        boundary = std::min(boundary, probe.block().last_doc);
      }
    }
    if (block_ub <= threshold()) {
      // Skip to the earliest point where any contributing block boundary
      // changes (Ding & Suel's GetNewCandidate), but never past the next
      // cursor's document — beyond it another list starts contributing.
      u32 next = boundary == std::numeric_limits<u32>::max()
                     ? pivot_doc + 1
                     : boundary + 1;
      if (last + 1 < cursors.size())
        next = std::min(next, cursors[last + 1].doc());
      next = std::max(next, pivot_doc + 1);
      for (size_t i = 0; i <= last; ++i) cursors[i].seek(next, w);
      continue;
    }

    if (cursors[0].doc() == pivot_doc) {
      // All cursors up to the pivot aligned: full evaluation.
      f32 score = 0.0f;
      for (auto& c : cursors) {
        if (!c.exhausted() && c.doc() == pivot_doc) {
          score += c.score();
          ++c.pos;
          ++w.postings_touched;
        }
      }
      ++w.full_evaluations;
      if (heap.size() < k) {
        heap.push({score, pivot_doc});
      } else if (score > heap.top().score) {
        heap.pop();
        heap.push({score, pivot_doc});
      }
    } else {
      // Advance a preceding cursor up to the pivot document.
      cursors[0].seek(pivot_doc, w);
    }
  }

  result.topk = finalize_heap(heap);
  return result;
}

QueryResult exhaustive_topk(const InvertedIndex& index,
                            const std::vector<std::string>& terms, u32 k) {
  QueryResult result;
  std::map<u32, f32> scores;
  for (const auto& t : terms) {
    const PostingList* l = index.find(t);
    if (!l) continue;
    for (const Posting& p : l->postings()) {
      scores[p.doc] += p.score;
      ++result.workload.postings_touched;
    }
  }
  result.workload.full_evaluations = scores.size();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (const auto& [doc, score] : scores) {
    if (heap.size() < k) {
      heap.push({score, doc});
    } else if (score > heap.top().score) {
      heap.pop();
      heap.push({score, doc});
    }
  }
  result.topk = finalize_heap(heap);
  return result;
}

WorkloadStats bmw_scan_workload(std::span<const u32> scores, u64 block_size,
                                u64 k) {
  assert(block_size >= 1 && k >= 1);
  WorkloadStats w;
  // Block maxima (the index-build side of BMW; not counted as query work,
  // mirroring how Dr. Top-k does not count the input as workload).
  const u64 n = scores.size();
  std::priority_queue<u32, std::vector<u32>, std::greater<u32>> heap;
  for (u64 begin = 0; begin < n; begin += block_size) {
    const u64 end = std::min(n, begin + block_size);
    u32 bmax = 0;
    for (u64 i = begin; i < end; ++i) bmax = std::max(bmax, scores[i]);
    const bool heap_full = heap.size() >= k;
    if (heap_full && bmax <= heap.top()) {
      // Threshold already beats everything in the block: skip it whole.
      w.blocks_skipped += 1;
      w.docs_skipped += end - begin;
      continue;
    }
    // Full evaluation of every element in the block (BMW is
    // element-centric: each surviving document is scored individually).
    for (u64 i = begin; i < end; ++i) {
      ++w.full_evaluations;
      const u32 x = scores[i];
      if (heap.size() < k) {
        heap.push(x);
      } else if (x > heap.top()) {
        heap.pop();
        heap.push(x);
      }
    }
  }
  return w;
}

Fig24Corpus make_dense_corpus(u64 n_docs, u32 num_terms,
                              data::Distribution dist, u64 seed,
                              u32 block_size) {
  Fig24Corpus corpus;
  // Score model: score(term, doc) = doc_signal * term_noise, the classic
  // TF-IDF-like structure (documents have an intrinsic quality, terms add
  // idiosyncratic variation). The doc signal follows the evaluated
  // distribution; the per-(term,doc) noise is +/-10%.
  //
  // BMW's block-max pruning needs the sum of per-term block *maxima* to
  // drop below the top-k threshold of the score *sums*. The maxima of
  // independent noise terms never co-occur in one document, so the bound
  // overshoots by the noise spread. With UD doc signals (whose spread
  // dwarfs the noise) pruning still works; with ND signals (spread ~1e-7
  // relative) the noise dominates and no block is ever skipped — BMW falls
  // back to evaluating every single document, the regime behind the
  // paper's 212x ND ratio in Figure 24.
  auto signal = data::generate(n_docs, dist, seed);
  corpus.total_scores.resize(n_docs);
  for (u32 t = 0; t < num_terms; ++t)
    corpus.query.push_back("term" + std::to_string(t));
  for (u64 d = 0; d < n_docs; ++d) {
    const f64 base = static_cast<f64>(signal[d]) * 0x1.0p-32;
    std::vector<std::pair<std::string, f32>> terms;
    f64 total = 0.0;
    for (u32 t = 0; t < num_terms; ++t) {
      const f64 noise =
          0.9 + 0.2 * data::rand_unit(seed ^ 0xF16'24, d * num_terms + t);
      const f64 score = base * noise;
      terms.emplace_back(corpus.query[t], static_cast<f32>(score));
      total += score;
    }
    corpus.index.add_document(static_cast<u32>(d), terms);
    corpus.total_scores[d] = static_cast<f32>(total);
  }
  corpus.index.build(block_size);
  return corpus;
}

}  // namespace drtopk::bmw
