// Block-Max WAND (BMW) — the IR algorithm the paper compares its delegate
// concept against (Section 4.4 / Figure 11 / Figure 24).
//
// A complete small search-engine substrate: documents with term scores, an
// inverted index whose postings lists are split into blocks carrying their
// maximum score, and the BMW query algorithm (WAND pivoting + block-max
// skipping). Workload counters record how many documents are *fully
// evaluated* — the quantity Figure 24 compares against Dr. Top-k's
// (delegate + concatenated) workload.
//
// The single-list mode at the bottom is the apples-to-apples setup of
// Figure 24: one posting list whose scores are the top-k input vector,
// blocks playing the role of subranges. BMW processes it element-centric
// (it can only skip a block when the running threshold already exceeds the
// block max); Dr. Top-k decides per subrange from the delegate vector.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "data/distributions.hpp"
#include "vgpu/types.hpp"

namespace drtopk::bmw {

struct Posting {
  u32 doc = 0;
  f32 score = 0.0f;
};

/// Fixed-size block of a postings list with its precomputed maximum score.
struct Block {
  u32 begin = 0;  ///< posting index range [begin, end)
  u32 end = 0;
  u32 last_doc = 0;  ///< largest doc id in the block (skip target)
  f32 max_score = 0.0f;
};

class PostingList {
 public:
  void add(u32 doc, f32 score) { postings_.push_back({doc, score}); }
  void build(u32 block_size);

  const std::vector<Posting>& postings() const { return postings_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  f32 max_score() const { return max_score_; }

  /// Index of the block containing posting position p.
  u32 block_of(u32 p) const { return p / block_size_; }
  u32 block_size() const { return block_size_; }

 private:
  std::vector<Posting> postings_;  // sorted by doc after build()
  std::vector<Block> blocks_;
  f32 max_score_ = 0.0f;
  u32 block_size_ = 0;
};

class InvertedIndex {
 public:
  /// Adds one document's term scores (term -> score within this document).
  void add_document(u32 doc_id,
                    const std::vector<std::pair<std::string, f32>>& terms);

  /// Sorts postings and computes block maxima. Must be called once after
  /// all documents are added.
  void build(u32 block_size = 64);

  const PostingList* find(const std::string& term) const;
  u32 num_documents() const { return num_documents_; }
  size_t num_terms() const { return lists_.size(); }

 private:
  std::map<std::string, PostingList> lists_;
  u32 num_documents_ = 0;
  bool built_ = false;
};

struct WorkloadStats {
  u64 full_evaluations = 0;  ///< documents fully scored
  u64 postings_touched = 0;  ///< postings read (incl. pointer movement)
  u64 docs_skipped = 0;      ///< documents passed over via block-max skips
  u64 blocks_skipped = 0;
};

struct ScoredDoc {
  u32 doc = 0;
  f32 score = 0.0f;
  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

struct QueryResult {
  std::vector<ScoredDoc> topk;  ///< sorted by (score desc, doc asc)
  WorkloadStats workload;
};

/// BMW top-k document retrieval for a bag-of-terms query.
QueryResult bmw_topk(const InvertedIndex& index,
                     const std::vector<std::string>& terms, u32 k);

/// Exhaustive oracle: scores every document containing any query term.
QueryResult exhaustive_topk(const InvertedIndex& index,
                            const std::vector<std::string>& terms, u32 k);

/// Figure 24 mode: BMW-style block-max scan over a plain score vector
/// (one "term" whose postings are the top-k input). Returns the workload
/// — the number of fully evaluated elements — after finding the top-k.
WorkloadStats bmw_scan_workload(std::span<const u32> scores, u64 block_size,
                                u64 k);

/// Figure 24 IR mode: a corpus where every document contains all
/// `num_terms` query terms with independent per-(term,doc) scores.
///
/// This is the setting where BMW's element-centric design collapses on
/// near-constant score distributions (ND): the sum of per-term *block
/// maxima* always exceeds the top-k threshold of the *sums* (maxima of
/// independent terms never co-occur in one document), so no block is ever
/// skipped and every document is fully evaluated — while Dr. Top-k's
/// delegate workload is unchanged. On UD the spread is wide enough for
/// block-max pruning to work. This mechanism is what gives the paper its
/// 212x (ND) vs 6x (UD) workload ratios.
struct Fig24Corpus {
  InvertedIndex index;
  std::vector<std::string> query;
  std::vector<f32> total_scores;  ///< per-doc score sums: Dr. Top-k's input
};
Fig24Corpus make_dense_corpus(u64 n_docs, u32 num_terms,
                              data::Distribution dist, u64 seed,
                              u32 block_size);

}  // namespace drtopk::bmw
