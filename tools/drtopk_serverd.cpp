// drtopk_serverd — the network serving daemon.
//
// Binds the NetServer front door (src/net/) over a TopkServer (or, with
// --shards N, a ShardedTopkServer), loads synthetic corpora at startup and
// serves the docs/SERVING.md protocol until SIGINT/SIGTERM. Corpus ids are
// the 0-based order of the --corpus list — registration is out of band by
// design (the daemon owns the data plane; clients only reference ids).
//
//   $ drtopk_serverd --port 7411 --corpus 1048576,4194304 --shards 2 \
//       --rate-qps 200 --max-in-flight 48
//
// Every knob maps 1:1 onto NetServerConfig / AdmissionController::Config /
// ServerConfig; run with --help for the list.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/distributions.hpp"
#include "net/net_server.hpp"

using namespace drtopk;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  u16 port = 7411;
  std::vector<u64> corpus_sizes = {u64{1} << 20};
  u32 shards = 0;  // 0 = single TopkServer
  u32 executors = 2;
  u32 batch_max = 16;
  u32 finishers = 2;
  u32 max_connections = 256;
  double rate_qps = 0.0;
  double burst = 16.0;
  u32 quota = 0;
  u64 max_in_flight = 48;
  double safety = 1.5;
  u32 finalize_window_us = 0;
  u64 seed = 7;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port P             TCP port on 127.0.0.1 (default 7411; 0 = "
      "ephemeral)\n"
      "  --corpus N[,N...]    corpus sizes to generate and register; the\n"
      "                       list order defines wire corpus ids (default "
      "1048576)\n"
      "  --shards N           shard across N simulated devices (default 0 = "
      "single)\n"
      "  --executors N        executor threads per server (default 2)\n"
      "  --batch-max N        max queries per admission group (default 16)\n"
      "  --finishers N        response finisher threads (default 2)\n"
      "  --max-connections N  concurrent client cap (default 256)\n"
      "  --rate-qps R         per-client token-bucket rate, 0 = off\n"
      "  --burst B            token-bucket burst (default 16)\n"
      "  --quota N            per-client in-flight quota, 0 = off\n"
      "  --max-in-flight N    server-wide admission bound (default 48)\n"
      "  --safety F           admission estimate safety factor (default 1.5)\n"
      "  --finalize-window-us U  serving-layer finalize window (default 0)\n"
      "  --seed S             corpus generator seed (default 7)\n",
      argv0);
}

std::vector<u64> parse_sizes(const char* s) {
  std::vector<u64> out;
  const char* p = s;
  while (*p) {
    char* end = nullptr;
    const u64 v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) return {};
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
    if (*end != '\0' && *end != ',') return {};
  }
  return out;
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Both "--flag value" and "--flag=value" are accepted (the benches use
    // the = form, so the examples in the docs do too).
    std::string inline_v;
    bool has_inline = false;
    if (const auto eq = a.find('='); eq != std::string::npos && a.rfind("--", 0) == 0) {
      inline_v = a.substr(eq + 1);
      a.resize(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_v.c_str();
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--help" || a == "-h") return false;
    else if (a == "--port" && (v = next())) o.port = static_cast<u16>(std::atoi(v));
    else if (a == "--corpus" && (v = next())) {
      o.corpus_sizes = parse_sizes(v);
      if (o.corpus_sizes.empty()) return false;
    }
    else if (a == "--shards" && (v = next())) o.shards = std::atoi(v);
    else if (a == "--executors" && (v = next())) o.executors = std::atoi(v);
    else if (a == "--batch-max" && (v = next())) o.batch_max = std::atoi(v);
    else if (a == "--finishers" && (v = next())) o.finishers = std::atoi(v);
    else if (a == "--max-connections" && (v = next()))
      o.max_connections = std::atoi(v);
    else if (a == "--rate-qps" && (v = next())) o.rate_qps = std::atof(v);
    else if (a == "--burst" && (v = next())) o.burst = std::atof(v);
    else if (a == "--quota" && (v = next())) o.quota = std::atoi(v);
    else if (a == "--max-in-flight" && (v = next()))
      o.max_in_flight = std::strtoull(v, nullptr, 10);
    else if (a == "--safety" && (v = next())) o.safety = std::atof(v);
    else if (a == "--finalize-window-us" && (v = next()))
      o.finalize_window_us = static_cast<u32>(std::atoll(v));
    else if (a == "--seed" && (v = next())) o.seed = std::strtoull(v, nullptr, 10);
    else return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  // Corpora live for the process lifetime; backends hold views.
  std::vector<vgpu::device_vector<u32>> corpora;
  corpora.reserve(opt.corpus_sizes.size());
  for (size_t i = 0; i < opt.corpus_sizes.size(); ++i)
    corpora.push_back(data::generate(opt.corpus_sizes[i],
                                     data::Distribution::kUniform,
                                     opt.seed + i));

  serve::ServerConfig scfg;
  scfg.executors = opt.executors;
  scfg.batch_max = opt.batch_max;
  // The net layer sheds (typed) at its own bound; the serving layer's
  // blocking bound sits above it so submit() never stalls the event loop.
  scfg.max_in_flight = static_cast<u32>(opt.max_in_flight) + 8;
  scfg.finalize_window_us = opt.finalize_window_us;

  // The daemon owns whichever engine was asked for; `backend` is the
  // NetServer-facing view of it.
  std::unique_ptr<vgpu::Device> dev;
  std::unique_ptr<serve::TopkServer> single;
  std::unique_ptr<serve::ShardedTopkServer> sharded;
  std::unique_ptr<net::Backend> backend;

  if (opt.shards == 0) {
    dev = std::make_unique<vgpu::Device>();
    single = std::make_unique<serve::TopkServer>(*dev, scfg);
    auto be = std::make_unique<net::SingleBackend>(*single);
    for (const auto& c : corpora)
      be->add_corpus(std::span<const u32>(c.data(), c.size()));
    backend = std::move(be);
  } else {
    serve::ShardedConfig shcfg;
    shcfg.num_shards = opt.shards;
    shcfg.shard = scfg;
    sharded = std::make_unique<serve::ShardedTopkServer>(shcfg);
    auto be = std::make_unique<net::ShardedBackend>(*sharded);
    for (const auto& c : corpora)
      be->add_corpus(std::span<const u32>(c.data(), c.size()));
    backend = std::move(be);
  }

  net::NetServerConfig ncfg;
  ncfg.port = opt.port;
  ncfg.finishers = opt.finishers;
  ncfg.max_connections = opt.max_connections;
  ncfg.client_rate_qps = opt.rate_qps;
  ncfg.client_burst = opt.burst;
  ncfg.client_quota = opt.quota;
  ncfg.admission.max_in_flight = opt.max_in_flight;
  ncfg.admission.safety = opt.safety;

  std::unique_ptr<net::NetServer> fd;
  try {
    fd = std::make_unique<net::NetServer>(*backend, ncfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drtopk_serverd: %s\n", e.what());
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("drtopk_serverd listening on 127.0.0.1:%u (%s", fd->port(),
              opt.shards == 0 ? "single device"
                              : "sharded");
  if (opt.shards != 0) std::printf(" x%u", opt.shards);
  std::printf(")\n");
  for (size_t i = 0; i < corpora.size(); ++i)
    std::printf("  corpus %zu: n=%zu u32 uniform (seed %llu)\n", i,
                corpora[i].size(),
                static_cast<unsigned long long>(opt.seed + i));
  std::fflush(stdout);

  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("drtopk_serverd: draining...\n");
  fd->drain();
  fd->stop();
  backend->drain();
  std::printf("drtopk_serverd: bye\n");
  return 0;
}
