// Website degree centrality (the CW workload of Table 1).
//
// Ranks the k most-connected pages of a synthetic web graph with a
// ClueWeb09-like power-law degree distribution, comparing Dr. Top-k against
// the sort-and-choose approach an application would otherwise use.
#include <cstdio>

#include "core/dr_topk.hpp"
#include "data/datasets.hpp"

using namespace drtopk;

int main() {
  vgpu::Device dev;
  const u64 n = u64{1} << 22;  // 4M pages (ClueWeb09: 4.78B)
  const u64 k = 20;

  auto degrees = data::clueweb_degrees(n, /*seed=*/13);
  std::span<const u32> ds(degrees.data(), degrees.size());

  core::StageBreakdown bd;
  auto top = core::dr_topk<u32>(dev, ds, k, data::Criterion::kLargest,
                                core::DrTopkConfig{}, &bd);

  std::printf("top-%llu page degrees of %llu pages (power-law graph):\n",
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(n));
  for (u32 d : top.values) std::printf("  %u\n", d);

  // The workload statement of the paper's intro: applications today run a
  // full sort to answer this query.
  auto sorted = topk::run_topk<u32>(dev, ds, k, data::Criterion::kLargest,
                                    topk::Algo::kSortAndChoose);
  std::printf("\nsort-and-choose: %.3f ms;  Dr. Top-k: %.3f ms  (%.1fx)\n",
              sorted.sim_ms, top.sim_ms, sorted.sim_ms / top.sim_ms);
  std::printf("Dr. Top-k touched %.4f%% of the degree vector after the"
              " initial scan.\n",
              100.0 * static_cast<double>(bd.delegate_len + bd.concat_len) /
                  static_cast<double>(n));
  return top.values == sorted.values ? 0 : 1;
}
