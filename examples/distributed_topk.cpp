// Distributed Dr. Top-k across multiple (simulated) GPUs — Section 5.4.
//
// Shards a vector larger than one device's memory across 4 GPUs, runs the
// full pipeline per shard, gathers the local top-ks at the primary GPU over
// the message-passing substrate, and prints the Table-2-style decomposition
// (compute / reload / communication / final reduction).
#include <cstdio>

#include "data/distributions.hpp"
#include "dist/multi_gpu.hpp"

using namespace drtopk;

int main() {
  const u64 n = u64{1} << 24;  // 16M elements
  const u64 k = 128;
  auto v = data::generate(n, data::Distribution::kUniform, /*seed=*/19);
  std::span<const u32> vs(v.data(), v.size());

  std::printf("%-8s %10s %10s %10s %10s %10s %8s\n", "#GPUs", "compute",
              "reload", "comm", "final", "total", "spdup");
  double base = 0;
  for (u32 gpus : {1u, 2u, 4u, 8u}) {
    dist::MultiGpuConfig cfg;
    cfg.num_gpus = gpus;
    // Device memory capped at 2M elements: small GPU counts must reload
    // shards over PCIe, exactly the Table 2 regime.
    cfg.device_capacity_elems = u64{1} << 21;
    auto r = dist::multi_gpu_topk(vs, k, cfg);
    if (gpus == 1) base = r.total_ms;
    std::printf("%-8u %10.3f %10.3f %10.3f %10.3f %10.3f %7.1fx\n", gpus,
                r.compute_ms, r.reload_ms, r.comm_ms, r.final_topk_ms,
                r.total_ms, base / r.total_ms);
  }

  std::printf("\nWith enough GPUs every shard stays resident and the PCIe"
              " reloads disappear —\nthe superlinear speedups of Table 2.\n");
  return 0;
}
