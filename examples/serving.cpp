// Serving: many top-k queries against one corpus through the batched
// TopkServer, with plan caching and shared delegate construction.
//
//   $ ./examples/example_serving
//
// Shows the serving happy path (device, server, submit/run_batch), what a
// QueryResult carries, and the aggregate ServerStats (QPS, latency
// percentiles, plan-cache hit rate) against a sequential baseline.
#include <cstdio>

#include "data/distributions.hpp"
#include "serve/server.hpp"

using namespace drtopk;

int main() {
  vgpu::Device dev;

  // A 4M-element corpus that every query views (the serving shape: shared
  // index, per-request k / criterion).
  const u64 n = u64{1} << 22;
  auto corpus = data::generate(n, data::Distribution::kUniform, /*seed=*/7);
  std::span<const u32> cs(corpus.data(), corpus.size());

  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.batch_max = 8;
  serve::TopkServer server(dev, cfg);

  // A mixed batch: full top-k queries plus selection-only (k-th threshold)
  // queries, different k — all compatible, so they share one delegate
  // construction pass.
  std::vector<serve::Query> batch;
  for (u64 k : {u64{10}, u64{100}, u64{1000}})
    batch.push_back(serve::Query::view(cs, k));
  batch.push_back(serve::Query::view(cs, 500, data::Criterion::kLargest,
                                     /*selection_only=*/true));
  auto results = server.run_batch(batch);

  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("query %zu: k=%-5llu %s kth=%llu latency=%.3f ms"
                " (sim)%s%s\n",
                i, static_cast<unsigned long long>(batch[i].k),
                batch[i].selection_only ? "[selection]" : "[top-k]   ",
                static_cast<unsigned long long>(r.kth), r.latency_sim_ms,
                r.fused ? " fused" : "",
                r.plan_cache_hit ? " plan-hit" : " plan-miss");
  }

  // A second identical batch hits the plan cache.
  (void)server.run_batch(batch);

  const auto s = server.stats();
  std::printf("\nserver: %llu queries, %llu groups, QPS=%.1f (sim),"
              " p50=%.3f ms, p99=%.3f ms\n",
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.groups), s.qps(),
              s.p50_sim_ms, s.p99_sim_ms);
  std::printf("plan cache: %llu hits / %llu misses (%.0f%% hit rate),"
              " %llu fused queries\n",
              static_cast<unsigned long long>(s.plan_hits),
              static_cast<unsigned long long>(s.plan_misses),
              100.0 * s.plan_hit_rate(),
              static_cast<unsigned long long>(s.fused_queries));

  // Phase-A dedup: a burst of IDENTICAL queries (the doc-retrieval shape)
  // forms one query class — one phase A runs, everyone else subscribes.
  std::vector<serve::Query> burst(6, serve::Query::view(cs, 100));
  (void)server.run_batch(burst);
  const auto sd = server.stats();
  std::printf("dedup: %llu duplicate queries rode %llu query class(es)\n",
              static_cast<unsigned long long>(sd.deduped_queries),
              static_cast<unsigned long long>(sd.dedup_classes));

  // Sequential baseline: the same queries, one dr_topk each.
  double seq_ms = 0;
  for (int round = 0; round < 2; ++round) {
    for (const auto& q : batch) {
      core::DrTopkConfig c;
      c.selection_only = q.selection_only;
      seq_ms += core::dr_topk<u32>(dev, q.data32(), q.k, q.criterion, c).sim_ms;
    }
  }
  std::printf("\nsequential loop: %.3f ms total -> server speedup %.2fx"
              " on aggregate throughput\n",
              seq_ms, seq_ms / s.makespan_sim_ms);
  return s.completed == 2 * batch.size() ? 0 : 1;
}
