// Least-fearful COVID tweets (the TR workload of Table 1).
//
// The paper's TwitterCOVID-19 dataset duplicates 132M scored tweets onto a
// 1B vector; the query is the k *least* fearful tweets. Heavy duplication
// makes this the tie-stress workload: the k-th score typically has many
// copies, and the exact multiset semantics of the engines matter.
#include <algorithm>
#include <cstdio>

#include "core/dr_topk.hpp"
#include "data/datasets.hpp"

using namespace drtopk;

int main() {
  vgpu::Device dev;
  const u64 n = u64{1} << 22;  // 4M tweet scores (paper: 1B)
  const u64 k = 12;

  auto scores = data::twitter_covid_scores(n, /*seed=*/17);
  std::span<const f32> ss(scores.data(), scores.size());

  auto calm = core::dr_topk<f32>(dev, ss, k, data::Criterion::kSmallest);

  std::printf("%llu least fearful tweet scores out of %llu:\n",
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(n));
  for (f32 s : calm.values) std::printf("  %.6e\n", s);

  // Duplication check: how many copies of the k-th score exist?
  u64 copies = 0;
  for (f32 s : ss)
    if (s == calm.kth) ++copies;
  std::printf("\nthe k-th score %.6e appears %llu times in the vector —\n"
              "any %llu-subset of them is a valid answer; the engines return"
              " the exact multiset.\n",
              calm.kth, static_cast<unsigned long long>(copies),
              static_cast<unsigned long long>(
                  static_cast<u64>(std::count(calm.values.begin(),
                                              calm.values.end(), calm.kth))));
  std::printf("simulated V100S time: %.3f ms\n", calm.sim_ms);
  return 0;
}
