// k-nearest-neighbor search (the AN workload of Table 1).
//
// Computes Euclidean distances from a query vector to a database of 128-d
// points (the paper's ANN_SIFT1B setup, synthetic at this scale), then uses
// Dr. Top-k with the *smallest* criterion to retrieve the k nearest — the
// typed float frontend handles the order-preserving key transform.
#include <algorithm>
#include <cstdio>

#include "core/dr_topk.hpp"
#include "data/datasets.hpp"

using namespace drtopk;

int main() {
  vgpu::Device dev;
  const u64 n = u64{1} << 22;  // 4M database points (paper: 1B)
  const u32 dim = 128;
  const u64 k = 16;

  std::printf("computing L2 distances from the query to %llu %u-d points"
              "...\n",
              static_cast<unsigned long long>(n), dim);
  auto distances = data::ann_distances(n, dim, /*seed=*/11);
  std::span<const f32> ds(distances.data(), distances.size());

  core::StageBreakdown bd;
  auto nn = core::dr_topk<f32>(dev, ds, k, data::Criterion::kSmallest,
                               core::DrTopkConfig{}, &bd);

  std::printf("%llu nearest neighbors (distances):\n",
              static_cast<unsigned long long>(k));
  for (f32 d : nn.values) std::printf("  %.6f\n", d);

  // Verify against a host-side scan.
  std::vector<f32> expect(ds.begin(), ds.end());
  std::nth_element(expect.begin(), expect.begin() + static_cast<i64>(k),
                   expect.end());
  expect.resize(k);
  std::sort(expect.begin(), expect.end());
  const bool ok = std::equal(expect.begin(), expect.end(),
                             nn.values.begin());
  std::printf("\nhost verification: %s\n", ok ? "MATCH" : "MISMATCH");
  std::printf("simulated V100S time: %.3f ms; workload %.4f%% of |V|\n",
              nn.sim_ms,
              100.0 * static_cast<double>(bd.delegate_len + bd.concat_len) /
                  static_cast<double>(n));
  return ok ? 0 : 1;
}
