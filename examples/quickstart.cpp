// Quickstart: find the top-k largest values of a vector with Dr. Top-k.
//
//   $ ./examples/quickstart
//
// Shows the three-line happy path (device, data, dr_topk), what the result
// contains, and how Dr. Top-k's workload compares to running a baseline
// top-k directly on the input.
#include <cstdio>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

using namespace drtopk;

int main() {
  // A virtual GPU (V100S profile): kernels run on host threads, memory
  // traffic and shuffles are counted, and a roofline cost model turns the
  // counts into simulated GPU milliseconds.
  vgpu::Device dev;

  // 16M uniform random 32-bit keys.
  const u64 n = u64{1} << 24;
  const u64 k = 10;
  auto v = data::generate(n, data::Distribution::kUniform, /*seed=*/7);
  std::span<const u32> vs(v.data(), v.size());

  // Dr. Top-k with default configuration: beta = 2 delegates per subrange,
  // Rule-4 auto-tuned subrange size, delegate filtering, flag-based radix
  // for both internal top-k passes.
  core::StageBreakdown bd;
  auto r = core::dr_topk_keys<u32>(dev, vs, k, core::DrTopkConfig{}, &bd);

  std::printf("top-%llu of %llu elements:\n",
              static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(n));
  for (u32 key : r.keys) std::printf("  %u\n", key);
  std::printf("k-th largest (k-selection answer): %u\n", r.kth);

  std::printf("\npipeline: alpha=%d (subranges of %llu), %llu subranges\n",
              bd.alpha, (1ull << bd.alpha),
              static_cast<unsigned long long>(bd.num_subranges));
  std::printf("workload: delegate vector %llu + concatenated %llu = %.4f%%"
              " of |V|\n",
              static_cast<unsigned long long>(bd.delegate_len),
              static_cast<unsigned long long>(bd.concat_len),
              100.0 * static_cast<double>(bd.delegate_len + bd.concat_len) /
                  static_cast<double>(n));
  std::printf("simulated V100S time: %.3f ms (construct %.3f, first %.3f,"
              " concat %.3f, second %.3f)\n",
              bd.total_ms(), bd.construct_ms, bd.first_ms, bd.concat_ms,
              bd.second_ms);

  // The same query with a standalone baseline for comparison.
  auto base = topk::run_topk_keys<u32>(dev, vs, k, topk::Algo::kRadixGgksOop);
  std::printf("\nbaseline GGKS radix top-k: %.3f ms -> Dr. Top-k speedup"
              " %.2fx\n",
              base.sim_ms, base.sim_ms / r.sim_ms);
  return r.keys == base.keys ? 0 : 1;
}
