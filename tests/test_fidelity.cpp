// PR-9 fidelity suite: exactness as a per-query execution policy.
//
// Two properties anchor everything here:
//   1. EXACT IS BIT-IDENTICAL — a default (exact) FidelityPolicy must
//      produce byte-for-byte the pre-PR-9 answers across the whole config
//      matrix (dedup x batched_concat x sharded x key width).
//   2. APPROX MEETS ITS TARGET — a recall-target query's measured recall
//      against the exact oracle must be >= rho for every rho x
//      distribution x k tried, at every layer (core, serve, sharded),
//      while never re-thresholding through the relaxation guard.
// Plus the PR-6 residual fix: a parked single-executor window owner must
// execute queued groups instead of stalling behind the window.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "core/concat_batched.hpp"
#include "data/distributions.hpp"
#include "serve/sharded.hpp"

namespace drtopk::serve {
namespace {

using data::Criterion;
using data::Distribution;
using topk::reference_topk;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

std::vector<u64> widen(const std::vector<u32>& v) {
  return {v.begin(), v.end()};
}

/// Measured recall: |got ∩ oracle| / |oracle| as MULTISETS (duplicate
/// winners must each be matched; an equal value elsewhere in the corpus
/// legitimately covers a missed position).
template <class K>
double recall_of(std::vector<K> got, std::vector<K> oracle) {
  std::sort(got.begin(), got.end());
  std::sort(oracle.begin(), oracle.end());
  std::vector<K> inter;
  std::set_intersection(got.begin(), got.end(), oracle.begin(), oracle.end(),
                        std::back_inserter(inter));
  return oracle.empty() ? 1.0
                        : static_cast<double>(inter.size()) /
                              static_cast<double>(oracle.size());
}

TEST(Fidelity, PolicyBasicsAndQuantization) {
  core::FidelityPolicy def;
  EXPECT_TRUE(def.exact());
  EXPECT_EQ(def.quantized_bp(), 10000u);

  auto a = core::FidelityPolicy::approx(0.9);
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.quantized_bp(), 9000u);
  EXPECT_TRUE(core::FidelityPolicy::approx(1.5).exact());  // clamped up
  EXPECT_DOUBLE_EQ(core::FidelityPolicy::approx(0.1).recall_target, 0.5);

  // Equality is by quantized basis points: float noise cannot split keys.
  EXPECT_TRUE((core::FidelityPolicy{0.90004} == a));
  EXPECT_FALSE(def == a);

  // Budget floor: max(64, k, ceil((k-1)/(1-rho))).
  EXPECT_EQ(core::approx_min_subranges(1, a), 64u);
  EXPECT_EQ(core::approx_min_subranges(100,
                                       core::FidelityPolicy::approx(0.99)),
            9900u);
  EXPECT_GE(core::approx_min_subranges(5000, a), 49990u);
}

TEST(Fidelity, QueryFactoriesCarryFidelity) {
  std::vector<u32> v(4096, 7u);
  std::span<const u32> vs(v.data(), v.size());
  Query q = Query::view(vs, 10);
  EXPECT_TRUE(q.fidelity.exact());
  Query qa = Query::view(vs, 10).with_recall(0.9);
  EXPECT_EQ(qa.fidelity.quantized_bp(), 9000u);
  Query qo = Query::owned(std::vector<u64>{1, 2, 3, 4}, 2, Criterion::kLargest,
                          false, core::FidelityPolicy::approx(0.8));
  EXPECT_EQ(qo.fidelity.quantized_bp(), 8000u);
  EXPECT_EQ(qo.width(), KeyWidth::k64);
}

TEST(Fidelity, CoreApproxMeetsRecallTargetAcrossDistributionsAndK) {
  const u64 n = u64{1} << 18;
  for (auto dist : {Distribution::kUniform, Distribution::kNormal,
                    Distribution::kCustomized}) {
    auto v = data::generate(n, dist, 211);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : {u64{64}, u64{256}, u64{1024}}) {
      const auto oracle = reference_topk(vs, k);
      for (double rho : {0.8, 0.9, 0.99}) {
        core::DrTopkConfig cfg;
        cfg.fidelity = core::FidelityPolicy::approx(rho);
        core::StageBreakdown bd;
        auto r = core::dr_topk_keys<u32>(shared_device(), vs, k, cfg, &bd);
        ASSERT_EQ(r.keys.size(), k);
        const double rec = recall_of(r.keys, oracle);
        EXPECT_GE(rec, rho) << "dist=" << static_cast<int>(dist)
                            << " k=" << k << " rho=" << rho;
        // Approx construction is single-delegate and never re-thresholds.
        EXPECT_EQ(bd.beta, 1u);
        EXPECT_EQ(bd.guard_trips, 0u);
      }
    }
  }
}

TEST(Fidelity, CoreApproxSkipsRelaxationGuard) {
  // All-equal data: every delegate >= kappa, so the Section 4.3 guard
  // condition (taken_total > 4k) fires. Exact mode re-thresholds
  // (guard_trips); a recall target waves it off (guard_skips) — the
  // relaxed superset only helps recall.
  std::vector<u32> v(u64{1} << 20, 42u);
  std::span<const u32> vs(v.data(), v.size());
  core::DrTopkConfig cfg;
  cfg.alpha = 5;  // delegate vector outgrows the single-launch first top-k
  cfg.fidelity = core::FidelityPolicy::approx(0.9);
  core::StageBreakdown bd;
  auto r = core::dr_topk_keys<u32>(shared_device(), vs, 16, cfg, &bd);
  ASSERT_EQ(r.keys.size(), 16u);
  for (u32 key : r.keys) EXPECT_EQ(key, 42u);  // ties: recall is still 1.0
  EXPECT_GE(bd.guard_skips, 1u);
  EXPECT_EQ(bd.guard_trips, 0u);
}

TEST(Fidelity, MarkGuardRetryHonorsPerSegmentPolicy) {
  // The batched stage-3 guard helper: only tripped segments whose policy
  // demands exactness get a retry pass; tripped approx segments are
  // counted as skips.
  std::vector<core::BatchedConcatSegment<u32>> segs(3);
  segs[0].taken_total = 100;  // tripped (4k = 40), exact -> retry
  segs[1].taken_total = 100;  // tripped, approx -> skip + count
  segs[2].taken_total = 20;   // not tripped -> skip, not counted
  const u64 ks[] = {10, 10, 10};
  const core::FidelityPolicy fids[] = {{}, core::FidelityPolicy::approx(0.9),
                                       {}};
  u64 skips = 0;
  const u64 need = core::mark_guard_retry<u32>(
      std::span<core::BatchedConcatSegment<u32>>(segs),
      std::span<const u64>(ks), std::span<const core::FidelityPolicy>(fids),
      &skips);
  EXPECT_EQ(need, 1u);
  EXPECT_EQ(skips, 1u);
  EXPECT_FALSE(segs[0].skip);
  EXPECT_TRUE(segs[1].skip);
  EXPECT_TRUE(segs[2].skip);
}

TEST(Fidelity, ExactModeBitParityMatrix) {
  // The acceptance matrix: a default FidelityPolicy through every layer
  // combination must be bit-identical to the reference — dedup x
  // batched_concat x {single-device, sharded} x {u32, u64}.
  auto v32 = data::generate(1 << 15, Distribution::kUniform, 221);
  std::span<const u32> vs32(v32.data(), v32.size());
  std::vector<u64> v64(1 << 14);
  for (u64 i = 0; i < v64.size(); ++i) v64[i] = data::rand_u64(222, i);
  std::span<const u64> vs64(v64.data(), v64.size());
  const std::vector<u64> ks = {32, 200, 1000};

  for (bool dedup : {true, false}) {
    for (bool bc : {true, false}) {
      ServerConfig cfg;
      cfg.batch_max = 8;
      cfg.dedup = dedup;
      cfg.batched_concat = bc;
      TopkServer server(shared_device(), cfg);
      std::vector<Query> queries;
      for (u64 k : ks) {  // duplicates exercise dedup classes
        queries.push_back(Query::view(vs32, k));
        queries.push_back(Query::view(vs32, k));
      }
      for (u64 k : ks) queries.push_back(Query::view(vs64, k));
      auto results = server.run_batch(queries);
      for (size_t i = 0; i < 6; ++i)
        ASSERT_EQ(results[i].values,
                  widen(reference_topk(vs32, queries[i].k)))
            << "dedup=" << dedup << " bc=" << bc << " i=" << i;
      for (size_t i = 6; i < 9; ++i)
        ASSERT_EQ(results[i].values, reference_topk(vs64, queries[i].k))
            << "dedup=" << dedup << " bc=" << bc << " i=" << i;

      ShardedConfig scfg;
      scfg.num_shards = 2;
      scfg.min_shard_elems = 1;
      scfg.shard.dedup = dedup;
      scfg.shard.batched_concat = bc;
      ShardedTopkServer sharded(scfg);
      auto corpus = sharded.register_corpus(vs32);
      for (u64 k : ks)
        ASSERT_EQ(sharded.submit(corpus, k).get().values,
                  widen(reference_topk(vs32, k)))
            << "sharded dedup=" << dedup << " bc=" << bc << " k=" << k;
    }
  }
}

TEST(Fidelity, ServeApproxMeetsRecallTargetAndExportsCounters) {
  // Approx queries through the server (both the launch-free batched-group
  // path and the per-item core path) must hit their recall targets; the
  // oracle-measured recall is fed back via record_recall and must surface
  // in ServerStats and the Prometheus exposition.
  const u64 n = u64{1} << 17;
  auto v = data::generate(n, Distribution::kUniform, 231);
  std::span<const u32> vs(v.data(), v.size());
  for (bool bc : {true, false}) {
    ServerConfig cfg;
    cfg.batch_max = 8;
    cfg.batched_concat = bc;
    TopkServer server(shared_device(), cfg);
    u64 submitted = 0;
    for (double rho : {0.8, 0.9, 0.99}) {
      std::vector<Query> queries;
      for (u64 k : {u64{64}, u64{512}})
        queries.push_back(Query::view(vs, k).with_recall(rho));
      auto results = server.run_batch(queries);
      submitted += queries.size();
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(results[i].values.size(), queries[i].k);
        const double rec = recall_of(
            results[i].values, widen(reference_topk(vs, queries[i].k)));
        EXPECT_GE(rec, rho) << "bc=" << bc << " k=" << queries[i].k;
        server.record_recall(rec);
      }
    }
    const ServerStats s = server.stats();
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.approx_queries, submitted);
    EXPECT_EQ(s.recall_samples, submitted);
    EXPECT_GE(s.recall_mean, 0.8);
    EXPECT_LE(s.recall_mean, 1.0);
    const std::string prom = server.metrics_prometheus();
    EXPECT_NE(prom.find("serve_approx_queries"), std::string::npos);
    EXPECT_NE(prom.find("serve_recall_measured_bp"), std::string::npos);
    EXPECT_NE(prom.find("serve_relax_guard_skips"), std::string::npos);
  }
}

TEST(Fidelity, FidelitySplitsGroupsAndDedupClasses) {
  // Mixed-fidelity identical queries must NOT share a group or a dedup
  // class: the exact answers stay bit-identical while the approx ones run
  // the reduced pipeline.
  auto v = data::generate(1 << 16, Distribution::kNormal, 241);
  std::span<const u32> vs(v.data(), v.size());
  ServerConfig cfg;
  cfg.batch_max = 16;
  TopkServer server(shared_device(), cfg);
  std::vector<Query> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(Query::view(vs, 128));
  for (int i = 0; i < 3; ++i)
    queries.push_back(Query::view(vs, 128).with_recall(0.9));
  auto results = server.run_batch(queries);
  const auto oracle = widen(reference_topk(vs, 128));
  for (int i = 0; i < 3; ++i) ASSERT_EQ(results[i].values, oracle) << i;
  for (int i = 3; i < 6; ++i) {
    ASSERT_EQ(results[i].values.size(), 128u);
    EXPECT_GE(recall_of(results[i].values, oracle), 0.9) << i;
  }
  const ServerStats s = server.stats();
  EXPECT_GE(s.groups, 2u);  // exact and approx never merged
  EXPECT_EQ(s.approx_queries, 3u);
}

TEST(Fidelity, PlanCacheKeysOnFidelity) {
  // One shape, two policies -> two plan entries; each re-submission hits
  // its own. (Approx plans are closed-form — deterministic, no probes —
  // but they still occupy a keyed slot.)
  auto v = data::generate(1 << 16, Distribution::kUniform, 251);
  std::span<const u32> vs(v.data(), v.size());
  ServerConfig cfg;
  cfg.executors = 1;
  TopkServer server(shared_device(), cfg);
  server.submit(Query::view(vs, 128)).get();
  server.submit(Query::view(vs, 128).with_recall(0.9)).get();
  const ServerStats cold = server.stats();
  EXPECT_EQ(cold.plan_misses, 2u);
  EXPECT_EQ(cold.plan_hits, 0u);
  server.submit(Query::view(vs, 128)).get();
  server.submit(Query::view(vs, 128).with_recall(0.9)).get();
  const ServerStats warm = server.stats();
  EXPECT_EQ(warm.plan_misses, 2u);
  EXPECT_EQ(warm.plan_hits, 2u);
}

TEST(Fidelity, ShardedApproxMeetsRecallTargetExactStaysBitIdentical) {
  // Sharded scatter under a recall target: reduced shard-k sub-queries,
  // tightened local targets, exact merge over the smaller lists — global
  // recall must still meet rho. Exact submissions on the same server stay
  // bit-identical.
  const u64 n = (u64{1} << 16) + 777;
  auto v = data::generate(n, Distribution::kUniform, 261);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg;
  cfg.num_shards = 3;
  cfg.min_shard_elems = 1;
  ShardedTopkServer srv(cfg);
  auto corpus = srv.register_corpus(vs);
  ASSERT_EQ(srv.corpus_shards(corpus), 3u);
  for (u64 k : {u64{64}, u64{512}}) {
    const auto oracle = widen(reference_topk(vs, k));
    for (double rho : {0.8, 0.9, 0.99}) {
      auto got = srv.submit(corpus, k, Criterion::kLargest, false,
                            core::FidelityPolicy::approx(rho))
                     .get();
      ASSERT_EQ(got.values.size(), k) << "k=" << k << " rho=" << rho;
      EXPECT_GE(recall_of(got.values, oracle), rho)
          << "k=" << k << " rho=" << rho;
    }
    EXPECT_EQ(srv.submit(corpus, k).get().values, oracle);
  }
  srv.drain();
  EXPECT_EQ(srv.unattributed_launches(), 0u);
}

TEST(Fidelity, ParkedWindowOwnerExecutesQueuedGroups) {
  // PR-6 residual fix: a single-executor server with a huge finalize
  // window and TWO groups queued. The owner of the first group parks with
  // the second group still un-run — pre-fix it sat out the whole window
  // (the pool is not idle, so the early flush cannot fire). Post-fix the
  // parked owner claims and executes the queued group itself; that group
  // deposits into the owner's open window and the queue-empty early flush
  // then fires. The wall-clock bound IS the regression test.
  auto a = data::generate(1 << 15, Distribution::kNormal, 271);
  auto b = data::generate((1 << 15) + 33, Distribution::kNormal, 272);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 4;
  cfg.finalize_window_us = 2'000'000;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (u64 k : {u64{32}, u64{64}, u64{96}, u64{128}})
    queries.push_back(Query::view(as, k));
  for (u64 k : {u64{48}, u64{80}, u64{112}, u64{144}})
    queries.push_back(Query::view(bs, k));

  topk::WallTimer wall;
  auto results = server.run_batch(queries);
  const double elapsed_ms = wall.ms();

  for (size_t i = 0; i < 4; ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(as, queries[i].k)))
        << i;
  for (size_t i = 4; i < 8; ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(bs, queries[i].k)))
        << i;
  EXPECT_LT(elapsed_ms, 1500.0);  // far below the 2 s window

  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.groups, 2u);
  EXPECT_GE(s.window_flushes, 1u);
  // Both groups landed in the owner's window: one merged flush covers 2.
  EXPECT_GE(s.window_merged_groups, 2u);
}

}  // namespace
}  // namespace drtopk::serve
