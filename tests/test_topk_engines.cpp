// Correctness and instrumentation tests for every baseline top-k engine.
//
// The central property: every engine returns the exact multiset of the k
// largest keys, for every distribution x size x k combination, including
// tie-heavy inputs (ND) and the bucket-adversarial CD. Validated against
// std::nth_element.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"
#include "topk/topk.hpp"

namespace drtopk::topk {
namespace {

using data::Distribution;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

struct EngineCase {
  Algo algo;
  Distribution dist;
  u64 n;
  u64 k;
};

std::string case_name(const ::testing::TestParamInfo<EngineCase>& info) {
  const auto& c = info.param;
  std::string s = to_string(c.algo) + "_" + data::to_string(c.dist) + "_n" +
                  std::to_string(c.n) + "_k" + std::to_string(c.k);
  for (auto& ch : s)
    if (ch == '-') ch = '_';
  return s;
}

class EngineMultisetTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineMultisetTest, MatchesReference) {
  const auto& c = GetParam();
  auto v = data::generate(c.n, c.dist, /*seed=*/c.n * 31 + c.k);
  std::span<const u32> vs(v.data(), v.size());
  auto expect = reference_topk(vs, c.k);
  auto got = run_topk_keys<u32>(shared_device(), vs, c.k, c.algo);
  ASSERT_EQ(got.keys.size(), c.k);
  EXPECT_EQ(got.keys, expect);
  EXPECT_EQ(got.kth, expect.back());
}

std::vector<EngineCase> all_cases() {
  std::vector<EngineCase> cases;
  const std::vector<Algo> algos = {
      Algo::kRadixFlag,     Algo::kRadixGgksOop, Algo::kRadixGgksInplace,
      Algo::kBucketInplace, Algo::kBucketOop,    Algo::kBucketGgksInplace,
      Algo::kBitonic,       Algo::kSortAndChoose, Algo::kHeap};
  const std::vector<Distribution> dists = {
      Distribution::kUniform, Distribution::kNormal,
      Distribution::kCustomized};
  for (Algo a : algos) {
    for (Distribution d : dists) {
      for (u64 n : {u64{5000}, u64{1} << 15}) {
        for (u64 k : {u64{1}, u64{7}, u64{128}, u64{1000}}) {
          if (k > n) continue;
          cases.push_back({a, d, n, k});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineMultisetTest,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---- Edge cases ----

class EngineEdgeTest : public ::testing::TestWithParam<Algo> {};

TEST_P(EngineEdgeTest, KEqualsN) {
  auto v = data::generate(512, Distribution::kUniform, 3);
  std::span<const u32> vs(v.data(), v.size());
  auto got = run_topk_keys<u32>(shared_device(), vs, v.size(), GetParam());
  EXPECT_EQ(got.keys, reference_topk(vs, v.size()));
}

TEST_P(EngineEdgeTest, AllElementsEqual) {
  std::vector<u32> v(4096, 0xABCDu);
  std::span<const u32> vs(v.data(), v.size());
  auto got = run_topk_keys<u32>(shared_device(), vs, 100, GetParam());
  EXPECT_EQ(got.keys, std::vector<u32>(100, 0xABCDu));
}

TEST_P(EngineEdgeTest, TinyInput) {
  std::vector<u32> v = {5, 3, 9, 9, 1};
  std::span<const u32> vs(v.data(), v.size());
  auto got = run_topk_keys<u32>(shared_device(), vs, 3, GetParam());
  EXPECT_EQ(got.keys, (std::vector<u32>{9, 9, 5}));
}

TEST_P(EngineEdgeTest, HeavyDuplicatesAtTheBoundary) {
  // kth value has many copies straddling the cut.
  std::vector<u32> v(1 << 12, 700u);
  for (int i = 0; i < 50; ++i) v[i] = 1000u + static_cast<u32>(i);
  std::span<const u32> vs(v.data(), v.size());
  auto got = run_topk_keys<u32>(shared_device(), vs, 100, GetParam());
  EXPECT_EQ(got.keys, reference_topk(vs, 100));
}

TEST_P(EngineEdgeTest, U64Keys) {
  std::vector<u64> v(1 << 12);
  for (u64 i = 0; i < v.size(); ++i)
    v[i] = data::rand_u64(99, i);
  std::span<const u64> vs(v.data(), v.size());
  auto got = run_topk_keys<u64>(shared_device(), vs, 200, GetParam());
  EXPECT_EQ(got.keys, reference_topk(vs, 200));
}

INSTANTIATE_TEST_SUITE_P(
    Edges, EngineEdgeTest,
    ::testing::Values(Algo::kRadixFlag, Algo::kRadixGgksOop,
                      Algo::kBucketInplace, Algo::kBucketOop, Algo::kBitonic,
                      Algo::kSortAndChoose, Algo::kHeap),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (auto& ch : s)
        if (ch == '-') ch = '_';
      return s;
    });

// ---- Instrumentation invariants ----

TEST(FlagRadixStats, NeverStoresToInput) {
  auto v = data::generate(1 << 16, Distribution::kUniform, 1);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  (void)radix_kth_flag<u32>(acc, vs, 1000);
  // The k-selection never writes the input vector; the only store allowed
  // is the single result cell of the unique-survivor early exit.
  EXPECT_LE(acc.stats().global_store_elems, 1u);
}

TEST(FlagRadixStats, LoadsAtMostDigitsTimesN) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 1);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  (void)radix_kth_flag<u32>(acc, vs, 1000);
  // 4 digit passes max (early exit can shorten), Equation 3's 4-scan term.
  EXPECT_LE(acc.stats().global_load_elems, 4 * n + n);
  EXPECT_GE(acc.stats().global_load_elems, n);
}

TEST(GgksInplaceStats, PaysScatteredStores) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 2);
  vgpu::device_vector<u32> work(v.begin(), v.end());
  auto r = radix_topk_ggks_inplace<u32>(shared_device(),
                                        std::span<u32>(work.data(), n), 128);
  // Nearly every element is retired (zeroed) exactly once.
  EXPECT_GT(r.stats.global_store_elems, n / 2);
}

TEST(GgksInplaceVsFlag, FlagIsFasterInSimulatedTime) {
  const u64 n = 1 << 18;
  auto v = data::generate(n, Distribution::kUniform, 3);
  std::span<const u32> vs(v.data(), v.size());
  auto flag = radix_topk_flag<u32>(shared_device(), vs, 1 << 7);
  vgpu::device_vector<u32> work(v.begin(), v.end());
  auto ggks = radix_topk_ggks_inplace<u32>(shared_device(),
                                           std::span<u32>(work.data(), n),
                                           1 << 7);
  // Figure 12: the flag-based design wins by avoiding scattered stores.
  EXPECT_LT(flag.sim_ms, ggks.sim_ms);
}

TEST(BitonicStats, SharedPathUsesSharedMemory) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 4);
  std::span<const u32> vs(v.data(), v.size());
  auto r = bitonic_topk<u32>(shared_device(), vs, 64);
  EXPECT_GT(r.stats.shared_loads, 0u);
}

TEST(BitonicStats, LargeKFallsOffTheSharedPath) {
  auto v = data::generate(1 << 20, Distribution::kUniform, 4);
  std::span<const u32> vs(v.data(), v.size());
  auto small = bitonic_topk<u32>(shared_device(), vs, 256);
  auto large = bitonic_topk<u32>(shared_device(), vs, 512);
  // k > 256: merges move to global memory; per-element cost jumps
  // (Section 2.2 / Figure 4's bitonic cliff).
  EXPECT_GT(large.sim_ms, 2.0 * small.sim_ms);
  EXPECT_EQ(large.stats.shared_loads, 0u);
}

TEST(SortAndChoose, SortsAscendingInternally) {
  auto v = data::generate(1 << 14, Distribution::kNormal, 6);
  std::span<const u32> vs(v.data(), v.size());
  auto r = sort_and_choose_topk<u32>(shared_device(), vs, 10);
  EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end(),
                             std::greater<>()));
  EXPECT_EQ(r.keys, reference_topk(vs, 10));
}

TEST(SortAndChoose, CostsMoreThanRadixTopk) {
  const u64 n = 1 << 18;
  auto v = data::generate(n, Distribution::kUniform, 7);
  std::span<const u32> vs(v.data(), v.size());
  auto sort = sort_and_choose_topk<u32>(shared_device(), vs, 1024);
  auto radix = radix_topk_flag<u32>(shared_device(), vs, 1024);
  // Figure 17: sort-and-choose does far more work than top-k algorithms.
  EXPECT_GT(sort.sim_ms, 2.0 * radix.sim_ms);
}

// ---- Heap baseline ----

TEST(HeapEngine, RoutedThroughDispatchWithDevicePool) {
  // The heap baseline is a first-class Algo: dispatched like the GPU
  // engines, running its parallel variant on the device's host pool. It
  // reports wall-clock only — no kernel stats or simulated GPU time.
  auto v = data::generate(1 << 15, Distribution::kNormal, 77);
  std::span<const u32> vs(v.data(), v.size());
  auto got = run_topk_keys<u32>(shared_device(), vs, 321, Algo::kHeap);
  EXPECT_EQ(got.keys, reference_topk(vs, 321));
  EXPECT_EQ(got.stats.kernels_launched, 0u);
  EXPECT_EQ(got.sim_ms, 0.0);
  EXPECT_EQ(to_string(Algo::kHeap), "heap");
}

TEST(ChooseEngine, PrefersRadixAtScaleAndIsStable) {
  const auto& p = vgpu::GpuProfile::v100s();
  // At paper-scale shapes the flag radix family dominates (Figures 18/19).
  EXPECT_EQ(choose_engine(p, u64{1} << 26, 1 << 12), Algo::kRadixFlag);
  // Deterministic: same shape, same answer.
  for (u64 k : {u64{1}, u64{64}, u64{1} << 16}) {
    const Algo a = choose_engine(p, u64{1} << 22, k);
    EXPECT_EQ(a, choose_engine(p, u64{1} << 22, k));
  }
}

TEST(ChooseEngine, CrossoversUnchangedByMergeNetworkRecharge) {
  // The PR-7 recharge (vgpu::merge_network_cx replacing the full-sort
  // charge in the batched multi-CTA merge) prices a *stage inside* the
  // batched engine; the family chooser's roofline sketch is independent of
  // it. Pin the crossovers so any future coupling of the two shows up.
  const auto& p = vgpu::GpuProfile::v100s();
  // Small k at streaming scale: bitonic's 0.5*lg k passes undercut
  // radix's ~2.5; the flip sits between k=16 (lg=5) and k=32 (lg=6).
  EXPECT_EQ(choose_engine(p, u64{1} << 24, 16), Algo::kBitonic);
  EXPECT_EQ(choose_engine(p, u64{1} << 24, 32), Algo::kRadixFlag);
  // Launch-dominated tiny inputs with large k: sort-and-choose's 8
  // launches beat radix's 10 and bitonic's 2*lg k.
  EXPECT_EQ(choose_engine(p, 64, 64), Algo::kSortAndChoose);
}

TEST(ChooseEngine, MergeNetworkChargeStrictlyBelowResort) {
  // The new analytic charge itself: a P-way merge network over m elements
  // arriving as P < m pre-sorted runs must cost strictly less than the
  // full bitonic sort it replaced, collapse to zero for a single run, and
  // degenerate to the full sort when every "run" is one element.
  for (u64 m : {u64{64}, u64{1} << 10, u64{1} << 15}) {
    for (u64 pw : {u64{2}, u64{4}, u64{16}}) {
      EXPECT_LT(vgpu::merge_network_cx(m, pw),
                detail::bitonic_sort_cx(std::bit_ceil(m)))
          << "m=" << m << " P=" << pw;
      EXPECT_GT(vgpu::merge_network_cx(m, pw), 0u);
    }
    EXPECT_EQ(vgpu::merge_network_cx(m, 1), 0u);
    EXPECT_EQ(vgpu::merge_network_cx(m, m),
              detail::bitonic_sort_cx(std::bit_ceil(m)));
  }
  EXPECT_EQ(vgpu::merge_network_cx(1, 4), 0u);
  // More ways over the same set never get cheaper (each extra tree level
  // adds exchanges).
  EXPECT_LE(vgpu::merge_network_cx(1 << 10, 2),
            vgpu::merge_network_cx(1 << 10, 4));
}

TEST(HeapTopk, SequentialMatchesReference) {
  auto v = data::generate(1 << 14, Distribution::kUniform, 8);
  std::span<const u32> vs(v.data(), v.size());
  auto r = heap_topk<u32>(vs, 99);
  EXPECT_EQ(r.keys, reference_topk(vs, 99));
}

TEST(HeapTopk, ParallelMatchesReference) {
  vgpu::ThreadPool pool(4);
  auto v = data::generate(1 << 16, Distribution::kCustomized, 8);
  std::span<const u32> vs(v.data(), v.size());
  auto r = heap_topk<u32>(vs, 500, &pool);
  EXPECT_EQ(r.keys, reference_topk(vs, 500));
}

// ---- Typed frontend ----

TEST(TypedFrontend, SmallestCriterionOnFloats) {
  std::vector<f32> v;
  for (int i = 0; i < 4096; ++i)
    v.push_back(static_cast<f32>(data::rand_unit(10, i) * 100.0));
  std::span<const f32> vs(v.data(), v.size());
  auto r = run_topk<f32>(shared_device(), vs, 5, Criterion::kSmallest,
                         Algo::kRadixFlag);
  std::vector<f32> expect(v.begin(), v.end());
  std::sort(expect.begin(), expect.end());
  expect.resize(5);
  EXPECT_EQ(r.values, expect);
  EXPECT_EQ(r.kth, expect.back());
}

TEST(TypedFrontend, LargestOnU32IsZeroCopy) {
  auto v = data::generate(1 << 12, Distribution::kUniform, 11);
  std::span<const u32> vs(v.data(), v.size());
  auto r = run_topk<u32>(shared_device(), vs, 3, Criterion::kLargest,
                         Algo::kBucketInplace);
  EXPECT_EQ(r.values, reference_topk(vs, 3));
}

TEST(TypedFrontend, NegativeFloatsLargest) {
  std::vector<f32> v;
  for (int i = 0; i < 2048; ++i)
    v.push_back(static_cast<f32>((data::rand_unit(12, i) - 0.5) * 1000.0));
  std::span<const f32> vs(v.data(), v.size());
  auto r = run_topk<f32>(shared_device(), vs, 17, Criterion::kLargest,
                         Algo::kBitonic);
  std::vector<f32> expect(v.begin(), v.end());
  std::sort(expect.begin(), expect.end(), std::greater<>());
  expect.resize(17);
  EXPECT_EQ(r.values, expect);
}

}  // namespace
}  // namespace drtopk::topk
