// Property tests for delegate-vector construction (core/delegate.hpp):
// the delegates of every subrange are exactly its top-beta multiset, pads
// are well-formed, the shared-memory and warp paths agree, and the
// k-selection API matches the full pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

namespace drtopk::core {
namespace {

using topk::reference_topk;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

/// Brute-force delegates: top-`beta` of each subrange, descending.
std::vector<u32> expected_delegates(std::span<const u32> v, u64 s, int alpha,
                                    u32 beta) {
  const u64 len = u64{1} << alpha;
  const u64 begin = s * len;
  const u64 real = std::min(len, v.size() - begin);
  return reference_topk(v.subspan(begin, real), std::min<u64>(beta, real));
}

struct ConstructCase {
  u64 n;
  int alpha;
  u32 beta;
  bool optimized;
};

class DelegateConstruction
    : public ::testing::TestWithParam<ConstructCase> {};

TEST_P(DelegateConstruction, DelegatesAreExactSubrangeTopBeta) {
  const auto& c = GetParam();
  for (auto d : {data::Distribution::kUniform, data::Distribution::kNormal}) {
    auto v = data::generate(c.n, d, c.n + c.alpha);
    std::span<const u32> vs(v.data(), v.size());
    topk::Accum acc(shared_device());
    ConstructOpts opts;
    opts.optimized = c.optimized;
    vgpu::Workspace ws;
    auto dv = build_delegate_vector<u32>(acc, vs, c.alpha, c.beta, opts, ws);

    ASSERT_EQ(dv.size(), dv.num_subranges * c.beta);
    for (u64 s = 0; s < dv.num_subranges; ++s) {
      auto expect = expected_delegates(vs, s, c.alpha, c.beta);
      for (u64 j = 0; j < c.beta; ++j) {
        const u64 slot = s * c.beta + j;
        if (j < expect.size()) {
          ASSERT_EQ(dv.keys[slot], expect[j])
              << "subrange " << s << " slot " << j;
          ASSERT_EQ(dv.sids[slot], static_cast<u32>(s));
        } else {
          // Padded slot (short tail subrange).
          ASSERT_EQ(dv.sids[slot], kInvalidSid);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DelegateConstruction,
    ::testing::Values(ConstructCase{1 << 12, 3, 1, true},   // shared path
                      ConstructCase{1 << 12, 3, 1, false},  // warp path
                      ConstructCase{1 << 12, 5, 2, true},
                      ConstructCase{1 << 12, 5, 4, true},
                      ConstructCase{1 << 14, 8, 2, true},   // warp (alpha>5)
                      ConstructCase{1 << 14, 8, 4, false},
                      ConstructCase{(1 << 12) + 5, 4, 2, true},  // tail
                      ConstructCase{(1 << 12) + 1, 4, 4, false},
                      ConstructCase{100, 2, 4, true},  // beta == subrange len
                      ConstructCase{100, 1, 4, false}  // beta > subrange len
                      ));

TEST(DelegateConstruction, SharedAndWarpPathsProduceIdenticalVectors) {
  const u64 n = (1 << 15) + 13;
  auto v = data::generate(n, data::Distribution::kCustomized, 9);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Workspace ws;
  for (int alpha : {2, 4, 5}) {
    for (u32 beta : {1u, 2u, 3u}) {
      vgpu::Workspace::Scope scope(ws);  // both vectors rewound per config
      topk::Accum a1(shared_device()), a2(shared_device());
      ConstructOpts shared_opts, warp_opts;
      warp_opts.optimized = false;
      auto dvs = build_delegate_vector<u32>(a1, vs, alpha, beta, shared_opts,
                                            ws);
      auto dvw = build_delegate_vector<u32>(a2, vs, alpha, beta, warp_opts,
                                            ws);
      EXPECT_TRUE(std::equal(dvs.keys.begin(), dvs.keys.end(),
                             dvw.keys.begin(), dvw.keys.end()))
          << "alpha=" << alpha << " beta=" << beta;
      EXPECT_TRUE(std::equal(dvs.sids.begin(), dvs.sids.end(),
                             dvw.sids.begin(), dvw.sids.end()));
    }
  }
}

TEST(DelegateConstruction, SubrangeLenGeometry) {
  DelegateVector<u32> dv;
  dv.alpha = 4;
  dv.num_subranges = 5;
  const u64 n = 4 * 16 + 7;  // last subrange short
  EXPECT_EQ(dv.subrange_len(0, n), 16u);
  EXPECT_EQ(dv.subrange_len(3, n), 16u);
  EXPECT_EQ(dv.subrange_len(4, n), 7u);
}

// ---- k-selection API ----

class KSelectionTest : public ::testing::TestWithParam<u64> {};

TEST_P(KSelectionTest, MatchesNthElement) {
  const u64 n = 1 << 15;
  for (auto d : {data::Distribution::kUniform, data::Distribution::kNormal,
                 data::Distribution::kCustomized}) {
    auto v = data::generate(n, d, GetParam());
    std::span<const u32> vs(v.data(), v.size());
    const u64 k = GetParam();
    const u32 got = dr_kth_keys<u32>(shared_device(), vs, k);
    EXPECT_EQ(got, reference_topk(vs, k).back()) << data::to_string(d);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KSelectionTest,
                         ::testing::Values(1, 2, 100, 1 << 10, 1 << 13));

TEST(KSelection, CheaperThanFullTopk) {
  const u64 n = 1 << 20;
  const u64 k = 1 << 12;
  auto v = data::generate(n, data::Distribution::kUniform, 10);
  std::span<const u32> vs(v.data(), v.size());
  StageBreakdown sel, full;
  (void)dr_kth_keys<u32>(shared_device(), vs, k, DrTopkConfig{}, &sel);
  (void)dr_topk_keys<u32>(shared_device(), vs, k, DrTopkConfig{}, &full);
  // The selection-only second stage skips the collection pass.
  EXPECT_LE(sel.second_ms, full.second_ms);
  EXPECT_LT(sel.second_stats.global_store_elems,
            full.second_stats.global_store_elems + 1);
}

// ---- Hierarchical reduction option for the second top-k threshold ----

TEST(KappaHook, PipelineUsesHookedThreshold) {
  const u64 n = 1 << 14;
  auto v = data::generate(n, data::Distribution::kUniform, 11);
  std::span<const u32> vs(v.data(), v.size());
  u64 seen_kappa = 0;
  DrTopkConfig cfg;
  cfg.beta = 1;
  cfg.kappa_hook = [&](u64 kappa) {
    seen_kappa = kappa;
    return kappa;  // identity: result must stay exact
  };
  auto r = dr_topk_keys<u32>(shared_device(), vs, 64, cfg);
  EXPECT_GT(seen_kappa, 0u);
  EXPECT_EQ(r.keys, reference_topk(vs, 64));
}

TEST(KappaHook, SharperThresholdShrinksCandidates) {
  const u64 n = 1 << 16;
  const u64 k = 256;
  auto v = data::generate(n, data::Distribution::kUniform, 12);
  std::span<const u32> vs(v.data(), v.size());
  const u32 true_kth = reference_topk(vs, k).back();

  DrTopkConfig plain;
  plain.beta = 1;
  StageBreakdown b0;
  (void)dr_topk_keys<u32>(shared_device(), vs, k, plain, &b0);

  DrTopkConfig sharp = plain;
  // A hook that knows the exact answer (the best any exchange could do).
  sharp.kappa_hook = [true_kth](u64 kappa) {
    return std::max<u64>(kappa, true_kth);
  };
  StageBreakdown b1;
  auto r = dr_topk_keys<u32>(shared_device(), vs, k, sharp, &b1);
  EXPECT_EQ(r.keys, reference_topk(vs, k));
  EXPECT_LE(b1.concat_len, b0.concat_len);
}

}  // namespace
}  // namespace drtopk::core
