// Tests for the Dr. Top-k pipeline: the paper's worked examples (Figures 5
// and 8), the three delegate rules, exhaustive correctness sweeps over every
// configuration knob, and the instrumentation invariants that the cost
// analysis (Equations 2-5) relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/concat_batched.hpp"
#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

namespace drtopk::core {
namespace {

using data::Distribution;
using topk::reference_topk;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

/// The 16-element input vector of Figures 1/2/5/8, split into four
/// subranges of four elements.
std::vector<u32> figure_vector() {
  return {2001, 101,  1323, 3012,   // subrange 0 (max 3012)
          2121, 1322, 2313, 1023,   // subrange 1 (max 2313)
          3000, 3010, 1002, 3210,   // subrange 2 (max 3210)
          1020, 333,  2321, 2003};  // subrange 3 (max 2321)
}

DrTopkConfig exact_cfg() {
  DrTopkConfig cfg;
  cfg.alpha = 2;  // subranges of 4, as in the figures
  cfg.skip_last_first_iter = false;
  return cfg;
}

TEST(PaperExamples, Figure5MaximumDelegateTop2) {
  auto v = figure_vector();
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg = exact_cfg();
  cfg.beta = 1;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 2, cfg, &bd);
  EXPECT_EQ(r.keys, (std::vector<u32>{3210, 3012}));
  EXPECT_EQ(bd.num_subranges, 4u);
  EXPECT_EQ(bd.delegate_len, 4u);  // one delegate per subrange
  // Subranges 0 and 2 qualify (their maxima are the top-2 delegates).
  EXPECT_EQ(bd.qualified_subranges, 2u);
  // Rule 2 filtering: only {3012, 3210} survive into the concatenated
  // vector (Section 4.2's walkthrough of this exact example).
  EXPECT_EQ(bd.concat_len, 2u);
}

TEST(PaperExamples, Figure5WithoutFilteringConcatenatesWholeSubranges) {
  auto v = figure_vector();
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg = exact_cfg();
  cfg.beta = 1;
  cfg.filtering = false;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 2, cfg, &bd);
  EXPECT_EQ(r.keys, (std::vector<u32>{3210, 3012}));
  // Both qualified subranges are copied in full: 8 elements.
  EXPECT_EQ(bd.concat_len, 8u);
}

TEST(PaperExamples, Figure8aBetaDelegateTop3) {
  auto v = figure_vector();
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg = exact_cfg();
  cfg.beta = 2;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 3, cfg, &bd);
  EXPECT_EQ(r.keys, (std::vector<u32>{3210, 3012, 3010}));
  // Subrange 2 is fully taken (both 3210 and 3010 are top-3 delegates);
  // subrange 0 contributes only its taken delegate 3012. The concatenated
  // vector is {3012, 3010, 3210} — exactly Figure 8(a).
  EXPECT_EQ(bd.qualified_subranges, 1u);
  EXPECT_EQ(bd.concat_len, 3u);
  EXPECT_FALSE(bd.second_skipped);
}

TEST(PaperExamples, Figure8bBetaDelegateTop2SkipsSecondTopk) {
  auto v = figure_vector();
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg = exact_cfg();
  cfg.beta = 2;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 2, cfg, &bd);
  EXPECT_EQ(r.keys, (std::vector<u32>{3210, 3012}));
  // No subrange has all beta delegates taken: Rule 3 answers from the
  // delegates alone — "neither concatenation nor second top-k is needed".
  EXPECT_EQ(bd.qualified_subranges, 0u);
  EXPECT_TRUE(bd.second_skipped);
  EXPECT_EQ(bd.second_ms, 0.0);
}

// ---- Configuration sweep: every knob combination stays exact ----

struct PipelineCase {
  Distribution dist;
  u64 n;
  u64 k;
  u32 beta;
  bool filtering;
  bool skip_last;
  bool optimized;
};

std::string pipeline_name(const ::testing::TestParamInfo<PipelineCase>& i) {
  const auto& c = i.param;
  return data::to_string(c.dist) + "_n" + std::to_string(c.n) + "_k" +
         std::to_string(c.k) + "_b" + std::to_string(c.beta) +
         (c.filtering ? "_filt" : "_nofilt") + (c.skip_last ? "_skip" : "") +
         (c.optimized ? "_opt" : "");
}

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, ExactMultiset) {
  const auto& c = GetParam();
  auto v = data::generate(c.n, c.dist, c.n * 7 + c.k * 3 + c.beta);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.beta = c.beta;
  cfg.filtering = c.filtering;
  cfg.skip_last_first_iter = c.skip_last;
  cfg.construct.optimized = c.optimized;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, c.k, cfg, &bd);
  EXPECT_EQ(r.keys, reference_topk(vs, c.k));
  EXPECT_EQ(r.kth, r.keys.back());
}

std::vector<PipelineCase> pipeline_cases() {
  std::vector<PipelineCase> cases;
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal,
                         Distribution::kCustomized}) {
    for (u64 n : {u64{4000}, u64{1} << 16}) {
      for (u64 k : {u64{1}, u64{16}, u64{333}, u64{4096}}) {
        if (k * 2 > n) continue;
        for (u32 beta : {1u, 2u, 3u, 4u}) {
          cases.push_back({d, n, k, beta, true, true, true});
        }
        cases.push_back({d, n, k, 2, false, false, true});
        cases.push_back({d, n, k, 1, false, false, false});
        cases.push_back({d, n, k, 2, true, false, false});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineTest,
                         ::testing::ValuesIn(pipeline_cases()),
                         pipeline_name);

// ---- Explicit alpha sweep (small and large subranges, both paths) ----

class AlphaSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AlphaSweepTest, ExactForEveryAlpha) {
  const u64 n = 1 << 15;
  const u64 k = 100;
  auto v = data::generate(n, Distribution::kUniform, 77);
  std::span<const u32> vs(v.data(), v.size());
  for (u32 beta : {1u, 2u}) {
    DrTopkConfig cfg;
    cfg.alpha = GetParam();
    cfg.beta = beta;
    StageBreakdown bd;
    auto r = dr_topk_keys<u32>(shared_device(), vs, k, cfg, &bd);
    EXPECT_EQ(r.keys, reference_topk(vs, k)) << "alpha=" << GetParam()
                                             << " beta=" << beta;
    EXPECT_EQ(bd.alpha, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest, ::testing::Range(1, 9));

// ---- Different first/second algorithms (Dr. Top-k assists them all) ----

class AssistedAlgoTest : public ::testing::TestWithParam<topk::Algo> {};

TEST_P(AssistedAlgoTest, SecondAlgoVariants) {
  const u64 n = 1 << 15;
  auto v = data::generate(n, Distribution::kUniform, 5);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.second_algo = GetParam();
  auto r = dr_topk_keys<u32>(shared_device(), vs, 257, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, 257));
}

TEST_P(AssistedAlgoTest, FirstAlgoVariants) {
  const u64 n = 1 << 15;
  auto v = data::generate(n, Distribution::kNormal, 5);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.first_algo = GetParam();
  auto r = dr_topk_keys<u32>(shared_device(), vs, 64, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, 64));
}

INSTANTIATE_TEST_SUITE_P(
    Algos, AssistedAlgoTest,
    ::testing::Values(topk::Algo::kRadixFlag, topk::Algo::kBucketInplace,
                      topk::Algo::kBitonic, topk::Algo::kRadixGgksOop),
    [](const auto& info) {
      std::string s = topk::to_string(info.param);
      for (auto& ch : s)
        if (ch == '-') ch = '_';
      return s;
    });

// ---- Fallback and degenerate regimes ----

TEST(Fallback, KCloseToNRunsDirect) {
  auto v = data::generate(1024, Distribution::kUniform, 1);
  std::span<const u32> vs(v.data(), v.size());
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 900, DrTopkConfig{}, &bd);
  EXPECT_TRUE(bd.fallback_direct);
  EXPECT_EQ(r.keys, reference_topk(vs, 900));
}

TEST(Fallback, KEqualsHalfNStillWorks) {
  auto v = data::generate(4096, Distribution::kNormal, 2);
  std::span<const u32> vs(v.data(), v.size());
  auto r = dr_topk_keys<u32>(shared_device(), vs, 2048, DrTopkConfig{});
  EXPECT_EQ(r.keys, reference_topk(vs, 2048));
}

TEST(Degenerate, NonPowerOfTwoLengthWithShortTail) {
  // Last subrange shorter than beta: exercises delegate padding.
  const u64 n = (1 << 12) + 1;
  auto v = data::generate(n, Distribution::kUniform, 3);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.alpha = 4;
  cfg.beta = 4;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 55, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, 55));
}

TEST(Degenerate, AllElementsEqual) {
  std::vector<u32> v(1 << 14, 42u);
  std::span<const u32> vs(v.data(), v.size());
  auto r = dr_topk_keys<u32>(shared_device(), vs, 100, DrTopkConfig{});
  EXPECT_EQ(r.keys, std::vector<u32>(100, 42u));
}

TEST(Degenerate, TopElementsAllInOneSubrange) {
  // Rule 1 stress: the entire top-k lives in a single subrange.
  auto v = data::generate(1 << 14, Distribution::kUniform, 4);
  for (u64 i = 0; i < 64; ++i) v[512 + i] = 0xFFFF0000u + static_cast<u32>(i);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.alpha = 6;
  for (u32 beta : {1u, 2u}) {
    cfg.beta = beta;
    auto r = dr_topk_keys<u32>(shared_device(), vs, 64, cfg);
    EXPECT_EQ(r.keys, reference_topk(vs, 64));
  }
}

// ---- Stats invariants (the quantities Equations 2-5 count) ----

TEST(StatsInvariants, ConstructionLoadsInputExactlyOnce) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 5);
  std::span<const u32> vs(v.data(), v.size());
  for (bool optimized : {false, true}) {
    for (int alpha : {4, 8}) {
      topk::Accum acc(shared_device());
      ConstructOpts opts;
      opts.optimized = optimized;
      auto dv = build_delegate_vector<u32>(acc, vs, alpha, 1, opts);
      EXPECT_EQ(acc.stats().global_load_elems, n)
          << "alpha=" << alpha << " optimized=" << optimized;
      // Equation 2: |V|/2^alpha delegates written (keys + sids).
      EXPECT_EQ(acc.stats().global_store_elems, 2 * dv.num_subranges);
    }
  }
}

TEST(StatsInvariants, WarpPathUsesShufflesSharedPathDoesNot) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 5);
  std::span<const u32> vs(v.data(), v.size());

  topk::Accum warp_acc(shared_device());
  ConstructOpts warp_opts;
  warp_opts.optimized = false;
  (void)build_delegate_vector<u32>(warp_acc, vs, 4, 1, warp_opts);
  // One 31-shuffle reduction per subrange (Equation 2's comm term).
  EXPECT_GE(warp_acc.stats().shfl_ops, 31 * (n >> 4));

  topk::Accum sh_acc(shared_device());
  ConstructOpts sh_opts;  // optimized: coalesced-to-shared, strided compute
  (void)build_delegate_vector<u32>(sh_acc, vs, 4, 1, sh_opts);
  EXPECT_EQ(sh_acc.stats().shfl_ops, 0u);
  EXPECT_GT(sh_acc.stats().shared_loads, 0u);
}

TEST(StatsInvariants, SharedPaddingRemovesBankConflicts) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 6);
  std::span<const u32> vs(v.data(), v.size());

  topk::Accum padded(shared_device());
  ConstructOpts o1;
  (void)build_delegate_vector<u32>(padded, vs, 4, 2, o1);

  topk::Accum unpadded(shared_device());
  ConstructOpts o2;
  o2.shared_padding = false;
  (void)build_delegate_vector<u32>(unpadded, vs, 4, 2, o2);

  // Section 5.3: "we use padding to avoid shared memory bank conflict".
  EXPECT_LT(padded.stats().shared_bank_conflicts,
            unpadded.stats().shared_bank_conflicts / 4);
}

TEST(StatsInvariants, BetaMultipliesDelegateVector) {
  const u64 n = 1 << 14;
  auto v = data::generate(n, Distribution::kUniform, 7);
  std::span<const u32> vs(v.data(), v.size());
  for (u32 beta : {1u, 2u, 4u}) {
    topk::Accum acc(shared_device());
    auto dv = build_delegate_vector<u32>(acc, vs, 6, beta);
    EXPECT_EQ(dv.size(), (n >> 6) * beta);
  }
}

TEST(StatsInvariants, FilteringShrinksConcatWorkload) {
  const u64 n = 1 << 18;
  const u64 k = 1 << 10;
  auto v = data::generate(n, Distribution::kUniform, 8);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig with, without;
  with.beta = without.beta = 1;
  without.filtering = false;
  StageBreakdown bw, bwo;
  (void)dr_topk_keys<u32>(shared_device(), vs, k, with, &bw);
  (void)dr_topk_keys<u32>(shared_device(), vs, k, without, &bwo);
  // Figure 7 vs Figure 6: filtering cuts the second top-k's input hard.
  EXPECT_LT(bw.concat_len, bwo.concat_len / 4);
  EXPECT_LT(bw.second_ms, bwo.second_ms);
}

TEST(StatsInvariants, WorkloadRatioShrinksWithN) {
  // Figure 20: (|D| + |concat|) / |V| drops as |V| grows, k fixed.
  const u64 k = 1 << 8;
  double prev_ratio = 2.0;
  for (u64 logn : {14u, 16u, 18u}) {
    const u64 n = u64{1} << logn;
    auto v = data::generate(n, Distribution::kUniform, 9);
    std::span<const u32> vs(v.data(), v.size());
    StageBreakdown bd;
    (void)dr_topk_keys<u32>(shared_device(), vs, k, DrTopkConfig{}, &bd);
    const double ratio =
        static_cast<double>(bd.delegate_len + bd.concat_len) /
        static_cast<double>(n);
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

// ---- Fused single-pass stage 3 vs the legacy three-pass baseline ----

/// PR-1 baseline configuration: three-pass stage 3, multi-pass radix for
/// the small stages. Same kappa policy as `fused` so the classification
/// outcome is comparable field by field.
DrTopkConfig legacy_of(DrTopkConfig fused) {
  fused.fused_concat = false;
  fused.small_input_shared = false;
  return fused;
}

TEST(FusedConcat, BitIdenticalAndCheaperAcrossDistributions) {
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal,
                         Distribution::kCustomized}) {
    const u64 n = 1 << 17;
    auto v = data::generate(n, d, 123);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : {u64{16}, u64{1} << 10}) {
      for (u32 beta : {1u, 2u, 4u}) {
        DrTopkConfig fused;
        fused.beta = beta;
        // Exact kappa on both sides (no relaxation, no small-first) so the
        // classification fields must agree exactly, not just the answer.
        fused.skip_last_first_iter = false;
        fused.small_input_shared = false;
        DrTopkConfig legacy = legacy_of(fused);
        StageBreakdown bf, bl;
        auto rf = dr_topk_keys<u32>(shared_device(), vs, k, fused, &bf);
        auto rl = dr_topk_keys<u32>(shared_device(), vs, k, legacy, &bl);
        ASSERT_EQ(rf.keys, rl.keys)
            << data::to_string(d) << " k=" << k << " beta=" << beta;
        EXPECT_EQ(rf.keys, reference_topk(vs, k));
        EXPECT_EQ(bf.qualified_subranges, bl.qualified_subranges);
        EXPECT_EQ(bf.taken_delegates, bl.taken_delegates);
        EXPECT_EQ(bf.concat_len, bl.concat_len);
        // The fused pass must not cost more concatenation traffic.
        EXPECT_LE(bf.concat_stats.atomic_ops, bl.concat_stats.atomic_ops);
        EXPECT_LE(bf.concat_stats.global_load_txns,
                  bl.concat_stats.global_load_txns);
      }
    }
  }
}

TEST(FusedConcat, AtomicReductionAtLeast4xAtBeta2) {
  // The acceptance bar: stage-3 simulated atomics down >= 4x at beta = 2
  // (the default) against the PR-1 three-pass baseline.
  const u64 n = 1 << 18;
  const u64 k = 1 << 10;
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal}) {
    auto v = data::generate(n, d, 321);
    std::span<const u32> vs(v.data(), v.size());
    DrTopkConfig fused;
    fused.beta = 2;
    DrTopkConfig legacy = legacy_of(fused);
    StageBreakdown bf, bl;
    auto rf = dr_topk_keys<u32>(shared_device(), vs, k, fused, &bf);
    auto rl = dr_topk_keys<u32>(shared_device(), vs, k, legacy, &bl);
    EXPECT_EQ(rf.keys, rl.keys);
    EXPECT_GE(bl.concat_stats.atomic_ops, 4 * bf.concat_stats.atomic_ops)
        << data::to_string(d);
  }
}

TEST(FusedConcat, ParityOnSelectionOnlyAndKappaHookPaths) {
  const u64 n = 1 << 16;
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal}) {
    auto v = data::generate(n, d, 77);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : {u64{5}, u64{300}}) {
      const u64 true_kth = reference_topk(vs, k).back();
      // Selection-only.
      DrTopkConfig fused;
      fused.beta = 2;
      fused.selection_only = true;
      auto legacy = legacy_of(fused);
      EXPECT_EQ(dr_topk_keys<u32>(shared_device(), vs, k, fused).kth,
                dr_topk_keys<u32>(shared_device(), vs, k, legacy).kth);
      // kappa_hook (sharpened threshold, must fire exactly once each).
      int calls_f = 0, calls_l = 0;
      DrTopkConfig hf;
      hf.beta = 2;
      hf.kappa_hook = [&](u64 kp) { ++calls_f; return std::max(kp, true_kth); };
      DrTopkConfig hl = legacy_of(hf);
      hl.kappa_hook = [&](u64 kp) { ++calls_l; return std::max(kp, true_kth); };
      auto rf = dr_topk_keys<u32>(shared_device(), vs, k, hf);
      auto rl = dr_topk_keys<u32>(shared_device(), vs, k, hl);
      EXPECT_EQ(rf.keys, rl.keys) << data::to_string(d) << " k=" << k;
      EXPECT_EQ(rf.keys, reference_topk(vs, k));
      EXPECT_EQ(calls_f, 1);
      EXPECT_EQ(calls_l, 1);
    }
  }
}

TEST(FusedConcat, RelaxationGuardRethresholdsOnlyTouchedChunks) {
  // ND's ties blow up the relaxed threshold; the fused guard must land on
  // the same classification as a from-scratch exact pass while re-reading
  // (far) fewer delegates than a second full pass would.
  const u64 n = 1 << 17;
  const u64 k = 1 << 9;
  auto v = data::generate(n, Distribution::kNormal, 55);
  std::span<const u32> vs(v.data(), v.size());

  DrTopkConfig relaxed;  // guard path: relaxation on, exact recompute inside
  relaxed.beta = 2;
  relaxed.small_input_shared = false;  // keep the radix first stage (relax)
  DrTopkConfig exact = relaxed;
  exact.skip_last_first_iter = false;  // straight to the exact threshold
  StageBreakdown br, be;
  auto rr = dr_topk_keys<u32>(shared_device(), vs, k, relaxed, &br);
  auto re = dr_topk_keys<u32>(shared_device(), vs, k, exact, &be);
  EXPECT_EQ(rr.keys, re.keys);
  EXPECT_EQ(rr.keys, reference_topk(vs, k));
  EXPECT_EQ(br.qualified_subranges, be.qualified_subranges);
  EXPECT_EQ(br.taken_delegates, be.taken_delegates);
  EXPECT_EQ(br.concat_len, be.concat_len);
}

TEST(FusedConcat, LegacyRequestWithoutSidsDegradesToFusedSafely) {
  // fused_concat=false needs the delegate sid tags; when the caller also
  // disabled emit_sids the pipeline must degrade to the fused pass (which
  // derives validity analytically) instead of reading an empty span.
  auto v = data::generate(1 << 14, Distribution::kUniform, 202);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.beta = 2;
  cfg.fused_concat = false;
  cfg.construct.emit_sids = false;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 128, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, 128));
}

TEST(SmallTopk, SingleLaunchMatchesReference) {
  vgpu::Device& dev = shared_device();
  for (u64 n : {u64{33}, u64{1000}, u64{1} << 13}) {
    auto v = data::generate(n, Distribution::kCustomized, n);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : {u64{1}, u64{7}, n / 2, n}) {
      topk::Accum acc(dev);
      auto r = topk::small_topk_shared<u32>(acc, vs, k);
      EXPECT_EQ(r.keys, reference_topk(vs, k)) << "n=" << n << " k=" << k;
      EXPECT_EQ(r.stats.kernels_launched, 1u);  // the whole point
      topk::Accum sel(dev);
      EXPECT_EQ(topk::small_topk_shared<u32>(sel, vs, k, true).kth,
                reference_topk(vs, k).back());
    }
  }
}

// ---- Selection-only mode (pure k-selection, Section 1) ----

TEST(SelectionOnly, ReturnsJustTheKthKey) {
  const u64 n = 1 << 15;
  const u64 k = 123;
  auto v = data::generate(n, Distribution::kUniform, 17);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.selection_only = true;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, k, cfg, &bd);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.kth, reference_topk(vs, k).back());
  EXPECT_EQ(r.keys[0], r.kth);
}

TEST(SelectionOnly, CheaperThanFullTopk) {
  // The selection path skips the second top-k's collection pass; its
  // simulated time must not exceed the full pipeline's.
  const u64 n = 1 << 18;
  const u64 k = 1 << 10;
  auto v = data::generate(n, Distribution::kUniform, 18);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig full, sel;
  sel.selection_only = true;
  StageBreakdown bf, bs;
  auto rf = dr_topk_keys<u32>(shared_device(), vs, k, full, &bf);
  auto rs = dr_topk_keys<u32>(shared_device(), vs, k, sel, &bs);
  EXPECT_EQ(rs.kth, rf.kth);
  EXPECT_LE(bs.second_ms, bf.second_ms);
}

TEST(SelectionOnly, SecondSkippedPathStillSelects) {
  // Figure 8(b)'s Rule 3 fast path with selection_only: the answer comes
  // straight from the taken delegates and is reduced to the k-th.
  auto v = figure_vector();
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg = exact_cfg();
  cfg.beta = 2;
  cfg.selection_only = true;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 2, cfg, &bd);
  EXPECT_TRUE(bd.second_skipped);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.kth, 3012u);
}

TEST(SelectionOnly, FallbackDirectPathKeepsContract) {
  // k close to n forces the direct fallback; selection-only must still
  // return exactly one key there.
  auto v = data::generate(1024, Distribution::kUniform, 20);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.selection_only = true;
  StageBreakdown bd;
  auto r = dr_topk_keys<u32>(shared_device(), vs, 900, cfg, &bd);
  EXPECT_TRUE(bd.fallback_direct);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.kth, reference_topk(vs, 900).back());
}

TEST(SelectionOnly, AgreesWithDrKthAcrossDistributions) {
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal,
                         Distribution::kCustomized}) {
    auto v = data::generate(1 << 14, d, 19);
    std::span<const u32> vs(v.data(), v.size());
    for (u64 k : {u64{1}, u64{50}, u64{999}}) {
      EXPECT_EQ(dr_kth_keys<u32>(shared_device(), vs, k),
                reference_topk(vs, k).back())
          << data::to_string(d) << " k=" << k;
    }
  }
}

// ---- kappa_hook (Section 5.4's distributed threshold exchange) ----

TEST(KappaHook, IdentityHookCalledExactlyOnceAndStaysExact) {
  const u64 n = 1 << 15;
  const u64 k = 200;
  auto v = data::generate(n, Distribution::kUniform, 23);
  std::span<const u32> vs(v.data(), v.size());
  int calls = 0;
  u64 seen_kappa = 0;
  DrTopkConfig cfg;
  cfg.beta = 2;  // would trigger the relaxation — the hook must disable it
  cfg.kappa_hook = [&](u64 kappa) {
    ++calls;
    seen_kappa = kappa;
    return kappa;
  };
  auto r = dr_topk_keys<u32>(shared_device(), vs, k, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, k));
  // A collective exchange must run exactly once per pipeline invocation —
  // the Section 4.3 relaxation (whose guard can recompute kappa) is
  // disabled whenever a hook is installed.
  EXPECT_EQ(calls, 1);
  EXPECT_GT(seen_kappa, 0u);
}

TEST(KappaHook, HookDisablesRelaxationOnTieHeavyData) {
  // ND's ties are what make the relaxation guard recompute; even there the
  // hook must fire exactly once.
  auto v = data::generate(1 << 15, Distribution::kNormal, 24);
  std::span<const u32> vs(v.data(), v.size());
  int calls = 0;
  DrTopkConfig cfg;
  cfg.beta = 2;
  cfg.kappa_hook = [&](u64 kappa) {
    ++calls;
    return kappa;
  };
  auto r = dr_topk_keys<u32>(shared_device(), vs, 100, cfg);
  EXPECT_EQ(r.keys, reference_topk(vs, 100));
  EXPECT_EQ(calls, 1);
}

TEST(KappaHook, SharpenedThresholdShrinksCandidatesAndStaysExact) {
  // A hook that returns the *true* k-th element (a valid lower bound that
  // dominates the locally derived kappa — what the multi-GPU exchange
  // produces) must keep the result exact while shrinking the candidate set.
  const u64 n = 1 << 16;
  const u64 k = 1 << 9;
  auto v = data::generate(n, Distribution::kUniform, 25);
  std::span<const u32> vs(v.data(), v.size());
  const u64 true_kth = reference_topk(vs, k).back();

  DrTopkConfig plain;
  plain.beta = 1;
  StageBreakdown bd_plain;
  auto rp = dr_topk_keys<u32>(shared_device(), vs, k, plain, &bd_plain);

  DrTopkConfig hooked = plain;
  hooked.kappa_hook = [&](u64 kappa) {
    EXPECT_LE(kappa, true_kth);  // local kappa lower-bounds the true k-th
    return std::max(kappa, true_kth);
  };
  StageBreakdown bd_hook;
  auto rh = dr_topk_keys<u32>(shared_device(), vs, k, hooked, &bd_hook);

  EXPECT_EQ(rh.keys, rp.keys);
  EXPECT_LE(bd_hook.concat_len, bd_plain.concat_len);
  EXPECT_LE(bd_hook.taken_delegates, bd_plain.taken_delegates);
}

// ---- Group-wide batched stage 3 (core/concat_batched.hpp) ----

/// One per-query fused stage 3 (classify + concat) for a single threshold:
/// the reference the batched engine must reproduce segment by segment.
template <class K>
struct FusedStage3 {
  ConcatClassification cls;
  std::vector<u8> taken;
  std::vector<u32> qualified, partial;
  std::vector<K> cand;  ///< sorted candidate multiset
};

template <class K>
FusedStage3<K> run_fused_stage3(std::span<const K> v, std::span<const K> dkeys,
                                u64 S, u32 beta, int alpha, K kappa,
                                bool filter) {
  FusedStage3<K> f;
  f.taken.assign(S, 0);
  f.qualified.assign(S, 0);
  f.partial.assign(S, 0);
  f.cls.taken = std::span<u8>(f.taken.data(), f.taken.size());
  f.cls.qualified = std::span<u32>(f.qualified.data(), f.qualified.size());
  f.cls.partial = std::span<u32>(f.partial.data(), f.partial.size());
  topk::Accum acc(shared_device());
  classify_subranges_fused<K>(acc, dkeys, S, beta, alpha, v.size(), kappa,
                              f.cls, false);
  f.cand.assign(v.size(), K{});
  std::array<u64, 1> cur{};
  concat_candidates_fused<K>(
      acc, v, dkeys, beta, alpha, kappa, filter,
      std::span<const u32>(f.qualified.data(), f.qualified.size()),
      f.cls.qualified_count,
      std::span<const u32>(f.partial.data(), f.partial.size()),
      f.cls.partial_count, std::span<K>(f.cand.data(), f.cand.size()),
      std::span<u64>(cur.data(), 1));
  f.cand.resize(cur[0]);
  std::sort(f.cand.begin(), f.cand.end());
  return f;
}

/// Scratch + segment descriptors for one batched stage-3 run.
template <class K>
struct BatchedScratch {
  std::vector<std::vector<u8>> taken;
  std::vector<std::vector<u32>> qualified, partial;
  std::vector<std::vector<K>> cand;
  std::vector<BatchedConcatSegment<K>> segs;

  BatchedScratch(u64 nsegs, u64 S, const std::vector<K>& kappas)
      : taken(nsegs, std::vector<u8>(S, 0)),
        qualified(nsegs, std::vector<u32>(S, 0)),
        partial(nsegs, std::vector<u32>(S, 0)),
        cand(nsegs),
        segs(nsegs) {
    for (u64 i = 0; i < nsegs; ++i) {
      segs[i].kappa = kappas[i];
      segs[i].taken = std::span<u8>(taken[i].data(), taken[i].size());
      segs[i].qualified =
          std::span<u32>(qualified[i].data(), qualified[i].size());
      segs[i].partial = std::span<u32>(partial[i].data(), partial[i].size());
    }
  }
  /// Sizes every segment's candidate span by the shared capacity rule
  /// (what the serving setup allocates from the group arena).
  void size_cand(u64 S, u32 beta, int alpha, u64 n) {
    for (u64 i = 0; i < segs.size(); ++i) {
      if (segs[i].skip) continue;
      cand[i].assign(batched_concat_capacity(segs[i], S, beta, alpha, n),
                     K{});
      segs[i].cand = std::span<K>(cand[i].data(), cand[i].size());
    }
  }
  std::span<BatchedConcatSegment<K>> span() {
    return std::span<BatchedConcatSegment<K>>(segs.data(), segs.size());
  }
};

/// Stage-2 threshold for a segment: the k-th largest delegate, exactly
/// what the group's batched first top-k resolves.
template <class K>
std::vector<K> kappas_for(std::span<const K> dkeys,
                          const std::vector<u64>& ks) {
  std::vector<K> out;
  for (u64 k : ks)
    out.push_back(
        reference_topk(dkeys, std::min<u64>(k, dkeys.size())).back());
  return out;
}

template <class K>
void expect_batched_matches_fused(std::span<const K> vs, int alpha, u32 beta,
                                  bool filter, const std::vector<u64>& ks,
                                  const std::string& tag) {
  topk::Accum dacc(shared_device());
  auto dv = build_delegate_vector<K>(dacc, vs, alpha, beta);
  const u64 S = dv.num_subranges;
  std::vector<K> dhost(dv.keys.begin(), dv.keys.end());
  std::span<const K> dkeys(dhost.data(), dhost.size());

  const std::vector<K> kappas = kappas_for<K>(dkeys, ks);
  BatchedScratch<K> b(kappas.size(), S, kappas);

  topk::Accum acc(shared_device());
  classify_subranges_batched<K>(acc, dkeys, S, beta, alpha, vs.size(),
                                b.span());
  b.size_cand(S, beta, alpha, vs.size());
  concat_candidates_batched<K>(acc, vs, dkeys, beta, alpha, filter, b.span());
  // The whole point: one classify + one concat launch for ALL segments.
  EXPECT_EQ(acc.stats().kernels_launched, 2u) << tag;

  for (u64 i = 0; i < kappas.size(); ++i) {
    const auto f =
        run_fused_stage3<K>(vs, dkeys, S, beta, alpha, kappas[i], filter);
    const std::string at = tag + " seg=" + std::to_string(i);
    EXPECT_EQ(b.segs[i].qualified_count, f.cls.qualified_count) << at;
    EXPECT_EQ(b.segs[i].partial_count, f.cls.partial_count) << at;
    EXPECT_EQ(b.segs[i].partial_taken, f.cls.partial_taken) << at;
    EXPECT_EQ(b.segs[i].taken_total, f.cls.taken_total) << at;
    EXPECT_EQ(b.taken[i], f.taken) << at;
    ASSERT_LE(b.segs[i].cand_count, b.cand[i].size()) << at;
    std::vector<K> got(b.cand[i].begin(),
                       b.cand[i].begin() + b.segs[i].cand_count);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, f.cand) << at;  // same candidate MULTISET per segment
  }
}

TEST(BatchedConcat, MatchesFusedPerSegmentAcrossDistributions) {
  // Distinct AND duplicate ks in one batch (the serving dedup layer feeds
  // one segment per dedup class, but duplicates must also stay correct).
  const std::vector<u64> ks = {1, 16, 16, 333, 1000};
  for (Distribution d : {Distribution::kUniform, Distribution::kNormal,
                         Distribution::kCustomized}) {
    const u64 n = (1 << 16) + 5;  // ragged tail subrange
    auto v = data::generate(n, d, 91);
    std::span<const u32> vs(v.data(), v.size());
    for (int alpha : {6, 8}) {
      for (u32 beta : {1u, 2u, 4u}) {
        expect_batched_matches_fused<u32>(
            vs, alpha, beta, true, ks,
            data::to_string(d) + " a" + std::to_string(alpha) + " b" +
                std::to_string(beta));
      }
    }
    // No Rule-2 filtering: qualified subranges stream whole.
    expect_batched_matches_fused<u32>(vs, 6, 2, false, ks,
                                      data::to_string(d) + " nofilt");
  }
}

TEST(BatchedConcat, MatchesFusedOn64BitKeys) {
  const u64 n = 1 << 15;
  std::vector<u64> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = data::rand_u64(44, i);
  std::span<const u64> vs(v.data(), v.size());
  expect_batched_matches_fused<u64>(vs, 7, 2, true, {5, 64, 900}, "u64");
}

TEST(BatchedConcat, PerSegmentRetryLeavesSkippedSegmentsUntouched) {
  // The relaxation-guard shape: classify at relaxed (lower) thresholds,
  // then re-threshold ONLY segment 0 at its exact kappa — segment 1 is
  // marked skip and must keep its relaxed results bit for bit.
  const u64 n = 1 << 15;
  auto v = data::generate(n, Distribution::kNormal, 92);
  std::span<const u32> vs(v.data(), v.size());
  const int alpha = 6;
  const u32 beta = 2;

  topk::Accum dacc(shared_device());
  auto dv = build_delegate_vector<u32>(dacc, vs, alpha, beta);
  const u64 S = dv.num_subranges;
  std::vector<u32> dhost(dv.keys.begin(), dv.keys.end());
  std::span<const u32> dkeys(dhost.data(), dhost.size());

  const std::vector<u32> exact = kappas_for<u32>(dkeys, {64, 300});
  std::vector<u32> relaxed = exact;
  for (auto& kp : relaxed) kp = kp - kp / 4;  // a valid lower bound

  BatchedScratch<u32> b(2, S, relaxed);
  topk::Accum acc(shared_device());
  classify_subranges_batched<u32>(acc, dkeys, S, beta, alpha, n, b.span());
  b.size_cand(S, beta, alpha, n);
  concat_candidates_batched<u32>(acc, vs, dkeys, beta, alpha, true, b.span());
  const BatchedConcatSegment<u32> seg1_before = b.segs[1];
  const std::vector<u32> seg1_cand(
      b.cand[1].begin(), b.cand[1].begin() + b.segs[1].cand_count);

  // Retry: segment 0 re-thresholds at its exact kappa, segment 1 skips.
  b.segs[0].kappa = exact[0];
  b.segs[1].skip = true;
  classify_subranges_batched<u32>(acc, dkeys, S, beta, alpha, n, b.span(),
                                  /*reuse_taken=*/true);
  concat_candidates_batched<u32>(acc, vs, dkeys, beta, alpha, true, b.span());

  // Segment 0 now matches a from-scratch fused pass at the exact kappa.
  const auto f0 = run_fused_stage3<u32>(vs, dkeys, S, beta, alpha, exact[0],
                                        true);
  EXPECT_EQ(b.segs[0].qualified_count, f0.cls.qualified_count);
  EXPECT_EQ(b.segs[0].partial_count, f0.cls.partial_count);
  EXPECT_EQ(b.segs[0].partial_taken, f0.cls.partial_taken);
  EXPECT_EQ(b.segs[0].taken_total, f0.cls.taken_total);
  std::vector<u32> got0(b.cand[0].begin(),
                        b.cand[0].begin() + b.segs[0].cand_count);
  std::sort(got0.begin(), got0.end());
  EXPECT_EQ(got0, f0.cand);

  // Segment 1 is untouched: counters and candidates as the relaxed pass
  // left them.
  EXPECT_EQ(b.segs[1].qualified_count, seg1_before.qualified_count);
  EXPECT_EQ(b.segs[1].partial_count, seg1_before.partial_count);
  EXPECT_EQ(b.segs[1].taken_total, seg1_before.taken_total);
  EXPECT_EQ(b.segs[1].cand_count, seg1_before.cand_count);
  const std::vector<u32> seg1_after(
      b.cand[1].begin(), b.cand[1].begin() + b.segs[1].cand_count);
  EXPECT_EQ(seg1_after, seg1_cand);
}

// ---- Typed frontend ----

TEST(TypedDrTopk, SmallestFloats) {
  std::vector<f32> v;
  for (int i = 0; i < 1 << 15; ++i)
    v.push_back(static_cast<f32>(data::rand_unit(13, i) * 1e6));
  std::span<const f32> vs(v.data(), v.size());
  auto r = dr_topk<f32>(shared_device(), vs, 20, data::Criterion::kSmallest);
  std::vector<f32> expect(v.begin(), v.end());
  std::sort(expect.begin(), expect.end());
  expect.resize(20);
  EXPECT_EQ(r.values, expect);
}

TEST(TypedDrTopk, LargestU64) {
  std::vector<u64> v(1 << 15);
  for (u64 i = 0; i < v.size(); ++i) v[i] = data::rand_u64(14, i);
  std::span<const u64> vs(v.data(), v.size());
  auto r = dr_topk<u64>(shared_device(), vs, 50, data::Criterion::kLargest);
  EXPECT_EQ(r.values, reference_topk(vs, 50));
}

}  // namespace
}  // namespace drtopk::core
