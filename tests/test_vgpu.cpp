// Unit tests for the virtual-GPU substrate: thread pool, warp collectives
// and their shuffle accounting, coalescing/transaction model, shared-memory
// bank conflicts, cost model and launch bookkeeping.
#include <gtest/gtest.h>

#include <numeric>

#include "vgpu/vgpu.hpp"

namespace drtopk::vgpu {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](u64 i, u32) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<u32> max_worker{0};
  pool.parallel_for(0, 500, [&](u64, u32 w) {
    u32 cur = max_worker.load();
    while (w > cur && !max_worker.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_LT(max_worker.load(), pool.size());
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](u64 i, u32) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](u64, u32) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, BackToBackJobs) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<u64> sum{0};
    pool.parallel_for(0, 100, [&](u64 i, u32) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ConcurrentCallersGetIndependentJobGroups) {
  // Several threads drive parallel_for on ONE pool at once (the serving
  // executors' pattern). Every caller must see its full iteration space
  // exactly once, with worker ids in range.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr u64 kIters = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> fresh(kIters);
    h.swap(fresh);
  }
  std::vector<std::thread> callers;
  std::atomic<bool> bad_worker{false};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(0, kIters, [&, c](u64 i, u32 w) {
        if (w >= pool.size()) bad_worker = true;
        hits[static_cast<size_t>(c)][i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_FALSE(bad_worker.load());
  for (auto& h : hits)
    for (auto& x : h) ASSERT_EQ(x.load(), 1);
}

TEST(ThreadPool, ConcurrentCallerExceptionsStayWithTheirJob) {
  ThreadPool pool(3);
  std::atomic<u64> good_sum{0};
  std::thread thrower([&] {
    EXPECT_THROW(pool.parallel_for(0, 500,
                                   [&](u64 i, u32) {
                                     if (i == 123)
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
  });
  pool.parallel_for(0, 500, [&](u64 i, u32) { good_sum.fetch_add(i); });
  thrower.join();
  EXPECT_EQ(good_sum.load(), 124750u);
}

TEST(Device, ConcurrentKernelLaunchesKeepStatsIsolated) {
  // Two threads launch kernels (one using shared memory) on one Device;
  // per-launch stats must be exact, not cross-contaminated.
  Device dev(GpuProfile::v100s(), 4);
  constexpr u64 kN = 1 << 14;
  std::vector<u32> a(kN, 1), b(kN, 2);
  std::span<const u32> as(a.data(), a.size()), bs(b.data(), b.size());
  KernelStats sa, sb;
  std::thread ta([&] {
    Launch cfg = dev.launch_for_warp_items(kN / 32, "a");
    sa = dev.launch(cfg, [&](CtaCtx& cta) {
      cta.for_each_warp([&](Warp& w) {
        for (u64 i = w.global_id(); i * 32 < kN; i += w.grid_warps())
          (void)w.load_coalesced(as, i * 32);
      });
    });
  });
  std::thread tb([&] {
    Launch cfg = dev.launch_for_warp_items(kN / 32, "b", 8, 4096);
    sb = dev.launch(cfg, [&](CtaCtx& cta) {
      cta.for_each_warp([&](Warp& w) {
        auto sh = cta.shared().alloc<u32>(32);
        for (u64 i = w.global_id(); i * 32 < kN; i += w.grid_warps()) {
          auto vals = w.load_coalesced(bs, i * 32);
          sh.warp_scatter(kWarpSize, [](u32 l) { return l; }, vals);
        }
      });
    });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sa.global_load_elems, kN);
  EXPECT_EQ(sb.global_load_elems, kN);
  EXPECT_EQ(sa.shared_stores, 0u);
  EXPECT_GT(sb.shared_stores, 0u);
}

class WarpFixture : public ::testing::Test {
 protected:
  KernelStats sink;
  Warp warp{sink, 0, 1};
  /// Warp accounting is batched warp-locally and flushed once when the
  /// warp retires; fixture assertions read the live local counters.
  const KernelStats& stats() { return warp.stats(); }
};

TEST_F(WarpFixture, ReduceMaxChargesPaperShuffleCount) {
  auto x = lane_fill<u32>(1);
  x[17] = 42;
  EXPECT_EQ(warp.reduce_max(x), 42u);
  // Section 5.2: sum_{i=1..5} 32/2^i = 31 shuffles per full-warp reduction.
  EXPECT_EQ(stats().shfl_ops, 31u);
}

TEST_F(WarpFixture, ReduceMaxIndexTiesGoToLowestLane) {
  auto x = lane_fill<u32>(7);
  auto [v, lane] = warp.reduce_max_index(x);
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(lane, 0u);
}

TEST_F(WarpFixture, BallotBuildsLaneMask) {
  LaneArray<u8> pred{};
  pred[0] = pred[5] = pred[31] = 1;
  EXPECT_EQ(warp.ballot(pred), (1u << 0) | (1u << 5) | (1u << 31));
  EXPECT_EQ(stats().vote_ops, 1u);
  EXPECT_EQ(stats().shfl_ops, 0u);  // ballot is a vote, not a shuffle
}

TEST_F(WarpFixture, ExclusiveScanAddIsCorrectAndCharged) {
  LaneArray<u32> x{};
  for (u32 i = 0; i < kWarpSize; ++i) x[i] = i + 1;
  auto s = warp.exclusive_scan_add(x);
  u32 expect = 0;
  for (u32 i = 0; i < kWarpSize; ++i) {
    EXPECT_EQ(s[i], expect);
    expect += x[i];
  }
  // Hillis-Steele: steps d=1,2,4,8,16 with (32-d) receiving lanes.
  EXPECT_EQ(stats().shfl_ops, 31u + 30 + 28 + 24 + 16);
}

TEST_F(WarpFixture, CoalescedLoadCountsSectors) {
  std::vector<u32> v(64);
  std::iota(v.begin(), v.end(), 0);
  auto lanes = warp.load_coalesced(std::span<const u32>(v), 0);
  EXPECT_EQ(lanes[31], 31u);
  EXPECT_EQ(stats().global_load_elems, 32u);
  EXPECT_EQ(stats().global_load_bytes, 128u);
  // 32 x 4B contiguous = 128B = 4 x 32B sectors.
  EXPECT_EQ(stats().global_load_txns, 4u);
}

TEST_F(WarpFixture, ScatteredStoreCountsOneSectorPerLane) {
  std::vector<u32> v(1024, 0);
  LaneArray<u64> idx{};
  LaneArray<u32> val{};
  for (u32 l = 0; l < kWarpSize; ++l) {
    idx[l] = (l * 97) % 1024;  // deliberately non-contiguous
    val[l] = l;
  }
  warp.store_scattered(std::span<u32>(v), idx, val, ~0u);
  EXPECT_EQ(stats().global_store_txns, 32u);
  EXPECT_EQ(stats().global_store_elems, 32u);
  EXPECT_EQ(v[97], 1u);
}

TEST_F(WarpFixture, ScanCoalescedVisitsEveryElementOnce) {
  std::vector<u32> v(100);
  std::iota(v.begin(), v.end(), 0);
  u64 sum = 0, count = 0;
  warp.scan_coalesced(std::span<const u32>(v), 10, 80, [&](u32, u32 x) {
    sum += x;
    ++count;
  });
  EXPECT_EQ(count, 80u);
  EXPECT_EQ(sum, static_cast<u64>((10 + 89) * 80 / 2));
  EXPECT_EQ(stats().global_load_elems, 80u);
}

TEST(SharedMemTest, GatherWithoutConflicts) {
  KernelStats stats;
  std::vector<std::byte> arena(64 << 10);
  SharedMem sm(arena.data(), arena.size(), &stats);
  auto span = sm.alloc<u32>(33 * 32);
  for (u64 i = 0; i < span.size(); ++i) span.data()[i] = static_cast<u32>(i);
  // Padded layout (pitch 33): lane l reads row*33 + l — conflict-free.
  span.warp_gather(32, [](u32 l) { return 5 * 33 + l; });
  EXPECT_EQ(stats.shared_bank_conflicts, 0u);
}

TEST(SharedMemTest, StridedGatherConflicts) {
  KernelStats stats;
  std::vector<std::byte> arena(64 << 10);
  SharedMem sm(arena.data(), arena.size(), &stats);
  auto span = sm.alloc<u32>(32 * 32);
  // Unpadded column access (stride 32): all 32 lanes hit bank 0 -> 31
  // replays.
  span.warp_gather(32, [](u32 l) { return static_cast<u64>(l) * 32; });
  EXPECT_EQ(stats.shared_bank_conflicts, 31u);
}

TEST(SharedMemTest, SameWordBroadcastDoesNotConflict) {
  KernelStats stats;
  std::vector<std::byte> arena(1 << 10);
  SharedMem sm(arena.data(), arena.size(), &stats);
  auto span = sm.alloc<u32>(64);
  span.warp_gather(32, [](u32) { return u64{7}; });  // broadcast
  EXPECT_EQ(stats.shared_bank_conflicts, 0u);
}

TEST(CostModelTest, StreamingKernelHitsBandwidthRoofline) {
  const auto& p = GpuProfile::v100s();
  CostModel cm(p);
  KernelStats s;
  const u64 n = u64{1} << 30;
  s.global_load_elems = n;
  s.global_load_bytes = n * 4;
  s.global_load_txns = n * 4 / kSectorBytes;
  // Pure streaming: time == bytes / peak bandwidth.
  const double expect_ms = static_cast<double>(n * 4) / (p.mem_bw_gbps * 1e9)
                           * 1e3;
  EXPECT_NEAR(cm.kernel_ms(s), expect_ms, expect_ms * 0.02 + 0.01);
}

TEST(CostModelTest, ScatteredStoresCostMoreThanCoalesced) {
  CostModel cm(GpuProfile::v100s());
  const u64 n = 1 << 20;
  KernelStats coalesced;
  coalesced.global_store_elems = n;
  coalesced.global_store_bytes = n * 4;
  coalesced.global_store_txns = n * 4 / kSectorBytes;
  KernelStats scattered = coalesced;
  scattered.global_store_txns = n;  // one sector per element
  EXPECT_GT(cm.kernel_ms(scattered), 5.0 * cm.kernel_ms(coalesced));
}

TEST(CostModelTest, TitanXpSlowerThanV100S) {
  KernelStats s;
  s.global_load_bytes = u64{1} << 28;
  s.global_load_elems = s.global_load_bytes / 4;
  s.global_load_txns = s.global_load_bytes / kSectorBytes;
  CostModel v100(GpuProfile::v100s());
  CostModel xp(GpuProfile::titan_xp());
  const double ratio = xp.kernel_ms(s) / v100.kernel_ms(s);
  // Peak bandwidth ratio 1134/547.7 ~ 2.07; Section 6.5 reports the overall
  // ratio between the GPUs as 1.3-1.8x (latency effects shrink it).
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.5);
}

TEST(DeviceTest, LaunchMergesStatsAcrossCtas) {
  Device dev(GpuProfile::v100s(), 4);
  std::vector<u32> v(1 << 12);
  std::iota(v.begin(), v.end(), 0);
  Launch cfg{"sum", 16, 4, 0};
  auto stats = dev.launch(cfg, [&](CtaCtx& cta) {
    cta.for_each_warp([&](Warp& w) {
      if (w.global_id() == 0)
        w.load_coalesced(std::span<const u32>(v), 0);
    });
  });
  EXPECT_EQ(stats.global_load_elems, 32u);
  EXPECT_EQ(stats.ctas_run, 16u);
  EXPECT_EQ(stats.kernels_launched, 1u);
  EXPECT_GT(dev.total_sim_ms(), 0.0);
}

TEST(DeviceTest, AtomicAddAcrossCtasIsConsistent) {
  Device dev(GpuProfile::v100s(), 8);
  u64 counter = 0;
  std::span<u64> cnt(&counter, 1);
  Launch cfg{"atomics", 64, 8, 0};
  dev.launch(cfg, [&](CtaCtx& cta) {
    cta.for_each_warp([&](Warp& w) { w.atomic_add(cnt, 0, u64{1}); });
  });
  EXPECT_EQ(counter, 64u * 8);
}

TEST(DeviceTest, SharedMemoryIsPerCtaScratch) {
  Device dev(GpuProfile::v100s(), 4);
  Launch cfg{"shmem", 32, 1, 1024};
  u64 failures = 0;
  std::span<u64> f(&failures, 1);
  dev.launch(cfg, [&](CtaCtx& cta) {
    auto sh = cta.shared().alloc<u32>(16);
    for (u32 i = 0; i < 16; ++i) sh.st(i, cta.cta_id());
    for (u32 i = 0; i < 16; ++i) {
      if (sh.ld(i) != cta.cta_id()) cta.atomic_add(f, 0, u64{1});
    }
  });
  EXPECT_EQ(failures, 0u);
}

TEST(ProfileTest, A100OutpacesV100SByBandwidthRatio) {
  KernelStats s;
  s.global_load_bytes = u64{1} << 28;
  s.global_load_elems = s.global_load_bytes / 4;
  s.global_load_txns = s.global_load_bytes / kSectorBytes;
  CostModel v100(GpuProfile::v100s());
  CostModel a100(GpuProfile::a100());
  // Streaming kernels scale with 2039/1134 ~ 1.8x.
  EXPECT_NEAR(v100.kernel_ms(s) / a100.kernel_ms(s), 2039.0 / 1134.0, 0.05);
}

TEST(ProfileTest, DerivedThroughputsArePlausible) {
  const auto& p = GpuProfile::v100s();
  // Shared-memory aggregate bandwidth is an order of magnitude above DRAM
  // (Section 2.1: "around one order of magnitude faster").
  EXPECT_GT(p.shared_bw_gbps(), 8.0 * p.mem_bw_gbps);
  EXPECT_LT(p.shared_bw_gbps(), 20.0 * p.mem_bw_gbps);
  EXPECT_GT(p.shfl_glanes_per_sec(), 0.0);
}

TEST(CostModelTest, WriteAllocatePenalizesPartialSectorStores) {
  CostModel cm(GpuProfile::v100s());
  const u64 n = 1 << 20;
  KernelStats partial;  // scattered 4B stores: 32B write + 28B fill read
  partial.global_store_elems = n;
  partial.global_store_bytes = n * 4;
  partial.global_store_txns = n;
  KernelStats full = partial;
  full.global_store_txns = n * 4 / kSectorBytes;  // coalesced
  EXPECT_NEAR(cm.mem_ms(partial) / cm.mem_ms(full), 15.0, 0.5);
}

}  // namespace
}  // namespace drtopk::vgpu
