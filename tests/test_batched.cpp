// Tests for the batched multi-segment selection engine (topk/batched.hpp)
// and the deferred-finalization seam of the core pipeline: batched-vs-
// per-query parity across distributions, alpha/beta, k values and ragged
// segment widths (empty and k > width included), the two-level multi-CTA
// merge path, the same-corpus sort sharing, and launch-count budgets.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"
#include "topk/batched.hpp"

namespace drtopk::topk {
namespace {

using data::Distribution;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

template <class K>
void expect_segment_exact(const BatchedSegment<K>& sg,
                          const std::vector<K>& got, const char* what) {
  const u64 keff = std::min(sg.k, sg.data.size());
  if (keff == 0) {
    EXPECT_TRUE(got.empty()) << what;
    return;
  }
  const auto expect = reference_topk(sg.data, keff);
  if (sg.selection_only) {
    ASSERT_EQ(got.size(), 1u) << what;
    EXPECT_EQ(got[0], expect.back()) << what;
  } else {
    EXPECT_EQ(got, expect) << what;
  }
}

TEST(Batched, ParityAcrossDistributionsAndRaggedWidths) {
  // Segments of wildly different widths — empty, sub-warp, k > width, a
  // few thousand — over every distribution, mixed full-top-k and
  // selection-only, all selected in one batch.
  std::vector<vgpu::device_vector<u32>> corpora;
  for (auto d : {Distribution::kUniform, Distribution::kNormal,
                 Distribution::kCustomized})
    corpora.push_back(data::generate(5000, d, 7 + corpora.size()));

  std::vector<BatchedSegment<u32>> segs;
  u64 tag = 0;
  for (const auto& c : corpora) {
    std::span<const u32> cs(c.data(), c.size());
    for (const u64 width : {u64{0}, u64{1}, u64{5}, u64{31}, u64{33},
                            u64{100}, u64{1000}, u64{5000}}) {
      for (const u64 k : {u64{1}, u64{3}, u64{32}, u64{150}}) {
        segs.push_back({cs.subspan(0, width), k, tag, (tag % 3) == 0});
        ++tag;
      }
    }
  }

  Accum acc(shared_device());
  auto r = batched_topk<u32>(acc, segs);
  ASSERT_EQ(r.keys.size(), segs.size());
  for (size_t i = 0; i < segs.size(); ++i)
    expect_segment_exact(segs[i], r.keys[i], "ragged parity");
  // All widths fit one SM: a single selection launch covered everything.
  EXPECT_EQ(r.launches, 1u);
  EXPECT_EQ(r.multi_cta, 0u);
  EXPECT_EQ(r.fallback, 0u);
}

TEST(Batched, SameCorpusSegmentsShareOneSort) {
  // N selections over one span (the serving group's stage-2 shape): one
  // problem, one sort, N emissions.
  auto v = data::generate(4096, Distribution::kUniform, 21);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<BatchedSegment<u32>> segs;
  for (const u64 k : {u64{1}, u64{8}, u64{64}, u64{512}, u64{512}})
    segs.push_back({vs, k, k, /*selection_only=*/true});

  Accum acc(shared_device());
  auto r = batched_topk<u32>(acc, segs);
  EXPECT_EQ(r.shared_sorts, segs.size() - 1);
  EXPECT_EQ(r.single_cta, 1u);
  EXPECT_EQ(r.launches, 1u);
  for (size_t i = 0; i < segs.size(); ++i)
    expect_segment_exact(segs[i], r.keys[i], "shared sort");
}

TEST(Batched, MultiCtaMergePathLiftsTheSharedMemoryCap) {
  const auto& prof = shared_device().profile();
  const u64 cap = batched_single_cap<u32>(prof);
  // ~3.5 slices worth of data: far beyond one SM's shared memory, well
  // within the two-level budget for a small k.
  const u64 n = cap * 3 + cap / 2;
  auto v = data::generate(n, Distribution::kCustomized, 31);
  std::span<const u32> vs(v.data(), v.size());
  ASSERT_FALSE(small_topk_fits<u32>(prof, n));
  ASSERT_TRUE(batched_multi_fits<u32>(prof, n, 1024));

  std::vector<BatchedSegment<u32>> segs;
  segs.push_back({vs, 1024, 0, false});
  segs.push_back({vs, 100, 1, true});  // rides the same slices + merge

  Accum acc(shared_device());
  auto r = batched_topk<u32>(acc, segs);
  EXPECT_EQ(r.multi_cta, 1u);
  EXPECT_EQ(r.launches, 2u);  // slice sort + cross-CTA merge
  for (size_t i = 0; i < segs.size(); ++i)
    expect_segment_exact(segs[i], r.keys[i], "multi-CTA");
}

TEST(Batched, MixedSmallAndMultiCtaSegmentsStayTwoLaunches) {
  const u64 cap = batched_single_cap<u32>(shared_device().profile());
  auto big = data::generate(cap * 2 + 17, Distribution::kUniform, 41);
  auto small = data::generate(2000, Distribution::kNormal, 42);
  std::span<const u32> bs(big.data(), big.size());
  std::span<const u32> ss(small.data(), small.size());

  std::vector<BatchedSegment<u32>> segs;
  segs.push_back({bs, 500, 0, false});
  segs.push_back({ss, 64, 1, false});
  segs.push_back({ss.subspan(0, 10), 10, 2, false});

  Accum acc(shared_device());
  auto r = batched_topk<u32>(acc, segs);
  // The small segments' CTAs ride the multi-CTA segment's slice launch.
  EXPECT_EQ(r.launches, 2u);
  EXPECT_EQ(r.single_cta, 2u);
  EXPECT_EQ(r.multi_cta, 1u);
  for (size_t i = 0; i < segs.size(); ++i)
    expect_segment_exact(segs[i], r.keys[i], "mixed batch");
}

TEST(Batched, FallbackWhenMergeSetOverflows) {
  // k so large that the per-slice prefixes cannot fit one SM either: the
  // engine must degrade to the per-segment engine and stay exact.
  const u64 cap = batched_single_cap<u32>(shared_device().profile());
  const u64 n = cap * 4;
  auto v = data::generate(n, Distribution::kUniform, 51);
  std::span<const u32> vs(v.data(), v.size());
  ASSERT_FALSE(batched_multi_fits<u32>(shared_device().profile(), n, cap));

  std::vector<BatchedSegment<u32>> segs;
  segs.push_back({vs, cap, 0, false});
  Accum acc(shared_device());
  auto r = batched_topk<u32>(acc, segs);
  EXPECT_EQ(r.fallback, 1u);
  EXPECT_GT(r.launches, 1u);
  expect_segment_exact(segs[0], r.keys[0], "fallback");
}

TEST(Batched, PerSegmentModeIsTheMeasurableBaseline) {
  auto v = data::generate(3000, Distribution::kUniform, 61);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<BatchedSegment<u32>> segs;
  for (u64 i = 0; i < 4; ++i)
    segs.push_back({vs.subspan(i * 700, 700), 50 + i, i, false});

  Accum batched_acc(shared_device());
  auto batched = batched_topk<u32>(batched_acc, segs);
  Accum per_acc(shared_device());
  auto per = batched_topk<u32>(per_acc, segs, BatchedMode::kPerSegment);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(batched.keys[i], per.keys[i]) << i;  // bit-identical paths
  }
  EXPECT_EQ(batched.launches, 1u);
  EXPECT_GT(per.launches, batched.launches);
  EXPECT_EQ(per.fallback, segs.size());
}

TEST(Batched, U64KeysAndLaneArrayPacking) {
  std::vector<u64> v(20000);
  for (u64 i = 0; i < v.size(); ++i) v[i] = data::rand_u64(71, i);
  std::span<const u64> vs(v.data(), v.size());
  std::vector<BatchedSegment<u64>> segs;
  segs.push_back({vs, 333, 0, false});
  segs.push_back({vs.subspan(100, 4000), 64, 1, true});

  Accum acc(shared_device());
  auto r = batched_topk<u64>(acc, segs);
  for (size_t i = 0; i < segs.size(); ++i)
    expect_segment_exact(segs[i], r.keys[i], "u64");
}

// ---------------------------------------------------------------------------
// Deferred finalization through the core pipeline: dr_topk_from_delegates
// stops after concatenation, the batched engine finalizes — results must be
// bit-identical to the inline stage 4, across alpha/beta/k/distributions.
// ---------------------------------------------------------------------------

class DeferredParity
    : public ::testing::TestWithParam<std::tuple<Distribution, int, u32>> {};

TEST_P(DeferredParity, BatchedFinalizeMatchesInlineSecondTopk) {
  const auto [dist, alpha, beta] = GetParam();
  const u64 n = 1 << 16;
  auto v = data::generate(n, dist, 97);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Device& dev = shared_device();

  core::DrTopkConfig cfg;
  cfg.alpha = alpha;
  cfg.beta = beta;

  vgpu::Workspace ws;
  vgpu::Workspace cand_ws;  // stands in for the serving group's arena
  for (const u64 k : {u64{1}, u64{17}, u64{128}, u64{1024}}) {
    vgpu::Workspace::Scope scope(ws);
    topk::Accum acc(dev);
    core::ConstructOpts copts;
    copts.emit_sids = false;
    auto dv = core::build_delegate_vector<u32>(acc, vs, alpha, beta, copts,
                                               ws);
    if (dv.size() < k) continue;

    auto inline_r = core::dr_topk_from_delegates<u32>(dev, vs, k, dv, cfg,
                                                      nullptr, ws);

    core::DeferredSecond<u32> ds;
    ds.alloc_cand = [&](u64 cap) { return cand_ws.alloc<u32>(cap); };
    auto deferred_r = core::dr_topk_from_delegates<u32>(dev, vs, k, dv, cfg,
                                                        nullptr, ws, &ds);
    std::vector<u32> keys;
    if (ds.deferred) {
      EXPECT_TRUE(deferred_r.keys.empty());
      EXPECT_GE(ds.cand_count, k);
      BatchedSegment<u32> seg{ds.cand, k, 0, false};
      Accum facc(dev);
      auto br = batched_topk<u32>(
          facc, std::span<const BatchedSegment<u32>>(&seg, 1));
      keys = std::move(br.keys[0]);
    } else {
      keys = std::move(deferred_r.keys);  // Rule-3 fast path finished inline
    }
    EXPECT_EQ(keys, inline_r.keys) << "k=" << k;
    cand_ws.reset();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeferredParity,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kNormal,
                                         Distribution::kCustomized),
                       ::testing::Values(6, 10, 12),
                       ::testing::Values(1u, 2u, 4u)));

TEST(Batched, SegmentCapScalesWithTheDevice) {
  // The capacity ladder's top rung: a few waves of single-CTA problems per
  // device. Must be positive for every profile and ordered by SM count —
  // the serving layer's finalization window uses it as the default
  // early-flush cap.
  const u64 v100s = topk::batched_segment_cap(vgpu::GpuProfile::v100s());
  const u64 titan = topk::batched_segment_cap(vgpu::GpuProfile::titan_xp());
  const u64 a100 = topk::batched_segment_cap(vgpu::GpuProfile::a100());
  EXPECT_GT(titan, 0u);
  EXPECT_GT(v100s, titan);  // 80 SMs vs 30
  EXPECT_GT(a100, v100s);   // 108 SMs vs 80
}

// ---- Cross-run merge entry point (PR 7: the sharded server's reduction
// kernel) ----

TEST(BatchedMerge, ExactOverPreSortedRunsInOneLaunch) {
  const u64 n = 4096;
  auto v = data::generate(n, Distribution::kUniform, 201);
  std::span<const u32> vs(v.data(), v.size());
  // 4 "shards": each run is its slice's exact local top-k, descending.
  std::vector<std::vector<u32>> runs;
  const u64 k = 128;
  for (u64 s = 0; s < 4; ++s)
    runs.push_back(reference_topk(vs.subspan(s * (n / 4), n / 4), k));

  std::vector<MergeSegment<u32>> segs(3);
  for (auto& run : runs) segs[0].runs.emplace_back(run);
  segs[0].k = k;
  // Same runs, selection-only, smaller k.
  for (auto& run : runs) segs[1].runs.emplace_back(run);
  segs[1].k = 17;
  segs[1].selection_only = true;
  // Ragged: one empty run, k beyond the available total.
  segs[2].runs.emplace_back(runs[0]);
  segs[2].runs.emplace_back(std::span<const u32>{});
  segs[2].k = 10 * k;

  Accum acc(shared_device());
  auto r = batched_merge_topk<u32>(acc, segs);
  ASSERT_EQ(r.launches, 1u);  // every segment rode ONE merge_select launch
  EXPECT_EQ(r.single_cta, 3u);
  EXPECT_EQ(r.fallback, 0u);

  // Any global winner is in its shard's local top-k, so merging the local
  // lists reproduces the global answer exactly.
  EXPECT_EQ(r.keys[0], reference_topk(vs, k));
  ASSERT_EQ(r.keys[1].size(), 1u);
  EXPECT_EQ(r.keys[1][0], reference_topk(vs, 17).back());
  EXPECT_EQ(r.keys[2], runs[0]);  // k clamps to the one non-empty run
  EXPECT_GT(acc.sim_ms(), 0.0);
}

TEST(BatchedMerge, EmptySegmentsYieldEmptyResultsWithoutLaunching) {
  std::vector<MergeSegment<u32>> segs(2);
  segs[0].k = 5;  // no runs at all
  segs[1].runs.emplace_back(std::span<const u32>{});
  segs[1].k = 5;
  Accum acc(shared_device());
  auto r = batched_merge_topk<u32>(acc, segs);
  EXPECT_EQ(r.launches, 0u);
  EXPECT_TRUE(r.keys[0].empty());
  EXPECT_TRUE(r.keys[1].empty());
}

TEST(BatchedMerge, OversizedMergeSetFallsBackToRadix) {
  // Merge set larger than one SM's shared memory: the engine concatenates
  // the runs (charged copy) and runs the flag-radix engine instead.
  const vgpu::GpuProfile& p = shared_device().profile();
  const u64 cap = batched_single_cap<u32>(p);
  const u64 run_len = cap / 2;
  auto v = data::generate(4 * run_len, Distribution::kNormal, 202);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<std::vector<u32>> runs;
  for (u64 s = 0; s < 4; ++s) {
    runs.emplace_back(vs.begin() + static_cast<i64>(s * run_len),
                      vs.begin() + static_cast<i64>((s + 1) * run_len));
    std::sort(runs.back().begin(), runs.back().end(), std::greater<>());
  }
  std::vector<MergeSegment<u32>> segs(1);
  for (auto& run : runs) segs[0].runs.emplace_back(run);
  segs[0].k = 333;

  Accum acc(shared_device());
  auto r = batched_merge_topk<u32>(acc, segs);
  EXPECT_EQ(r.fallback, 1u);
  EXPECT_GE(r.launches, 2u);  // concat + at least one radix launch
  EXPECT_EQ(r.keys[0], reference_topk(vs, 333));
}

TEST(BatchedMerge, MergeNetworkChargeBeatsFullResort) {
  // The P-way merge-network recharge: merging pre-sorted runs must cost
  // measurably fewer shared-memory accesses than re-sorting the same set
  // from scratch (which is what a BatchedSegment over the concatenation
  // would charge).
  const u64 m = 1 << 12;
  auto v = data::generate(m, Distribution::kUniform, 203);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<std::vector<u32>> runs;
  for (u64 s = 0; s < 4; ++s) {
    runs.emplace_back(vs.begin() + static_cast<i64>(s * (m / 4)),
                      vs.begin() + static_cast<i64>((s + 1) * (m / 4)));
    std::sort(runs.back().begin(), runs.back().end(), std::greater<>());
  }
  std::vector<u32> flat(vs.begin(), vs.end());
  std::sort(flat.begin(), flat.end(), std::greater<>());
  // flat is one sorted buffer — present it as 4 runs to the merge engine
  // vs one un-merged segment to the sort engine, same element count.
  std::vector<MergeSegment<u32>> ms(1);
  for (u64 s = 0; s < 4; ++s)
    ms[0].runs.emplace_back(
        std::span<const u32>(runs[s].data(), runs[s].size()));
  ms[0].k = 64;
  Accum merge_acc(shared_device());
  auto mr = batched_merge_topk<u32>(merge_acc, ms);

  std::vector<BatchedSegment<u32>> ss(1);
  ss[0].data = std::span<const u32>(flat.data(), flat.size());
  ss[0].k = 64;
  Accum sort_acc(shared_device());
  auto sr = batched_topk<u32>(sort_acc, ss);

  EXPECT_EQ(mr.keys[0], sr.keys[0]);
  EXPECT_LT(merge_acc.stats().shared_loads + merge_acc.stats().shared_stores,
            sort_acc.stats().shared_loads + sort_acc.stats().shared_stores);
}

TEST(Deferred, ExternalKappaSkipsStageTwo) {
  // An externally supplied exact threshold must zero out stage-2 work and
  // keep the pipeline exact (the batched serving path's contract).
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 101);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Device& dev = shared_device();
  const u64 k = 256;

  vgpu::Workspace ws;
  vgpu::Workspace::Scope scope(ws);
  topk::Accum acc(dev);
  core::ConstructOpts copts;
  copts.emit_sids = false;
  auto dv = core::build_delegate_vector<u32>(acc, vs, 9, 2, copts, ws);

  std::span<const u32> dkeys(dv.keys.data(), dv.keys.size());
  const u32 kappa = reference_topk(dkeys, k).back();

  core::DeferredSecond<u32> ds;
  ds.have_kappa = true;
  ds.kappa = kappa;
  ds.defer = false;  // kappa-only use: stage 4 runs inline
  core::StageBreakdown bd;
  auto r = core::dr_topk_from_delegates<u32>(dev, vs, k, dv, {}, &bd, ws,
                                             &ds);
  EXPECT_FALSE(ds.deferred);
  EXPECT_EQ(bd.first_ms, 0.0);
  EXPECT_EQ(bd.first_stats.kernels_launched, 0u);
  EXPECT_EQ(r.keys, reference_topk(vs, k));
}

}  // namespace
}  // namespace drtopk::topk
