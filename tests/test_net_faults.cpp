// Fault injection for the network front door: clients that die or stall
// mid-stream, connections dropped while their queries are parked in a
// batched finalize window. The invariants under attack: the serving layer
// always drains (no orphaned group state), every kernel launch stays
// stage-attributed, orphaned responses are dropped-and-counted rather than
// misdelivered, and the server keeps answering the well-behaved.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <thread>

#include "data/distributions.hpp"
#include "net/client.hpp"
#include "net/net_server.hpp"

namespace drtopk::net {
namespace {

using data::Criterion;
using data::Distribution;

struct Fixture {
  vgpu::Device dev;  // private device: unattributed_launches isolated
  vgpu::device_vector<u32> corpus;
  serve::TopkServer srv;
  SingleBackend backend;
  NetServer net;

  explicit Fixture(serve::ServerConfig scfg = {}, NetServerConfig ncfg = {})
      : corpus(data::generate(1 << 15, Distribution::kUniform, 71)),
        srv(dev, scfg),
        backend(srv),
        net(backend, ncfg) {
    backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));
  }

  u64 counter(const char* name) const {
    const obs::Counter* c = net.metrics().find_counter(name);
    return c ? c->value() : 0;
  }

  /// Waits until at least `opened` connections were ever accepted AND none
  /// remain. "active == 0" alone is trivially true before the loop thread
  /// even accepts — the opened floor is what makes this a real barrier
  /// (and since EOF is processed after the frames buffered ahead of it, a
  /// closed connection's requests are guaranteed admitted-or-shed).
  void await_closed(u64 opened) {
    for (int spin = 0; spin < 500; ++spin) {
      if (counter("net_connections_opened") >= opened &&
          net.active_connections() == 0)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "connections stuck: opened="
           << counter("net_connections_opened") << " active="
           << net.active_connections();
  }
};

TEST(NetFaults, ClientKilledMidFrame) {
  Fixture fx;
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(fx.net.port()));

  // Half a valid frame (header promises 34 payload bytes, sends 4), then
  // the client dies. The server must drop the buffered partial silently.
  TopkRequest req;
  req.k = 10;
  const auto wire = encode(req);
  ASSERT_TRUE(cli.send_raw({wire.data(), wire.size() / 2}));
  cli.close();

  fx.await_closed(1);
  fx.net.drain();
  fx.srv.drain();
  EXPECT_EQ(fx.dev.unattributed_launches(), 0u);
  EXPECT_EQ(fx.net.in_flight(), 0u);

  // A new client on a (likely reused) fd gets clean answers.
  BlockingClient next;
  ASSERT_TRUE(next.connect(fx.net.port()));
  auto resp = next.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kOk);
}

TEST(NetFaults, ClientKilledWithRequestsInFlightDropsResponsesCounted) {
  Fixture fx;
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(fx.net.port()));

  // Pipeline a burst and vanish before any response lands. The admitted
  // queries still execute; their responses must be dropped-and-counted,
  // never misdelivered to whoever inherits the fd.
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    TopkRequest req;
    req.request_id = static_cast<u64>(i);
    req.k = 256;
    ASSERT_TRUE(cli.send(req));
  }
  cli.close();

  // The loop thread handles every buffered frame BEFORE it can observe the
  // EOF behind them, so "connection opened then gone" implies "burst
  // admitted" — only then does drain() have anything to wait for.
  fx.await_closed(1);
  fx.net.drain();  // every admitted request answered (somewhere)
  fx.srv.drain();
  EXPECT_EQ(fx.dev.unattributed_launches(), 0u);
  EXPECT_EQ(fx.net.in_flight(), 0u);
  // At least one admitted response found its connection gone. (Some of the
  // burst may have been answered before the close raced in; "all shed
  // pre-admission" would mean admitted == 0, which the assert rules out.)
  EXPECT_GE(fx.counter("net_admitted"), 1u);
  EXPECT_GE(fx.counter("net_responses_dropped"), 1u);

  // Immediately reconnect (likely reusing the fd): no stale response may
  // arrive — the first frame this client sees is its own pong.
  BlockingClient next;
  ASSERT_TRUE(next.connect(fx.net.port()));
  EXPECT_TRUE(next.ping());
}

TEST(NetFaults, ConnectionsDroppedDuringFinalizeWindow) {
  // A patient finalize window parks whole groups awaiting cross-group
  // merges — precisely when a dying client leaves queries in the most
  // shared state. Drops here must not wedge the window machinery.
  serve::ServerConfig scfg;
  scfg.executors = 2;
  scfg.finalize_window_us = 50'000;
  Fixture fx(scfg);

  constexpr int kClients = 4;
  BlockingClient clis[kClients];
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(clis[c].connect(fx.net.port()));
    for (int i = 0; i < 3; ++i) {
      TopkRequest req;
      req.request_id = static_cast<u64>(c * 100 + i);
      req.k = 64 + static_cast<u64>(c);  // distinct shapes: several groups
      ASSERT_TRUE(clis[c].send(req));
    }
  }
  // Give the requests time to admit and park in the window, then kill
  // half the clients mid-window.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  clis[0].close();
  clis[2].close();

  fx.net.drain();
  fx.srv.drain();
  EXPECT_EQ(fx.dev.unattributed_launches(), 0u);
  EXPECT_EQ(fx.net.in_flight(), 0u);

  // The surviving clients still get every answer.
  for (int c : {1, 3}) {
    for (int i = 0; i < 3; ++i) {
      auto resp = clis[c].recv_response();
      ASSERT_TRUE(resp.has_value()) << "client " << c << " response " << i;
      EXPECT_EQ(resp->status, Status::kOk);
    }
  }
}

TEST(NetFaults, StalledClientDoesNotStallTheServer) {
  // A client that writes but never reads. Its responses pile into the
  // outbox (socket buffers full, EPOLLOUT never drains) — and a healthy
  // client on the same server must remain completely unaffected.
  Fixture fx;
  BlockingClient stalled;
  ASSERT_TRUE(stalled.connect(fx.net.port()));
  for (int i = 0; i < 16; ++i) {
    TopkRequest req;
    req.request_id = static_cast<u64>(i);
    req.k = 1024;  // chunky responses
    ASSERT_TRUE(stalled.send(req));
  }

  BlockingClient healthy;
  ASSERT_TRUE(healthy.connect(fx.net.port()));
  for (int i = 0; i < 4; ++i) {
    TopkRequest req;
    req.request_id = 1000 + static_cast<u64>(i);
    req.k = 32;
    auto resp = healthy.call(req);
    ASSERT_TRUE(resp.has_value()) << "healthy request " << i;
    EXPECT_EQ(resp->status, Status::kOk);
  }

  // Half-close the stalled reader (RST on the server's next write), then
  // confirm full teardown.
  ::shutdown(stalled.fd(), SHUT_RDWR);
  stalled.close();
  fx.net.drain();
  fx.srv.drain();
  EXPECT_EQ(fx.dev.unattributed_launches(), 0u);
  healthy.close();
  fx.await_closed(2);
}

TEST(NetFaults, ServerStopWithLiveClientsIsClean) {
  auto fx = std::make_unique<Fixture>();
  const u16 port = fx->net.port();
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(port));
  TopkRequest req;
  req.k = 8;
  ASSERT_TRUE(cli.call(req).has_value());

  // stop() with a connected client: joins all threads, closes all fds.
  fx->net.stop();
  EXPECT_EQ(fx->net.active_connections(), 0u);
  EXPECT_EQ(fx->net.in_flight(), 0u);
  // The client observes EOF, not a hang.
  auto f = cli.recv_frame();
  EXPECT_FALSE(f.has_value());
  fx->srv.drain();
  EXPECT_EQ(fx->dev.unattributed_launches(), 0u);
}

}  // namespace
}  // namespace drtopk::net
