// Property tests for the shared device kernels in topk/kernels.hpp —
// the primitives every engine is built from: slice partitioning,
// histograms under predicates, min/max, counting, compaction, unique-find,
// threshold collection, and the parallel radix sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/distributions.hpp"
#include "topk/kernels.hpp"
#include "topk/sort.hpp"

namespace drtopk::topk {
namespace {

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

// ---- Slice partitioning ----

class SliceTest : public ::testing::TestWithParam<std::pair<u64, u32>> {};

TEST_P(SliceTest, CoversEveryIndexExactlyOnce) {
  const auto [n, warps] = GetParam();
  std::vector<u32> hits(n, 0);
  for (u32 w = 0; w < warps; ++w) {
    const Slice s = warp_slice(n, w, warps);
    for (u64 i = s.begin; i < s.begin + s.len; ++i) ++hits[i];
  }
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](u32 h) { return h == 1; }));
}

TEST_P(SliceTest, NonEmptySlicesAreWarpAligned) {
  const auto [n, warps] = GetParam();
  for (u32 w = 0; w < warps; ++w) {
    const Slice s = warp_slice(n, w, warps);
    if (s.len == 0) continue;  // empty slices clamp to n
    EXPECT_EQ(s.begin % vgpu::kWarpSize, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SliceTest,
    ::testing::Values(std::pair<u64, u32>{1, 1}, std::pair<u64, u32>{31, 4},
                      std::pair<u64, u32>{32, 4}, std::pair<u64, u32>{33, 4},
                      std::pair<u64, u32>{1000, 7},
                      std::pair<u64, u32>{4096, 64},
                      std::pair<u64, u32>{100, 200}));

// ---- Histogram ----

TEST(Histogram, CountsEveryDigitOnce) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, data::Distribution::kUniform, 1);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  std::array<u64, kRadixBuckets> hist;
  histogram256(
      acc, vs, [](u32) { return true; },
      [](u32 x) { return x >> 24; }, hist);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), u64{0}), n);

  std::array<u64, kRadixBuckets> expect{};
  for (u32 x : v) ++expect[x >> 24];
  EXPECT_EQ(hist, expect);
}

TEST(Histogram, RespectsAlivePredicate) {
  const u64 n = 1 << 14;
  auto v = data::generate(n, data::Distribution::kUniform, 2);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  std::array<u64, kRadixBuckets> hist;
  const u32 bound = 0x8000'0000u;
  histogram256(
      acc, vs, [bound](u32 x) { return x >= bound; },
      [](u32 x) { return (x >> 16) & 0xFF; }, hist);
  const u64 total = std::accumulate(hist.begin(), hist.end(), u64{0});
  const u64 expect = static_cast<u64>(
      std::count_if(v.begin(), v.end(), [&](u32 x) { return x >= bound; }));
  EXPECT_EQ(total, expect);
}

TEST(Histogram, LoadsEveryElementExactlyOnce) {
  const u64 n = 12'345;
  auto v = data::generate(n, data::Distribution::kNormal, 3);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  std::array<u64, kRadixBuckets> hist;
  histogram256(
      acc, vs, [](u32) { return true; }, [](u32 x) { return x & 0xFF; },
      hist);
  EXPECT_EQ(acc.stats().global_load_elems, n);
}

// ---- Min/max, count, find ----

TEST(MinMax, MatchesStdMinmax) {
  for (u64 n : {u64{1}, u64{37}, u64{1} << 12}) {
    auto v = data::generate(n, data::Distribution::kUniform, n);
    std::span<const u32> vs(v.data(), v.size());
    Accum acc(shared_device());
    auto [lo, hi] = device_minmax(acc, vs);
    const auto [elo, ehi] = std::minmax_element(v.begin(), v.end());
    EXPECT_EQ(lo, *elo);
    EXPECT_EQ(hi, *ehi);
  }
}

TEST(Count, MatchesStdCountIf) {
  const u64 n = 50'000;
  auto v = data::generate(n, data::Distribution::kCustomized, 4);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  const u32 thr = 0xFFFFFF80u;
  const u64 got = device_count(acc, vs, [thr](u32 x) { return x > thr; });
  EXPECT_EQ(got, static_cast<u64>(std::count_if(
                     v.begin(), v.end(), [&](u32 x) { return x > thr; })));
}

TEST(FindUnique, LocatesTheSingleMatch) {
  std::vector<u32> v(1 << 12, 5u);
  v[777] = 42u;
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  EXPECT_EQ(device_find_unique(acc, vs, [](u32 x) { return x == 42u; }), 42u);
}

// ---- Compaction ----

TEST(Compact, KeepsExactlyTheMatchingMultiset) {
  const u64 n = 1 << 15;
  auto v = data::generate(n, data::Distribution::kNormal, 5);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  vgpu::device_vector<u32> out(n);
  const u32 thr = 100'000'005u;
  const u64 cnt = device_compact(
      acc, vs, [thr](u32 x) { return x > thr; },
      std::span<u32>(out.data(), out.size()));

  std::vector<u32> expect;
  for (u32 x : v)
    if (x > thr) expect.push_back(x);
  std::vector<u32> got(out.begin(), out.begin() + static_cast<i64>(cnt));
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(Compact, AppendsAfterInitialCount) {
  std::vector<u32> v = {1, 9, 2, 9, 3};
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  vgpu::device_vector<u32> out(10);
  out[0] = 77;  // pre-existing element; compaction must append after it
  const u64 cnt = device_compact(
      acc, vs, [](u32 x) { return x == 9; },
      std::span<u32>(out.data(), out.size()), /*initial_count=*/1);
  EXPECT_EQ(cnt, 3u);
  EXPECT_EQ(out[0], 77u);
  EXPECT_EQ(out[1], 9u);
  EXPECT_EQ(out[2], 9u);
}

TEST(Compact, UsesWarpAggregatedAtomics) {
  // One atomic per warp-chunk with matches, not one per element.
  const u64 n = 1 << 14;
  std::vector<u32> v(n, 1u);  // everything matches
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  vgpu::device_vector<u32> out(n);
  (void)device_compact(acc, vs, [](u32) { return true; },
                       std::span<u32>(out.data(), out.size()));
  EXPECT_LE(acc.stats().atomic_ops, n / vgpu::kWarpSize + 1);
}

// ---- collect_topk ----

TEST(CollectTopk, PadsTiesToExactlyK) {
  std::vector<u32> v(1000, 50u);
  for (int i = 0; i < 10; ++i) v[static_cast<size_t>(i)] = 100u + static_cast<u32>(i);
  std::span<const u32> vs(v.data(), v.size());
  Accum acc(shared_device());
  auto keys = collect_topk<u32>(acc, vs, /*kth=*/50u, /*k=*/25);
  ASSERT_EQ(keys.size(), 25u);
  EXPECT_EQ(keys.front(), 109u);
  // 10 elements above the threshold, 15 padded copies of it.
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 50u), 15);
}

// ---- Radix sort ----

class RadixSortTest : public ::testing::TestWithParam<u64> {};

TEST_P(RadixSortTest, SortsAscendingForAllDistributions) {
  for (auto d : {data::Distribution::kUniform, data::Distribution::kNormal,
                 data::Distribution::kCustomized}) {
    auto v = data::generate(GetParam(), d, GetParam());
    std::vector<u32> expect(v.begin(), v.end());
    std::sort(expect.begin(), expect.end());

    Accum acc(shared_device());
    device_radix_sort(acc, std::span<u32>(v.data(), v.size()));
    EXPECT_TRUE(std::equal(v.begin(), v.end(), expect.begin()))
        << data::to_string(d) << " n=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortTest,
                         ::testing::Values(2, 33, 1000, u64{1} << 14,
                                           (u64{1} << 16) + 17));

TEST(RadixSort, U64Keys) {
  std::vector<u64> v(1 << 13);
  for (u64 i = 0; i < v.size(); ++i) v[i] = data::rand_u64(6, i);
  std::vector<u64> expect = v;
  std::sort(expect.begin(), expect.end());
  Accum acc(shared_device());
  device_radix_sort(acc, std::span<u64>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, ChargesScatterStores) {
  const u64 n = 1 << 14;
  auto v = data::generate(n, data::Distribution::kUniform, 7);
  Accum acc(shared_device());
  device_radix_sort(acc, std::span<u32>(v.data(), v.size()));
  // 4 passes, each scattering n elements.
  EXPECT_GE(acc.stats().global_store_elems, 4 * n);
  EXPECT_GE(acc.stats().global_store_txns, 4 * n);  // uncoalesced
}

}  // namespace
}  // namespace drtopk::topk
