// Tests for the Block-Max WAND substrate: index construction, exactness of
// BMW retrieval against exhaustive scoring, the workload counters, and the
// Figure 24 single-list comparison mode.
#include <gtest/gtest.h>

#include <algorithm>

#include "bmw/bmw.hpp"
#include "core/dr_topk.hpp"
#include "data/distributions.hpp"
#include "data/rng.hpp"

namespace drtopk::bmw {
namespace {

/// Synthetic corpus: n_docs documents over a small vocabulary, scores from
/// a deterministic stream. Term presence is sparse like real text.
InvertedIndex make_corpus(u32 n_docs, u32 vocab, u64 seed,
                          u32 block_size = 16) {
  InvertedIndex index;
  for (u32 d = 0; d < n_docs; ++d) {
    std::vector<std::pair<std::string, f32>> terms;
    for (u32 t = 0; t < vocab; ++t) {
      const u64 h = data::rand_u64(seed, static_cast<u64>(d) * vocab + t);
      if (h % 100 < 20) {  // ~20% of terms present per doc
        const f32 score = static_cast<f32>(1 + h % 8);
        terms.emplace_back("term" + std::to_string(t), score);
      }
    }
    if (!terms.empty()) index.add_document(d, terms);
  }
  index.build(block_size);
  return index;
}

TEST(PostingListTest, BuildSortsAndComputesBlockMaxima) {
  PostingList list;
  list.add(5, 2.0f);
  list.add(1, 7.0f);
  list.add(9, 1.0f);
  list.add(3, 4.0f);
  list.build(/*block_size=*/2);
  ASSERT_EQ(list.postings().size(), 4u);
  EXPECT_EQ(list.postings()[0].doc, 1u);
  EXPECT_EQ(list.postings()[3].doc, 9u);
  ASSERT_EQ(list.blocks().size(), 2u);
  EXPECT_FLOAT_EQ(list.blocks()[0].max_score, 7.0f);  // docs {1,3}
  EXPECT_FLOAT_EQ(list.blocks()[1].max_score, 2.0f);  // docs {5,9}
  EXPECT_EQ(list.blocks()[0].last_doc, 3u);
  EXPECT_FLOAT_EQ(list.max_score(), 7.0f);
}

struct QueryCase {
  u32 n_docs;
  u32 vocab;
  std::vector<std::string> terms;
  u32 k;
};

class BmwExactness : public ::testing::TestWithParam<QueryCase> {};

TEST_P(BmwExactness, MatchesExhaustiveScoring) {
  const auto& c = GetParam();
  auto index = make_corpus(c.n_docs, c.vocab, c.n_docs * 13 + c.k);
  auto bmw = bmw_topk(index, c.terms, c.k);
  auto oracle = exhaustive_topk(index, c.terms, c.k);
  ASSERT_EQ(bmw.topk.size(), oracle.topk.size());
  // Scores must match exactly; doc ids may differ among equal scores.
  for (size_t i = 0; i < bmw.topk.size(); ++i)
    EXPECT_FLOAT_EQ(bmw.topk[i].score, oracle.topk[i].score) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Queries, BmwExactness,
    ::testing::Values(QueryCase{200, 10, {"term0"}, 5},
                      QueryCase{200, 10, {"term0", "term3"}, 10},
                      QueryCase{500, 20, {"term1", "term2", "term19"}, 7},
                      QueryCase{1000, 8, {"term0", "term1", "term2"}, 25},
                      QueryCase{50, 4, {"term0", "term1"}, 50},
                      QueryCase{300, 12, {"missing", "term5"}, 4}),
    [](const auto& info) {
      return "docs" + std::to_string(info.param.n_docs) + "_q" +
             std::to_string(info.param.terms.size()) + "_k" +
             std::to_string(info.param.k);
    });

TEST(BmwWorkload, SkipsDocumentsExhaustiveCannot) {
  auto index = make_corpus(5000, 16, 99);
  const std::vector<std::string> q = {"term0", "term7"};
  auto bmw = bmw_topk(index, q, 10);
  auto oracle = exhaustive_topk(index, q, 10);
  EXPECT_LT(bmw.workload.full_evaluations, oracle.workload.full_evaluations);
  EXPECT_GT(bmw.workload.full_evaluations, 0u);
}

TEST(BmwWorkload, EmptyQueryAndUnknownTerms) {
  auto index = make_corpus(100, 5, 7);
  EXPECT_TRUE(bmw_topk(index, {}, 5).topk.empty());
  EXPECT_TRUE(bmw_topk(index, {"nope"}, 5).topk.empty());
}

// ---- Figure 24 single-list mode ----

TEST(BmwScan, FindsWorkloadAndSkipsOnUniform) {
  const u64 n = 1 << 18;
  auto v = data::generate(n, data::Distribution::kUniform, 24);
  std::span<const u32> vs(v.data(), v.size());
  auto w = bmw_scan_workload(vs, /*block_size=*/256, /*k=*/64);
  // Once the heap fills with large values most blocks are skipped.
  EXPECT_LT(w.full_evaluations, n / 4);
  EXPECT_GT(w.blocks_skipped, 0u);
  EXPECT_EQ(w.full_evaluations + w.docs_skipped, n);
}

TEST(BmwScan, SingleListModeDrTopkWinsOnBothDistributions) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  const u64 n = 1 << 20;
  const u64 k = 128;
  for (auto dist : {data::Distribution::kUniform,
                    data::Distribution::kNormal}) {
    auto v = data::generate(n, dist, 25);
    std::span<const u32> vs(v.data(), v.size());

    core::DrTopkConfig cfg;
    core::StageBreakdown bd;
    auto r = core::dr_topk_keys<u32>(dev, vs, k, cfg, &bd);
    ASSERT_EQ(r.keys.size(), k);
    const u64 dr_workload = bd.delegate_len + bd.concat_len;

    const u64 block = u64{1} << bd.alpha;  // same granularity as subranges
    auto w = bmw_scan_workload(vs, block, k);

    // BMW fully evaluates far more elements than Dr. Top-k's first+second
    // top-k workloads even in the single-list setting.
    const double ratio = static_cast<double>(w.full_evaluations) /
                         static_cast<double>(dr_workload);
    EXPECT_GT(ratio, 2.0) << data::to_string(dist);
  }
}

TEST(BmwIrMode, NormalScoresDefeatBlockMaxPruning) {
  // Figure 24's mechanism: with near-constant per-term scores, the sum of
  // block maxima always clears the threshold of the score *sums*, so BMW
  // fully evaluates essentially every document; with uniform scores the
  // spread lets block-max pruning work.
  const u64 n_docs = 1 << 16;
  auto nd = make_dense_corpus(n_docs, 3, data::Distribution::kNormal, 31, 64);
  auto ud = make_dense_corpus(n_docs, 3, data::Distribution::kUniform, 31, 64);
  auto rn = bmw_topk(nd.index, nd.query, 64);
  auto ru = bmw_topk(ud.index, ud.query, 64);
  EXPECT_GT(rn.workload.full_evaluations, n_docs * 9 / 10);
  EXPECT_LT(ru.workload.full_evaluations,
            rn.workload.full_evaluations / 2);
  // Both remain exact.
  auto on = exhaustive_topk(nd.index, nd.query, 64);
  for (size_t i = 0; i < 64; ++i)
    EXPECT_FLOAT_EQ(rn.topk[i].score, on.topk[i].score);
}

TEST(BmwIrMode, WorkloadRatioVsDrTopkIsLargerOnNd) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  const u64 n_docs = 1 << 18;
  const u64 k = 64;
  double ratios[2] = {0, 0};
  int idx = 0;
  for (auto dist : {data::Distribution::kUniform,
                    data::Distribution::kNormal}) {
    auto corpus = make_dense_corpus(n_docs, 3, dist, 33, 64);
    auto bmw = bmw_topk(corpus.index, corpus.query, static_cast<u32>(k));

    core::StageBreakdown bd;
    std::span<const f32> scores(corpus.total_scores.data(),
                                corpus.total_scores.size());
    auto dr = core::dr_topk<f32>(dev, scores, k, data::Criterion::kLargest,
                                 core::DrTopkConfig{}, &bd);
    ASSERT_EQ(dr.values.size(), k);
    const u64 dr_workload = bd.delegate_len + bd.concat_len;
    ratios[idx++] = static_cast<double>(bmw.workload.full_evaluations) /
                    static_cast<double>(dr_workload);
  }
  // Figure 24: the ND ratio dwarfs the UD ratio, and both favor Dr. Top-k.
  EXPECT_GT(ratios[1], 4.0 * ratios[0]);
  EXPECT_GT(ratios[0], 1.0);
}

}  // namespace
}  // namespace drtopk::bmw
