// Tests for the vgpu::Workspace arena subsystem and the zero-allocation
// serving contract: arena semantics (bump/checkpoint/rewind/growth
// accounting), pool lease recycling, engine scratch reuse, and — the PR's
// headline property — N steady-state queries through a warmed TopkServer
// performing zero arena growths.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"
#include "serve/server.hpp"

namespace drtopk {
namespace {

using data::Criterion;
using data::Distribution;
using topk::reference_topk;

TEST(Workspace, AllocationsAreDistinctAndAligned) {
  vgpu::Workspace ws;
  auto a = ws.alloc<u32>(100);
  auto b = ws.alloc<u64>(50);
  auto c = ws.alloc<u8>(7);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 50u);
  ASSERT_EQ(c.size(), 7u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % alignof(u64), 0u);
  // Writes to one span must not alias another.
  std::fill(a.begin(), a.end(), 0xAAAAAAAAu);
  std::fill(b.begin(), b.end(), u64{0xBBBBBBBBBBBBBBBB});
  std::fill(c.begin(), c.end(), u8{0xCC});
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](u32 x) { return x == 0xAAAAAAAAu; }));
  EXPECT_EQ(ws.allocs(), 3u);
  EXPECT_EQ(ws.growths(), 1u);  // everything fit the first block
}

TEST(Workspace, RewindReusesMemoryWithoutGrowth) {
  vgpu::Workspace ws;
  const auto cp = ws.checkpoint();
  u32* first = ws.alloc<u32>(1024).data();
  ws.rewind(cp);
  u32* second = ws.alloc<u32>(1024).data();
  EXPECT_EQ(first, second);  // bump pointer came back to the same spot
  EXPECT_EQ(ws.growths(), 1u);
}

TEST(Workspace, ScopeRewindsOnDestruction) {
  vgpu::Workspace ws;
  (void)ws.alloc<u32>(16);
  const u64 used = ws.in_use_bytes();
  {
    vgpu::Workspace::Scope scope(ws);
    (void)ws.alloc<u32>(4096);
    EXPECT_GT(ws.in_use_bytes(), used);
  }
  EXPECT_EQ(ws.in_use_bytes(), used);
}

TEST(Workspace, GrowthIsGeometricAndHighWaterTracks) {
  vgpu::Workspace ws;
  (void)ws.alloc<u8>(vgpu::Workspace::kMinBlockBytes / 2);
  EXPECT_EQ(ws.growths(), 1u);
  (void)ws.alloc<u8>(4 * vgpu::Workspace::kMinBlockBytes);
  EXPECT_EQ(ws.growths(), 2u);
  const u64 hw = ws.high_water_bytes();
  EXPECT_GE(hw, 4 * vgpu::Workspace::kMinBlockBytes);
  // Rewinding does not lower the high-water mark.
  ws.reset();
  EXPECT_EQ(ws.high_water_bytes(), hw);
  EXPECT_EQ(ws.in_use_bytes(), 0u);
  // A stream that fits the high-water mark replays without growth.
  (void)ws.alloc<u8>(4 * vgpu::Workspace::kMinBlockBytes);
  EXPECT_EQ(ws.growths(), 2u);
}

TEST(Workspace, ReserveMakesSubsequentStreamGrowthFree) {
  vgpu::Workspace ws;
  ws.reserve_bytes(1 << 20);
  const u64 g = ws.growths();
  for (int rep = 0; rep < 4; ++rep) {
    vgpu::Workspace::Scope scope(ws);
    (void)ws.alloc<u32>(1 << 16);
    (void)ws.alloc<u64>(1 << 14);
    (void)ws.alloc<u8>(1 << 12);
  }
  EXPECT_EQ(ws.growths(), g);
}

TEST(Workspace, ReserveOnRewoundArenaDoesNotStrandBlocksOrInflatePeaks) {
  // A presize on a warmed, rewound workspace must append capacity without
  // moving the bump position: earlier blocks keep serving allocations and
  // in_use/peak accounting stays truthful (regression: grow() used to jump
  // the cursor to the new block, stranding everything before it).
  vgpu::Workspace ws;
  u32* first = ws.alloc<u32>(1024).data();  // organic first block
  ws.reset();
  ws.reserve_bytes(8 * vgpu::Workspace::kMinBlockBytes);
  ws.reset_peak();
  auto small = ws.alloc<u32>(1024);
  EXPECT_EQ(small.data(), first);  // still served from block 0
  EXPECT_EQ(ws.in_use_bytes(), 1024 * sizeof(u32));
  EXPECT_EQ(ws.peak_bytes(), 1024 * sizeof(u32));  // no phantom bytes
}

TEST(WorkspacePool, LeasesRecycleCapacity) {
  vgpu::WorkspacePool pool;
  u32* p1;
  {
    auto lease = pool.acquire();
    p1 = lease->alloc<u32>(4096).data();
  }
  EXPECT_EQ(pool.size(), 1u);
  const u64 g = pool.growths();
  {
    // Recycled: same workspace, same capacity, no new heap block.
    auto lease = pool.acquire();
    EXPECT_EQ(lease->alloc<u32>(4096).data(), p1);
  }
  EXPECT_EQ(pool.growths(), g);
  {
    // Two concurrent leases force a second workspace.
    auto l1 = pool.acquire();
    auto l2 = pool.acquire();
    EXPECT_NE(l1.get(), l2.get());
  }
  EXPECT_EQ(pool.size(), 2u);
}

TEST(WorkspacePool, LeaseAffinityPrefersLastReturnedArena) {
  // First-touch locality groundwork: a caller that tags its acquires gets
  // back the arena it last returned, even when other arenas sit on top of
  // the free stack.
  vgpu::WorkspacePool pool;
  u32 *e0, *e1;
  {
    auto l0 = pool.acquire(0, /*affinity=*/0);
    auto l1 = pool.acquire(0, /*affinity=*/1);
    e0 = l0->alloc<u32>(64).data();
    e1 = l1->alloc<u32>(64).data();
    // l1 releases last, so it tops the free stack; affinity must still
    // route executor 0 back to its own arena.
  }
  {
    auto l0 = pool.acquire(0, /*affinity=*/0);
    EXPECT_EQ(l0->alloc<u32>(64).data(), e0);
    auto l1 = pool.acquire(0, /*affinity=*/1);
    EXPECT_EQ(l1->alloc<u32>(64).data(), e1);
  }
  // Availability beats affinity: a caller with no matching arena takes any
  // free one instead of allocating a new workspace.
  {
    auto l9 = pool.acquire(0, /*affinity=*/9);
    (void)l9;
    EXPECT_EQ(pool.size(), 2u);
  }
  // Untagged acquires keep working and never allocate while arenas are free.
  {
    auto l = pool.acquire();
    (void)l;
    EXPECT_EQ(pool.size(), 2u);
  }
}

TEST(Workspace, EngineCallsReuseOneArena) {
  // Repeated engine invocations against one workspace must grow it at most
  // during the first call; every later call replays the same block walk.
  vgpu::Device dev;
  auto v = data::generate(1 << 16, Distribution::kUniform, 7);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = reference_topk(vs, 500);

  vgpu::Workspace ws;
  for (topk::Algo algo : {topk::Algo::kRadixGgksOop, topk::Algo::kBucketOop,
                          topk::Algo::kBitonic, topk::Algo::kSortAndChoose}) {
    (void)topk::run_topk_keys<u32>(dev, vs, 500, algo, ws);
  }
  const u64 warm = ws.growths();
  for (int rep = 0; rep < 3; ++rep) {
    for (topk::Algo algo : {topk::Algo::kRadixGgksOop, topk::Algo::kBucketOop,
                            topk::Algo::kBitonic,
                            topk::Algo::kSortAndChoose}) {
      EXPECT_EQ(topk::run_topk_keys<u32>(dev, vs, 500, algo, ws).keys,
                expect);
    }
  }
  EXPECT_EQ(ws.growths(), warm);
  EXPECT_EQ(ws.in_use_bytes(), 0u);  // every engine rewound its scope
}

TEST(Workspace, PipelineReusesOneArena) {
  vgpu::Device dev;
  auto v = data::generate(1 << 17, Distribution::kNormal, 9);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = reference_topk(vs, 256);

  vgpu::Workspace ws;
  core::DrTopkConfig cfg;
  cfg.beta = 2;
  (void)core::dr_topk_keys<u32>(dev, vs, 256, cfg, nullptr, ws);  // warm
  const u64 warm = ws.growths();
  for (int rep = 0; rep < 5; ++rep)
    EXPECT_EQ(core::dr_topk_keys<u32>(dev, vs, 256, cfg, nullptr, ws).keys,
              expect);
  EXPECT_EQ(ws.growths(), warm);
}

// ---- The allocation-regression contract: steady-state serving performs
// ---- zero arena growths after warmup.

TEST(AllocationRegression, SteadyStateServingDoesNotGrowArenas) {
  const u64 n = 1 << 15;
  auto ud = data::generate(n, Distribution::kUniform, 21);
  auto nd = data::generate(n, Distribution::kNormal, 22);
  std::span<const u32> us(ud.data(), ud.size());
  std::span<const u32> ns(nd.data(), nd.size());

  vgpu::Device dev;
  serve::ServerConfig cfg;
  // One executor makes the query-to-arena routing deterministic: every
  // shape touches the single executor workspace and groups drain serially
  // (pool demand exactly one), so the zero-growth assertion is exact, not
  // scheduling-dependent. Multi-executor convergence is covered below.
  cfg.executors = 1;
  cfg.batch_max = 16;
  serve::TopkServer server(dev, cfg);

  // A steady-state mix covering every hot path: identity keys, materialized
  // directed keys (kSmallest), selection-only, and two k shapes.
  const auto round = [&] {
    std::vector<serve::Query> qs;
    for (int i = 0; i < 16; ++i) qs.push_back(serve::Query::view(us, 100));
    for (int i = 0; i < 8; ++i)
      qs.push_back(serve::Query::view(ns, 64, Criterion::kSmallest));
    for (int i = 0; i < 8; ++i)
      qs.push_back(serve::Query::view(us, 1000, Criterion::kLargest,
                                      /*selection_only=*/true));
    return server.run_batch(std::move(qs));
  };

  // Warmup: plans calibrate, the executor and the group pool reach their
  // high-water capacity.
  for (int r = 0; r < 3; ++r) (void)round();
  const u64 warm_growths = server.workspace_growths();
  EXPECT_GT(warm_growths, 0u);  // the warmup did allocate
  EXPECT_GT(server.workspace_high_water(), 0u);

  // Steady state: N queries, zero arena growths, still exact.
  const auto expect_us = reference_topk(us, 100);
  for (int r = 0; r < 4; ++r) {
    auto results = round();
    for (size_t i = 0; i < 16; ++i) {
      ASSERT_EQ(results[i].values.size(), expect_us.size());
      for (size_t j = 0; j < expect_us.size(); ++j)
        ASSERT_EQ(results[i].values[j], static_cast<u64>(expect_us[j]));
    }
  }
  EXPECT_EQ(server.workspace_growths(), warm_growths)
      << "steady-state serving must not heap-allocate scratch";
}

TEST(AllocationRegression, MultiExecutorGrowthConverges) {
  // With several executors the query-to-arena routing is nondeterministic
  // (which executor first meets a shape, how many group leases are live at
  // once), so growth is asserted to CONVERGE: within a bounded number of
  // identical rounds there must be a round that adds zero growths —
  // after which capacity everywhere has reached this workload's peak.
  const u64 n = 1 << 14;
  auto v = data::generate(n, Distribution::kUniform, 41);
  std::span<const u32> vs(v.data(), v.size());

  vgpu::Device dev;
  serve::ServerConfig cfg;
  cfg.executors = 4;
  cfg.batch_max = 8;
  serve::TopkServer server(dev, cfg);
  const auto expect = reference_topk(vs, 64);

  bool converged = false;
  for (int r = 0; r < 12 && !converged; ++r) {
    const u64 before = server.workspace_growths();
    std::vector<serve::Query> qs;
    for (int i = 0; i < 32; ++i) qs.push_back(serve::Query::view(vs, 64));
    auto results = server.run_batch(std::move(qs));
    for (auto& res : results) {
      ASSERT_EQ(res.values.size(), expect.size());
      ASSERT_EQ(res.kth, static_cast<u64>(expect.back()));
    }
    converged = server.workspace_growths() == before && r > 0;
  }
  EXPECT_TRUE(converged)
      << "arena growth must stop once every executor/pool workspace has "
         "served the recurring shape";
}

TEST(AllocationRegression, PlanCacheHighWaterPresizesNewShapes) {
  // Once a shape's workspace high-water is recorded, a hit presizes the
  // group workspace before construction — the lease-time reserve is the
  // only growth even for a pool workspace that never saw the shape.
  const u64 n = 1 << 14;
  auto v = data::generate(n, Distribution::kUniform, 31);
  std::span<const u32> vs(v.data(), v.size());

  vgpu::Device dev;
  serve::ServerConfig cfg;
  cfg.executors = 1;
  serve::TopkServer server(dev, cfg);
  (void)server.run_batch({serve::Query::view(vs, 128)});
  auto s = server.stats();
  EXPECT_GE(s.plan_misses, 1u);
  const u64 warm = server.workspace_growths();
  (void)server.run_batch({serve::Query::view(vs, 128)});
  EXPECT_EQ(server.workspace_growths(), warm);
  EXPECT_GE(server.stats().plan_hits, 1u);
}

}  // namespace
}  // namespace drtopk
