// Tests for Rule 4's subrange-size tuning: closed-form values, feasibility
// clamping, convexity of the Equation-6 model, and agreement between the
// auto-tuned alpha and the oracle sweep (Figure 14's claim).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dr_topk.hpp"
#include "data/distributions.hpp"

namespace drtopk::core {
namespace {

TEST(Rule4, PaperHeadlineValue) {
  // Section 5.3: "when |V|=2^30 and k=2^24, the optimal alpha = 4".
  AlphaTuner t;
  EXPECT_EQ(t.rule4_alpha(u64{1} << 30, u64{1} << 24), 4);
}

TEST(Rule4, GrowsWithNShrinksWithK) {
  AlphaTuner t;
  const int a_base = t.rule4_alpha(u64{1} << 30, 1 << 10);
  EXPECT_GT(t.rule4_alpha(u64{1} << 32, 1 << 10), a_base - 1);
  EXPECT_LT(t.rule4_alpha(u64{1} << 30, 1 << 20), a_base);
  // Doubling |V| or halving k moves alpha by half a step; over four
  // doublings the shift is exactly 2.
  EXPECT_EQ(t.rule4_alpha(u64{1} << 30, 1 << 10) + 2,
            t.rule4_alpha(u64{1} << 30, 1 << 6));
}

TEST(Rule4, AnalyticConstIsPositiveAndBelowTuned) {
  const double c = AlphaTuner::analytic_const(vgpu::GpuProfile::v100s());
  // Eq. 11's first-principles part; the paper's tuned Const = 3 includes an
  // additional empirical Delta' correction on top.
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 3.0);
}

TEST(ClampAlpha, KeepsDelegateVectorAboveK) {
  // alpha must not make |D| < k.
  const u64 n = 1 << 20;
  const u64 k = 1 << 12;
  const int a = clamp_alpha(n, k, 1, 30);
  ASSERT_GT(a, 0);
  const u64 subranges = n >> a;
  EXPECT_GE(subranges, k);
}

TEST(ClampAlpha, InfeasibleWhenKNearN) {
  EXPECT_EQ(clamp_alpha(1000, 600, 1, 5), -1);
  EXPECT_EQ(clamp_alpha(16, 9, 2, 2), -1);
}

TEST(ClampAlpha, BetaExtendsFeasibility) {
  const u64 n = 1 << 12;
  const u64 k = 1 << 10;
  // beta=1: subranges must be >= 2k = 2^11 -> alpha <= 1.
  const int a1 = clamp_alpha(n, k, 1, 8);
  const int a4 = clamp_alpha(n, k, 4, 8);
  ASSERT_GT(a1, 0);
  ASSERT_GT(a4, 0);
  EXPECT_GE(a4, a1);
}

TEST(Eq6Model, ConvexInAlpha) {
  const auto& p = vgpu::GpuProfile::v100s();
  for (u64 k : {u64{1} << 8, u64{1} << 13, u64{1} << 18}) {
    const u64 n = u64{1} << 30;
    // Unimodal: strictly decreasing then strictly increasing.
    int direction_changes = 0;
    double prev = AlphaTuner::predicted_ms(p, n, k, 1);
    bool increasing = false;
    for (int a = 2; a <= 24; ++a) {
      const double cur = AlphaTuner::predicted_ms(p, n, k, a);
      if (cur > prev && !increasing) {
        increasing = true;
        ++direction_changes;
      }
      if (cur < prev && increasing) ++direction_changes;  // would break unimodality
      prev = cur;
    }
    EXPECT_LE(direction_changes, 1) << "k=" << k;
  }
}

TEST(Eq6Model, MinimizerTracksRule4) {
  const auto& p = vgpu::GpuProfile::v100s();
  AlphaTuner t;
  t.const_term = AlphaTuner::analytic_const(p);
  for (u64 k : {u64{1} << 10, u64{1} << 16, u64{1} << 20}) {
    const u64 n = u64{1} << 30;
    int best = 1;
    double best_t = AlphaTuner::predicted_ms(p, n, k, 1);
    for (int a = 2; a <= 26; ++a) {
      const double cur = AlphaTuner::predicted_ms(p, n, k, a);
      if (cur < best_t) {
        best_t = cur;
        best = a;
      }
    }
    // The closed form matches the model's argmin to within a step.
    EXPECT_NEAR(best, t.rule4_alpha(n, k), 1.01) << "k=" << k;
  }
}

TEST(Oracle, AutoTunedAlphaIsNearOracle) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  const u64 n = 1 << 18;
  const u64 k = 1 << 6;
  auto v = data::generate(n, data::Distribution::kUniform, 21);
  std::span<const u32> vs(v.data(), v.size());
  DrTopkConfig cfg;
  cfg.beta = 2;
  std::vector<double> times;
  const int oracle = oracle_alpha(dev, vs, k, cfg, 2, 12, &times);
  ASSERT_EQ(times.size(), 11u);
  const int tuned = clamp_alpha(n, k, cfg.beta,
                                AlphaTuner{cfg.tuner_const}.rule4_alpha(n, k));
  // Figure 14: auto-tuned alpha performs like the oracle. Allow the flat
  // bottom of the convex bowl (+/- 2 steps) and require the *time* at the
  // tuned alpha to be within 30% of the oracle's.
  ASSERT_GT(tuned, 0);
  EXPECT_LE(std::abs(oracle - tuned), 3);
  const double t_oracle = *std::min_element(times.begin(), times.end());
  const double t_tuned = times[static_cast<size_t>(tuned - 2)];
  EXPECT_LT(t_tuned, 1.3 * t_oracle);
}

TEST(Oracle, MeasuredCurveIsRoughlyUnimodal) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  const u64 n = 1 << 18;
  const u64 k = 1 << 8;
  auto v = data::generate(n, data::Distribution::kUniform, 22);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<double> times;
  (void)oracle_alpha(dev, vs, k, DrTopkConfig{}, 1, 10, &times);
  // Endpoints are worse than the minimum — the convex-bowl shape of
  // Figure 13 (exact unimodality is not asserted; measurement noise).
  const double best = *std::min_element(times.begin(), times.end());
  EXPECT_GT(times.front(), best);
  EXPECT_GT(times.back(), best);
}

}  // namespace
}  // namespace drtopk::core
