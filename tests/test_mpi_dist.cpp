// Tests for the message-passing substrate and distributed Dr. Top-k.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "data/distributions.hpp"
#include "dist/multi_gpu.hpp"
#include "mpi/comm.hpp"
#include "topk/common.hpp"

namespace drtopk {
namespace {

using data::Distribution;

// ---- Comm substrate ----

TEST(Comm, SendRecvRoundTrip) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<u32> payload = {1, 2, 3, 4};
      c.send<u32>(1, 7, payload);
    } else {
      auto got = c.recv<u32>(0, 7);
      EXPECT_EQ(got, (std::vector<u32>{1, 2, 3, 4}));
    }
  });
}

TEST(Comm, MessagesDoNotOvertakePerTriple) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (u32 i = 0; i < 100; ++i) {
        std::vector<u32> m = {i};
        c.send<u32>(1, 3, m);
      }
    } else {
      for (u32 i = 0; i < 100; ++i) {
        auto got = c.recv<u32>(0, 3);
        ASSERT_EQ(got[0], i);  // MPI non-overtaking order
      }
    }
  });
}

TEST(Comm, TagsKeepStreamsSeparate) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<u32> a = {10}, b = {20};
      c.send<u32>(1, 1, a);
      c.send<u32>(1, 2, b);
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(c.recv<u32>(0, 2)[0], 20u);
      EXPECT_EQ(c.recv<u32>(0, 1)[0], 10u);
    }
  });
}

TEST(Comm, GatherCollectsAllRanksAtRoot) {
  mpi::run(4, [](mpi::Comm& c) {
    std::vector<u64> mine = {static_cast<u64>(c.rank()) * 100};
    auto all = c.gather<u64>(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r)
        EXPECT_EQ(all[static_cast<size_t>(r)][0], static_cast<u64>(r) * 100);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, BcastDeliversRootPayload) {
  mpi::run(3, [](mpi::Comm& c) {
    std::vector<u32> data;
    if (c.rank() == 1) data = {5, 6};
    auto got = c.bcast<u32>(data, 1);
    EXPECT_EQ(got, (std::vector<u32>{5, 6}));
  });
}

TEST(Comm, AllreduceMaxAgreesEverywhere) {
  std::array<u64, 5> results{};
  mpi::run(5, [&](mpi::Comm& c) {
    const u64 mine = static_cast<u64>((c.rank() * 37) % 11);
    results[static_cast<size_t>(c.rank())] = c.allreduce_max(mine);
  });
  for (u64 r : results) EXPECT_EQ(r, 8u);  // max of {0,4,8,1,5} (r*37 mod 11)
}

TEST(Comm, BarrierSynchronizesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  mpi::run(4, [&](mpi::Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != 4) violated = true;
    c.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, StatsAndCostModel) {
  mpi::CommCostModel cost;
  cost.latency_ms = 1.0;
  cost.bw_gbps = 1.0;
  auto stats = mpi::run(
      2,
      [](mpi::Comm& c) {
        if (c.rank() == 0) {
          std::vector<u32> m(250, 0);  // 1000 bytes
          c.send<u32>(1, 0, m);
        } else {
          (void)c.recv<u32>(0, 0);
        }
      },
      cost);
  EXPECT_EQ(stats[0].msgs_sent, 1u);
  EXPECT_EQ(stats[0].bytes_sent, 1000u);
  EXPECT_EQ(stats[1].msgs_received, 1u);
  // 1 ms latency + 1000 B / 1 GB/s = 1.001 ms.
  EXPECT_NEAR(stats[1].modeled_ms, 1.001, 1e-6);
}

TEST(Comm, PropagatesRankExceptions) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& c) {
                          if (c.rank() == 1) throw std::runtime_error("boom");
                          // rank 0 exits without communicating
                        }),
               std::runtime_error);
}

// ---- Distributed Dr. Top-k ----

class MultiGpuCorrectness : public ::testing::TestWithParam<u32> {};

TEST_P(MultiGpuCorrectness, ExactAcrossGpuCounts) {
  const u64 n = 1 << 18;
  const u64 k = 128;
  auto v = data::generate(n, Distribution::kUniform, 55);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = GetParam();
  cfg.device_capacity_elems = n;  // everything resident
  cfg.host_threads_per_gpu = 2;
  auto r = dist::multi_gpu_topk(vs, k, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, k));
  EXPECT_EQ(r.shards_total, GetParam());
  if (GetParam() > 1) {
    EXPECT_GT(r.comm_ms, 0.0);
  }
  EXPECT_EQ(r.reload_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, MultiGpuCorrectness,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(MultiGpu, ReloadOverheadWhenOverCapacity) {
  const u64 n = 1 << 16;
  const u64 k = 64;
  auto v = data::generate(n, Distribution::kNormal, 56);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 2;
  cfg.device_capacity_elems = n / 8;  // 8 shards over 2 GPUs
  cfg.host_threads_per_gpu = 2;
  auto r = dist::multi_gpu_topk(vs, k, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, k));
  EXPECT_EQ(r.shards_total, 8u);
  // Each GPU holds 4 shards: 3 reloads each (Table 2's reload column).
  EXPECT_GT(r.reload_ms, 0.0);
  const double one_shard_ms =
      vgpu::CostModel(cfg.profile).transfer_ms((n / 8) * sizeof(u32));
  EXPECT_NEAR(r.reload_ms, 3 * one_shard_ms, one_shard_ms * 0.5);
}

TEST(MultiGpu, MoreGpusRemoveReloads) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 57);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.device_capacity_elems = n / 4;
  cfg.host_threads_per_gpu = 2;

  cfg.num_gpus = 1;
  auto r1 = dist::multi_gpu_topk(vs, 32, cfg);
  cfg.num_gpus = 4;
  auto r4 = dist::multi_gpu_topk(vs, 32, cfg);
  EXPECT_GT(r1.reload_ms, 0.0);
  EXPECT_EQ(r4.reload_ms, 0.0);  // all shards fit once spread over 4 GPUs
  // Table 2's superlinear speedup regime: removing reloads dominates.
  EXPECT_LT(r4.total_ms, r1.total_ms);
  EXPECT_EQ(r1.keys, r4.keys);
}

TEST(MultiGpu, KthExchangeStaysExactAndSharpensThreshold) {
  const u64 n = 1 << 18;
  const u64 k = 256;
  auto v = data::generate(n, Distribution::kUniform, 58);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 4;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 2;
  cfg.kth_exchange = true;
  auto r = dist::multi_gpu_topk(vs, k, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, k));
  // The exchange adds reduce traffic on top of the gather.
  dist::MultiGpuConfig plain = cfg;
  plain.kth_exchange = false;
  auto rp = dist::multi_gpu_topk(vs, k, plain);
  EXPECT_EQ(rp.keys, r.keys);
  EXPECT_GT(r.comm_ms, rp.comm_ms);
}

TEST(MultiGpu, TieHeavyDataAcrossShards) {
  // All shards share the same duplicated values: gather/merge must keep the
  // exact multiset.
  std::vector<u32> v(1 << 14, 5u);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i) * 100] = 9u;
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 4;
  cfg.device_capacity_elems = v.size();
  cfg.host_threads_per_gpu = 1;
  auto r = dist::multi_gpu_topk(vs, 150, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, 150));
}

TEST(MultiGpu, HierarchicalReductionIsExactAndCutsPrimaryMessages) {
  const u64 n = 1 << 18;
  const u64 k = 128;
  auto v = data::generate(n, Distribution::kUniform, 61);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 16;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 1;
  cfg.gpus_per_node = 4;

  auto flat = dist::multi_gpu_topk(vs, k, cfg);
  cfg.hierarchical = true;
  auto hier = dist::multi_gpu_topk(vs, k, cfg);

  EXPECT_EQ(flat.keys, topk::reference_topk(vs, k));
  EXPECT_EQ(hier.keys, flat.keys);
  // Flat: primary receives 15 messages; hierarchical: 3 node leaders.
  EXPECT_EQ(flat.primary_messages, 15u);
  EXPECT_EQ(hier.primary_messages, 3u);
}

TEST(MultiGpu, HierarchicalNoopWhenSingleNode) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kNormal, 62);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 4;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 1;
  cfg.hierarchical = true;  // 4 GPUs <= gpus_per_node: flat path
  auto r = dist::multi_gpu_topk(vs, 99, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, 99));
  EXPECT_EQ(r.primary_messages, 3u);
}

TEST(MultiGpu, HierarchicalRaggedLastNodeAndTopologyHelpers) {
  // 10 GPUs at 4 per node: nodes {0-3}, {4-7}, {8,9} — the last one
  // ragged. The reduction must match the topology helpers exactly (the
  // sharded server's merge grouping reuses the same arithmetic).
  const u64 n = 1 << 17;
  const u64 k = 64;
  auto v = data::generate(n, Distribution::kNormal, 63);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 10;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 1;
  cfg.gpus_per_node = 4;
  cfg.hierarchical = true;
  auto r = dist::multi_gpu_topk(vs, k, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, k));
  EXPECT_EQ(r.primary_messages, dist::primary_messages(10, 4, true));
  EXPECT_EQ(r.primary_messages, 2u);
  // The helper arithmetic behind that count.
  EXPECT_EQ(dist::group_count(10, 4), 3u);
  EXPECT_EQ(dist::group_leader(9, 4), 8u);
  EXPECT_EQ(dist::group_end(8, 4, 10), 10u);  // ragged: members {8, 9}
}

TEST(MultiGpu, HierarchicalComposesWithKthExchange) {
  // Both sharpenings at once: the k-th-exchange filter shrinks every
  // rank's list BEFORE the leader pre-merge; exactness must survive the
  // composition (tie-heavy data makes sloppy threshold handling visible).
  const u64 n = 1 << 17;
  const u64 k = 200;
  std::vector<u32> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(i % 512);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.num_gpus = 8;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 1;
  cfg.gpus_per_node = 4;
  cfg.hierarchical = true;
  cfg.kth_exchange = true;
  auto r = dist::multi_gpu_topk(vs, k, cfg);
  EXPECT_EQ(r.keys, topk::reference_topk(vs, k));
  EXPECT_EQ(r.primary_messages, dist::primary_messages(8, 4, true));
}

TEST(MultiGpu, ScalabilityShrinksComputePerGpu) {
  const u64 n = 1 << 20;
  auto v = data::generate(n, Distribution::kUniform, 59);
  std::span<const u32> vs(v.data(), v.size());
  dist::MultiGpuConfig cfg;
  cfg.device_capacity_elems = n;
  cfg.host_threads_per_gpu = 2;
  cfg.num_gpus = 1;
  auto r1 = dist::multi_gpu_topk(vs, 128, cfg);
  cfg.num_gpus = 4;
  auto r4 = dist::multi_gpu_topk(vs, 128, cfg);
  // Table 2: per-GPU compute scales with shard size. (Total time only
  // improves once shards are large enough to dominate the fixed
  // communication + final-reduction cost — the paper's speedups are
  // measured at |V| >= 2^30; at this test size the fixed costs show.)
  EXPECT_LT(r4.compute_ms, r1.compute_ms);
  EXPECT_LT(r4.compute_ms + r4.reload_ms, r1.compute_ms + r1.reload_ms);
}

}  // namespace
}  // namespace drtopk
