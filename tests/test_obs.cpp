// Tests for the observability layer: histogram bucket math and percentile
// accuracy vs an exact sort, Prometheus/JSON export goldens, tracer ring
// behavior and span well-formedness under concurrent executors, and the
// stage-attribution invariants (no unattributed launches in a served
// query; per-stage totals reconcile exactly with the aggregate).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "data/distributions.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace drtopk {
namespace {

using obs::Histogram;

// ---------------------------------------------------------------- metrics

TEST(ObsHistogram, BucketMathInvariants) {
  // Exact unit buckets for small values.
  for (u64 v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v);
    EXPECT_EQ(Histogram::bucket_limit(static_cast<u32>(v)), v);
  }
  // bucket_limit is the inclusive upper bound: v <= limit(bucket_of(v)),
  // and the next bucket starts right above it.
  for (u64 v : {u64{8}, u64{9}, u64{100}, u64{1000}, u64{100000},
                u64{1} << 40, ~u64{0}}) {
    const u32 b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_limit(b));
    if (b > 0) EXPECT_GT(v, Histogram::bucket_limit(b - 1));
    // Relative bucket width <= 1/8.
    EXPECT_LE(static_cast<double>(Histogram::bucket_limit(b)),
              static_cast<double>(v) * 1.125 + 1.0);
  }
  // Monotone: bucket_of never decreases as v grows through a boundary.
  u32 prev = 0;
  for (u64 v = 0; v < 4096; ++v) {
    const u32 b = Histogram::bucket_of(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(ObsHistogram, PercentileMatchesExactSortWithinOneBucket) {
  Histogram h;
  std::vector<u64> samples;
  for (u64 i = 0; i < 10000; ++i) {
    // Heavy-tailed spread across several octaves.
    const u64 v = data::rand_u64(0xace, i) % (u64{1} << (8 + i % 12));
    samples.push_back(v);
    h.observe(v);
  }
  std::vector<u64> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    // The histogram's rank-q sample is the same order statistic the exact
    // sort finds; the histogram just reports its bucket's upper bound.
    u64 rank = static_cast<u64>(q * static_cast<double>(sorted.size()) +
                                0.9999999);
    rank = std::clamp<u64>(rank, 1, sorted.size());
    const u64 exact = sorted[rank - 1];
    const u64 est = h.percentile(q);
    EXPECT_EQ(est, Histogram::bucket_limit(Histogram::bucket_of(exact)))
        << "q=" << q;
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact) * 1.125 + 1.0)
        << "q=" << q;
  }
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::logic_error);
  EXPECT_THROW(reg.histogram("m"), std::logic_error);
  // Same kind re-registration returns the same metric.
  obs::Counter& c = reg.counter("m");
  c.add(2);
  EXPECT_EQ(reg.counter("m").value(), 2u);
}

TEST(ObsExport, PrometheusGolden) {
  obs::Registry reg;
  reg.counter("a_counter", "help text").add(3);
  reg.gauge("b_gauge").set(7);
  obs::Histogram& h = reg.histogram("c_hist");
  h.observe(1);
  h.observe(100);
  const std::string expect =
      "# HELP a_counter help text\n"
      "# TYPE a_counter counter\n"
      "a_counter 3\n"
      "# TYPE b_gauge gauge\n"
      "b_gauge 7\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"1\"} 1\n"
      "c_hist_bucket{le=\"103\"} 2\n"
      "c_hist_bucket{le=\"+Inf\"} 2\n"
      "c_hist_sum 101\n"
      "c_hist_count 2\n";
  EXPECT_EQ(obs::to_prometheus(reg), expect);
}

TEST(ObsExport, JsonGolden) {
  obs::Registry reg;
  reg.counter("a_counter").add(3);
  reg.gauge("b_gauge").set(7);
  obs::Histogram& h = reg.histogram("c_hist");
  h.observe(1);
  h.observe(100);
  const std::string expect =
      "{\"a_counter\":3,\"b_gauge\":7,"
      "\"c_hist\":{\"count\":2,\"sum\":101,\"p50\":1,\"p90\":103,"
      "\"p99\":103,\"buckets\":[[1,1],[103,2]]}}";
  EXPECT_EQ(obs::to_json(reg), expect);
}

// ----------------------------------------------------------------- tracer

TEST(ObsTracer, RingWrapDropsOldestAndCounts) {
  obs::Tracer t(true, 1, 16);
  for (u64 i = 0; i < 40; ++i) t.complete(0, "s", i, 0, i, i + 1);
  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 16u);
  EXPECT_EQ(t.dropped(), 24u);
  // Oldest-first unroll: the surviving spans are queries 24..39 in order.
  for (u64 i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].second.query, 24 + i);
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  obs::Tracer t(false, 2, 128);
  t.complete(0, "s", 1, 0, 0, 5);
  t.instant(1, "i", 2, 0);
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(ObsTracer, ConcurrentLanesLoseNothing) {
  constexpr u32 kLanes = 4;
  constexpr u64 kPer = 2000;
  obs::Tracer t(true, kLanes, kPer);
  std::vector<std::thread> threads;
  for (u32 lane = 0; lane < kLanes; ++lane) {
    threads.emplace_back([&, lane] {
      for (u64 i = 0; i < kPer; ++i)
        t.complete(lane, "span", lane * kPer + i, lane, i, i + 1);
    });
  }
  for (auto& th : threads) th.join();
  const auto spans = t.snapshot();
  EXPECT_EQ(spans.size(), kLanes * kPer);
  EXPECT_EQ(t.dropped(), 0u);
  // Chrome export is parseable-shaped: one event per span + lane metas.
  std::ostringstream os;
  t.export_chrome(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// ------------------------------------------------- serve-layer integration

TEST(ObsServe, SpansWellFormedUnderConcurrentExecutors) {
  auto a = data::generate(1 << 15, data::Distribution::kUniform, 31);
  auto b = data::generate(1 << 14, data::Distribution::kNormal, 32);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());

  vgpu::Device dev(vgpu::GpuProfile::v100s());
  serve::ServerConfig cfg;
  cfg.executors = 4;
  cfg.finalize_window_us = 200;
  cfg.obs.tracing = true;
  serve::TopkServer server(dev, cfg);

  std::vector<serve::Query> queries;
  for (int i = 0; i < 48; ++i)
    queries.push_back(serve::Query::view(i % 2 ? as : bs, 25 + 25 * (i % 4)));
  auto results = server.run_batch(std::move(queries));
  server.drain();

  const auto spans = server.tracer().snapshot();
  ASSERT_FALSE(spans.empty());
  for (const auto& [lane, s] : spans) {
    EXPECT_NE(s.name[0], '\0');
    EXPECT_LT(s.dur_us, u64{60} * 1000 * 1000) << s.name;
  }
  // Per query: exactly one enqueue instant, one queue-wait span and one
  // phase-a span — no orphans (missing spans) and no duplicates
  // (double-claimed queries).
  for (const auto& r : results) {
    u64 enq = 0, wait = 0, phase = 0;
    for (const auto& [lane, s] : spans) {
      if (s.query != r.id) continue;
      if (std::string_view(s.name) == "enqueue") ++enq;
      if (std::string_view(s.name) == "queue-wait") ++wait;
      if (std::string_view(s.name) == "phase-a") ++phase;
    }
    EXPECT_EQ(enq, 1u) << "query " << r.id;
    EXPECT_EQ(wait, 1u) << "query " << r.id;
    EXPECT_EQ(phase, 1u) << "query " << r.id;
  }
  // The run exercised the batched path: parked items must close their
  // deferred-park spans at a finalize.
  u64 parks = 0, finalizes = 0;
  for (const auto& [lane, s] : spans) {
    if (std::string_view(s.name) == "deferred-park") ++parks;
    if (std::string_view(s.name) == "batched-finalize") ++finalizes;
  }
  EXPECT_GT(parks, 0u);
  EXPECT_GT(finalizes, 0u);
}

TEST(ObsServe, EveryServedLaunchCarriesAStageLabel) {
  // Mixed corpora/distributions so the run exercises the deferred stage-4
  // path too (uniform data with an exact radix kappa can skip stage 4
  // entirely — candidates == k — which would leave "second" untested).
  auto a = data::generate(1 << 15, data::Distribution::kUniform, 31);
  auto b = data::generate(1 << 14, data::Distribution::kNormal, 32);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());

  // Fresh device: the ledger must contain ONLY this server's launches.
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  serve::ServerConfig cfg;
  cfg.executors = 3;
  cfg.finalize_window_us = 100;
  serve::TopkServer server(dev, cfg);

  std::vector<serve::Query> queries;
  for (int i = 0; i < 48; ++i)
    queries.push_back(serve::Query::view(i % 2 ? as : bs, 25 + 25 * (i % 4)));
  server.run_batch(std::move(queries));
  server.drain();

  EXPECT_EQ(dev.unattributed_launches(), 0u);

  // Per-stage totals reconcile EXACTLY with the aggregate: the ledger adds
  // the same KernelStats under the same lock.
  vgpu::KernelStats sum;
  bool saw_construct = false, saw_second = false;
  for (const vgpu::StageStats& st : dev.stage_stats()) {
    EXPECT_NE(st.stage, "unattributed");
    sum += st.stats;
    if (st.stage == "construct") saw_construct = true;
    if (st.stage == "second") saw_second = true;
  }
  EXPECT_TRUE(saw_construct);
  EXPECT_TRUE(saw_second);
  const vgpu::KernelStats total = dev.total_stats();
  EXPECT_EQ(sum.global_load_elems, total.global_load_elems);
  EXPECT_EQ(sum.global_store_elems, total.global_store_elems);
  EXPECT_EQ(sum.global_load_bytes, total.global_load_bytes);
  EXPECT_EQ(sum.global_store_bytes, total.global_store_bytes);
  EXPECT_EQ(sum.global_load_txns, total.global_load_txns);
  EXPECT_EQ(sum.global_store_txns, total.global_store_txns);
  EXPECT_EQ(sum.shfl_ops, total.shfl_ops);
  EXPECT_EQ(sum.vote_ops, total.vote_ops);
  EXPECT_EQ(sum.atomic_ops, total.atomic_ops);
  EXPECT_EQ(sum.shared_loads, total.shared_loads);
  EXPECT_EQ(sum.shared_stores, total.shared_stores);
  EXPECT_EQ(sum.shared_bank_conflicts, total.shared_bank_conflicts);
  EXPECT_EQ(sum.kernels_launched, total.kernels_launched);
  EXPECT_EQ(sum.ctas_run, total.ctas_run);
  EXPECT_GT(total.kernels_launched, 0u);
}

TEST(ObsServe, HistogramPercentilesMatchExactSortPath) {
  // Two servers over the same deterministic workload: one snapshots
  // percentiles from the streaming histogram (default), one exact-sorts
  // the reservoir (debug flag). They must agree to within one histogram
  // bucket (<= 12.5% relative, and the histogram never under-reports).
  auto v = data::generate(1 << 15, data::Distribution::kUniform, 51);
  std::span<const u32> vs(v.data(), v.size());
  const auto run = [&](bool exact) {
    vgpu::Device dev(vgpu::GpuProfile::v100s());
    serve::ServerConfig cfg;
    cfg.executors = 2;
    cfg.obs.exact_percentiles = exact;
    serve::TopkServer server(dev, cfg);
    std::vector<serve::Query> queries;
    for (int i = 0; i < 64; ++i)
      queries.push_back(serve::Query::view(vs, 5 + 40 * (i % 3)));
    server.run_batch(std::move(queries));
    server.drain();
    return server.stats();
  };
  const serve::ServerStats hist = run(false);
  const serve::ServerStats exact = run(true);
  ASSERT_EQ(hist.completed, exact.completed);
  EXPECT_GE(hist.p50_sim_ms, exact.p50_sim_ms * 0.99 - 2e-3);
  EXPECT_LE(hist.p50_sim_ms, exact.p50_sim_ms * 1.13 + 2e-3);
  EXPECT_GE(hist.p99_sim_ms, exact.p99_sim_ms * 0.99 - 2e-3);
  EXPECT_LE(hist.p99_sim_ms, exact.p99_sim_ms * 1.13 + 2e-3);
}

TEST(ObsServe, ServerExportsMetricsAndTrace) {
  auto v = data::generate(1 << 14, data::Distribution::kUniform, 61);
  std::span<const u32> vs(v.data(), v.size());
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.obs.tracing = true;
  serve::TopkServer server(dev, cfg);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 16; ++i)
    queries.push_back(serve::Query::view(vs, 100));
  server.run_batch(std::move(queries));
  server.drain();

  const std::string prom = server.metrics_prometheus();
  EXPECT_NE(prom.find("serve_queries_completed 16"), std::string::npos);
  EXPECT_NE(prom.find("serve_latency_sim_us_count 16"), std::string::npos);
  EXPECT_NE(prom.find("serve_queue_wait_us_count 16"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE serve_latency_sim_us histogram"),
            std::string::npos);

  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"serve_queries_completed\":16"), std::string::npos);

  const std::string path = "test_obs_trace.json";
  ASSERT_TRUE(server.dump_trace(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Export, LabelSetRendersOnEverySeries) {
  obs::Registry reg;
  reg.counter("requests", "help text").add(3);
  reg.gauge("depth", "").set(7);
  auto& h = reg.histogram("lat_us", "");
  h.observe(10);
  h.observe(1000);

  const std::string prom = obs::to_prometheus(reg, "shard=\"2\"");
  EXPECT_NE(prom.find("requests{shard=\"2\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("depth{shard=\"2\"} 7"), std::string::npos);
  // Histogram series splice the label before le and onto _sum/_count.
  EXPECT_NE(prom.find("lat_us_bucket{shard=\"2\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_us_sum{shard=\"2\"}"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_count{shard=\"2\"} 2"), std::string::npos);
  // No label: output identical to the pre-label format.
  EXPECT_NE(obs::to_prometheus(reg).find("requests 3"), std::string::npos);

  const std::string json = obs::to_json(reg, "shard=\"2\"");
  EXPECT_NE(json.find("\"requests{shard=\\\"2\\\"}\":3"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us{shard=\\\"2\\\"}\":{"), std::string::npos);
  EXPECT_NE(obs::to_json(reg).find("\"requests\":3"), std::string::npos);
}

TEST(Trace, MultiTracerExportSeparatesProcesses) {
  obs::Tracer a(true, 2, 16), b(true, 1, 16);
  a.complete(0, "enqueue", 1, 0, 0, 5);
  a.complete(1, "phase-a", 1, 1, 5, 9);
  b.instant(0, "enqueue", 2, 0);
  std::ostringstream os;
  obs::export_chrome_multi(os, {{"shard-0", &a}, {"shard-1", &b}});
  const std::string out = os.str();
  // One process row per tracer, named via process_name metadata.
  EXPECT_NE(out.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"shard-0\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"shard-1\""), std::string::npos);
  // Events carry their tracer's pid; shard-1's instant lands under pid 2.
  EXPECT_NE(out.find("\"ph\":\"i\",\"ts\":"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":2,\"tid\":0"), std::string::npos);
  // Single-tracer export is unchanged: fixed pid 1 envelope.
  std::ostringstream solo;
  a.export_chrome(solo);
  EXPECT_NE(solo.str().find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_EQ(solo.str().find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace drtopk
