// Tests for the batched top-k serving engine: admission batching with
// shared delegate construction, plan-cache behaviour, backpressure, and —
// the central property — every concurrently served query returning results
// bit-identical to the single-query core::dr_topk path.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "data/distributions.hpp"
#include "serve/server.hpp"

namespace drtopk::serve {
namespace {

using data::Criterion;
using data::Distribution;
using topk::reference_topk;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

std::vector<u64> widen(const std::vector<u32>& v) {
  return {v.begin(), v.end()};
}

TEST(Serve, SingleQueryMatchesSingleQueryPath) {
  auto v = data::generate(1 << 16, Distribution::kUniform, 11);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = core::dr_topk_keys<u32>(shared_device(), vs, 100).keys;

  TopkServer server(shared_device());
  auto r = server.submit(Query::view(vs, 100)).get();
  EXPECT_EQ(r.values, widen(expect));
  EXPECT_EQ(r.kth, static_cast<u64>(expect.back()));
  EXPECT_GT(r.latency_sim_ms, 0.0);
}

TEST(Serve, ConcurrentMixedQueriesBitIdenticalToSequential) {
  // Several corpora x several k x criteria x widths, all in flight at once
  // on one device; every answer must match the single-query path exactly.
  auto a = data::generate(1 << 16, Distribution::kUniform, 21);
  auto b = data::generate((1 << 15) + 777, Distribution::kNormal, 22);
  std::vector<u64> c(1 << 15);
  for (u64 i = 0; i < c.size(); ++i) c[i] = data::rand_u64(23, i);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());
  std::span<const u64> cs(c.data(), c.size());

  ServerConfig cfg;
  cfg.executors = 4;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (u64 k : {u64{1}, u64{17}, u64{256}, u64{2048}}) {
    queries.push_back(Query::view(as, k));
    queries.push_back(Query::view(bs, k));
    queries.push_back(Query::view(cs, k));
    queries.push_back(Query::view(as, k, Criterion::kSmallest));
  }
  auto results = server.run_batch(queries);
  ASSERT_EQ(results.size(), queries.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const QueryResult& r = results[i];
    std::vector<u64> expect;
    if (q.width() == KeyWidth::k64) {
      auto e = core::dr_topk<u64>(shared_device(), q.data64(), q.k,
                                  q.criterion);
      expect = e.values;
    } else {
      auto e = core::dr_topk<u32>(shared_device(), q.data32(), q.k,
                                  q.criterion);
      expect = widen(e.values);
    }
    ASSERT_EQ(r.values, expect) << "query " << i << " k=" << q.k;
    ASSERT_EQ(r.kth, expect.back()) << "query " << i;
  }
}

TEST(Serve, BatchedGroupSharesOneConstructionPass) {
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 31);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;  // deterministic grouping
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(Query::view(vs, 64 + i));
  auto results = server.run_batch(queries);

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i].values,
              widen(reference_topk(vs, queries[i].k)));
    EXPECT_TRUE(results[i].fused) << i;
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.fused_queries, 8u);
  EXPECT_EQ(s.groups, 1u);
  // The whole batch paid for exactly one construction pass: the delegate
  // builder reads each input element once (|V| element loads).
  EXPECT_EQ(s.stages.construct_stats.global_load_elems, n);
}

TEST(Serve, StreamedSubmitsJoinTheInFlightGroup) {
  // One-at-a-time submits against one corpus: queries arriving while the
  // first query's group is still setting up (plan probes + construction)
  // must join it rather than each paying their own construction pass.
  const u64 n = 1 << 18;
  auto v = data::generate(n, Distribution::kUniform, 35);
  std::span<const u32> vs(v.data(), v.size());

  const auto expect = widen(reference_topk(vs, 128));
  // How many submits land in a shared group depends on how far setup has
  // progressed when they arrive; with millisecond setups and microsecond
  // submits, batching is near-certain per attempt — retry a couple of
  // times so scheduler preemption on a loaded machine cannot flake this.
  u64 min_groups = 8;
  for (int attempt = 0; attempt < 3 && min_groups >= 8; ++attempt) {
    ServerConfig cfg;
    cfg.executors = 1;
    cfg.batch_max = 16;
    TopkServer server(shared_device(), cfg);
    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 8; ++i)
      futures.push_back(server.submit(Query::view(vs, 128)));
    for (auto& f : futures) EXPECT_EQ(f.get().values, expect);
    min_groups = std::min(min_groups, server.stats().groups);
  }
  EXPECT_LT(min_groups, 8u);
}

TEST(Serve, PlanCacheHitsOnRecurringShape) {
  auto v = data::generate(1 << 16, Distribution::kUniform, 41);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  TopkServer server(shared_device(), cfg);

  (void)server.run_batch({Query::view(vs, 128)});
  const ServerStats cold = server.stats();
  EXPECT_EQ(cold.plan_hits, 0u);
  EXPECT_GE(cold.plan_misses, 1u);

  (void)server.run_batch({Query::view(vs, 128)});
  const ServerStats warm = server.stats();
  EXPECT_GE(warm.plan_hits, 1u);
  EXPECT_EQ(warm.plan_misses, cold.plan_misses);  // no re-calibration
  EXPECT_GE(server.plan_cache().size(), 1u);
}

TEST(Serve, PlanCacheKeysOnShapeAndDistribution) {
  auto ud = data::generate(1 << 15, Distribution::kUniform, 51);
  auto nd = data::generate(1 << 15, Distribution::kNormal, 51);
  std::span<const u32> us(ud.data(), ud.size());
  std::span<const u32> ns(nd.data(), nd.size());

  ServerConfig cfg;
  cfg.executors = 1;
  TopkServer server(shared_device(), cfg);
  (void)server.run_batch({Query::view(us, 64)});
  (void)server.run_batch({Query::view(ns, 64)});
  // Same (n, k) but different distribution fingerprints: two plans.
  EXPECT_EQ(server.plan_cache().size(), 2u);
  (void)server.run_batch({Query::view(us, 64)});
  EXPECT_EQ(server.plan_cache().size(), 2u);
  EXPECT_GE(server.stats().plan_hits, 1u);
}

TEST(Serve, PinnedAlphaWinsOverCalibration) {
  // An explicit base.alpha is a contract (resolve_alpha: "an explicit
  // cfg.alpha wins"); the plan cache must not probe its way to a different
  // subrange size.
  auto v = data::generate(1 << 16, Distribution::kUniform, 55);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.base.alpha = 9;
  TopkServer server(shared_device(), cfg);
  auto r = server.submit(Query::view(vs, 64)).get();
  EXPECT_EQ(r.values, widen(reference_topk(vs, 64)));
  EXPECT_EQ(r.breakdown.alpha, 9);
}

TEST(Serve, BackpressureBoundsInFlightAndStaysExact) {
  auto v = data::generate(1 << 14, Distribution::kCustomized, 61);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = widen(reference_topk(vs, 33));

  ServerConfig cfg;
  cfg.executors = 2;
  cfg.max_in_flight = 3;  // force submit() to block and release repeatedly
  TopkServer server(shared_device(), cfg);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 24; ++i)
    futures.push_back(server.submit(Query::view(vs, 33)));
  for (auto& f : futures) EXPECT_EQ(f.get().values, expect);
  EXPECT_EQ(server.stats().completed, 24u);
}

TEST(Serve, SelectionOnlyQueriesReturnTheKth) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 71);
  std::span<const u32> vs(v.data(), v.size());
  const u64 k = 200;
  const u32 kth = reference_topk(vs, k).back();

  TopkServer server(shared_device());
  auto r = server
               .submit(Query::view(vs, k, Criterion::kLargest,
                                   /*selection_only=*/true))
               .get();
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.kth, static_cast<u64>(kth));
  EXPECT_EQ(r.values[0], static_cast<u64>(kth));
}

TEST(Serve, OwnedPayloadQueries) {
  std::vector<u32> payload(1 << 14);
  for (u64 i = 0; i < payload.size(); ++i)
    payload[i] = data::rand_u32(81, i);
  std::span<const u32> ps(payload.data(), payload.size());
  const auto expect = widen(reference_topk(ps, 50));

  TopkServer server(shared_device());
  auto r = server.submit(Query::owned(std::move(payload), 50)).get();
  EXPECT_EQ(r.values, expect);
}

TEST(Serve, SmallestCriterionThroughServer) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 91);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<u32> asc(v.begin(), v.end());
  std::sort(asc.begin(), asc.end());
  asc.resize(20);

  TopkServer server(shared_device());
  auto r = server.submit(Query::view(vs, 20, Criterion::kSmallest)).get();
  EXPECT_EQ(r.values, widen(asc));
}

TEST(Serve, RejectsInvalidQueries) {
  auto v = data::generate(1024, Distribution::kUniform, 95);
  std::span<const u32> vs(v.data(), v.size());
  TopkServer server(shared_device());
  EXPECT_THROW((void)server.submit(Query::view(vs, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(Query::view(vs, 2048)),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(Query::view(std::span<const u32>{}, 1)),
               std::invalid_argument);
}

TEST(Serve, StatsAreCoherent) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 97);
  std::span<const u32> vs(v.data(), v.size());
  ServerConfig cfg;
  cfg.executors = 2;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(Query::view(vs, 100));
  (void)server.run_batch(queries);
  (void)server.run_batch(queries);  // second group of the same shape: hits

  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 12u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.qps(), 0.0);
  EXPECT_GT(s.makespan_sim_ms, 0.0);
  // The busiest executor cannot have done more than all query work plus
  // the one-time calibration probes (which belong to no query's latency).
  EXPECT_LE(s.makespan_sim_ms, s.total_sim_ms + s.calibration_sim_ms + 1e-9);
  EXPECT_LE(s.p50_sim_ms, s.p99_sim_ms + 1e-12);
  EXPECT_GT(s.plan_hit_rate(), 0.0);  // recurring shape hits after group 1
}

TEST(Serve, MixedKGroupKeepsFusionForFeasibleQueries) {
  // One near-n outlier in a group must not disable shared construction for
  // the feasible majority: the delegate vector is sized for the largest
  // feasible k, the outlier runs unfused, everyone stays exact.
  auto v = data::generate(2048, Distribution::kUniform, 98);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  queries.push_back(Query::view(vs, 1800));  // delegation infeasible
  for (int i = 0; i < 7; ++i) queries.push_back(Query::view(vs, 10));
  auto results = server.run_batch(queries);

  EXPECT_EQ(results[0].values, widen(reference_topk(vs, 1800)));
  EXPECT_FALSE(results[0].fused);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].values, widen(reference_topk(vs, 10))) << i;
    EXPECT_TRUE(results[i].fused) << i;
  }
  EXPECT_EQ(server.stats().groups, 1u);
}

TEST(Serve, BatchedFinalizeOneSecondTopkLaunchPerWarmedGroup) {
  // The launch-count regression test: a warmed server with batching enabled
  // must perform exactly ONE second-top-k launch per admission group.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 103);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;  // deterministic grouping: one group per batch
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(Query::view(vs, 64 + 8 * i));

  (void)server.run_batch(queries);  // warm: plans calibrate, arenas grow
  const ServerStats warm = server.stats();
  EXPECT_GE(warm.batched_groups, 1u);

  const int rounds = 3;
  for (int r = 0; r < rounds; ++r) {
    auto results = server.run_batch(queries);
    for (size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
          << i;
  }
  const ServerStats after = server.stats();
  const u64 groups = after.groups - warm.groups;
  EXPECT_EQ(groups, static_cast<u64>(rounds));
  // Exactly one batched finalization — and one selection launch — per group.
  EXPECT_EQ(after.batched_groups - warm.batched_groups, groups);
  EXPECT_EQ(after.finalize_launches - warm.finalize_launches, groups);
  // Every query of every warmed group rode the batch.
  EXPECT_EQ(after.batched_queries - warm.batched_queries,
            groups * queries.size());
}

TEST(Serve, BatchedAndPerQueryPathsAreBitIdentical) {
  // The parity suite at server level: batched selection on vs off (the
  // PR-2 per-query baseline) across distributions, widths, criteria and
  // mixed k — identical answers, same group structure.
  auto a = data::generate(1 << 15, Distribution::kUniform, 111);
  auto b = data::generate((1 << 14) + 321, Distribution::kNormal, 112);
  auto c = data::generate(1 << 14, Distribution::kCustomized, 113);
  std::vector<u64> d(1 << 13);
  for (u64 i = 0; i < d.size(); ++i) d[i] = data::rand_u64(114, i);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());
  std::span<const u32> cs(c.data(), c.size());
  std::span<const u64> dsn(d.data(), d.size());

  std::vector<Query> queries;
  for (u64 k : {u64{1}, u64{33}, u64{512}}) {
    queries.push_back(Query::view(as, k));
    queries.push_back(Query::view(bs, k, Criterion::kSmallest));
    queries.push_back(Query::view(cs, k, Criterion::kLargest,
                                  /*selection_only=*/true));
    queries.push_back(Query::view(dsn, k));
  }

  ServerConfig batched_cfg;
  batched_cfg.executors = 3;
  TopkServer batched(shared_device(), batched_cfg);
  auto br = batched.run_batch(queries);

  ServerConfig per_cfg;
  per_cfg.executors = 3;
  per_cfg.batched_select = false;
  TopkServer per(shared_device(), per_cfg);
  auto pr2 = per.run_batch(queries);

  ASSERT_EQ(br.size(), pr2.size());
  for (size_t i = 0; i < br.size(); ++i) {
    EXPECT_EQ(br[i].values, pr2[i].values) << "query " << i;
    EXPECT_EQ(br[i].kth, pr2[i].kth) << "query " << i;
  }
  EXPECT_GE(batched.stats().batched_queries, 1u);
  EXPECT_EQ(per.stats().batched_queries, 0u);
  EXPECT_EQ(per.stats().finalize_launches, 0u);
}

TEST(Serve, BatchedStreamedSubmitsStayExact) {
  // One-at-a-time submissions (late joiners ride in-flight groups) through
  // the batched path: deferral bookkeeping must close every group.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 121);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = widen(reference_topk(vs, 96));

  ServerConfig cfg;
  cfg.executors = 2;
  TopkServer server(shared_device(), cfg);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 12; ++i)
      futures.push_back(server.submit(Query::view(vs, 96)));
    for (auto& f : futures) EXPECT_EQ(f.get().values, expect);
  }
  EXPECT_EQ(server.stats().completed, 36u);
  EXPECT_EQ(server.stats().failed, 0u);
}

TEST(Serve, DedupIdenticalQueriesShareOneClass) {
  // N identical queries: one leader runs phase A, everyone else subscribes
  // to its candidate span; results are bit-identical and exactly one query
  // class forms.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 131);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = widen(reference_topk(vs, 100));

  ServerConfig cfg;
  cfg.executors = 1;  // deterministic grouping: one group
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(Query::view(vs, 100));
  auto results = server.run_batch(queries);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].values, expect) << i;
    EXPECT_EQ(results[i].kth, expect.back()) << i;
  }

  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.dedup_classes, 1u);
  EXPECT_EQ(s.deduped_queries, 7u);
  // Everyone was delivered by the one batched finalization.
  EXPECT_EQ(s.batched_queries, 8u);
  EXPECT_EQ(s.batched_groups, 1u);
}

TEST(Serve, DedupMixedIdenticalAndDistinctQueries) {
  // Only the identical members share a class; distinct ks still run their
  // own phase A and everyone stays exact.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 133);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 4; ++i) queries.push_back(Query::view(vs, 64));
  for (u64 k : {u64{33}, u64{128}, u64{256}, u64{512}})
    queries.push_back(Query::view(vs, k));
  auto results = server.run_batch(queries);
  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
        << i;

  const ServerStats s = server.stats();
  EXPECT_EQ(s.dedup_classes, 1u);    // only k=64 actually shared
  EXPECT_EQ(s.deduped_queries, 3u);  // its three subscribers
  EXPECT_EQ(s.failed, 0u);
}

TEST(Serve, DedupSelectionOnlySplitsTheClass) {
  // Same k but different selection_only must NOT share a span-emission
  // contract: two classes, both exact.
  auto v = data::generate(1 << 15, Distribution::kUniform, 137);
  std::span<const u32> vs(v.data(), v.size());
  const auto full = widen(reference_topk(vs, 77));

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 8;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(Query::view(vs, 77));
  for (int i = 0; i < 3; ++i)
    queries.push_back(Query::view(vs, 77, Criterion::kLargest,
                                  /*selection_only=*/true));
  auto results = server.run_batch(queries);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(results[i].values, full) << i;
  for (int i = 3; i < 6; ++i) {
    ASSERT_EQ(results[i].values.size(), 1u) << i;
    EXPECT_EQ(results[i].kth, full.back()) << i;
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.dedup_classes, 2u);
  EXPECT_EQ(s.deduped_queries, 4u);
}

TEST(Serve, DedupParityWithDedupOffAcrossMatrix) {
  // Dedup on vs off over distributions x widths x criteria x duplicate
  // patterns: bit-identical answers (the acceptance parity matrix).
  auto a = data::generate(1 << 15, Distribution::kUniform, 141);
  auto b = data::generate((1 << 14) + 99, Distribution::kNormal, 142);
  auto c = data::generate(1 << 14, Distribution::kCustomized, 143);
  std::vector<u64> d(1 << 13);
  for (u64 i = 0; i < d.size(); ++i) d[i] = data::rand_u64(144, i);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());
  std::span<const u32> cs(c.data(), c.size());
  std::span<const u64> dsn(d.data(), d.size());

  std::vector<Query> queries;
  for (int rep = 0; rep < 3; ++rep) {  // duplicates across every signature
    for (u64 k : {u64{1}, u64{33}, u64{512}}) {
      queries.push_back(Query::view(as, k));
      queries.push_back(Query::view(bs, k, Criterion::kSmallest));
      queries.push_back(Query::view(cs, k, Criterion::kLargest,
                                    /*selection_only=*/true));
      queries.push_back(Query::view(dsn, k));
    }
  }

  ServerConfig on_cfg;
  on_cfg.executors = 3;
  on_cfg.dedup = true;
  TopkServer on(shared_device(), on_cfg);
  auto ron = on.run_batch(queries);

  ServerConfig off_cfg;
  off_cfg.executors = 3;
  off_cfg.dedup = false;
  TopkServer off(shared_device(), off_cfg);
  auto roff = off.run_batch(queries);

  ASSERT_EQ(ron.size(), roff.size());
  for (size_t i = 0; i < ron.size(); ++i) {
    EXPECT_EQ(ron[i].values, roff[i].values) << "query " << i;
    EXPECT_EQ(ron[i].kth, roff[i].kth) << "query " << i;
  }
  EXPECT_GE(on.stats().deduped_queries, 1u);
  EXPECT_EQ(off.stats().deduped_queries, 0u);
}

TEST(Serve, WindowMergesTwoCorporaIntoOneFinalizeLaunch) {
  // Two admission groups on DIFFERENT corpora completing within the window
  // must be finalized by ONE shared batched launch (the cross-group
  // staging area): launch-count-asserted extension of the PR-3 regression
  // test. The segment cap (5: above one group's four leaders, at or below
  // two groups' worth even if a query resolves inline via the Rule-3 fast
  // path) fires the flush as soon as the second group parks, so the test
  // never waits out the generous window.
  const u64 n = 1 << 15;
  auto va = data::generate(n, Distribution::kUniform, 151);
  auto vb = data::generate(n, Distribution::kNormal, 152);
  std::span<const u32> as(va.data(), va.size());
  std::span<const u32> bs(vb.data(), vb.size());

  ServerConfig cfg;
  cfg.executors = 2;  // the window owner blocks; the peer drains the rest
  cfg.batch_max = 4;
  cfg.finalize_window_us = 1'000'000;  // cap-triggered long before this
  cfg.finalize_max_segments = 5;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (u64 k : {u64{32}, u64{64}, u64{96}, u64{128}})
    queries.push_back(Query::view(as, k));
  for (u64 k : {u64{32}, u64{64}, u64{96}, u64{128}})
    queries.push_back(Query::view(bs, k));
  auto results = server.run_batch(queries);
  for (size_t i = 0; i < 4; ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(as, queries[i].k)))
        << i;
  for (size_t i = 4; i < 8; ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(bs, queries[i].k)))
        << i;

  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.batched_groups, 2u);
  EXPECT_EQ(s.window_flushes, 1u);
  EXPECT_EQ(s.window_merged_groups, 2u);
  // THE assertion: both groups' (small, single-CTA) candidate segments
  // rode one launch.
  EXPECT_EQ(s.finalize_launches, 1u);
}

TEST(Serve, WindowZeroDedupOffReplaysPr3Behavior) {
  // The PR-3 configuration (window=0, dedup=off) must be exactly
  // reproducible: per-group finalization, one launch per warmed group, no
  // dedup/window counters moving, answers bit-identical to defaults.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 155);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig pr3;
  pr3.executors = 1;
  pr3.batch_max = 8;
  pr3.dedup = false;
  pr3.finalize_window_us = 0;
  TopkServer server(shared_device(), pr3);

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(Query::view(vs, 64 + 8 * i));
  (void)server.run_batch(queries);  // warm
  const ServerStats warm = server.stats();
  const int rounds = 2;
  for (int r = 0; r < rounds; ++r) {
    auto results = server.run_batch(queries);
    for (size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
          << i;
  }
  const ServerStats after = server.stats();
  EXPECT_EQ(after.groups - warm.groups, static_cast<u64>(rounds));
  EXPECT_EQ(after.batched_groups - warm.batched_groups,
            static_cast<u64>(rounds));
  EXPECT_EQ(after.finalize_launches - warm.finalize_launches,
            static_cast<u64>(rounds));
  EXPECT_EQ(after.deduped_queries, 0u);
  EXPECT_EQ(after.dedup_classes, 0u);
  EXPECT_EQ(after.window_flushes, 0u);
  EXPECT_EQ(after.window_merged_groups, 0u);
}

TEST(Serve, WindowSpanLifetimeStressAcrossGroups) {
  // Span-lifetime stress: groups park in the staging area and are
  // finalized by an executor that never ran them — their arena-backed
  // candidate spans (dedup-shared included) must stay valid until the
  // shared launch consumes them. Several rounds over four corpora with
  // duplicate queries; everything must stay exact with zero failures.
  const u64 n = 1 << 14;
  std::vector<vgpu::device_vector<u32>> corpora;
  for (u64 t = 0; t < 4; ++t)
    corpora.push_back(data::generate(n, Distribution::kUniform, 161 + t));

  ServerConfig cfg;
  cfg.executors = 3;
  cfg.batch_max = 4;
  // The window is only the fallback bound: the cap (above one group's
  // three leader segments, below two groups' worth) drives the flushes,
  // so a straggler round costs at most 200ms instead of hanging the test.
  cfg.finalize_window_us = 200'000;
  cfg.finalize_max_segments = 4;  // force multi-group flushes
  TopkServer server(shared_device(), cfg);

  for (int round = 0; round < 4; ++round) {
    std::vector<Query> queries;
    for (u64 t = 0; t < 4; ++t) {
      std::span<const u32> vs(corpora[t].data(), corpora[t].size());
      queries.push_back(Query::view(vs, 40));
      queries.push_back(Query::view(vs, 40));  // dedup inside the window
      queries.push_back(Query::view(vs, 80));
      queries.push_back(Query::view(vs, 120));
    }
    auto results = server.run_batch(queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      std::span<const u32> vs = queries[i].data32();
      ASSERT_EQ(results[i].values,
                widen(reference_topk(vs, queries[i].k)))
          << "round " << round << " query " << i;
    }
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, 64u);
  EXPECT_GE(s.window_merged_groups, 2u);
  EXPECT_GE(s.deduped_queries, 1u);
}

TEST(Serve, WindowEarlyFlushFiresWhenPoolGoesIdle) {
  // Queue-empty early flush: a single-executor server with an absurdly
  // long window must NOT pay it — once the pool is idle (one group, fully
  // executed, nothing queued) nothing can join the window, so the parked
  // owner flushes immediately. The wall-clock bound is the whole point:
  // without the early flush this test would sit out the full two seconds.
  const u64 n = 1 << 15;
  auto v = data::generate(n, Distribution::kNormal, 171);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 8;
  cfg.finalize_window_us = 2'000'000;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i)
    queries.push_back(Query::view(vs, 32 + 32 * static_cast<u64>(i)));

  topk::WallTimer wall;
  auto results = server.run_batch(queries);
  const double elapsed_ms = wall.ms();

  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
        << i;
  EXPECT_LT(elapsed_ms, 1000.0);  // far below the 2 s window

  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GE(s.window_flushes, 1u);
  EXPECT_GE(s.window_early_flushes, 1u);
  EXPECT_EQ(s.window_early_flushes, s.window_flushes);
}

TEST(Serve, WindowEarlyFlushOffReplaysTimerOnlyBehavior) {
  // The `window_early_flush=false` escape hatch replays PR-5: a
  // single-executor owner waits out the full window (no peers to cap-flush
  // it), so elapsed time is bounded BELOW by the window. Keeps the
  // early-flush win measurable against its predecessor.
  const u64 n = 1 << 14;
  auto v = data::generate(n, Distribution::kNormal, 173);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batch_max = 4;
  cfg.finalize_window_us = 50'000;
  cfg.window_early_flush = false;
  TopkServer server(shared_device(), cfg);

  std::vector<Query> queries;
  for (u64 k : {u64{32}, u64{64}, u64{96}, u64{128}})
    queries.push_back(Query::view(vs, k));

  topk::WallTimer wall;
  auto results = server.run_batch(queries);
  const double elapsed_ms = wall.ms();

  for (size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
        << i;

  const ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 0u);
  if (s.window_flushes > 0) {
    // The group actually parked (stage 4 deferred): the owner must have
    // waited out the timer, and no early flush may be recorded.
    EXPECT_GE(elapsed_ms, 50.0);
    EXPECT_EQ(s.window_early_flushes, 0u);
  }
}

TEST(Serve, BatchedConcatParityMatrixAcrossConfigs) {
  // The PR-8 acceptance parity matrix: group-wide batched stage 3 on vs
  // off (the PR-7 per-query stage 3) x dedup on/off, over distributions,
  // widths, criteria, selection_only and duplicate ks — every combination
  // bit-identical, and the baseline bit-identical to the reference.
  auto a = data::generate(1 << 15, Distribution::kUniform, 181);
  auto b = data::generate((1 << 14) + 99, Distribution::kNormal, 182);
  auto c = data::generate(1 << 14, Distribution::kCustomized, 183);
  std::vector<u64> d(1 << 13);
  for (u64 i = 0; i < d.size(); ++i) d[i] = data::rand_u64(184, i);
  std::span<const u32> as(a.data(), a.size());
  std::span<const u32> bs(b.data(), b.size());
  std::span<const u32> cs(c.data(), c.size());
  std::span<const u64> dsn(d.data(), d.size());

  std::vector<Query> queries;
  for (int rep = 0; rep < 2; ++rep) {  // duplicate ks exercise dedup
    for (u64 k : {u64{1}, u64{33}, u64{512}, u64{1000}}) {
      queries.push_back(Query::view(as, k));
      queries.push_back(Query::view(bs, k, Criterion::kSmallest));
      queries.push_back(Query::view(cs, k, Criterion::kLargest,
                                    /*selection_only=*/true));
      queries.push_back(Query::view(dsn, k));
    }
  }

  std::vector<std::vector<QueryResult>> runs;
  for (bool batched_concat : {true, false}) {
    for (bool dedup : {true, false}) {
      ServerConfig cfg;
      cfg.executors = 3;
      cfg.batched_concat = batched_concat;
      cfg.dedup = dedup;
      TopkServer server(shared_device(), cfg);
      runs.push_back(server.run_batch(queries));
      if (batched_concat) EXPECT_GE(server.stats().concat_launches, 1u);
    }
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].values, runs[0][i].values)
          << "run " << run << " query " << i;
      EXPECT_EQ(runs[run][i].kth, runs[0][i].kth)
          << "run " << run << " query " << i;
    }
  }
  // Anchor the agreeing configurations to the reference answers.
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    std::vector<u64> expect = q.width() == KeyWidth::k64
                                  ? reference_topk(q.data64(), q.k)
                                  : widen(reference_topk(q.data32(), q.k));
    if (q.criterion == Criterion::kSmallest) {
      std::vector<u64> all(q.data32().begin(), q.data32().end());
      std::sort(all.begin(), all.end());
      all.resize(q.k);
      expect = all;
    }
    if (q.selection_only) {
      ASSERT_EQ(runs[0][i].values.size(), 1u) << i;
      EXPECT_EQ(runs[0][i].kth, expect.back()) << i;
    } else {
      EXPECT_EQ(runs[0][i].values, expect) << i;
    }
  }
}

TEST(Serve, BatchedConcatOneLaunchPairPerWarmedGroup) {
  // THE launch-count regression test: with batched_concat a warmed group
  // of 16 distinct-k queries costs ONE classify + ONE concat launch
  // (stage 3) and ~5 device launches total — construct, batched kappa,
  // classify, concat, batched finalize. Member queries launch nothing.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kUniform, 191);
  std::span<const u32> vs(v.data(), v.size());

  vgpu::Device dev(vgpu::GpuProfile::v100s());  // private launch ledger
  ServerConfig cfg;
  cfg.executors = 1;  // deterministic grouping: one group per batch
  cfg.batch_max = 16;
  TopkServer server(dev, cfg);

  std::vector<Query> queries;
  for (u64 i = 0; i < 16; ++i) queries.push_back(Query::view(vs, 32 * (i + 1)));

  (void)server.run_batch(queries);  // warm: plans calibrate, arenas grow
  (void)server.run_batch(queries);
  const ServerStats warm = server.stats();
  const u64 warm_launches = dev.total_stats().kernels_launched;

  const u64 rounds = 3;
  for (u64 r = 0; r < rounds; ++r) {
    auto results = server.run_batch(queries);
    for (size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(results[i].values, widen(reference_topk(vs, queries[i].k)))
          << i;
  }
  const ServerStats after = server.stats();
  const u64 groups = after.groups - warm.groups;
  EXPECT_EQ(groups, rounds);
  // Exactly one classify + one concat launch per group, regardless of the
  // 16 member ks.
  EXPECT_EQ(after.concat_launches - warm.concat_launches, 2 * groups);
  EXPECT_EQ(after.finalize_launches - warm.finalize_launches, groups);
  EXPECT_EQ(after.relax_guard_trips, 0u);  // exact kappas: guard never fires
  // The whole-pipeline launch budget: at most 6 launches per group — vs
  // 16 queries * ~2 stage-3 launches each on the per-query path.
  const u64 launches = dev.total_stats().kernels_launched - warm_launches;
  EXPECT_LE(launches, 6 * groups);
  const double lpq = static_cast<double>(launches) /
                     static_cast<double>(queries.size() * rounds);
  EXPECT_LT(lpq, 0.5);
}

TEST(Serve, RelaxationGuardTripsAreCountedAndExported) {
  // All-equal data makes every delegate >= kappa, so the per-query path's
  // Section 4.3 relaxation guard must fire (taken_total > 4k), be counted
  // in ServerStats, and be visible in the Prometheus exposition. The
  // batched-concat path feeds exact kappas, so it never trips the guard —
  // the counter is the observability seam proving that.
  std::vector<u32> v(1 << 20, 42u);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 1;
  cfg.batched_select = false;  // per-query pipeline: relaxation active
  // Pin a small subrange size: the delegate vector must outgrow the
  // single-launch shared-memory first top-k (which is exact and would
  // bypass the relaxation entirely).
  cfg.base.alpha = 5;
  TopkServer server(shared_device(), cfg);
  auto r = server.submit(Query::view(vs, 16)).get();
  EXPECT_EQ(r.values, std::vector<u64>(16, 42u));

  const ServerStats s = server.stats();
  EXPECT_GE(s.relax_guard_trips, 1u);
  EXPECT_NE(server.metrics_prometheus().find("serve_relax_guard_trips"),
            std::string::npos);
}

TEST(Serve, BatchedConcatStreamedLateJoinersStayExact) {
  // Streamed one-at-a-time submits with batched_concat: late joiners whose
  // k missed the group's precomputed stage 3 fall back to the per-item
  // deferred path inside the same group; everything stays exact across
  // duplicate and distinct ks.
  const u64 n = 1 << 16;
  auto v = data::generate(n, Distribution::kNormal, 193);
  std::span<const u32> vs(v.data(), v.size());

  ServerConfig cfg;
  cfg.executors = 2;
  cfg.batched_concat = true;
  TopkServer server(shared_device(), cfg);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<QueryResult>> futures;
    std::vector<u64> ks;
    for (int i = 0; i < 12; ++i) {
      const u64 k = 16 + 16 * static_cast<u64>(i % 6);
      ks.push_back(k);
      futures.push_back(server.submit(Query::view(vs, k)));
    }
    for (size_t i = 0; i < futures.size(); ++i)
      EXPECT_EQ(futures[i].get().values, widen(reference_topk(vs, ks[i])))
          << "round " << round << " query " << i;
  }
  EXPECT_EQ(server.stats().completed, 36u);
  EXPECT_EQ(server.stats().failed, 0u);
}

TEST(Serve, FallbackWhenDelegationInfeasible) {
  // k close to n: delegation infeasible, server must degrade to the direct
  // path and still answer exactly.
  auto v = data::generate(2048, Distribution::kUniform, 99);
  std::span<const u32> vs(v.data(), v.size());
  TopkServer server(shared_device());
  auto r = server.submit(Query::view(vs, 1800)).get();
  EXPECT_EQ(r.values, widen(reference_topk(vs, 1800)));
  EXPECT_FALSE(r.fused);
}

}  // namespace
}  // namespace drtopk::serve
