// Cross-shard parity suite for serve::ShardedTopkServer: the sharded
// answer must be bit-identical to the single-device TopkServer across
// distributions x k x shard counts — including ragged last shards,
// k larger than a shard's winner list, duplicate keys straddling shards,
// dedup on/off, selection-only and both key widths — plus the routing
// short-circuit, topology, labeled metrics and trace/attribution gates.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "data/distributions.hpp"
#include "serve/sharded.hpp"

namespace drtopk::serve {
namespace {

using data::Criterion;
using data::Distribution;

std::vector<u64> widen(const std::vector<u32>& v) {
  return {v.begin(), v.end()};
}

/// The bit-identity target: the same query against ONE TopkServer on one
/// fresh device.
std::vector<QueryResult> single_device_baseline(std::span<const u32> v,
                                                const std::vector<Query>& qs) {
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  TopkServer server(dev);
  std::vector<Query> copy = qs;
  for (auto& q : copy) q.view32 = v;
  return server.run_batch(std::move(copy));
}

/// A sharded config that actually shards small test corpora.
ShardedConfig sharded_cfg(u32 shards) {
  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.min_shard_elems = 1;  // every corpus spreads over all shards
  return cfg;
}

TEST(Sharded, ParityAcrossDistributionsKAndShardCounts) {
  const u64 n = (u64{1} << 15) + 777;  // ragged under every shard count
  for (auto dist : {Distribution::kUniform, Distribution::kNormal}) {
    auto v = data::generate(n, dist, 91);
    std::span<const u32> vs(v.data(), v.size());
    for (u32 shards : {2u, 3u, 4u}) {
      ShardedTopkServer srv(sharded_cfg(shards));
      auto corpus = srv.register_corpus(vs);
      ASSERT_EQ(srv.corpus_shards(corpus), shards);
      for (u64 k : {u64{1}, u64{10}, u64{100}, u64{1000}}) {
        auto expect =
            single_device_baseline(vs, {Query::view(vs, k)}).front();
        auto got = srv.submit(corpus, k).get();
        ASSERT_EQ(got.values, expect.values)
            << "dist=" << static_cast<int>(dist) << " shards=" << shards
            << " k=" << k;
        EXPECT_EQ(got.kth, expect.kth);
        EXPECT_GT(got.latency_sim_ms, 0.0);
      }
    }
  }
}

TEST(Sharded, KLargerThanShardWinnersAndRaggedLastShard) {
  // 4 shards over 3*4096+5 elements: the last shard holds 5 elements, and
  // k = 9000 exceeds every shard's length — each sub-query clamps to its
  // shard, and the merged union must still be the exact global top-k.
  const u64 n = 3 * 4096 + 5;
  auto v = data::generate(n, Distribution::kUniform, 92);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg = sharded_cfg(4);
  cfg.min_shard_elems = 1024;  // 12293/1024 -> 4 shards (clamped)
  ShardedTopkServer srv(cfg);
  auto corpus = srv.register_corpus(vs);
  ASSERT_EQ(srv.corpus_shards(corpus), 4u);
  const u64 k = 9000;
  auto expect = topk::reference_topk(vs, k);
  auto got = srv.submit(corpus, k).get();
  EXPECT_EQ(got.values, widen(expect));
}

TEST(Sharded, DuplicateKeysAcrossShardsKeepMultiplicity) {
  // Only 64 distinct values: every shard holds copies of every winner, so
  // a merge that mis-handled ties would drop or double-count duplicates.
  std::vector<u32> v(1 << 14);
  for (u64 i = 0; i < v.size(); ++i) v[i] = static_cast<u32>(i % 64);
  std::span<const u32> vs(v.data(), v.size());
  ShardedTopkServer srv(sharded_cfg(4));
  auto corpus = srv.register_corpus(vs);
  for (u64 k : {u64{3}, u64{300}, u64{1000}}) {
    auto expect = topk::reference_topk(vs, k);
    auto got = srv.submit(corpus, k).get();
    ASSERT_EQ(got.values, widen(expect)) << "k=" << k;
  }
}

TEST(Sharded, DedupOnOffParity) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 93);
  std::span<const u32> vs(v.data(), v.size());
  std::vector<std::vector<u64>> answers;
  for (bool dedup : {true, false}) {
    ShardedConfig cfg = sharded_cfg(2);
    cfg.shard.dedup = dedup;
    ShardedTopkServer srv(cfg);
    auto corpus = srv.register_corpus(vs);
    // Identical queries exercise phase-A dedup inside each shard.
    std::vector<std::future<QueryResult>> fs;
    for (int i = 0; i < 6; ++i) fs.push_back(srv.submit(corpus, 50));
    for (auto& f : fs) answers.push_back(f.get().values);
  }
  auto expect = topk::reference_topk(vs, 50);
  for (const auto& a : answers) EXPECT_EQ(a, widen(expect));
}

TEST(Sharded, SelectionOnlyAndSmallestCriterion) {
  auto v = data::generate((1 << 15) + 13, Distribution::kNormal, 94);
  std::span<const u32> vs(v.data(), v.size());
  ShardedTopkServer srv(sharded_cfg(3));
  auto corpus = srv.register_corpus(vs);
  for (auto c : {Criterion::kLargest, Criterion::kSmallest}) {
    auto expect =
        single_device_baseline(
            vs, {Query::view(vs, 77, c, /*selection_only=*/true)})
            .front();
    auto got = srv.submit(corpus, 77, c, /*selection_only=*/true).get();
    EXPECT_EQ(got.kth, expect.kth);
    EXPECT_EQ(got.values, expect.values);  // just the k-th value
    auto full = srv.submit(corpus, 77, c).get();
    auto full_expect =
        single_device_baseline(vs, {Query::view(vs, 77, c)}).front();
    EXPECT_EQ(full.values, full_expect.values);
  }
}

TEST(Sharded, U64CorpusParity) {
  std::vector<u64> v(1 << 14);
  for (u64 i = 0; i < v.size(); ++i) v[i] = data::rand_u64(95, i);
  std::span<const u64> vs(v.data(), v.size());
  vgpu::Device dev(vgpu::GpuProfile::v100s());
  TopkServer single(dev);
  auto expect = single.submit(Query::view(vs, 200)).get();

  ShardedTopkServer srv(sharded_cfg(4));
  auto corpus = srv.register_corpus(vs);
  auto got = srv.submit(corpus, 200).get();
  EXPECT_EQ(got.values, expect.values);
  EXPECT_EQ(got.kth, expect.kth);
}

TEST(Sharded, SingleShardCorpusShortCircuits) {
  auto v = data::generate(1 << 10, Distribution::kUniform, 96);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg;
  cfg.num_shards = 4;  // default min_shard_elems keeps 1k elements on one
  ShardedTopkServer srv(cfg);
  auto corpus = srv.register_corpus(vs);
  EXPECT_EQ(srv.corpus_shards(corpus), 1u);
  auto expect = topk::reference_topk(vs, 25);
  auto got = srv.submit(corpus, 25).get();
  srv.drain();
  EXPECT_EQ(got.values, widen(expect));
  auto st = srv.stats();
  EXPECT_EQ(st.single_shard_queries, 1u);
  EXPECT_EQ(st.merged_queries, 0u);
  EXPECT_EQ(st.merge_batches, 0u);  // the merge thread never woke
}

TEST(Sharded, HierarchicalFaninParityAndExtraLevel) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 97);
  std::span<const u32> vs(v.data(), v.size());

  ShardedConfig flat_cfg = sharded_cfg(4);
  ShardedTopkServer flat(flat_cfg);
  auto fc = flat.register_corpus(vs);
  auto fr = flat.submit(fc, 128).get();
  flat.drain();

  ShardedConfig hier_cfg = sharded_cfg(4);
  hier_cfg.merge_fanin = 2;  // 4 shards -> 2 leader groups -> final merge
  ShardedTopkServer hier(hier_cfg);
  auto hc = hier.register_corpus(vs);
  auto hr = hier.submit(hc, 128).get();
  hier.drain();

  EXPECT_EQ(hr.values, fr.values);
  // The hierarchy spends one extra (pre-merge) launch per round.
  EXPECT_EQ(flat.stats().merge_launches, 1u);
  EXPECT_EQ(hier.stats().merge_launches, 2u);
}

TEST(Sharded, TopologyHelpersMatchReduction) {
  using namespace drtopk::dist;
  EXPECT_EQ(group_leader(5, 4), 4u);
  EXPECT_EQ(group_leader(5, 0), 0u);
  EXPECT_TRUE(is_group_leader(8, 4));
  EXPECT_FALSE(is_group_leader(9, 4));
  EXPECT_EQ(group_end(8, 4, 10), 10u);  // ragged last group
  EXPECT_EQ(group_count(10, 4), 3u);
  EXPECT_FALSE(hierarchy_engages(4, 4));
  EXPECT_TRUE(hierarchy_engages(5, 4));
  EXPECT_EQ(primary_messages(16, 4, true), 3u);
  EXPECT_EQ(primary_messages(16, 4, false), 15u);
  EXPECT_EQ(primary_messages(4, 4, true), 3u);  // hierarchy disengaged
}

TEST(Sharded, MetricsCarryShardLabels) {
  auto v = data::generate(1 << 14, Distribution::kUniform, 98);
  std::span<const u32> vs(v.data(), v.size());
  ShardedTopkServer srv(sharded_cfg(2));
  auto corpus = srv.register_corpus(vs);
  srv.submit(corpus, 10).get();
  srv.drain();

  const std::string prom = srv.metrics_prometheus();
  EXPECT_NE(prom.find("serve_queries_completed{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_queries_completed{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("sharded_merged_queries{shard=\"merge\"}"),
            std::string::npos);
  // Histogram buckets splice the shard label next to le.
  EXPECT_NE(prom.find("_bucket{shard=\"0\",le="), std::string::npos);

  const std::string json = srv.metrics_json();
  EXPECT_NE(json.find("\"serve_queries_completed{shard=\\\"0\\\"}\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"sharded_merge_batches{shard=\\\"merge\\\"}\":"),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Sharded, UnattributedZeroAcrossAllDevices) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 99);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg = sharded_cfg(3);
  cfg.merge_fanin = 2;  // exercise both merge levels
  ShardedTopkServer srv(cfg);
  auto corpus = srv.register_corpus(vs);
  std::vector<std::future<QueryResult>> fs;
  for (u64 k : {u64{5}, u64{50}, u64{500}}) fs.push_back(srv.submit(corpus, k));
  for (auto& f : fs) f.get();
  srv.drain();
  EXPECT_EQ(srv.unattributed_launches(), 0u);
  // The merge device saw only "merge"-stage kernels.
  bool merge_stage_seen = false;
  for (const auto& st : srv.merge_device().stage_stats()) {
    EXPECT_STREQ(st.stage.c_str(), "merge");
    merge_stage_seen = true;
  }
  EXPECT_TRUE(merge_stage_seen);
}

TEST(Sharded, UnifiedTraceHasOneProcessPerShard) {
  auto v = data::generate(1 << 14, Distribution::kUniform, 100);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg = sharded_cfg(2);
  cfg.shard.obs.tracing = true;
  ShardedTopkServer srv(cfg);
  auto corpus = srv.register_corpus(vs);
  srv.submit(corpus, 20).get();
  srv.drain();

  const std::string path = "sharded_trace_test.json";
  ASSERT_TRUE(srv.dump_trace(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"name\":\"shard-0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"shard-1\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  std::remove(path.c_str());

  // Tracing off: no trace to dump.
  ShardedTopkServer off(sharded_cfg(2));
  EXPECT_FALSE(off.dump_trace(path));
}

TEST(Sharded, PlanSharingSkipsSiblingCalibrationProbes) {
  // Four same-shape single-shard corpora land round-robin on different
  // shards (min_shard_elems keeps each corpus on one device). Shard 0
  // calibrates once; drain() cross-publishes the plan, so the other
  // N-1 shards answer recurring shapes without ever probing.
  auto v = data::generate(1 << 16, Distribution::kUniform, 102);
  std::span<const u32> vs(v.data(), v.size());
  ShardedConfig cfg;
  cfg.num_shards = 4;
  cfg.min_shard_elems = u64{1} << 30;  // single-shard placement
  ShardedTopkServer srv(cfg);
  std::vector<u32> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(srv.register_corpus(vs));
  for (auto id : ids) EXPECT_EQ(srv.corpus_shards(id), 1u);

  auto expect = topk::reference_topk(vs, 128);
  EXPECT_EQ(srv.submit(ids[0], 128).get().values, widen(expect));
  srv.drain();  // publishes shard 0's calibrated plan to the siblings

  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(srv.submit(ids[i], 128).get().values, widen(expect));
  srv.drain();

  auto st = srv.stats();
  EXPECT_GE(st.plan_publishes, 3u);       // adopted by the 3 siblings
  EXPECT_EQ(st.plan_probes_skipped, 3u);  // (N-1)/N probe sets never ran
}

TEST(Sharded, ManyQueriesBatchThroughTheMergeThread) {
  // A burst of in-flight queries: the merge thread drains whatever queued
  // while it blocked, so rounds cover >= 1 query and everything completes.
  auto v = data::generate(1 << 15, Distribution::kUniform, 101);
  std::span<const u32> vs(v.data(), v.size());
  ShardedTopkServer srv(sharded_cfg(2));
  auto corpus = srv.register_corpus(vs);
  std::vector<std::future<QueryResult>> fs;
  for (int i = 0; i < 24; ++i)
    fs.push_back(srv.submit(corpus, 10 + (i % 5) * 30));
  for (auto& f : fs) EXPECT_FALSE(f.get().values.empty());
  srv.drain();
  auto st = srv.stats();
  EXPECT_EQ(st.merged_queries, 24u);
  EXPECT_EQ(st.completed, 24u);
  EXPECT_GE(st.merge_batches, 1u);
  EXPECT_LE(st.merge_batches, 24u);
  EXPECT_GT(st.merge_sim_ms, 0.0);
  EXPECT_GT(st.qps(), 0.0);
}

}  // namespace
}  // namespace drtopk::serve
