// Tests for the network front door's wire layer: framing codec
// round-trips, the protocol encoders/decoders, and — the load-bearing
// property — that malformed traffic can never crash the server or leak a
// connection slot. The fuzzers are seeded and deterministic: 10k malformed
// frames at the pure-decoder level, then the same generator replayed over
// live sockets against a running NetServer, asserting the connection table
// returns to baseline and a well-behaved client still gets answers.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <random>
#include <thread>

#include "data/distributions.hpp"
#include "net/client.hpp"
#include "net/net_server.hpp"

namespace drtopk::net {
namespace {

using data::Criterion;
using data::Distribution;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

// ---------------------------------------------------------------- framing

TEST(Framing, RoundTripSingleFrame) {
  const std::vector<u8> payload = {1, 2, 3, 4, 5};
  const auto wire = encode_frame(payload);
  ASSERT_EQ(wire.size(), kFrameHeader + payload.size());

  FrameDecoder dec;
  dec.feed(wire);
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.error());
}

TEST(Framing, ReassemblesByteAtATime) {
  const std::vector<u8> payload(1000, 0xAB);
  const auto wire = encode_frame(payload);

  FrameDecoder dec;
  for (size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(dec.next().has_value()) << "frame completed early at " << i;
    dec.feed({&wire[i], 1});
  }
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, payload);
}

TEST(Framing, MultipleFramesInOneFeed) {
  std::vector<u8> wire;
  for (u8 i = 0; i < 5; ++i) {
    const std::vector<u8> p(i + 1, i);
    const auto w = encode_frame(p);
    wire.insert(wire.end(), w.begin(), w.end());
  }
  FrameDecoder dec;
  dec.feed(wire);
  for (u8 i = 0; i < 5; ++i) {
    auto f = dec.next();
    ASSERT_TRUE(f.has_value()) << "frame " << int(i);
    EXPECT_EQ(*f, std::vector<u8>(i + 1, i));
  }
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Framing, EmptyPayloadIsAValidFrame) {
  FrameDecoder dec;
  dec.feed(encode_frame({}));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->empty());
}

TEST(Framing, BadMagicIsTerminal) {
  FrameDecoder dec;
  std::vector<u8> wire = encode_frame(std::vector<u8>{1, 2, 3});
  wire[0] ^= 0xFF;
  dec.feed(wire);
  EXPECT_TRUE(dec.error());
  EXPECT_FALSE(dec.next().has_value());
  // Terminal: even a now-valid frame is ignored.
  dec.feed(encode_frame(std::vector<u8>{9}));
  EXPECT_TRUE(dec.error());
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Framing, OversizedLengthIsTerminalNotAnAllocation) {
  Writer w;
  w.u32_(kFrameMagic);
  w.u32_(kMaxFrame + 1);  // declared length over the ceiling
  FrameDecoder dec;
  dec.feed(w.payload());
  EXPECT_TRUE(dec.error());
  EXPECT_EQ(dec.pending_bytes(), 0u);  // nothing buffered, nothing allocated
}

TEST(Framing, ReaderPoisonsOnUnderrun) {
  const std::vector<u8> three = {1, 2, 3};
  Reader r(three);
  u32 v32 = 0;
  EXPECT_FALSE(r.u32_(v32));
  EXPECT_FALSE(r.ok());
  u8 v8 = 0;
  EXPECT_FALSE(r.u8_(v8));  // poisoned: even a fitting read fails
}

// --------------------------------------------------------------- protocol

TEST(Protocol, TopkRequestRoundTrip) {
  TopkRequest in;
  in.request_id = 0xDEADBEEFCAFE;
  in.corpus = 3;
  in.k = 100;
  in.criterion = 1;
  in.selection_only = 1;
  in.recall_floor_bp = 9000;
  in.deadline_us = 12345;

  const auto wire = encode(in);
  FrameDecoder dec;
  dec.feed(wire);
  auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(peek_type(*payload), MsgType::kTopkRequest);

  TopkRequest out;
  ASSERT_TRUE(decode(*payload, out));
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.corpus, in.corpus);
  EXPECT_EQ(out.k, in.k);
  EXPECT_EQ(out.criterion, in.criterion);
  EXPECT_EQ(out.selection_only, in.selection_only);
  EXPECT_EQ(out.recall_floor_bp, in.recall_floor_bp);
  EXPECT_EQ(out.deadline_us, in.deadline_us);
}

TEST(Protocol, TopkResponseRoundTrip) {
  TopkResponse in;
  in.request_id = 77;
  in.status = Status::kDegraded;
  in.fidelity_bp = 9000;
  in.kth = 0x1122334455667788;
  in.values = {10, 9, 8, 7};
  in.server_us = 4321;

  const auto wire = encode(in);
  FrameDecoder dec;
  dec.feed(wire);
  auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());

  TopkResponse out;
  ASSERT_TRUE(decode(*payload, out));
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.fidelity_bp, in.fidelity_bp);
  EXPECT_EQ(out.kth, in.kth);
  EXPECT_EQ(out.values, in.values);
  EXPECT_EQ(out.server_us, in.server_us);
}

TEST(Protocol, RequestDecodeRejectsOutOfDomainFields) {
  TopkRequest good;
  good.k = 10;
  auto expect_reject = [](TopkRequest r) {
    const auto wire = encode(r);
    const std::span<const u8> payload{wire.data() + kFrameHeader,
                                      wire.size() - kFrameHeader};
    TopkRequest out;
    EXPECT_FALSE(decode(payload, out));
  };
  {
    TopkRequest r = good;
    r.k = 0;
    expect_reject(r);
  }
  {
    TopkRequest r = good;
    r.criterion = 2;  // data::Criterion has exactly two values
    expect_reject(r);
  }
  {
    TopkRequest r = good;
    r.selection_only = 9;
    expect_reject(r);
  }
  {
    TopkRequest r = good;
    r.recall_floor_bp = 4999;  // below the FidelityPolicy domain floor
    expect_reject(r);
  }
  {
    TopkRequest r = good;
    r.recall_floor_bp = 10001;  // above exact
    expect_reject(r);
  }
}

TEST(Protocol, RequestDecodeRejectsTruncationAndTrailingBytes) {
  TopkRequest r;
  r.k = 5;
  const auto wire = encode(r);
  const std::span<const u8> payload{wire.data() + kFrameHeader,
                                    wire.size() - kFrameHeader};
  // Every truncation point fails cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    TopkRequest out;
    EXPECT_FALSE(decode(payload.subspan(0, cut), out)) << "cut=" << cut;
  }
  // Trailing garbage fails too.
  std::vector<u8> padded(payload.begin(), payload.end());
  padded.push_back(0);
  TopkRequest out;
  EXPECT_FALSE(decode(padded, out));
}

TEST(Protocol, MetricsRoundTrip) {
  const std::string text = "# HELP x\nx 1\n";
  const auto wire = encode_metrics_response(text);
  FrameDecoder dec;
  dec.feed(wire);
  auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  std::string out;
  ASSERT_TRUE(decode_metrics_response(*payload, out));
  EXPECT_EQ(out, text);
}

// ------------------------------------------------------------ fuzz: codec

// Deterministic malformed-frame generator shared by the decoder-level and
// live-socket fuzzers. Mixes pure garbage, near-valid frames (right magic,
// hostile length), truncated valid frames, and well-framed but
// protocol-invalid payloads.
std::vector<u8> malformed_blob(std::mt19937_64& rng) {
  std::uniform_int_distribution<u32> pick(0, 4);
  std::uniform_int_distribution<u32> len_d(0, 64);
  std::uniform_int_distribution<u32> byte_d(0, 255);
  std::vector<u8> out;
  switch (pick(rng)) {
    case 0: {  // raw garbage, never framed
      const u32 n = 1 + len_d(rng);
      for (u32 i = 0; i < n; ++i)
        out.push_back(static_cast<u8>(byte_d(rng)));
      break;
    }
    case 1: {  // valid magic, oversized declared length
      Writer w;
      w.u32_(kFrameMagic);
      w.u32_(kMaxFrame + 1 + len_d(rng));
      out = w.payload();
      break;
    }
    case 2: {  // truncated valid frame (header promises more than sent)
      Writer w;
      w.u32_(kFrameMagic);
      w.u32_(32 + len_d(rng));
      w.u8_(static_cast<u8>(byte_d(rng)));
      out = w.payload();
      break;
    }
    case 3: {  // well-framed random payload (protocol-level garbage)
      const u32 n = len_d(rng);
      std::vector<u8> p(n);
      for (auto& b : p) b = static_cast<u8>(byte_d(rng));
      out = encode_frame(p);
      break;
    }
    default: {  // well-framed TopkRequest with corrupted fields
      TopkRequest r;
      r.request_id = rng();
      r.corpus = byte_d(rng);
      r.k = byte_d(rng);  // may be 0 => invalid
      r.criterion = static_cast<u8>(byte_d(rng));
      r.selection_only = static_cast<u8>(byte_d(rng));
      r.recall_floor_bp = rng() % 20000;
      out = encode(r);
      break;
    }
  }
  return out;
}

TEST(NetFuzz, DecoderSurvives10kMalformedFrames) {
  std::mt19937_64 rng(0xF0221);
  for (int i = 0; i < 10000; ++i) {
    FrameDecoder dec;
    dec.feed(malformed_blob(rng));
    // Drain whatever parsed; decode attempts must never crash.
    while (auto f = dec.next()) {
      TopkRequest req;
      TopkResponse resp;
      std::string text;
      (void)decode(*f, req);
      (void)decode(*f, resp);
      (void)decode_metrics_response(*f, text);
      (void)peek_type(*f);
    }
  }
}

// ---------------------------------------------------------- live server

struct LiveServer {
  vgpu::Device& dev = shared_device();
  vgpu::device_vector<u32> corpus;
  serve::TopkServer srv;
  SingleBackend backend;
  NetServer net;

  explicit LiveServer(NetServerConfig cfg = {})
      : corpus(data::generate(1 << 14, Distribution::kUniform, 99)),
        srv(dev),
        backend(srv),
        net(backend, cfg) {
    backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));
  }
};

TEST(NetServer, AnswersARequestEndToEnd) {
  LiveServer live;
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(live.net.port()));

  TopkRequest req;
  req.request_id = 7;
  req.k = 10;
  auto resp = cli.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->request_id, 7u);
  EXPECT_EQ(resp->status, Status::kOk);
  EXPECT_EQ(resp->fidelity_bp, kExactBp);
  ASSERT_EQ(resp->values.size(), 10u);
  // Best-first ordering and kth consistency.
  for (size_t i = 1; i < resp->values.size(); ++i)
    EXPECT_GE(resp->values[i - 1], resp->values[i]);
  EXPECT_EQ(resp->kth, resp->values.back());
}

TEST(NetServer, UnknownCorpusAndBadFramesAreTyped) {
  LiveServer live;
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(live.net.port()));

  TopkRequest req;
  req.request_id = 1;
  req.corpus = 42;  // unregistered
  auto resp = cli.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kBadRequest);

  // Well-framed protocol garbage: typed kBadRequest, connection survives.
  ASSERT_TRUE(cli.send_raw(encode_frame(std::vector<u8>{0xFF, 0x00})));
  auto resp2 = cli.recv_response();
  ASSERT_TRUE(resp2.has_value());
  EXPECT_EQ(resp2->status, Status::kBadRequest);

  // The same connection still answers real queries.
  req.corpus = 0;
  req.request_id = 2;
  auto resp3 = cli.call(req);
  ASSERT_TRUE(resp3.has_value());
  EXPECT_EQ(resp3->status, Status::kOk);
}

TEST(NetServer, PingAndMetricsOverTheSocket) {
  LiveServer live;
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(live.net.port()));
  EXPECT_TRUE(cli.ping());

  TopkRequest req;
  req.k = 5;
  ASSERT_TRUE(cli.call(req).has_value());

  auto metrics = cli.metrics();
  ASSERT_TRUE(metrics.has_value());
  // Front-door series and backend series arrive in one snapshot.
  EXPECT_NE(metrics->find("net_admitted"), std::string::npos);
  EXPECT_NE(metrics->find("net_request_us"), std::string::npos);
  EXPECT_NE(metrics->find("serve_queries_completed"), std::string::npos);
}

TEST(NetFuzz, LiveServerSurvivesMalformedTrafficWithoutLeakingSlots) {
  LiveServer live;
  const u16 port = live.net.port();

  // A control client that must keep working throughout.
  BlockingClient control;
  ASSERT_TRUE(control.connect(port));

  std::mt19937_64 rng(0xF0222);
  BlockingClient attacker;
  ASSERT_TRUE(attacker.connect(port));
  int sent_on_conn = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!attacker.connected() || !attacker.send_raw(malformed_blob(rng))) {
      // Server dropped us (framing violation) — reconnect and continue.
      attacker.close();
      ASSERT_TRUE(attacker.connect(port)) << "iteration " << i;
      sent_on_conn = 0;
      continue;
    }
    ++sent_on_conn;
    // Periodically force reconnects so fd reuse and slot accounting get
    // exercised even when frames were merely protocol-invalid.
    if (sent_on_conn >= 64) {
      attacker.close();
      ASSERT_TRUE(attacker.connect(port));
      sent_on_conn = 0;
    }
  }
  attacker.close();

  // The control client still gets exact answers.
  TopkRequest req;
  req.request_id = 31337;
  req.k = 25;
  auto resp = control.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kOk);
  ASSERT_EQ(resp->values.size(), 25u);

  // No leaked connection slots: once the attacker's fd drains out of the
  // loop, only the control connection remains.
  control.close();
  for (int spin = 0; spin < 200; ++spin) {
    if (live.net.active_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(live.net.active_connections(), 0u);
  EXPECT_EQ(live.net.in_flight(), 0u);
}

TEST(NetServer, ConnectionCapClosesExcessAccepts) {
  NetServerConfig cfg;
  cfg.max_connections = 2;
  LiveServer live(cfg);

  BlockingClient a, b;
  ASSERT_TRUE(a.connect(live.net.port()));
  ASSERT_TRUE(b.connect(live.net.port()));
  ASSERT_TRUE(a.ping());  // both slots live

  BlockingClient c;
  ASSERT_TRUE(c.connect(live.net.port()));  // TCP accepts...
  // ...but the server closes it on sight: the next read sees EOF.
  auto f = c.recv_frame();
  EXPECT_FALSE(f.has_value());
}

}  // namespace
}  // namespace drtopk::net
