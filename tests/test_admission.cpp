// Tests for deadline-aware admission: the controller's decision ladder in
// isolation (injected estimators, no sockets), the deadline-conformance
// matrix end-to-end over live NetServers (tight/loose deadlines x
// exact/recall-floor clients x single/sharded backends), and the serving-
// layer regression that a tight-deadline query can never be stalled behind
// a finalize-window park by sharing a group with patient traffic.
#include <gtest/gtest.h>

#include <thread>

#include "data/distributions.hpp"
#include "net/client.hpp"
#include "net/net_server.hpp"

namespace drtopk::net {
namespace {

using data::Criterion;
using data::Distribution;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

serve::PlanKey key_of(u32 salt) {
  serve::PlanKey k{};
  k.fingerprint = salt;  // distinct estimator buckets per shape
  return k;
}

// Controller with injected estimates: `svc` maps fingerprint -> EWMA.
AdmissionController controller(
    std::unordered_map<u32, u64> svc, u64 queue_us = 0,
    AdmissionController::Config cfg = {.max_in_flight = 4,
                                       .safety = 1.0,
                                       .queue_quantile = 0.9}) {
  return AdmissionController(
      cfg,
      [svc = std::move(svc)](const serve::PlanKey& k) -> u64 {
        auto it = svc.find(static_cast<u32>(k.fingerprint));
        return it == svc.end() ? 0 : it->second;
      },
      [queue_us]() { return queue_us; });
}

// ------------------------------------------------------- controller unit

TEST(Admission, LadderOrderRateQuotaOverloadDeadline) {
  auto c = controller({{1, 1000}});
  const auto k = key_of(1);
  // Rate trumps everything.
  EXPECT_EQ(c.decide(k, k, 1, kExactBp, false, false, 99).status,
            Status::kShedRate);
  // Then quota.
  EXPECT_EQ(c.decide(k, k, 1, kExactBp, true, false, 99).status,
            Status::kShedQuota);
  // Then the server-wide bound.
  EXPECT_EQ(c.decide(k, k, 1, kExactBp, true, true, 4).status,
            Status::kShedOverload);
  // Then the deadline (1us budget vs 1000us estimate, no floor).
  EXPECT_EQ(c.decide(k, k, 1, kExactBp, true, true, 0).status,
            Status::kShedDeadline);
}

TEST(Admission, NoDeadlineAlwaysRunsExact) {
  auto c = controller({{1, u64{1} << 40}});  // absurdly expensive shape
  const auto v = c.decide(key_of(1), key_of(1), 0, 9000, true, true, 0);
  EXPECT_EQ(v.status, Status::kOk);
  EXPECT_EQ(v.fidelity_bp, kExactBp);
}

TEST(Admission, DeadlineConformanceMatrix) {
  // Exact shape costs 1000us, floor shape 100us, queue adds 50us.
  auto c = controller({{1, 1000}, {2, 100}}, /*queue_us=*/50);
  const auto exact = key_of(1), floor = key_of(2);

  struct Case {
    u64 deadline_us;
    u32 floor_bp;
    Status want;
    u32 want_bp;
  };
  const Case cases[] = {
      // Loose deadline: runs exact regardless of the client's floor.
      {2000, kExactBp, Status::kOk, kExactBp},
      {2000, 9000, Status::kOk, kExactBp},
      // Tight for exact (estimate 1050 > 500), loose for the floor (150):
      // the exact-only client is shed, the floor client degrades.
      {500, kExactBp, Status::kShedDeadline, kExactBp},
      {500, 9000, Status::kDegraded, 9000},
      // Tight for both (estimate 150 > 80): everyone sheds.
      {80, kExactBp, Status::kShedDeadline, kExactBp},
      {80, 9000, Status::kShedDeadline, kExactBp},
  };
  for (const auto& tc : cases) {
    const auto v =
        c.decide(exact, floor, tc.deadline_us, tc.floor_bp, true, true, 0);
    EXPECT_EQ(v.status, tc.want)
        << "deadline=" << tc.deadline_us << " floor=" << tc.floor_bp;
    if (v.admitted())
      EXPECT_EQ(v.fidelity_bp, tc.want_bp) << "deadline=" << tc.deadline_us;
  }
}

TEST(Admission, ColdShapesAreAdmittedOptimistically) {
  auto c = controller({});  // no estimates at all
  const auto v = c.decide(key_of(1), key_of(2), 10, kExactBp, true, true, 0);
  EXPECT_EQ(v.status, Status::kOk);
  EXPECT_EQ(v.estimate_us, 0u);  // unknown, not "zero cost"
}

TEST(Admission, DegradedFidelityIsQuantizedHonestly) {
  auto c = controller({{1, 1000}});
  const auto v = c.decide(key_of(1), key_of(2), 10, 8250, true, true, 0);
  ASSERT_EQ(v.status, Status::kDegraded);
  // The reported bp is the FidelityPolicy quantization of the floor — what
  // the query actually runs at, not an echo of the request.
  EXPECT_EQ(v.fidelity_bp, core::FidelityPolicy::approx(0.825).quantized_bp());
  EXPECT_LT(v.fidelity_bp, kExactBp);
  EXPECT_GE(v.fidelity_bp, 8250u - 50u);
}

TEST(Admission, SafetyFactorInflatesTheEstimate) {
  auto c = controller({{1, 100}}, /*queue_us=*/0,
                      {.max_in_flight = 4, .safety = 3.0,
                       .queue_quantile = 0.9});
  // 100us EWMA * 3.0 safety = 300us estimate: a 200us budget sheds.
  EXPECT_EQ(c.decide(key_of(1), key_of(1), 200, kExactBp, true, true, 0)
                .status,
            Status::kShedDeadline);
  EXPECT_EQ(c.decide(key_of(1), key_of(1), 400, kExactBp, true, true, 0)
                .status,
            Status::kOk);
}

TEST(Admission, TokenBucketRefillsAtRate) {
  TokenBucket b(/*rate_qps=*/1000.0, /*burst=*/2.0);
  EXPECT_TRUE(b.try_take(1000));
  EXPECT_TRUE(b.try_take(1000));
  EXPECT_FALSE(b.try_take(1000));   // burst exhausted
  EXPECT_FALSE(b.try_take(1500));   // 0.5 tokens refilled: still short
  EXPECT_TRUE(b.try_take(2100));    // >1 token refilled
  TokenBucket off(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(off.try_take(0));
}

// ------------------------------------------------- end-to-end conformance

constexpr u64 kTightUs = 1;  // beneath any real service estimate

// Warm the service-time EWMA for (corpus, k) with no-deadline queries,
// then exercise the deadline ladder against the live estimate.
void warm(BlockingClient& cli, u64 k, int rounds = 3) {
  for (int i = 0; i < rounds; ++i) {
    TopkRequest req;
    req.request_id = 1000 + static_cast<u64>(i);
    req.k = k;
    auto resp = cli.call(req);
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, Status::kOk);
  }
}

void run_conformance(Backend& backend) {
  NetServer net(backend, {});
  BlockingClient cli;
  ASSERT_TRUE(cli.connect(net.port()));
  warm(cli, 64);

  // Loose deadline, exact client: admitted exact.
  TopkRequest req;
  req.request_id = 1;
  req.k = 64;
  req.deadline_us = 30'000'000;
  auto loose = cli.call(req);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->status, Status::kOk);
  EXPECT_EQ(loose->fidelity_bp, kExactBp);
  EXPECT_FALSE(loose->values.empty());

  // Tight deadline, exact-only client: typed shed, answered fast (the
  // rejection itself honors the spirit of the deadline — microseconds of
  // decision, no execution).
  req.request_id = 2;
  req.deadline_us = kTightUs;
  const auto t0 = mono_us();
  auto shed = cli.call(req);
  const u64 reject_us = mono_us() - t0;
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, Status::kShedDeadline);
  EXPECT_TRUE(shed->values.empty());
  EXPECT_LT(reject_us, 1'000'000u);  // a decision, not an execution

  // Tight deadline, recall-floor client: degraded, not shed — and the
  // response reports the degraded fidelity honestly.
  req.request_id = 3;
  req.recall_floor_bp = 9000;
  auto deg = cli.call(req);
  ASSERT_TRUE(deg.has_value());
  EXPECT_EQ(deg->status, Status::kDegraded);
  EXPECT_LT(deg->fidelity_bp, kExactBp);
  EXPECT_GE(deg->fidelity_bp, 9000u - 50u);
  EXPECT_FALSE(deg->values.empty());

  // The shed/degrade decisions surface in the front-door counters.
  auto metrics = cli.metrics();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("net_shed_deadline 1"), std::string::npos);
  EXPECT_NE(metrics->find("net_degraded 1"), std::string::npos);
  net.drain();
}

TEST(AdmissionE2E, SingleBackendConformance) {
  auto corpus = data::generate(1 << 15, Distribution::kUniform, 41);
  serve::TopkServer srv(shared_device());
  SingleBackend backend(srv);
  backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));
  run_conformance(backend);
}

TEST(AdmissionE2E, ShardedBackendConformance) {
  auto corpus = data::generate(1 << 16, Distribution::kUniform, 42);
  serve::ShardedConfig cfg;
  cfg.num_shards = 2;
  serve::ShardedTopkServer srv(cfg);
  ShardedBackend backend(srv);
  backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));
  run_conformance(backend);
}

TEST(AdmissionE2E, QuotaAndOverloadShedsAreTyped) {
  auto corpus = data::generate(1 << 14, Distribution::kUniform, 43);
  serve::TopkServer srv(shared_device());
  SingleBackend backend(srv);
  backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));

  NetServerConfig cfg;
  cfg.client_quota = 1;  // one in-flight request per connection
  NetServer net(backend, cfg);

  BlockingClient cli;
  ASSERT_TRUE(cli.connect(net.port()));
  // Pipeline a burst without reading: beyond the quota of 1, requests are
  // shed as kShedQuota while the first is still in flight. Responses come
  // back in SOME order; collect and count by status.
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    TopkRequest req;
    req.request_id = static_cast<u64>(i);
    req.k = 512;
    ASSERT_TRUE(cli.send(req));
  }
  int ok = 0, quota = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto resp = cli.recv_response();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    if (resp->status == Status::kOk) ++ok;
    else if (resp->status == Status::kShedQuota) ++quota;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(quota, 1);
  EXPECT_EQ(ok + quota, kBurst);
  net.drain();
}

TEST(AdmissionE2E, RateLimitShedsAreTyped) {
  auto corpus = data::generate(1 << 14, Distribution::kUniform, 44);
  serve::TopkServer srv(shared_device());
  SingleBackend backend(srv);
  backend.add_corpus(std::span<const u32>(corpus.data(), corpus.size()));

  NetServerConfig cfg;
  cfg.client_rate_qps = 1.0;  // ~one query/second
  cfg.client_burst = 2.0;
  NetServer net(backend, cfg);

  BlockingClient cli;
  ASSERT_TRUE(cli.connect(net.port()));
  int ok = 0, rate = 0;
  for (int i = 0; i < 6; ++i) {
    TopkRequest req;
    req.request_id = static_cast<u64>(i);
    req.k = 8;
    auto resp = cli.call(req);
    ASSERT_TRUE(resp.has_value());
    if (resp->status == Status::kOk) ++ok;
    if (resp->status == Status::kShedRate) ++rate;
  }
  EXPECT_EQ(ok, 2);   // the burst
  EXPECT_GE(rate, 3); // everything after it (6 calls in well under 1s)
  net.drain();
}

// --------------------------------------- serving-layer deadline semantics

TEST(DeadlineGrouping, DeadlineClassJoinsTheAdmissionSignature) {
  auto corpus = data::generate(1 << 14, Distribution::kUniform, 45);
  std::span<const u32> cs(corpus.data(), corpus.size());

  serve::ServerConfig cfg;
  cfg.executors = 1;  // deterministic grouping
  cfg.batch_max = 8;
  serve::TopkServer server(shared_device(), cfg);

  // Same shape, wildly different budgets: must NOT share a group — a
  // mixed group would hold the tight query to the patient one's schedule.
  std::vector<serve::Query> batch;
  batch.push_back(serve::Query::view(cs, 100).with_deadline(500));
  batch.push_back(serve::Query::view(cs, 100).with_deadline(50'000'000));
  auto results = server.run_batch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(server.stats().groups, 2u);

  // Same deadline CLASS still batches (the fix splits classes, not every
  // distinct microsecond value).
  serve::TopkServer server2(shared_device(), cfg);
  std::vector<serve::Query> batch2;
  batch2.push_back(serve::Query::view(cs, 100).with_deadline(5000));
  batch2.push_back(serve::Query::view(cs, 200).with_deadline(7000));
  (void)server2.run_batch(batch2);
  EXPECT_EQ(server2.stats().groups, 1u);
}

TEST(DeadlineGrouping, TightDeadlineBypassesTheFinalizeWindow) {
  auto corpus = data::generate(1 << 14, Distribution::kUniform, 46);
  std::span<const u32> cs(corpus.data(), corpus.size());

  serve::ServerConfig cfg;
  cfg.executors = 2;
  cfg.finalize_window_us = 300'000;  // pathologically patient window
  serve::TopkServer server(shared_device(), cfg);

  // A tight-deadline query must finalize immediately instead of parking
  // for the window (300ms >> the 2ms budget).
  const auto t0 = mono_us();
  auto r = server.submit(serve::Query::view(cs, 100).with_deadline(2000))
               .get();
  const u64 wall_us = mono_us() - t0;
  EXPECT_FALSE(r.values.empty());
  EXPECT_LT(wall_us, 200'000u) << "query waited out the finalize window";
  EXPECT_GE(server.stats().window_deadline_bypasses, 1u);

  // A patient query still parks (the bypass is deadline-gated, not
  // unconditional): no new bypass is recorded for it.
  const u64 bypasses = server.stats().window_deadline_bypasses;
  (void)server.submit(serve::Query::view(cs, 100).with_deadline(50'000'000))
      .get();
  EXPECT_EQ(server.stats().window_deadline_bypasses, bypasses);
  server.drain();
}

TEST(DeadlineGrouping, QueueWaitIsMeasuredIntoQueryResult) {
  auto corpus = data::generate(1 << 14, Distribution::kUniform, 47);
  std::span<const u32> cs(corpus.data(), corpus.size());
  serve::TopkServer server(shared_device());
  auto r = server.submit(serve::Query::view(cs, 10)).get();
  // queue_us is a measured component of wall_ms, not an independent clock.
  EXPECT_LE(static_cast<double>(r.queue_us), r.wall_ms * 1000.0 + 1000.0);
}

}  // namespace
}  // namespace drtopk::net
