// Tests for the data substrate: RNG determinism, key-traits order
// preservation, distribution properties (UD/ND/CD) and the synthetic
// real-world dataset generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "data/datasets.hpp"
#include "data/distributions.hpp"
#include "data/key_traits.hpp"
#include "data/rng.hpp"

namespace drtopk::data {
namespace {

TEST(Rng, DeterministicAcrossCalls) {
  EXPECT_EQ(rand_u64(42, 1000), rand_u64(42, 1000));
  EXPECT_NE(rand_u64(42, 1000), rand_u64(43, 1000));
  EXPECT_NE(rand_u64(42, 1000), rand_u64(42, 1001));
}

TEST(Rng, UnitRangeAndRoughUniformity) {
  const int buckets = 16;
  std::array<int, 16> hist{};
  const int n = 1 << 16;
  for (int i = 0; i < n; ++i) {
    const f64 u = rand_unit(7, i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    hist[static_cast<int>(u * buckets)]++;
  }
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(hist[b], n / buckets, n / buckets * 0.15);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  const int n = 1 << 16;
  f64 sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const f64 x = rand_normal(11, i);
    sum += x;
    sq += x * x;
  }
  const f64 mean = sum / n;
  const f64 var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

// ---- Key traits: order preservation is what every engine relies on ----

template <class T>
class KeyTraitsOrder : public ::testing::Test {};

using OrderedTypes = ::testing::Types<u32, u64, i32, i64, f32, f64>;
TYPED_TEST_SUITE(KeyTraitsOrder, OrderedTypes);

template <class T>
std::vector<T> interesting_values();

template <>
std::vector<u32> interesting_values<u32>() {
  return {0u, 1u, 2u, 100u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFEu,
          0xFFFFFFFFu};
}
template <>
std::vector<u64> interesting_values<u64>() {
  return {0ull, 1ull, 1ull << 32, ~0ull - 1, ~0ull};
}
template <>
std::vector<i32> interesting_values<i32>() {
  return {-2147483647 - 1, -100, -1, 0, 1, 100, 2147483647};
}
template <>
std::vector<i64> interesting_values<i64>() {
  return {std::numeric_limits<i64>::min(), -5, 0, 5,
          std::numeric_limits<i64>::max()};
}
template <>
std::vector<f32> interesting_values<f32>() {
  return {-1e30f, -3.5f, -0.0f, 0.0f, 1e-30f, 3.5f, 1e30f};
}
template <>
std::vector<f64> interesting_values<f64>() {
  return {-1e300, -2.5, 0.0, 2.5, 1e300};
}

TYPED_TEST(KeyTraitsOrder, ToKeyIsMonotone) {
  auto vals = interesting_values<TypeParam>();
  std::sort(vals.begin(), vals.end());
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(KeyTraits<TypeParam>::to_key(vals[i - 1]),
              KeyTraits<TypeParam>::to_key(vals[i]));
  }
}

TYPED_TEST(KeyTraitsOrder, RoundTripsExactly) {
  for (const auto v : interesting_values<TypeParam>()) {
    const auto k = KeyTraits<TypeParam>::to_key(v);
    const auto back = KeyTraits<TypeParam>::from_key(k);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0);
  }
}

TYPED_TEST(KeyTraitsOrder, SmallestCriterionReversesOrder) {
  auto vals = interesting_values<TypeParam>();
  std::sort(vals.begin(), vals.end());
  for (size_t i = 1; i < vals.size(); ++i) {
    if (vals[i - 1] == vals[i]) continue;
    EXPECT_GT(directed_key(vals[i - 1], Criterion::kSmallest),
              directed_key(vals[i], Criterion::kSmallest));
  }
}

TEST(KeyTraitsRandomized, MonotoneOnRandomFloatPairs) {
  for (int i = 0; i < 10000; ++i) {
    const f32 a = static_cast<f32>((rand_unit(1, i) - 0.5) * 2e6);
    const f32 b = static_cast<f32>((rand_unit(2, i) - 0.5) * 2e6);
    if (a < b) {
      EXPECT_LT(KeyTraits<f32>::to_key(a), KeyTraits<f32>::to_key(b));
    } else if (a > b) {
      EXPECT_GT(KeyTraits<f32>::to_key(a), KeyTraits<f32>::to_key(b));
    }
  }
}

// ---- Distributions ----

TEST(Distributions, UniformCoversRange) {
  auto v = generate(1 << 16, Distribution::kUniform, 5);
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  EXPECT_LT(*mn, u32{1} << 28);         // something near the bottom
  EXPECT_GT(*mx, 0xF0000000u);          // something near the top
}

TEST(Distributions, NormalIsTightlyConcentrated) {
  auto v = generate(1 << 16, Distribution::kNormal, 5);
  // mean 1e8, stddev 10: everything within ~1e8 +/- 100.
  for (u32 x : v) {
    ASSERT_GT(x, 99999800u);
    ASSERT_LT(x, 100000200u);
  }
  // Massive duplication: far fewer distinct values than elements.
  std::vector<u32> u(v.begin(), v.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  EXPECT_LT(u.size(), 200u);
}

TEST(Distributions, CustomizedHasDecoysInEveryTopLevelBucket) {
  const u64 n = 1 << 16;
  auto v = generate(n, Distribution::kCustomized, 5);
  // Level-0 decoys: one element in every 2^24-wide bucket except the top.
  std::array<bool, 256> seen{};
  for (u32 x : v) seen[x >> 24] = true;
  for (int b = 0; b < 256; ++b) EXPECT_TRUE(seen[b]) << "bucket " << b;
}

TEST(Distributions, CustomizedMajorityInTopPath) {
  const u64 n = 1 << 16;
  auto v = generate(n, Distribution::kCustomized, 5);
  u64 in_cluster = 0;
  for (u32 x : v)
    if (x >= 0xFFFFFF00u) ++in_cluster;
  // All but the planted decoys collapse into the final cluster.
  EXPECT_EQ(in_cluster, n - kCdDecoys);
}

TEST(Distributions, DeterministicForSameSeed) {
  auto a = generate(4096, Distribution::kUniform, 9);
  auto b = generate(4096, Distribution::kUniform, 9);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// ---- Real-world synthetic datasets ----

TEST(Datasets, TableMatchesPaper) {
  auto t = dataset_table();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].abbr, "AN");
  EXPECT_EQ(t[0].paper_size, 536'870'912ull);
  EXPECT_EQ(t[1].abbr, "CW");
  EXPECT_EQ(t[1].paper_size, 1'073'741'824ull);
  EXPECT_EQ(t[2].abbr, "TR");
}

TEST(Datasets, AnnDistancesConcentrateAroundSqrtDimOver6) {
  const u32 dim = 128;
  auto d = ann_distances(1 << 12, dim, 1);
  f64 mean = 0;
  for (f32 x : d) {
    ASSERT_GE(x, 0.0f);
    mean += x;
  }
  mean /= static_cast<f64>(d.size());
  // E[ (U-V)^2 ] = 1/6 per dimension -> E[dist] ~ sqrt(dim/6) ~ 4.6.
  EXPECT_NEAR(mean, std::sqrt(dim / 6.0), 0.8);
}

TEST(Datasets, CluewebDegreesAreHeavyTailed) {
  auto deg = clueweb_degrees(1 << 16, 2);
  u64 ones = 0;
  u32 mx = 0;
  for (u32 d : deg) {
    ASSERT_GE(d, 1u);
    if (d == 1) ++ones;
    mx = std::max(mx, d);
  }
  // Pareto(2.1): ~53% of mass at degree 1, max far above the median.
  EXPECT_GT(ones, (u64{1} << 16) / 3);
  EXPECT_GT(mx, 1000u);
}

TEST(Datasets, TwitterScoresTileAUniquePool) {
  const u64 n = 1 << 14;
  auto s = twitter_covid_scores(n, 3, 0.125);
  std::map<f32, int> counts;
  for (f32 x : s) {
    ASSERT_GE(x, 0.0f);
    ASSERT_LE(x, 1.0f);
    counts[x]++;
  }
  // ~n/8 unique values, each duplicated ~8 times.
  EXPECT_LE(counts.size(), n / 8 + 1);
  EXPECT_GE(counts.size(), n / 16);
}

}  // namespace
}  // namespace drtopk::data
