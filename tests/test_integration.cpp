// Cross-module integration tests:
//  * differential testing — every engine, Dr. Top-k in several
//    configurations, the heap oracle and the distributed pipeline must all
//    agree on randomized (n, k, distribution) instances;
//  * adversarial input patterns (sorted runs, sawtooth, plateaus, single
//    spike) that stress delegate boundaries and tie handling;
//  * end-to-end dataset -> typed frontend -> engine flows as a downstream
//    application would use them.
#include <gtest/gtest.h>

#include <algorithm>

#include "bmw/bmw.hpp"
#include "core/dr_topk.hpp"
#include "data/datasets.hpp"
#include "data/distributions.hpp"
#include "dist/multi_gpu.hpp"

namespace drtopk {
namespace {

using data::Distribution;
using topk::reference_topk;

vgpu::Device& shared_device() {
  static vgpu::Device dev(vgpu::GpuProfile::v100s());
  return dev;
}

// ---- Differential: all implementations agree on random instances ----

class DifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTest, AllImplementationsAgree) {
  const u64 seed = GetParam();
  // Randomized instance parameters derived from the seed.
  const u64 n = 1000 + data::rand_u64(seed, 0) % (1 << 16);
  const u64 k = 1 + data::rand_u64(seed, 1) % (n / 4);
  const auto dist = static_cast<Distribution>(data::rand_u64(seed, 2) % 3);
  auto v = data::generate(n, dist, seed);
  std::span<const u32> vs(v.data(), v.size());
  const auto expect = reference_topk(vs, k);

  for (auto algo : {topk::Algo::kRadixFlag, topk::Algo::kRadixGgksOop,
                    topk::Algo::kBucketInplace, topk::Algo::kBucketOop,
                    topk::Algo::kBitonic, topk::Algo::kSortAndChoose}) {
    auto r = topk::run_topk_keys<u32>(shared_device(), vs, k, algo);
    ASSERT_EQ(r.keys, expect) << topk::to_string(algo) << " n=" << n
                              << " k=" << k;
  }
  for (u32 beta : {1u, 2u, 3u}) {
    core::DrTopkConfig cfg;
    cfg.beta = beta;
    auto r = core::dr_topk_keys<u32>(shared_device(), vs, k, cfg);
    ASSERT_EQ(r.keys, expect) << "dr beta=" << beta;
    ASSERT_EQ(core::dr_kth_keys<u32>(shared_device(), vs, k, cfg),
              expect.back());
  }
  auto heap = topk::heap_topk<u32>(vs, k);
  ASSERT_EQ(heap.keys, expect);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DifferentialTest,
                         ::testing::Range<u64>(1, 25));

// ---- Adversarial patterns ----

std::vector<u32> pattern(const std::string& name, u64 n) {
  std::vector<u32> v(n);
  if (name == "ascending") {
    for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(i);
  } else if (name == "descending") {
    for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(n - i);
  } else if (name == "sawtooth") {
    for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(i % 97);
  } else if (name == "plateau") {
    // Long equal runs with occasional steps: tie storm at every threshold.
    for (u64 i = 0; i < n; ++i) v[i] = static_cast<u32>(i / 1024);
  } else if (name == "spike") {
    // One subrange holds the entire answer.
    std::fill(v.begin(), v.end(), 1u);
    for (u64 i = 0; i < std::min<u64>(n, 500); ++i)
      v[n / 2 + i] = 0xF0000000u + static_cast<u32>(i);
  } else if (name == "alternating") {
    for (u64 i = 0; i < n; ++i) v[i] = (i % 2) ? 0xFFFF0000u : 3u;
  }
  return v;
}

class AdversarialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversarialTest, EnginesAndPipelineStayExact) {
  const u64 n = (1 << 15) + 321;
  auto v = pattern(GetParam(), n);
  std::span<const u32> vs(v.data(), v.size());
  for (u64 k : {u64{1}, u64{100}, u64{4096}}) {
    const auto expect = reference_topk(vs, k);
    for (auto algo : {topk::Algo::kRadixFlag, topk::Algo::kBucketInplace,
                      topk::Algo::kBitonic}) {
      auto r = topk::run_topk_keys<u32>(shared_device(), vs, k, algo);
      ASSERT_EQ(r.keys, expect) << topk::to_string(algo) << " k=" << k;
    }
    core::DrTopkConfig cfg;
    auto r = core::dr_topk_keys<u32>(shared_device(), vs, k, cfg);
    ASSERT_EQ(r.keys, expect) << "dr k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, AdversarialTest,
                         ::testing::Values("ascending", "descending",
                                           "sawtooth", "plateau", "spike",
                                           "alternating"),
                         [](const auto& info) { return info.param; });

// ---- End-to-end dataset flows ----

TEST(EndToEnd, KnnFlowSmallestDistances) {
  auto d = data::ann_distances(1 << 14, 32, 5);
  std::span<const f32> ds(d.data(), d.size());
  auto nn = core::dr_topk<f32>(shared_device(), ds, 8,
                               data::Criterion::kSmallest);
  std::vector<f32> expect(ds.begin(), ds.end());
  std::sort(expect.begin(), expect.end());
  expect.resize(8);
  EXPECT_EQ(nn.values, expect);
  // Distances are non-negative and ascending from the nearest neighbor.
  EXPECT_TRUE(std::is_sorted(nn.values.begin(), nn.values.end()));
  EXPECT_GE(nn.values.front(), 0.0f);
}

TEST(EndToEnd, DegreeCentralityAgreesAcrossEngines) {
  auto deg = data::clueweb_degrees(1 << 15, 6);
  std::span<const u32> ds(deg.data(), deg.size());
  auto a = topk::run_topk<u32>(shared_device(), ds, 50,
                               data::Criterion::kLargest,
                               topk::Algo::kSortAndChoose);
  auto b = core::dr_topk<u32>(shared_device(), ds, 50,
                              data::Criterion::kLargest);
  EXPECT_EQ(a.values, b.values);
}

TEST(EndToEnd, TwitterTieStorm) {
  // Tiled pool: every value has ~16 copies; k cuts through a tie class.
  auto s = data::twitter_covid_scores(1 << 14, 7, /*unique_fraction=*/0.0625);
  std::span<const f32> ss(s.data(), s.size());
  for (u64 k : {u64{10}, u64{17}, u64{100}}) {
    auto r = core::dr_topk<f32>(shared_device(), ss, k,
                                data::Criterion::kSmallest);
    std::vector<f32> expect(ss.begin(), ss.end());
    std::sort(expect.begin(), expect.end());
    expect.resize(k);
    ASSERT_EQ(r.values, expect) << "k=" << k;
  }
}

TEST(EndToEnd, DistributedMatchesSingleDevice) {
  for (u64 seed : {100ull, 101ull, 102ull}) {
    const u64 n = 1 << 16;
    const u64 k = 1 + data::rand_u64(seed, 9) % 500;
    auto v = data::generate(n, Distribution::kCustomized, seed);
    std::span<const u32> vs(v.data(), v.size());
    dist::MultiGpuConfig cfg;
    cfg.num_gpus = 3;
    cfg.device_capacity_elems = n / 5;  // force sharding + reloads
    cfg.host_threads_per_gpu = 2;
    auto r = dist::multi_gpu_topk(vs, k, cfg);
    auto single = core::dr_topk_keys<u32>(shared_device(), vs, k);
    ASSERT_EQ(r.keys, single.keys) << "seed=" << seed;
  }
}

TEST(EndToEnd, BmwAndTopkAgreeOnDocumentRanking) {
  // The BMW index and the plain top-k engines must induce the same ranking
  // over total document scores.
  auto corpus = bmw::make_dense_corpus(1 << 12, 3, Distribution::kUniform,
                                       8, 32);
  const u32 k = 20;
  auto ir = bmw::bmw_topk(corpus.index, corpus.query, k);
  std::span<const f32> scores(corpus.total_scores.data(),
                              corpus.total_scores.size());
  auto tk = core::dr_topk<f32>(shared_device(), scores, k,
                               data::Criterion::kLargest);
  for (u32 i = 0; i < k; ++i) {
    EXPECT_NEAR(ir.topk[i].score, tk.values[i], 1e-4f) << i;
  }
}

// ---- Device/stat consistency across the whole pipeline ----

TEST(EndToEnd, DeviceTotalsAccumulateAcrossCalls) {
  vgpu::Device dev(vgpu::GpuProfile::v100s(), 4);
  auto v = data::generate(1 << 14, Distribution::kUniform, 9);
  std::span<const u32> vs(v.data(), v.size());
  dev.reset_stats();
  (void)core::dr_topk_keys<u32>(dev, vs, 100);
  const auto after_one = dev.total_stats();
  (void)core::dr_topk_keys<u32>(dev, vs, 100);
  const auto after_two = dev.total_stats();
  EXPECT_GT(after_one.global_load_elems, 0u);
  EXPECT_EQ(after_two.global_load_elems, 2 * after_one.global_load_elems);
  EXPECT_GT(dev.total_sim_ms(), 0.0);
}

TEST(EndToEnd, SimulatedTimeIsDeterministic) {
  auto v = data::generate(1 << 15, Distribution::kUniform, 10);
  std::span<const u32> vs(v.data(), v.size());
  core::StageBreakdown a, b;
  (void)core::dr_topk_keys<u32>(shared_device(), vs, 256,
                                core::DrTopkConfig{}, &a);
  (void)core::dr_topk_keys<u32>(shared_device(), vs, 256,
                                core::DrTopkConfig{}, &b);
  // Counters (and hence modeled time) are exactly reproducible.
  EXPECT_EQ(a.total_stats().global_load_elems,
            b.total_stats().global_load_elems);
  EXPECT_EQ(a.total_stats().shfl_ops, b.total_stats().shfl_ops);
  EXPECT_DOUBLE_EQ(a.total_ms(), b.total_ms());
}

}  // namespace
}  // namespace drtopk
